# Empty dependencies file for bench_fig4_4_stddev.
# This may be replaced when dependencies are built.
