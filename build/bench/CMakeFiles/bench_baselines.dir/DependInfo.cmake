
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_baselines.cpp" "bench/CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o" "gcc" "bench/CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/vp_io.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/vp_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/canbus/CMakeFiles/vp_canbus.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
