file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_6_4_7_sampling_sweep.dir/bench_table4_6_4_7_sampling_sweep.cpp.o"
  "CMakeFiles/bench_table4_6_4_7_sampling_sweep.dir/bench_table4_6_4_7_sampling_sweep.cpp.o.d"
  "bench_table4_6_4_7_sampling_sweep"
  "bench_table4_6_4_7_sampling_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_6_4_7_sampling_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
