# Empty compiler generated dependencies file for bench_table4_6_4_7_sampling_sweep.
# This may be replaced when dependencies are built.
