# Empty dependencies file for bench_online_update.
# This may be replaced when dependencies are built.
