file(REMOVE_RECURSE
  "CMakeFiles/bench_online_update.dir/bench_online_update.cpp.o"
  "CMakeFiles/bench_online_update.dir/bench_online_update.cpp.o.d"
  "bench_online_update"
  "bench_online_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
