# Empty dependencies file for bench_fig3_1_sampling_effects.
# This may be replaced when dependencies are built.
