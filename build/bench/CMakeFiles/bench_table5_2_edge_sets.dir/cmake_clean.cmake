file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_2_edge_sets.dir/bench_table5_2_edge_sets.cpp.o"
  "CMakeFiles/bench_table5_2_edge_sets.dir/bench_table5_2_edge_sets.cpp.o.d"
  "bench_table5_2_edge_sets"
  "bench_table5_2_edge_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_2_edge_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
