# Empty dependencies file for bench_table5_2_edge_sets.
# This may be replaced when dependencies are built.
