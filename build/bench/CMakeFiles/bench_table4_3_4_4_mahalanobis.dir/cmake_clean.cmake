file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_3_4_4_mahalanobis.dir/bench_table4_3_4_4_mahalanobis.cpp.o"
  "CMakeFiles/bench_table4_3_4_4_mahalanobis.dir/bench_table4_3_4_4_mahalanobis.cpp.o.d"
  "bench_table4_3_4_4_mahalanobis"
  "bench_table4_3_4_4_mahalanobis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_3_4_4_mahalanobis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
