# Empty dependencies file for bench_table4_3_4_4_mahalanobis.
# This may be replaced when dependencies are built.
