file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_1_4_2_euclidean.dir/bench_table4_1_4_2_euclidean.cpp.o"
  "CMakeFiles/bench_table4_1_4_2_euclidean.dir/bench_table4_1_4_2_euclidean.cpp.o.d"
  "bench_table4_1_4_2_euclidean"
  "bench_table4_1_4_2_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_1_4_2_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
