# Empty compiler generated dependencies file for bench_table4_1_4_2_euclidean.
# This may be replaced when dependencies are built.
