# Empty compiler generated dependencies file for bench_table4_9_voltage.
# This may be replaced when dependencies are built.
