file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_9_voltage.dir/bench_table4_9_voltage.cpp.o"
  "CMakeFiles/bench_table4_9_voltage.dir/bench_table4_9_voltage.cpp.o.d"
  "bench_table4_9_voltage"
  "bench_table4_9_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_9_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
