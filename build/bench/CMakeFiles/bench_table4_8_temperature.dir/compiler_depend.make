# Empty compiler generated dependencies file for bench_table4_8_temperature.
# This may be replaced when dependencies are built.
