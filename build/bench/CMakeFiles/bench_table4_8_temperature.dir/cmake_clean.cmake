file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_8_temperature.dir/bench_table4_8_temperature.cpp.o"
  "CMakeFiles/bench_table4_8_temperature.dir/bench_table4_8_temperature.cpp.o.d"
  "bench_table4_8_temperature"
  "bench_table4_8_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_8_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
