file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_5_distance_quotient.dir/bench_table4_5_distance_quotient.cpp.o"
  "CMakeFiles/bench_table4_5_distance_quotient.dir/bench_table4_5_distance_quotient.cpp.o.d"
  "bench_table4_5_distance_quotient"
  "bench_table4_5_distance_quotient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_5_distance_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
