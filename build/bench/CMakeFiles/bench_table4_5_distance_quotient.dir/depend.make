# Empty dependencies file for bench_table4_5_distance_quotient.
# This may be replaced when dependencies are built.
