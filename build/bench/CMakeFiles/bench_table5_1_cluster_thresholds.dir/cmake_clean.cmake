file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_1_cluster_thresholds.dir/bench_table5_1_cluster_thresholds.cpp.o"
  "CMakeFiles/bench_table5_1_cluster_thresholds.dir/bench_table5_1_cluster_thresholds.cpp.o.d"
  "bench_table5_1_cluster_thresholds"
  "bench_table5_1_cluster_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_1_cluster_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
