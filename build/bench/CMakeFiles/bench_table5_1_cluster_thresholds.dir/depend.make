# Empty dependencies file for bench_table5_1_cluster_thresholds.
# This may be replaced when dependencies are built.
