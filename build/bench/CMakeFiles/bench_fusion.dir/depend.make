# Empty dependencies file for bench_fusion.
# This may be replaced when dependencies are built.
