# Empty dependencies file for vprofile_train.
# This may be replaced when dependencies are built.
