file(REMOVE_RECURSE
  "CMakeFiles/vprofile_train.dir/vprofile_train.cpp.o"
  "CMakeFiles/vprofile_train.dir/vprofile_train.cpp.o.d"
  "vprofile_train"
  "vprofile_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprofile_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
