# Empty dependencies file for vprofile_detect.
# This may be replaced when dependencies are built.
