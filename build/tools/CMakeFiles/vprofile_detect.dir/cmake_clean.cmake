file(REMOVE_RECURSE
  "CMakeFiles/vprofile_detect.dir/vprofile_detect.cpp.o"
  "CMakeFiles/vprofile_detect.dir/vprofile_detect.cpp.o.d"
  "vprofile_detect"
  "vprofile_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprofile_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
