# Empty compiler generated dependencies file for vprofile_capture.
# This may be replaced when dependencies are built.
