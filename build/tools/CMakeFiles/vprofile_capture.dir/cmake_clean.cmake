file(REMOVE_RECURSE
  "CMakeFiles/vprofile_capture.dir/vprofile_capture.cpp.o"
  "CMakeFiles/vprofile_capture.dir/vprofile_capture.cpp.o.d"
  "vprofile_capture"
  "vprofile_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprofile_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
