
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/vp_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/vp_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/vp_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/model.cpp.o.d"
  "/root/repo/src/core/online_update.cpp" "src/core/CMakeFiles/vp_core.dir/online_update.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/online_update.cpp.o.d"
  "/root/repo/src/core/standard_extractor.cpp" "src/core/CMakeFiles/vp_core.dir/standard_extractor.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/standard_extractor.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/vp_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/vp_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/vp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/canbus/CMakeFiles/vp_canbus.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
