file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/detector.cpp.o"
  "CMakeFiles/vp_core.dir/detector.cpp.o.d"
  "CMakeFiles/vp_core.dir/extractor.cpp.o"
  "CMakeFiles/vp_core.dir/extractor.cpp.o.d"
  "CMakeFiles/vp_core.dir/model.cpp.o"
  "CMakeFiles/vp_core.dir/model.cpp.o.d"
  "CMakeFiles/vp_core.dir/online_update.cpp.o"
  "CMakeFiles/vp_core.dir/online_update.cpp.o.d"
  "CMakeFiles/vp_core.dir/standard_extractor.cpp.o"
  "CMakeFiles/vp_core.dir/standard_extractor.cpp.o.d"
  "CMakeFiles/vp_core.dir/trainer.cpp.o"
  "CMakeFiles/vp_core.dir/trainer.cpp.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
