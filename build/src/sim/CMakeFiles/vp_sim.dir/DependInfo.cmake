
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack.cpp" "src/sim/CMakeFiles/vp_sim.dir/attack.cpp.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/attack.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/vp_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/sim/CMakeFiles/vp_sim.dir/presets.cpp.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/presets.cpp.o.d"
  "/root/repo/src/sim/vehicle.cpp" "src/sim/CMakeFiles/vp_sim.dir/vehicle.cpp.o" "gcc" "src/sim/CMakeFiles/vp_sim.dir/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/vp_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/canbus/CMakeFiles/vp_canbus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
