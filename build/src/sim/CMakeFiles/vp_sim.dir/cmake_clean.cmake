file(REMOVE_RECURSE
  "CMakeFiles/vp_sim.dir/attack.cpp.o"
  "CMakeFiles/vp_sim.dir/attack.cpp.o.d"
  "CMakeFiles/vp_sim.dir/experiment.cpp.o"
  "CMakeFiles/vp_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/vp_sim.dir/presets.cpp.o"
  "CMakeFiles/vp_sim.dir/presets.cpp.o.d"
  "CMakeFiles/vp_sim.dir/vehicle.cpp.o"
  "CMakeFiles/vp_sim.dir/vehicle.cpp.o.d"
  "libvp_sim.a"
  "libvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
