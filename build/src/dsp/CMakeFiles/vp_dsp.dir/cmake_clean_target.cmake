file(REMOVE_RECURSE
  "libvp_dsp.a"
)
