# Empty compiler generated dependencies file for vp_dsp.
# This may be replaced when dependencies are built.
