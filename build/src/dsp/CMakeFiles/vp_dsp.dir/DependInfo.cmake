
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/adc.cpp" "src/dsp/CMakeFiles/vp_dsp.dir/adc.cpp.o" "gcc" "src/dsp/CMakeFiles/vp_dsp.dir/adc.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/vp_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/vp_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/vp_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/vp_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/trace.cpp" "src/dsp/CMakeFiles/vp_dsp.dir/trace.cpp.o" "gcc" "src/dsp/CMakeFiles/vp_dsp.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
