file(REMOVE_RECURSE
  "CMakeFiles/vp_dsp.dir/adc.cpp.o"
  "CMakeFiles/vp_dsp.dir/adc.cpp.o.d"
  "CMakeFiles/vp_dsp.dir/fir.cpp.o"
  "CMakeFiles/vp_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/vp_dsp.dir/resample.cpp.o"
  "CMakeFiles/vp_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/vp_dsp.dir/trace.cpp.o"
  "CMakeFiles/vp_dsp.dir/trace.cpp.o.d"
  "libvp_dsp.a"
  "libvp_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
