
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/environment.cpp" "src/analog/CMakeFiles/vp_analog.dir/environment.cpp.o" "gcc" "src/analog/CMakeFiles/vp_analog.dir/environment.cpp.o.d"
  "/root/repo/src/analog/signature.cpp" "src/analog/CMakeFiles/vp_analog.dir/signature.cpp.o" "gcc" "src/analog/CMakeFiles/vp_analog.dir/signature.cpp.o.d"
  "/root/repo/src/analog/synth.cpp" "src/analog/CMakeFiles/vp_analog.dir/synth.cpp.o" "gcc" "src/analog/CMakeFiles/vp_analog.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/canbus/CMakeFiles/vp_canbus.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
