file(REMOVE_RECURSE
  "CMakeFiles/vp_analog.dir/environment.cpp.o"
  "CMakeFiles/vp_analog.dir/environment.cpp.o.d"
  "CMakeFiles/vp_analog.dir/signature.cpp.o"
  "CMakeFiles/vp_analog.dir/signature.cpp.o.d"
  "CMakeFiles/vp_analog.dir/synth.cpp.o"
  "CMakeFiles/vp_analog.dir/synth.cpp.o.d"
  "libvp_analog.a"
  "libvp_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
