# Empty dependencies file for vp_analog.
# This may be replaced when dependencies are built.
