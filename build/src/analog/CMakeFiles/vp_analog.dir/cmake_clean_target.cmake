file(REMOVE_RECURSE
  "libvp_analog.a"
)
