src/analog/CMakeFiles/vp_analog.dir/environment.cpp.o: \
 /root/repo/src/analog/environment.cpp /usr/include/stdc-predef.h \
 /root/repo/src/analog/environment.hpp
