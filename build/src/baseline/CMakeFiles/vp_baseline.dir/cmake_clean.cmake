file(REMOVE_RECURSE
  "CMakeFiles/vp_baseline.dir/delay_locator.cpp.o"
  "CMakeFiles/vp_baseline.dir/delay_locator.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/features.cpp.o"
  "CMakeFiles/vp_baseline.dir/features.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/fisher.cpp.o"
  "CMakeFiles/vp_baseline.dir/fisher.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/logistic_ids.cpp.o"
  "CMakeFiles/vp_baseline.dir/logistic_ids.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/mse_ids.cpp.o"
  "CMakeFiles/vp_baseline.dir/mse_ids.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/simple_ids.cpp.o"
  "CMakeFiles/vp_baseline.dir/simple_ids.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/timing_ids.cpp.o"
  "CMakeFiles/vp_baseline.dir/timing_ids.cpp.o.d"
  "CMakeFiles/vp_baseline.dir/viden_ids.cpp.o"
  "CMakeFiles/vp_baseline.dir/viden_ids.cpp.o.d"
  "libvp_baseline.a"
  "libvp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
