# Empty dependencies file for vp_baseline.
# This may be replaced when dependencies are built.
