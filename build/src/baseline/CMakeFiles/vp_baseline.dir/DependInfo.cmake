
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/delay_locator.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/delay_locator.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/delay_locator.cpp.o.d"
  "/root/repo/src/baseline/features.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/features.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/features.cpp.o.d"
  "/root/repo/src/baseline/fisher.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/fisher.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/fisher.cpp.o.d"
  "/root/repo/src/baseline/logistic_ids.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/logistic_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/logistic_ids.cpp.o.d"
  "/root/repo/src/baseline/mse_ids.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/mse_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/mse_ids.cpp.o.d"
  "/root/repo/src/baseline/simple_ids.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/simple_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/simple_ids.cpp.o.d"
  "/root/repo/src/baseline/timing_ids.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/timing_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/timing_ids.cpp.o.d"
  "/root/repo/src/baseline/viden_ids.cpp" "src/baseline/CMakeFiles/vp_baseline.dir/viden_ids.cpp.o" "gcc" "src/baseline/CMakeFiles/vp_baseline.dir/viden_ids.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/vp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/canbus/CMakeFiles/vp_canbus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
