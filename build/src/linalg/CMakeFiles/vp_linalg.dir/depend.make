# Empty dependencies file for vp_linalg.
# This may be replaced when dependencies are built.
