file(REMOVE_RECURSE
  "libvp_linalg.a"
)
