file(REMOVE_RECURSE
  "CMakeFiles/vp_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/vp_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/vp_linalg.dir/covariance.cpp.o"
  "CMakeFiles/vp_linalg.dir/covariance.cpp.o.d"
  "CMakeFiles/vp_linalg.dir/eigen.cpp.o"
  "CMakeFiles/vp_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/vp_linalg.dir/mahalanobis.cpp.o"
  "CMakeFiles/vp_linalg.dir/mahalanobis.cpp.o.d"
  "CMakeFiles/vp_linalg.dir/matrix.cpp.o"
  "CMakeFiles/vp_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/vp_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/vp_linalg.dir/vector_ops.cpp.o.d"
  "libvp_linalg.a"
  "libvp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
