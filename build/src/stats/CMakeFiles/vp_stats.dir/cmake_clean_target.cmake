file(REMOVE_RECURSE
  "libvp_stats.a"
)
