file(REMOVE_RECURSE
  "CMakeFiles/vp_stats.dir/confusion.cpp.o"
  "CMakeFiles/vp_stats.dir/confusion.cpp.o.d"
  "CMakeFiles/vp_stats.dir/interval.cpp.o"
  "CMakeFiles/vp_stats.dir/interval.cpp.o.d"
  "CMakeFiles/vp_stats.dir/summary.cpp.o"
  "CMakeFiles/vp_stats.dir/summary.cpp.o.d"
  "CMakeFiles/vp_stats.dir/welford.cpp.o"
  "CMakeFiles/vp_stats.dir/welford.cpp.o.d"
  "libvp_stats.a"
  "libvp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
