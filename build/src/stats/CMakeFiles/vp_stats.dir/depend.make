# Empty dependencies file for vp_stats.
# This may be replaced when dependencies are built.
