file(REMOVE_RECURSE
  "libvp_canbus.a"
)
