
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/canbus/arbitration.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/arbitration.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/arbitration.cpp.o.d"
  "/root/repo/src/canbus/crc15.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/crc15.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/crc15.cpp.o.d"
  "/root/repo/src/canbus/error_state.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/error_state.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/error_state.cpp.o.d"
  "/root/repo/src/canbus/frame.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/frame.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/frame.cpp.o.d"
  "/root/repo/src/canbus/j1939.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/j1939.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/j1939.cpp.o.d"
  "/root/repo/src/canbus/remote_frame.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/remote_frame.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/remote_frame.cpp.o.d"
  "/root/repo/src/canbus/scheduler.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/scheduler.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/scheduler.cpp.o.d"
  "/root/repo/src/canbus/standard_frame.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/standard_frame.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/standard_frame.cpp.o.d"
  "/root/repo/src/canbus/stuffing.cpp" "src/canbus/CMakeFiles/vp_canbus.dir/stuffing.cpp.o" "gcc" "src/canbus/CMakeFiles/vp_canbus.dir/stuffing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/vp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
