# Empty dependencies file for vp_canbus.
# This may be replaced when dependencies are built.
