file(REMOVE_RECURSE
  "CMakeFiles/vp_canbus.dir/arbitration.cpp.o"
  "CMakeFiles/vp_canbus.dir/arbitration.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/crc15.cpp.o"
  "CMakeFiles/vp_canbus.dir/crc15.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/error_state.cpp.o"
  "CMakeFiles/vp_canbus.dir/error_state.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/frame.cpp.o"
  "CMakeFiles/vp_canbus.dir/frame.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/j1939.cpp.o"
  "CMakeFiles/vp_canbus.dir/j1939.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/remote_frame.cpp.o"
  "CMakeFiles/vp_canbus.dir/remote_frame.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/scheduler.cpp.o"
  "CMakeFiles/vp_canbus.dir/scheduler.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/standard_frame.cpp.o"
  "CMakeFiles/vp_canbus.dir/standard_frame.cpp.o.d"
  "CMakeFiles/vp_canbus.dir/stuffing.cpp.o"
  "CMakeFiles/vp_canbus.dir/stuffing.cpp.o.d"
  "libvp_canbus.a"
  "libvp_canbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_canbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
