file(REMOVE_RECURSE
  "CMakeFiles/vp_io.dir/csv.cpp.o"
  "CMakeFiles/vp_io.dir/csv.cpp.o.d"
  "CMakeFiles/vp_io.dir/model_store.cpp.o"
  "CMakeFiles/vp_io.dir/model_store.cpp.o.d"
  "CMakeFiles/vp_io.dir/trace_store.cpp.o"
  "CMakeFiles/vp_io.dir/trace_store.cpp.o.d"
  "libvp_io.a"
  "libvp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
