file(REMOVE_RECURSE
  "CMakeFiles/intrusion_monitor.dir/intrusion_monitor.cpp.o"
  "CMakeFiles/intrusion_monitor.dir/intrusion_monitor.cpp.o.d"
  "intrusion_monitor"
  "intrusion_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
