# Empty dependencies file for intrusion_monitor.
# This may be replaced when dependencies are built.
