file(REMOVE_RECURSE
  "CMakeFiles/hybrid_ids.dir/hybrid_ids.cpp.o"
  "CMakeFiles/hybrid_ids.dir/hybrid_ids.cpp.o.d"
  "hybrid_ids"
  "hybrid_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
