# Empty compiler generated dependencies file for hybrid_ids.
# This may be replaced when dependencies are built.
