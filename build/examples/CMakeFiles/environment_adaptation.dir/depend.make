# Empty dependencies file for environment_adaptation.
# This may be replaced when dependencies are built.
