file(REMOVE_RECURSE
  "CMakeFiles/environment_adaptation.dir/environment_adaptation.cpp.o"
  "CMakeFiles/environment_adaptation.dir/environment_adaptation.cpp.o.d"
  "environment_adaptation"
  "environment_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
