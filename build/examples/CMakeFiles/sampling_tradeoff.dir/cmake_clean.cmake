file(REMOVE_RECURSE
  "CMakeFiles/sampling_tradeoff.dir/sampling_tradeoff.cpp.o"
  "CMakeFiles/sampling_tradeoff.dir/sampling_tradeoff.cpp.o.d"
  "sampling_tradeoff"
  "sampling_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
