file(REMOVE_RECURSE
  "CMakeFiles/test_analog_sweep.dir/test_analog_sweep.cpp.o"
  "CMakeFiles/test_analog_sweep.dir/test_analog_sweep.cpp.o.d"
  "test_analog_sweep"
  "test_analog_sweep.pdb"
  "test_analog_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analog_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
