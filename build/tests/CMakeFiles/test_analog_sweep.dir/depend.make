# Empty dependencies file for test_analog_sweep.
# This may be replaced when dependencies are built.
