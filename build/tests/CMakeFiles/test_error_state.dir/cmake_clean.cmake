file(REMOVE_RECURSE
  "CMakeFiles/test_error_state.dir/test_error_state.cpp.o"
  "CMakeFiles/test_error_state.dir/test_error_state.cpp.o.d"
  "test_error_state"
  "test_error_state.pdb"
  "test_error_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
