file(REMOVE_RECURSE
  "CMakeFiles/test_online_update.dir/test_online_update.cpp.o"
  "CMakeFiles/test_online_update.dir/test_online_update.cpp.o.d"
  "test_online_update"
  "test_online_update.pdb"
  "test_online_update[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
