file(REMOVE_RECURSE
  "CMakeFiles/test_delay_locator.dir/test_delay_locator.cpp.o"
  "CMakeFiles/test_delay_locator.dir/test_delay_locator.cpp.o.d"
  "test_delay_locator"
  "test_delay_locator.pdb"
  "test_delay_locator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_locator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
