# Empty compiler generated dependencies file for test_delay_locator.
# This may be replaced when dependencies are built.
