file(REMOVE_RECURSE
  "CMakeFiles/test_canbus.dir/test_canbus.cpp.o"
  "CMakeFiles/test_canbus.dir/test_canbus.cpp.o.d"
  "test_canbus"
  "test_canbus.pdb"
  "test_canbus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
