# Empty dependencies file for test_canbus.
# This may be replaced when dependencies are built.
