file(REMOVE_RECURSE
  "CMakeFiles/test_timing_ids.dir/test_timing_ids.cpp.o"
  "CMakeFiles/test_timing_ids.dir/test_timing_ids.cpp.o.d"
  "test_timing_ids"
  "test_timing_ids.pdb"
  "test_timing_ids[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
