# Empty compiler generated dependencies file for test_timing_ids.
# This may be replaced when dependencies are built.
