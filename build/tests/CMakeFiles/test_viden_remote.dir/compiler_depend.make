# Empty compiler generated dependencies file for test_viden_remote.
# This may be replaced when dependencies are built.
