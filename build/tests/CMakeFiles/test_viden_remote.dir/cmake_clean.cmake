file(REMOVE_RECURSE
  "CMakeFiles/test_viden_remote.dir/test_viden_remote.cpp.o"
  "CMakeFiles/test_viden_remote.dir/test_viden_remote.cpp.o.d"
  "test_viden_remote"
  "test_viden_remote.pdb"
  "test_viden_remote[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viden_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
