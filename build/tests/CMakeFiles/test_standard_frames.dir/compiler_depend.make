# Empty compiler generated dependencies file for test_standard_frames.
# This may be replaced when dependencies are built.
