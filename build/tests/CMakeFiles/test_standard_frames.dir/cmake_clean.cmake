file(REMOVE_RECURSE
  "CMakeFiles/test_standard_frames.dir/test_standard_frames.cpp.o"
  "CMakeFiles/test_standard_frames.dir/test_standard_frames.cpp.o.d"
  "test_standard_frames"
  "test_standard_frames.pdb"
  "test_standard_frames[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standard_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
