# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_canbus[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_analog[1]_include.cmake")
include("/root/repo/build/tests/test_extractor[1]_include.cmake")
include("/root/repo/build/tests/test_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_detector[1]_include.cmake")
include("/root/repo/build/tests/test_online_update[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_standard_frames[1]_include.cmake")
include("/root/repo/build/tests/test_error_state[1]_include.cmake")
include("/root/repo/build/tests/test_timing_ids[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_delay_locator[1]_include.cmake")
include("/root/repo/build/tests/test_viden_remote[1]_include.cmake")
include("/root/repo/build/tests/test_analog_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
