#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analog/environment.hpp"
#include "analog/signature.hpp"
#include "analog/synth.hpp"
#include "canbus/frame.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace {

using analog::EcuSignature;
using analog::Environment;
using analog::SynthOptions;
using canbus::BitVector;

EcuSignature quiet_signature() {
  EcuSignature s;
  s.dominant = units::Volts{2.0};
  s.recessive = units::Volts{0.0};
  s.drive = {2.0e6, 0.7};
  s.release = {1.0e6, 0.85};
  s.noise_sigma = units::Volts{0.0};
  s.edge_jitter = units::Seconds{0.0};
  return s;
}

SynthOptions fast_options() {
  SynthOptions o;
  o.bitrate = units::BitRateBps{250e3};
  o.sample_rate = units::SampleRateHz{20e6};
  o.sampling_phase_jitter = false;
  return o;
}

/// A single dominant bit surrounded by recessive.
BitVector pulse_bits() {
  BitVector bits(9, true);
  bits[4] = false;
  return bits;
}

TEST(Synth, IdleLevelIsRecessive) {
  stats::Rng rng(1);
  const auto trace = analog::synthesize_frame_voltage(
      BitVector(8, true), quiet_signature(), Environment::reference(),
      fast_options(), rng);
  for (double v : trace) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(Synth, DominantBitReachesDominantLevel) {
  stats::Rng rng(1);
  const EcuSignature sig = quiet_signature();
  const auto trace = analog::synthesize_frame_voltage(
      pulse_bits(), sig, Environment::reference(), fast_options(), rng);
  const double peak = *std::max_element(trace.begin(), trace.end());
  EXPECT_GT(peak, 0.9 * sig.dominant.value());
  // Settles back to recessive by the end.
  EXPECT_NEAR(trace.back(), sig.recessive.value(), 0.05);
}

TEST(Synth, UnderdampedDriveOvershoots) {
  stats::Rng rng(1);
  EcuSignature sig = quiet_signature();
  sig.drive.damping = 0.5;  // strongly underdamped
  // Long dominant run so the response fully settles.
  BitVector bits(4, true);
  for (int i = 0; i < 5; ++i) bits.push_back(false);
  bits.push_back(true);  // stuffing would forbid more, irrelevant here
  const auto trace = analog::synthesize_frame_voltage(
      bits, sig, Environment::reference(), fast_options(), rng);
  const double peak = *std::max_element(trace.begin(), trace.end());
  const double overshoot_expected =
      std::exp(-M_PI * 0.5 / std::sqrt(1.0 - 0.25));
  EXPECT_NEAR(peak, sig.dominant.value() * (1.0 + overshoot_expected), 0.05);
}

TEST(Synth, HigherDampingMeansLessOvershoot) {
  auto peak_with_damping = [&](double zeta) {
    stats::Rng rng(1);
    EcuSignature sig = quiet_signature();
    sig.drive.damping = zeta;
    BitVector bits(4, true);
    for (int i = 0; i < 5; ++i) bits.push_back(false);
    const auto trace = analog::synthesize_frame_voltage(
        bits, sig, Environment::reference(), fast_options(), rng);
    return *std::max_element(trace.begin(), trace.end());
  };
  EXPECT_GT(peak_with_damping(0.5), peak_with_damping(0.9));
}

TEST(Synth, FasterNaturalFrequencyRisesSooner) {
  auto crossing_index = [&](double freq) {
    stats::Rng rng(1);
    EcuSignature sig = quiet_signature();
    sig.drive.natural_freq_hz = freq;
    const auto trace = analog::synthesize_frame_voltage(
        pulse_bits(), sig, Environment::reference(), fast_options(), rng);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] > 1.0) return i;
    }
    return trace.size();
  };
  EXPECT_LT(crossing_index(4.0e6), crossing_index(1.0e6));
}

TEST(Synth, DeterministicGivenSeedAndNoJitter) {
  EcuSignature sig = quiet_signature();
  sig.noise_sigma = units::Volts{0.01};
  stats::Rng r1(99);
  stats::Rng r2(99);
  SynthOptions opts = fast_options();
  opts.sampling_phase_jitter = true;
  const auto a = analog::synthesize_frame_voltage(
      pulse_bits(), sig, Environment::reference(), opts, r1);
  const auto b = analog::synthesize_frame_voltage(
      pulse_bits(), sig, Environment::reference(), opts, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Synth, NoiseSigmaControlsSpread) {
  EcuSignature sig = quiet_signature();
  sig.noise_sigma = units::Volts{0.02};
  stats::Rng rng(5);
  const auto trace = analog::synthesize_frame_voltage(
      BitVector(40, true), sig, Environment::reference(), fast_options(),
      rng);
  stats::Welford acc;
  for (double v : trace) acc.add(v);
  EXPECT_NEAR(acc.stddev(), 0.02, 0.004);
}

TEST(Synth, MaxBitsTruncatesTrace) {
  stats::Rng rng(1);
  SynthOptions opts = fast_options();
  const auto full = analog::synthesize_frame_voltage(
      BitVector(40, true), quiet_signature(), Environment::reference(), opts,
      rng);
  opts.max_bits = 10;
  const auto truncated = analog::synthesize_frame_voltage(
      BitVector(40, true), quiet_signature(), Environment::reference(), opts,
      rng);
  EXPECT_LT(truncated.size(), full.size());
}

TEST(Synth, SampleCountMatchesRateAndDuration) {
  stats::Rng rng(1);
  SynthOptions opts = fast_options();
  opts.lead_in_bits = 2;
  opts.lead_out_bits = 1;
  const std::size_t nbits = 10;
  const auto trace = analog::synthesize_frame_voltage(
      BitVector(nbits, true), quiet_signature(), Environment::reference(),
      opts, rng);
  const double expected =
      (2.0 + 1.0 + nbits) / 250e3 * 20e6;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 2.0);
}

TEST(Synth, ValidatesInput) {
  stats::Rng rng(1);
  EXPECT_THROW(analog::synthesize_frame_voltage({}, quiet_signature(),
                                                Environment::reference(),
                                                fast_options(), rng),
               std::invalid_argument);
  SynthOptions bad = fast_options();
  bad.bitrate = units::BitRateBps{0.0};
  EXPECT_THROW(
      analog::synthesize_frame_voltage(pulse_bits(), quiet_signature(),
                                       Environment::reference(), bad, rng),
      std::invalid_argument);
}

TEST(Signature, TemperatureShiftsDominantLevel) {
  EcuSignature sig = quiet_signature();
  sig.dominant_temp_coeff_v_per_c = -0.001;
  sig.temperature_coupling = 1.0;
  const EcuSignature hot =
      sig.under(Environment{
          units::Celsius{analog::kReferenceTemperature.value() + 10.0},
                            units::Volts{analog::kReferenceBattery.value()}});
  EXPECT_NEAR(hot.dominant.value(), sig.dominant.value() - 0.01, 1e-12);
}

TEST(Signature, CouplingScalesTemperatureEffect) {
  EcuSignature sig = quiet_signature();
  sig.dominant_temp_coeff_v_per_c = -0.001;
  sig.temperature_coupling = 0.5;
  const EcuSignature hot =
      sig.under(Environment{
          units::Celsius{analog::kReferenceTemperature.value() + 10.0},
                            units::Volts{analog::kReferenceBattery.value()}});
  EXPECT_NEAR(hot.dominant.value(), sig.dominant.value() - 0.005, 1e-12);
}

TEST(Signature, BatteryVoltageShiftsDominantLevel) {
  EcuSignature sig = quiet_signature();
  sig.dominant_vbat_coeff = 0.02;
  const EcuSignature high =
      sig.under(Environment{
          units::Celsius{analog::kReferenceTemperature.value()},
          units::Volts{analog::kReferenceBattery.value() + 1.0}});
  EXPECT_NEAR(high.dominant.value(), sig.dominant.value() + 0.02, 1e-12);
}

TEST(Signature, ReferenceEnvironmentIsIdentity) {
  const EcuSignature sig = quiet_signature();
  const EcuSignature same = sig.under(Environment::reference());
  EXPECT_DOUBLE_EQ(same.dominant.value(), sig.dominant.value());
  EXPECT_DOUBLE_EQ(same.drive.natural_freq_hz, sig.drive.natural_freq_hz);
}

TEST(Signature, TemperatureScalesEdgeFrequency) {
  EcuSignature sig = quiet_signature();
  sig.freq_temp_coeff_per_c = -0.002;
  sig.temperature_coupling = 1.0;
  const EcuSignature hot =
      sig.under(Environment{
          units::Celsius{analog::kReferenceTemperature.value() + 10.0},
                            units::Volts{analog::kReferenceBattery.value()}});
  EXPECT_NEAR(hot.drive.natural_freq_hz,
              sig.drive.natural_freq_hz * 0.98, 1.0);
}

TEST(Signature, ParameterDistanceZeroForIdentical) {
  const EcuSignature sig = quiet_signature();
  EXPECT_DOUBLE_EQ(sig.parameter_distance(sig), 0.0);
  EcuSignature other = sig;
  other.dominant += units::Volts{0.05};
  EXPECT_GT(sig.parameter_distance(other), 0.0);
}

TEST(Signature, PerturbStaysInPhysicalRanges) {
  stats::Rng rng(7);
  const EcuSignature nominal = quiet_signature();
  analog::SignatureSpread spread;
  spread.damping = 0.5;  // deliberately large to hit the clamps
  for (int i = 0; i < 200; ++i) {
    const EcuSignature s = analog::perturb_signature(nominal, spread, rng);
    EXPECT_GE(s.drive.damping, 0.3);
    EXPECT_LE(s.drive.damping, 0.97);
    EXPECT_GE(s.release.damping, 0.3);
    EXPECT_LE(s.release.damping, 0.97);
    EXPECT_GT(s.drive.natural_freq_hz, 0.0);
    EXPECT_GT(s.noise_sigma.value(), 0.0);
  }
}

TEST(Signature, PerturbedSignaturesDiffer) {
  stats::Rng rng(8);
  const EcuSignature nominal = quiet_signature();
  const analog::SignatureSpread spread;
  const EcuSignature a = analog::perturb_signature(nominal, spread, rng);
  const EcuSignature b = analog::perturb_signature(nominal, spread, rng);
  EXPECT_GT(a.parameter_distance(b), 0.0);
}

TEST(EnvironmentPresets, MatchPaperMeasurements) {
  // §4.4: accessory mode 12.61 V, engine running 13.60 V.
  EXPECT_NEAR(analog::accessory_mode().battery.value(), 12.61, 1e-9);
  EXPECT_NEAR(analog::engine_running().battery.value(), 13.60, 1e-9);
  EXPECT_NEAR(analog::accessory_under_load(units::Volts{0.07}).battery.value(),
              12.54, 1e-9);
}

TEST(Synth, DifferentSignaturesProduceDistinguishableTraces) {
  // The Immutable ECU Property (Section 2.2.1): two devices, same frame,
  // different waveforms.
  stats::Rng rng(3);
  EcuSignature a = quiet_signature();
  EcuSignature b = quiet_signature();
  b.dominant = units::Volts{2.2};
  b.drive = {3.0e6, 0.55};
  canbus::DataFrame frame;
  frame.id = canbus::J1939Id{3, 100, 7};
  frame.payload = {1, 2, 3};
  const auto wire = canbus::build_wire_bits(frame);
  const auto ta = analog::synthesize_frame_voltage(
      wire, a, Environment::reference(), fast_options(), rng);
  const auto tb = analog::synthesize_frame_voltage(
      wire, b, Environment::reference(), fast_options(), rng);
  ASSERT_EQ(ta.size(), tb.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(ta[i] - tb[i]));
  }
  EXPECT_GT(max_diff, 0.15);
}

}  // namespace
