#include <gtest/gtest.h>

#include "baseline/features.hpp"
#include "baseline/fisher.hpp"
#include "baseline/logistic_ids.hpp"
#include "baseline/mse_ids.hpp"
#include "baseline/simple_ids.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using baseline::BaselineConfig;
using baseline::TrainExample;

/// Shared captures from Vehicle A so the expensive synthesis runs once.
class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vehicle_ = new sim::Vehicle(sim::vehicle_a(), 2024);
    db_ = new vprofile::SaDatabase(vehicle_->database());
    examples_ = new std::vector<TrainExample>();
    test_set_ = new std::vector<sim::Capture>();
    for (sim::Capture& cap :
         vehicle_->capture(900, analog::Environment::reference())) {
      examples_->push_back(
          TrainExample{cap.codes, cap.frame.id.source_address});
    }
    *test_set_ = vehicle_->capture(200, analog::Environment::reference());
  }

  static void TearDownTestSuite() {
    delete vehicle_;
    delete db_;
    delete examples_;
    delete test_set_;
    vehicle_ = nullptr;
  }

  static BaselineConfig config() {
    BaselineConfig cfg;
    cfg.bit_threshold = sim::default_bit_threshold(vehicle_->config());
    cfg.bit_width_samples = 80;
    return cfg;
  }

  /// Fraction of clean test messages the IDS accepts.
  static double clean_pass_rate(const baseline::SenderIds& ids) {
    std::size_t ok = 0;
    std::size_t n = 0;
    for (const auto& cap : *test_set_) {
      const auto c = ids.classify(cap.codes, cap.frame.id.source_address);
      if (!c) continue;
      ++n;
      if (!c->anomaly) ++ok;
    }
    EXPECT_GT(n, 0u);
    return static_cast<double>(ok) / static_cast<double>(n);
  }

  /// Fraction of hijacked messages (waveform of `attacker`, SA of another
  /// ECU) the IDS flags.
  static double hijack_catch_rate(const baseline::SenderIds& ids,
                                  std::size_t attacker,
                                  std::uint8_t victim_sa) {
    std::size_t caught = 0;
    std::size_t n = 0;
    for (const auto& cap : *test_set_) {
      if (cap.true_ecu != attacker) continue;
      const auto c = ids.classify(cap.codes, victim_sa);
      if (!c) continue;
      ++n;
      if (c->anomaly) ++caught;
    }
    EXPECT_GT(n, 0u);
    return static_cast<double>(caught) / static_cast<double>(n);
  }

  static sim::Vehicle* vehicle_;
  static vprofile::SaDatabase* db_;
  static std::vector<TrainExample>* examples_;
  static std::vector<sim::Capture>* test_set_;
};

sim::Vehicle* BaselineTest::vehicle_ = nullptr;
vprofile::SaDatabase* BaselineTest::db_ = nullptr;
std::vector<TrainExample>* BaselineTest::examples_ = nullptr;
std::vector<sim::Capture>* BaselineTest::test_set_ = nullptr;

TEST_F(BaselineTest, SegmentRunsAlternate) {
  const auto& trace = test_set_->front().codes;
  const auto runs = baseline::segment_runs(trace, config().bit_threshold);
  ASSERT_GT(runs.size(), 4u);
  EXPECT_TRUE(runs.front().dominant);  // SOF
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_NE(runs[i].dominant, runs[i - 1].dominant);
    EXPECT_EQ(runs[i].first, runs[i - 1].last + 1);
  }
}

TEST_F(BaselineTest, SegmentRunsEmptyWhenNoCrossing) {
  EXPECT_TRUE(baseline::segment_runs(dsp::Trace(100, 0.0), 1000.0).empty());
}

TEST_F(BaselineTest, SimpleFeaturesHaveSixteenDimensions) {
  const auto f =
      baseline::simple_features(test_set_->front().codes, config());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->size(), 16u);
  // Dominant features (first 8) sit above recessive features (last 8).
  for (int i = 0; i < 8; ++i) EXPECT_GT((*f)[i], (*f)[8 + i]);
}

TEST_F(BaselineTest, SimpleFeaturesRejectFlatTrace) {
  EXPECT_FALSE(
      baseline::simple_features(dsp::Trace(500, 0.0), config()).has_value());
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  std::vector<linalg::Vector> xs = {{1.0, 10.0}, {3.0, 30.0}, {5.0, 50.0}};
  const auto st = baseline::Standardizer::fit(xs);
  linalg::Vector sum(2, 0.0);
  linalg::Vector sq(2, 0.0);
  for (const auto& x : xs) {
    const auto z = st.apply(x);
    for (int i = 0; i < 2; ++i) {
      sum[i] += z[i];
      sq[i] += z[i] * z[i];
    }
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(sum[i] / 3.0, 0.0, 1e-12);
    EXPECT_NEAR(sq[i] / 3.0, 1.0, 1e-12);
  }
}

TEST(StandardizerTest, ZeroVarianceDimensionMapsToZero) {
  std::vector<linalg::Vector> xs = {{5.0, 1.0}, {5.0, 2.0}};
  const auto st = baseline::Standardizer::fit(xs);
  EXPECT_DOUBLE_EQ(st.apply({5.0, 1.5})[0], 0.0);
}

TEST(FisherTest, SeparatesTwoGaussianClasses) {
  stats::Rng rng(5);
  std::vector<linalg::Vector> xs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 200; ++i) {
    // Classes differ along dim 0 only; dim 1 is noise.
    const std::size_t cls = i % 2;
    xs.push_back({(cls == 0 ? 0.0 : 3.0) + rng.gaussian(0, 0.5),
                  rng.gaussian(0, 5.0)});
    labels.push_back(cls);
  }
  const auto proj = baseline::FisherProjection::fit(xs, labels, 2, 1);
  ASSERT_TRUE(proj.has_value());
  EXPECT_EQ(proj->output_dim(), 1u);
  // Projected classes must be well separated.
  double mean0 = 0.0;
  double mean1 = 0.0;
  for (int i = 0; i < 200; ++i) {
    (labels[i] == 0 ? mean0 : mean1) += proj->project(xs[i])[0];
  }
  mean0 /= 100.0;
  mean1 /= 100.0;
  double within = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double p = proj->project(xs[i])[0];
    const double m = labels[i] == 0 ? mean0 : mean1;
    within += (p - m) * (p - m);
  }
  within = std::sqrt(within / 200.0);
  EXPECT_GT(std::fabs(mean0 - mean1), 4.0 * within);
}

TEST(FisherTest, ValidatesInput) {
  EXPECT_THROW(baseline::FisherProjection::fit({}, {}, 2, 1),
               std::invalid_argument);
  EXPECT_THROW(
      baseline::FisherProjection::fit({{1.0}}, {0}, 1, 1),
      std::invalid_argument);
  EXPECT_THROW(
      baseline::FisherProjection::fit({{1.0}}, {5}, 2, 1),
      std::invalid_argument);
}

TEST_F(BaselineTest, SimpleTrainsAndAcceptsCleanTraffic) {
  baseline::SimpleIds ids(config());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  EXPECT_EQ(ids.class_names().size(), 5u);
  // EER thresholding tolerates some false rejects by construction.
  EXPECT_GT(clean_pass_rate(ids), 0.9);
}

TEST_F(BaselineTest, SimpleCatchesHijack) {
  baseline::SimpleIds ids(config());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  // ECU 0's waveform claiming ECU 3's SA: grossly different profiles.
  const std::uint8_t victim_sa =
      vehicle_->config().ecus[3].messages[0].id.source_address;
  EXPECT_GT(hijack_catch_rate(ids, 0, victim_sa), 0.95);
}

TEST_F(BaselineTest, SimpleRejectsUnknownSa) {
  baseline::SimpleIds ids(config());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error));
  EXPECT_FALSE(
      ids.classify(test_set_->front().codes, 0xEE).has_value());
}

TEST_F(BaselineTest, SimpleFailsOnOneClass) {
  baseline::SimpleIds ids(config());
  std::string error;
  vprofile::SaDatabase one = {{0x00, "ECU 0"}};
  std::vector<TrainExample> only_zero;
  for (const auto& e : *examples_) {
    if (e.sa == 0x00) only_zero.push_back(e);
  }
  EXPECT_FALSE(ids.train(only_zero, one, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(BaselineTest, LogisticTrainsAndClassifiesCleanTraffic) {
  baseline::LogisticIds::Options opts;
  opts.extraction = sim::default_extraction(vehicle_->config());
  opts.epochs = 60;
  baseline::LogisticIds ids(opts);
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  EXPECT_GT(clean_pass_rate(ids), 0.95);
}

TEST_F(BaselineTest, LogisticCatchesHijack) {
  baseline::LogisticIds::Options opts;
  opts.extraction = sim::default_extraction(vehicle_->config());
  opts.epochs = 60;
  baseline::LogisticIds ids(opts);
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  const std::uint8_t victim_sa =
      vehicle_->config().ecus[2].messages[0].id.source_address;
  EXPECT_GT(hijack_catch_rate(ids, 0, victim_sa), 0.95);
}

TEST_F(BaselineTest, LogisticProbabilitiesSumToOne) {
  baseline::LogisticIds::Options opts;
  opts.extraction = sim::default_extraction(vehicle_->config());
  opts.epochs = 30;
  baseline::LogisticIds ids(opts);
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  auto es = vprofile::extract_edge_set(test_set_->front().codes,
                                       opts.extraction);
  ASSERT_TRUE(es.has_value());
  const auto p = ids.predict_probabilities(es->samples);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(BaselineTest, MseTrainsAndAcceptsCleanTraffic) {
  baseline::MseIds::Options opts;
  opts.base = config();
  opts.sample_rate_hz = vehicle_->config().adc.sample_rate().value();
  baseline::MseIds ids(opts);
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  // The MSE fingerprint covers message-content bits, so mixed-ID traffic
  // produces substantial false classification — the paper reports the
  // same weakness for this family (Section 1.2.1: ~3% FP / 6% FN with
  // large deviations, on *controlled identical* frames).
  EXPECT_GT(clean_pass_rate(ids), 0.65);
}

TEST_F(BaselineTest, MseCatchesGrossImpersonation) {
  baseline::MseIds::Options opts;
  opts.base = config();
  opts.sample_rate_hz = vehicle_->config().adc.sample_rate().value();
  baseline::MseIds ids(opts);
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, *db_, &error)) << error;
  const std::uint8_t victim_sa =
      vehicle_->config().ecus[3].messages[0].id.source_address;
  EXPECT_GT(hijack_catch_rate(ids, 2, victim_sa), 0.8);
}

TEST_F(BaselineTest, AssignClassesMapsDatabaseNames) {
  std::vector<std::size_t> labels;
  const auto names = baseline::assign_classes(*examples_, *db_, labels);
  EXPECT_EQ(names.size(), 5u);
  for (std::size_t i = 0; i < examples_->size(); ++i) {
    ASSERT_NE(labels[i], static_cast<std::size_t>(-1));
    EXPECT_EQ(names[labels[i]], db_->at((*examples_)[i].sa));
  }
}

TEST_F(BaselineTest, AssignClassesDropsUnknownSas) {
  std::vector<TrainExample> ex = {{dsp::Trace(10, 0.0), 0xEE}};
  std::vector<std::size_t> labels;
  baseline::assign_classes(ex, *db_, labels);
  EXPECT_EQ(labels[0], static_cast<std::size_t>(-1));
}

}  // namespace
