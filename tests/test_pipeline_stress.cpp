// Concurrency stress for the pipeline primitives: many producers against
// a deliberately tiny queue, random worker counts, shutdown/drain
// semantics, and drop-mode accounting.  The invariant under test is
// always the same: every frame accepted before finish() is emitted
// exactly once, in order — no losses, no duplicates — under any
// interleaving.  CI runs this binary a second time under
// ThreadSanitizer (-fsanitize=thread) to catch data races.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "dsp/trace.hpp"
#include "pipeline/ordered_collector.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/ring_queue.hpp"

namespace {

using pipeline::DetectionPipeline;
using pipeline::FrameResult;
using pipeline::OrderedCollector;
using pipeline::PipelineConfig;
using pipeline::RingQueue;

TEST(RingQueueStress, ManyProducersManyConsumersLoseNothing) {
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  RingQueue<std::uint64_t> queue(4);  // much smaller than the traffic

  std::vector<std::vector<std::uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto v = queue.pop()) received[c].push_back(*v);
    });
  }
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i);  // every value exactly once
  }
  EXPECT_LE(queue.high_watermark(), queue.capacity());
}

TEST(RingQueueStress, CloseWakesBlockedProducersAndDrains) {
  RingQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  std::atomic<int> blocked_result{-1};
  std::thread producer([&] { blocked_result = queue.push(3) ? 1 : 0; });
  // The producer is (very likely) parked on the full queue; closing must
  // wake it with a refusal, not lose or accept the value silently.
  queue.close();
  producer.join();
  EXPECT_EQ(blocked_result.load(), 0);
  EXPECT_FALSE(queue.try_push(4));
  // Values accepted before close remain poppable, then exhaustion.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(OrderedCollectorStress, ConcurrentOutOfOrderSubmitsEmitInOrder) {
  constexpr std::uint64_t kCount = 20000;
  std::vector<std::uint64_t> emitted;
  emitted.reserve(kCount);
  OrderedCollector<std::uint64_t> collector(
      [&](std::uint64_t&& v) { emitted.push_back(v); });
  // Four threads submit disjoint striped sequence ranges concurrently.
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t seq = t; seq < kCount; seq += kThreads) {
        collector.submit(seq, seq * 7);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(emitted.size(), kCount);
  EXPECT_EQ(collector.pending(), 0u);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(emitted[i], i * 7);
  }
}

/// Minimal Euclidean model; stress traces are all-recessive so extraction
/// fails fast (kNoSof) and the test exercises scheduling, not scoring.
vprofile::Model stress_model() {
  vprofile::ExtractionConfig extraction;
  vprofile::ClusterModel cm;
  cm.name = "ECU 0";
  cm.sas = {0x10};
  cm.mean = linalg::Vector(extraction.dimension(), 0.0);
  cm.max_distance = 1.0;
  cm.edge_set_count = 8;
  std::vector<vprofile::ClusterModel> clusters{std::move(cm)};
  return vprofile::Model(vprofile::DistanceMetric::kEuclidean, extraction,
                         std::move(clusters));
}

TEST(PipelineStress, ManyProducersSmallQueueRandomWorkerCounts) {
  const vprofile::Model model = stress_model();
  std::mt19937 rng(0xC0FFEE);  // fixed seed: reproducible worker counts
  for (int round = 0; round < 4; ++round) {
    const std::size_t workers = 1 + rng() % 8;
    SCOPED_TRACE("round " + std::to_string(round) + " workers " +
                 std::to_string(workers));
    PipelineConfig pc;
    pc.num_workers = workers;
    pc.queue_capacity = 2;  // force constant backpressure
    std::vector<FrameResult> results;
    DetectionPipeline pipe(model, pc, [&](FrameResult&& r) {
      results.push_back(std::move(r));
    });

    constexpr std::size_t kProducers = 6;
    constexpr std::size_t kPerProducer = 500;
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        const dsp::Trace trace(64, 0.0);
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          if (pipe.submit(trace).has_value()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
    pipe.finish();

    const std::uint64_t total = kProducers * kPerProducer;
    EXPECT_EQ(accepted.load(), total);  // blocking mode never drops
    ASSERT_EQ(results.size(), total);
    for (std::uint64_t i = 0; i < total; ++i) {
      ASSERT_EQ(results[i].seq, i);  // dense, ordered, no dup / loss
      ASSERT_FALSE(results[i].dropped);
      ASSERT_EQ(results[i].extract_error, vprofile::ExtractError::kNoSof);
    }
    const pipeline::CountersSnapshot c = pipe.counters();
    EXPECT_EQ(c.submitted.value(), total);
    EXPECT_EQ(c.completed.value(), total);
    EXPECT_EQ(c.dropped.value(), 0u);
    EXPECT_LE(c.queue_high_watermark, pc.queue_capacity);
  }
}

TEST(PipelineStress, DropModeAccountsEveryFrameExactlyOnce) {
  const vprofile::Model model = stress_model();
  PipelineConfig pc;
  pc.num_workers = 1;
  pc.queue_capacity = 1;
  pc.block_when_full = false;  // live-tap mode: drop rather than stall
  std::vector<FrameResult> results;
  DetectionPipeline pipe(model, pc, [&](FrameResult&& r) {
    results.push_back(std::move(r));
  });

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 2000;
  // Long all-recessive traces keep the single worker busy scanning so the
  // one-slot queue overflows and drops actually happen.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      const dsp::Trace trace(20000, 0.0);
      for (std::size_t i = 0; i < kPerProducer; ++i) pipe.submit(trace);
    });
  }
  for (std::thread& t : producers) t.join();
  pipe.finish();

  const std::uint64_t total = kProducers * kPerProducer;
  const pipeline::CountersSnapshot c = pipe.counters();
  EXPECT_EQ(c.submitted.value(), total);
  EXPECT_EQ(c.completed.value() + c.dropped.value(), total);
  EXPECT_TRUE(c.consistent());
  // The verdict stream still covers every submitted frame, in order, with
  // drops marked — nothing vanishes silently.
  ASSERT_EQ(results.size(), total);
  std::uint64_t dropped_seen = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(results[i].seq, i);
    dropped_seen += results[i].dropped ? 1 : 0;
  }
  EXPECT_EQ(dropped_seen, c.dropped.value());
  EXPECT_GT(c.dropped.value(), 0u)
      << "stress did not overflow the queue; weaken "
                              "the worker or shrink the queue";
}

TEST(PipelineStress, FinishDrainsEverythingAccepted) {
  const vprofile::Model model = stress_model();
  PipelineConfig pc;
  pc.num_workers = 3;
  pc.queue_capacity = 4;
  std::atomic<std::uint64_t> emitted{0};
  DetectionPipeline pipe(model, pc,
                         [&](FrameResult&&) { emitted.fetch_add(1); });
  const dsp::Trace trace(64, 0.0);
  constexpr std::uint64_t kCount = 300;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(pipe.submit(trace).has_value());
  }
  pipe.finish();  // must wait for all 300, not just close the queue
  EXPECT_EQ(emitted.load(), kCount);
  EXPECT_EQ(pipe.counters().completed.value(), kCount);
  // finish() is idempotent and safe to repeat.
  pipe.finish();
  EXPECT_EQ(emitted.load(), kCount);
}

TEST(PipelineStress, DestructorWithoutFinishStillDrains) {
  const vprofile::Model model = stress_model();
  std::atomic<std::uint64_t> emitted{0};
  {
    PipelineConfig pc;
    pc.num_workers = 2;
    pc.queue_capacity = 2;
    DetectionPipeline pipe(model, pc,
                           [&](FrameResult&&) { emitted.fetch_add(1); });
    const dsp::Trace trace(64, 0.0);
    for (int i = 0; i < 50; ++i) pipe.submit(trace);
    // No finish(): the destructor must drain and join without losing
    // accepted frames or racing the sink.
  }
  EXPECT_EQ(emitted.load(), 50u);
}

}  // namespace
