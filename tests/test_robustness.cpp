// Fault-injection robustness: a deployed tap sees imperfect captures —
// glitches, dropouts, clipping, DC shifts, partial messages.  The
// extractor must never crash, and must either fail cleanly or produce an
// edge set the detector can still reason about.
#include <memory>

#include <gtest/gtest.h>

#include "analog/synth.hpp"
#include "canbus/frame.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/adc.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"
#include "stats/rng.hpp"

namespace {

class Robustness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vehicle_ = std::make_unique<sim::Vehicle>(sim::vehicle_a(), 31415);
    extraction_ = std::make_unique<vprofile::ExtractionConfig>(
        sim::default_extraction(vehicle_->config()));
    captures_ = std::make_unique<std::vector<sim::Capture>>(
        vehicle_->capture(600, analog::Environment::reference()));

    std::vector<vprofile::EdgeSet> training;
    for (const auto& cap :
         vehicle_->capture(1500, analog::Environment::reference())) {
      if (auto es = vprofile::extract_edge_set(cap.codes, *extraction_)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = vprofile::DistanceMetric::kMahalanobis;
    cfg.extraction = *extraction_;
    auto outcome = vprofile::train_with_database(
        training, vehicle_->database(), cfg);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    model_ = std::make_unique<vprofile::Model>(std::move(*outcome.model));
  }

  static void TearDownTestSuite() {
    vehicle_.reset();
    extraction_.reset();
    captures_.reset();
    model_.reset();
  }

  static std::unique_ptr<sim::Vehicle> vehicle_;
  static std::unique_ptr<vprofile::ExtractionConfig> extraction_;
  static std::unique_ptr<std::vector<sim::Capture>> captures_;
  static std::unique_ptr<vprofile::Model> model_;
};

std::unique_ptr<sim::Vehicle> Robustness::vehicle_;
std::unique_ptr<vprofile::ExtractionConfig> Robustness::extraction_;
std::unique_ptr<std::vector<sim::Capture>> Robustness::captures_;
std::unique_ptr<vprofile::Model> Robustness::model_;

TEST_F(Robustness, SingleSampleGlitchesNeverCrash) {
  stats::Rng rng(1);
  const double max_code = vehicle_->config().adc.max_code();
  std::size_t decoded = 0;
  for (const auto& cap : *captures_) {
    dsp::Trace corrupted = cap.codes;
    // Three random single-sample glitches to full scale or zero.
    for (int g = 0; g < 3; ++g) {
      corrupted[rng.below(corrupted.size())] =
          rng.bernoulli(0.5) ? max_code : 0.0;
    }
    const auto es = vprofile::extract_edge_set(corrupted, *extraction_);
    if (es && es->sa == cap.frame.id.source_address) ++decoded;
  }
  // Glitches may corrupt individual messages (SOF shifts, fake edges),
  // but the majority must still decode correctly.
  EXPECT_GT(decoded, captures_->size() / 2);
}

TEST_F(Robustness, TruncationAtEveryLengthFailsCleanly) {
  const auto& cap = captures_->front();
  for (std::size_t len = 0; len < cap.codes.size();
       len += cap.codes.size() / 64 + 1) {
    dsp::Trace truncated(cap.codes.begin(),
                         cap.codes.begin() + static_cast<std::ptrdiff_t>(len));
    vprofile::ExtractError err = vprofile::ExtractError::kNone;
    const auto es =
        vprofile::extract_edge_set(truncated, *extraction_, &err);
    if (!es) {
      EXPECT_NE(err, vprofile::ExtractError::kNone) << "len " << len;
    }
  }
}

TEST_F(Robustness, AllZeroAllHighAndAlternatingTraces) {
  const double max_code = vehicle_->config().adc.max_code();
  for (const dsp::Trace& degenerate :
       {dsp::Trace(5000, 0.0), dsp::Trace(5000, max_code), [&] {
          dsp::Trace t(5000);
          for (std::size_t i = 0; i < t.size(); ++i) {
            t[i] = (i % 2 == 0) ? max_code : 0.0;
          }
          return t;
        }()}) {
    EXPECT_NO_THROW({
      const auto es = vprofile::extract_edge_set(degenerate, *extraction_);
      (void)es;
    });
  }
}

TEST_F(Robustness, DcShiftedTraceIsFlaggedNotMisattributed) {
  // A tap with a ground-offset fault shifts every code; the message must
  // not silently pass as legitimate.
  const auto& cap = captures_->front();
  dsp::Trace shifted = cap.codes;
  for (double& c : shifted) c += 3000.0;
  const auto es = vprofile::extract_edge_set(shifted, *extraction_);
  if (es) {
    const auto d =
        vprofile::detect(*model_, *es, vprofile::DetectionConfig{4.0});
    EXPECT_TRUE(d.is_anomaly());
  }
}

TEST_F(Robustness, DropoutInsideEdgeSetRegionIsAnomalousOrRejected) {
  const auto& cap = captures_->front();
  const auto clean = vprofile::extract_edge_set(cap.codes, *extraction_);
  ASSERT_TRUE(clean.has_value());

  // Zero out a 30-sample window right after the arbitration field, where
  // the edge set lives.
  dsp::Trace corrupted = cap.codes;
  const std::size_t start = 34 * extraction_->bit_width_samples;
  for (std::size_t i = start;
       i < std::min(corrupted.size(), start + 30); ++i) {
    corrupted[i] = 0.0;
  }
  const auto es = vprofile::extract_edge_set(corrupted, *extraction_);
  if (es) {
    const auto d =
        vprofile::detect(*model_, *es, vprofile::DetectionConfig{4.0});
    // Either the SA got corrupted (unknown/mismatch) or the waveform is
    // off; a silent pass would be a real problem.
    EXPECT_TRUE(d.is_anomaly() || es->sa != clean->sa);
  }
}

TEST_F(Robustness, SaturatedAmplitudeStillDecodesSa) {
  // Clipping at 80% full scale flattens the tops but preserves edges and
  // threshold crossings; the SA must survive.
  const double clip = 0.8 * vehicle_->config().adc.max_code();
  std::size_t decoded = 0;
  std::size_t total = 0;
  for (const auto& cap : *captures_) {
    dsp::Trace clipped = cap.codes;
    for (double& c : clipped) c = std::min(c, clip);
    const auto es = vprofile::extract_edge_set(clipped, *extraction_);
    ++total;
    if (es && es->sa == cap.frame.id.source_address) ++decoded;
  }
  EXPECT_EQ(decoded, total);
}

TEST_F(Robustness, ExtremeNoiseDegradesGracefully) {
  // 10x the configured noise: extraction may fail or decode wrong, but
  // never crashes, and failures are reported with a reason.
  stats::Rng rng(7);
  analog::EcuSignature noisy = vehicle_->config().ecus[0].signature;
  noisy.noise_sigma *= 10.0;
  canbus::DataFrame frame;
  frame.id = vehicle_->config().ecus[0].messages[0].id;
  frame.payload = {1, 2, 3};
  for (int trial = 0; trial < 50; ++trial) {
    const auto cap = vehicle_->synthesize_foreign(
        frame, noisy, analog::Environment::reference());
    vprofile::ExtractError err;
    EXPECT_NO_THROW({
      const auto es =
          vprofile::extract_edge_set(cap.codes, *extraction_, &err);
      (void)es;
    });
  }
}

TEST_F(Robustness, BackToBackMessagesExtractTheFirst) {
  // Two frames concatenated with minimal interframe space: the extractor
  // anchors on the first SOF and must decode the first message.
  const auto& a = (*captures_)[0];
  const auto& b = (*captures_)[1];
  dsp::Trace combined = a.codes;
  combined.insert(combined.end(), b.codes.begin(), b.codes.end());
  const auto es = vprofile::extract_edge_set(combined, *extraction_);
  ASSERT_TRUE(es.has_value());
  EXPECT_EQ(es->sa, a.frame.id.source_address);
}

TEST_F(Robustness, DetectorHandlesDegenerateEdgeSets) {
  // Hand-built pathological edge sets must yield verdicts, not crashes.
  vprofile::EdgeSet zero;
  zero.sa = 0x00;
  zero.samples.assign(model_->dimension(), 0.0);
  vprofile::EdgeSet huge;
  huge.sa = 0x00;
  huge.samples.assign(model_->dimension(), 1e12);
  for (const auto& es : {zero, huge}) {
    const auto d =
        vprofile::detect(*model_, es, vprofile::DetectionConfig{4.0});
    EXPECT_TRUE(d.is_anomaly());
  }
}

}  // namespace
