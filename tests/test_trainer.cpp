#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "linalg/mahalanobis.hpp"
#include "stats/rng.hpp"

namespace {

using vprofile::DistanceMetric;
using vprofile::EdgeSet;
using vprofile::ExtractionConfig;
using vprofile::Model;
using vprofile::SaDatabase;
using vprofile::TrainingConfig;

/// Small extraction config so synthetic edge sets stay cheap: dimension
/// 2*(1+2+1) = 8.
ExtractionConfig tiny_extraction() {
  ExtractionConfig cfg;
  cfg.prefix_len = 1;
  cfg.suffix_len = 2;
  return cfg;
}

/// Gaussian cluster generator around a per-SA level.
std::vector<EdgeSet> make_edge_sets(
    const std::vector<std::pair<std::uint8_t, double>>& sa_levels,
    std::size_t per_sa, double sigma, stats::Rng& rng) {
  const std::size_t dim = tiny_extraction().dimension();
  std::vector<EdgeSet> out;
  for (const auto& [sa, level] : sa_levels) {
    for (std::size_t i = 0; i < per_sa; ++i) {
      EdgeSet es;
      es.sa = sa;
      es.samples.resize(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        es.samples[d] = level + rng.gaussian(0.0, sigma);
      }
      out.push_back(std::move(es));
    }
  }
  return out;
}

TrainingConfig mahalanobis_config() {
  TrainingConfig cfg;
  cfg.metric = DistanceMetric::kMahalanobis;
  cfg.extraction = tiny_extraction();
  return cfg;
}

TEST(TrainWithDatabase, BuildsOneClusterPerEcu) {
  stats::Rng rng(1);
  const auto sets = make_edge_sets({{1, 100.0}, {2, 100.1}, {7, 200.0}},
                                   100, 1.0, rng);
  const SaDatabase db = {{1, "ECU A"}, {2, "ECU A"}, {7, "ECU B"}};
  const auto outcome =
      vprofile::train_with_database(sets, db, mahalanobis_config());
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  const Model& m = *outcome.model;
  EXPECT_EQ(m.clusters().size(), 2u);
  // SAs 1 and 2 land in the same cluster.
  EXPECT_EQ(m.cluster_of(1), m.cluster_of(2));
  EXPECT_NE(m.cluster_of(1), m.cluster_of(7));
  EXPECT_FALSE(m.cluster_of(99).has_value());
}

TEST(TrainWithDatabase, ClusterStatisticsAreSane) {
  stats::Rng rng(2);
  const auto sets = make_edge_sets({{1, 100.0}, {7, 200.0}}, 200, 2.0, rng);
  const SaDatabase db = {{1, "A"}, {7, "B"}};
  const auto outcome =
      vprofile::train_with_database(sets, db, mahalanobis_config());
  ASSERT_TRUE(outcome.ok());
  for (const auto& cl : outcome.model->clusters()) {
    EXPECT_EQ(cl.edge_set_count, 200u);
    EXPECT_GT(cl.max_distance, 0.0);
    // Mean near the generating level.
    const double level = (cl.name == "A") ? 100.0 : 200.0;
    for (double v : cl.mean) EXPECT_NEAR(v, level, 1.0);
    // Inverse covariance actually inverts the covariance.
    const auto prod = cl.covariance * cl.inv_covariance;
    EXPECT_LT(prod.max_abs_diff(linalg::Matrix::identity(prod.rows())),
              1e-6);
  }
}

TEST(TrainWithDatabase, MaxDistanceCoversAllTrainingPoints) {
  stats::Rng rng(3);
  const auto sets = make_edge_sets({{1, 100.0}, {7, 200.0}}, 150, 2.0, rng);
  const SaDatabase db = {{1, "A"}, {7, "B"}};
  const auto outcome =
      vprofile::train_with_database(sets, db, mahalanobis_config());
  ASSERT_TRUE(outcome.ok());
  const Model& m = *outcome.model;
  for (const EdgeSet& es : sets) {
    const auto cluster = m.cluster_of(es.sa);
    ASSERT_TRUE(cluster.has_value());
    EXPECT_LE(m.distance(*cluster, es.samples),
              m.clusters()[*cluster].max_distance + 1e-9);
  }
}

TEST(TrainWithDatabase, EuclideanModelSkipsCovariance) {
  stats::Rng rng(4);
  const auto sets = make_edge_sets({{1, 100.0}, {7, 200.0}}, 50, 1.0, rng);
  const SaDatabase db = {{1, "A"}, {7, "B"}};
  TrainingConfig cfg = mahalanobis_config();
  cfg.metric = DistanceMetric::kEuclidean;
  const auto outcome = vprofile::train_with_database(sets, db, cfg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.model->clusters().front().covariance.empty());
  // Euclidean distance to own mean is bounded by max_distance.
  const auto& cl = outcome.model->clusters().front();
  EXPECT_GT(cl.max_distance, 0.0);
}

TEST(TrainWithDatabase, UnknownTrainingSaFails) {
  stats::Rng rng(5);
  const auto sets = make_edge_sets({{1, 100.0}, {9, 150.0}}, 50, 1.0, rng);
  const SaDatabase db = {{1, "A"}};
  const auto outcome =
      vprofile::train_with_database(sets, db, mahalanobis_config());
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("SA 9"), std::string::npos);
}

TEST(TrainWithDatabase, EmptyInputFails) {
  const auto outcome =
      vprofile::train_with_database({}, {{1, "A"}}, mahalanobis_config());
  EXPECT_FALSE(outcome.ok());
}

TEST(TrainWithDatabase, TooFewEdgeSetsPerClusterFails) {
  stats::Rng rng(6);
  const auto sets = make_edge_sets({{1, 100.0}}, 3, 1.0, rng);
  TrainingConfig cfg = mahalanobis_config();
  cfg.min_cluster_size = 8;
  const auto outcome = vprofile::train_with_database(sets, {{1, "A"}}, cfg);
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("only 3"), std::string::npos);
}

TEST(TrainWithDatabase, ConstantSamplesGiveSingularCovariance) {
  // The paper's low-resolution failure mode: quantization collapses the
  // variance and training reports a singular covariance.
  const std::size_t dim = tiny_extraction().dimension();
  std::vector<EdgeSet> sets;
  for (int i = 0; i < 50; ++i) {
    EdgeSet es;
    es.sa = 1;
    es.samples.assign(dim, 512.0);  // identical every time
    sets.push_back(es);
  }
  const auto outcome =
      vprofile::train_with_database(sets, {{1, "A"}}, mahalanobis_config());
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error.find("singular"), std::string::npos);
}

TEST(TrainWithDatabase, RidgeRecoversSingularCovariance) {
  const std::size_t dim = tiny_extraction().dimension();
  std::vector<EdgeSet> sets;
  stats::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EdgeSet es;
    es.sa = 1;
    es.samples.assign(dim, 512.0);
    es.samples[0] = 512.0 + rng.gaussian(0.0, 1.0);  // rank-1 variation
    sets.push_back(es);
  }
  TrainingConfig cfg = mahalanobis_config();
  cfg.ridge = 1e-3;
  const auto outcome = vprofile::train_with_database(sets, {{1, "A"}}, cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_GT(outcome.ridge_used, 0.0);
}

TEST(TrainWithDatabase, DimensionMismatchFails) {
  stats::Rng rng(8);
  auto sets = make_edge_sets({{1, 100.0}}, 20, 1.0, rng);
  sets.front().samples.resize(3);
  const auto outcome =
      vprofile::train_with_database(sets, {{1, "A"}}, mahalanobis_config());
  EXPECT_FALSE(outcome.ok());
}

TEST(ClusterByDistance, MergesCloseSaGroups) {
  // Two SAs 0.5 apart, one 50 away: expect 2 clusters via the automatic
  // largest-gap threshold.
  const std::vector<std::uint8_t> sas = {1, 2, 9};
  const std::vector<linalg::Vector> means = {
      {0.0, 0.0}, {0.5, 0.0}, {50.0, 0.0}};
  const auto assignment =
      vprofile::cluster_sa_groups_by_distance(sas, means, 0.0);
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_NE(assignment[0], assignment[2]);
}

TEST(ClusterByDistance, ExplicitThresholdRespected) {
  const std::vector<std::uint8_t> sas = {1, 2};
  const std::vector<linalg::Vector> means = {{0.0}, {10.0}};
  // Threshold above the distance merges; below keeps separate.
  EXPECT_EQ(vprofile::cluster_sa_groups_by_distance(sas, means, 20.0)[1],
            vprofile::cluster_sa_groups_by_distance(sas, means, 20.0)[0]);
  EXPECT_NE(vprofile::cluster_sa_groups_by_distance(sas, means, 5.0)[1],
            vprofile::cluster_sa_groups_by_distance(sas, means, 5.0)[0]);
}

TEST(ClusterByDistance, UniformSpacingKeepsAllSeparate) {
  // No obvious gap => every SA its own ECU.
  const std::vector<std::uint8_t> sas = {1, 2, 3};
  const std::vector<linalg::Vector> means = {{0.0}, {10.0}, {20.0}};
  const auto assignment =
      vprofile::cluster_sa_groups_by_distance(sas, means, 0.0);
  EXPECT_NE(assignment[0], assignment[1]);
  EXPECT_NE(assignment[1], assignment[2]);
}

TEST(ClusterByDistance, ValidatesSizes) {
  EXPECT_TRUE(vprofile::cluster_sa_groups_by_distance({}, {}, 0.0).empty());
  EXPECT_THROW(
      vprofile::cluster_sa_groups_by_distance({1}, {{1.0}, {2.0}}, 0.0),
      std::invalid_argument);
}

TEST(TrainByDistance, MatchesDatabaseTrainingOnSeparableData) {
  stats::Rng rng(9);
  const auto sets = make_edge_sets(
      {{1, 100.0}, {2, 100.2}, {7, 200.0}, {8, 200.3}}, 100, 1.0, rng);
  const auto by_dist =
      vprofile::train_by_distance(sets, mahalanobis_config());
  ASSERT_TRUE(by_dist.ok()) << by_dist.error;
  EXPECT_EQ(by_dist.model->clusters().size(), 2u);
  // Same grouping as the database path.
  EXPECT_EQ(by_dist.model->cluster_of(1), by_dist.model->cluster_of(2));
  EXPECT_EQ(by_dist.model->cluster_of(7), by_dist.model->cluster_of(8));
  EXPECT_NE(by_dist.model->cluster_of(1), by_dist.model->cluster_of(7));
}

TEST(TrainByDistance, EmptyInputFails) {
  EXPECT_FALSE(vprofile::train_by_distance({}, mahalanobis_config()).ok());
}

TEST(ModelTest, RejectsInconsistentConstruction) {
  EXPECT_THROW(Model(DistanceMetric::kEuclidean, tiny_extraction(), {}),
               std::invalid_argument);

  vprofile::ClusterModel a;
  a.name = "A";
  a.sas = {1};
  a.mean = {1.0, 2.0};
  vprofile::ClusterModel b;
  b.name = "B";
  b.sas = {1};  // duplicate SA
  b.mean = {1.0, 2.0};
  EXPECT_THROW(
      Model(DistanceMetric::kEuclidean, tiny_extraction(), {a, b}),
      std::invalid_argument);

  vprofile::ClusterModel c = b;
  c.sas = {2};
  c.mean = {1.0};  // dimension mismatch
  EXPECT_THROW(
      Model(DistanceMetric::kEuclidean, tiny_extraction(), {a, c}),
      std::invalid_argument);

  // Mahalanobis cluster without inverse covariance.
  EXPECT_THROW(
      Model(DistanceMetric::kMahalanobis, tiny_extraction(), {a}),
      std::invalid_argument);
}

TEST(ModelTest, NearestClusterPicksMinimumDistance) {
  stats::Rng rng(10);
  const auto sets = make_edge_sets({{1, 100.0}, {7, 200.0}}, 100, 1.0, rng);
  const SaDatabase db = {{1, "A"}, {7, "B"}};
  const auto outcome =
      vprofile::train_with_database(sets, db, mahalanobis_config());
  ASSERT_TRUE(outcome.ok());
  const Model& m = *outcome.model;

  linalg::Vector near_a(m.dimension(), 100.5);
  const auto [cluster, dist] = m.nearest_cluster(near_a);
  EXPECT_EQ(cluster, *m.cluster_of(1));
  EXPECT_LT(dist, m.distance(*m.cluster_of(7), near_a));
}

TEST(ModelTest, MetricNamesRoundTrip) {
  EXPECT_STREQ(to_string(DistanceMetric::kEuclidean), "euclidean");
  EXPECT_STREQ(to_string(DistanceMetric::kMahalanobis), "mahalanobis");
}

}  // namespace
