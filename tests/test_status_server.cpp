// Tests for the minimal HTTP/1.0 introspection server: exact and prefix
// route dispatch, 404s, ephemeral-port binding, the request counter, and
// idempotent stop.  The client side is a raw loopback socket speaking
// exactly what the server speaks (GET, Connection: close) — no HTTP
// library, same as a curl or a Prometheus scrape would look on the wire.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/status_server.hpp"

namespace {

using obs::MetricsRegistry;
using obs::StatusResponse;
using obs::StatusServer;

/// One blocking HTTP/1.0 GET against 127.0.0.1:port; returns the whole
/// response (status line, headers, body) or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// A server with /ping and /echo/<rest> routes on an ephemeral port.
/// Skips the enclosing test when loopback binding is unavailable.
struct ServerFixture {
  StatusServer server;
  bool up = false;

  explicit ServerFixture(MetricsRegistry* registry = nullptr) {
    server.route("/ping", [](const std::string&) {
      StatusResponse resp;
      resp.body = "pong\n";
      return resp;
    });
    server.route_prefix("/echo/", [](const std::string& path) {
      StatusResponse resp;
      resp.body = path.substr(6);
      return resp;
    });
    if (registry != nullptr) server.bind_metrics(registry);
    std::string error;
    up = server.start(0, &error);
  }
};

TEST(StatusServerTest, EphemeralPortExactRouteAndBody) {
  ServerFixture fx;
  if (!fx.up) GTEST_SKIP() << "cannot bind loopback";
  ASSERT_GT(fx.server.port(), 0);
  EXPECT_TRUE(fx.server.running());

  const std::string resp = http_get(fx.server.port(), "/ping");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\r\n\r\npong\n"), std::string::npos) << resp;
}

TEST(StatusServerTest, UnknownPathIs404) {
  ServerFixture fx;
  if (!fx.up) GTEST_SKIP() << "cannot bind loopback";
  const std::string resp = http_get(fx.server.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.0 404"), std::string::npos) << resp;
}

TEST(StatusServerTest, PrefixRouteSeesTheFullPath) {
  ServerFixture fx;
  if (!fx.up) GTEST_SKIP() << "cannot bind loopback";
  const std::string resp = http_get(fx.server.port(), "/echo/42?x=1");
  // The query string is stripped before dispatch; the prefix handler
  // receives the path and returns everything past the prefix.
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\r\n\r\n42"), std::string::npos) << resp;
}

TEST(StatusServerTest, RequestCounterCountsEveryServedRequest) {
  MetricsRegistry registry;
  ServerFixture fx(&registry);
  if (!fx.up) GTEST_SKIP() << "cannot bind loopback";
  ASSERT_FALSE(http_get(fx.server.port(), "/ping").empty());
  ASSERT_FALSE(http_get(fx.server.port(), "/nope").empty());  // 404s count
  EXPECT_EQ(fx.server.requests_served(), 2u);
  std::uint64_t exported = 0;
  for (const obs::MetricSample& s : registry.samples()) {
    if (s.name == "status_requests_total") exported = s.counter_value;
  }
  EXPECT_EQ(exported, 2u);
}

TEST(StatusServerTest, IoTimeoutAccessorClampsToMinimum) {
  StatusServer server;
  EXPECT_EQ(server.io_timeout_ms(), 2000u);
  server.set_io_timeout_ms(150);
  EXPECT_EQ(server.io_timeout_ms(), 150u);
  server.set_io_timeout_ms(10);  // below the floor: clamped, not honored
  EXPECT_EQ(server.io_timeout_ms(), 100u);
}

// Regression: a client that requests a response bigger than the socket
// buffer and slams the connection shut mid-write used to be able to kill
// the whole process via SIGPIPE.  The hardened send path (MSG_NOSIGNAL +
// EPIPE handling) must survive it and keep serving.
TEST(StatusServerTest, EarlyCloseMidResponseDoesNotKillTheServer) {
  StatusServer server;
  server.route("/big", [](const std::string&) {
    StatusResponse resp;
    resp.body.assign(4u << 20, 'x');  // far larger than any socket buffer
    return resp;
  });
  server.route("/ping", [](const std::string&) {
    StatusResponse resp;
    resp.body = "pong\n";
    return resp;
  });
  server.set_io_timeout_ms(500);  // keep the wedged send short
  std::string error;
  if (!server.start(0, &error)) GTEST_SKIP() << error;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /big HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  // Abortive close (RST) without reading a byte of the 4 MiB body: the
  // server's in-flight send hits a dead peer.
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);

  // The server must still be alive and serving fresh connections.
  std::string resp;
  for (int attempt = 0; attempt < 5 && resp.empty(); ++attempt) {
    resp = http_get(server.port(), "/ping");
  }
  EXPECT_NE(resp.find("\r\n\r\npong\n"), std::string::npos) << resp;
}

// Regression: a client that connects and never sends a request used to
// hold the (sequential) accept loop hostage forever; the receive timeout
// bounds the damage to io_timeout_ms.
TEST(StatusServerTest, SilentClientCannotWedgeTheServerForever) {
  StatusServer server;
  server.route("/ping", [](const std::string&) {
    StatusResponse resp;
    resp.body = "pong\n";
    return resp;
  });
  server.set_io_timeout_ms(150);
  std::string error;
  if (!server.start(0, &error)) GTEST_SKIP() << error;

  const int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Send nothing.  The next real request queues behind the silent one and
  // must still be answered once the timeout evicts it.
  const std::string resp = http_get(server.port(), "/ping");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  ::close(idle);
}

TEST(StatusServerTest, StopIsIdempotentAndRefusesFurtherConnections) {
  ServerFixture fx;
  if (!fx.up) GTEST_SKIP() << "cannot bind loopback";
  const std::uint16_t port = fx.server.port();
  fx.server.stop();
  fx.server.stop();
  EXPECT_FALSE(fx.server.running());
  EXPECT_TRUE(http_get(port, "/ping").empty());
}

}  // namespace
