// Tests for the Viden-style attacker identifier and CAN remote frames.
#include <random>

#include <gtest/gtest.h>

#include "baseline/viden_ids.hpp"
#include "canbus/remote_frame.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using baseline::VidenIds;
using canbus::RemoteFrame;

// ------------------------- Remote frames ------------------------------

TEST(RemoteFrameTest, LayoutHasRecessiveRtrAndNoData) {
  RemoteFrame f;
  f.id = canbus::J1939Id{3, 1000, 7};
  f.dlc = 8;
  const auto bits = canbus::build_unstuffed_bits(f);
  namespace fb = canbus::frame_bits;
  EXPECT_FALSE(bits[fb::kSof.value()]);
  EXPECT_TRUE(bits[fb::kRtr.value()]);  // remote request
  // Fixed length: 39 header + 15 CRC + 10 tail, no data bits.
  EXPECT_EQ(bits.size(), 39u + 15u + 10u);
}

TEST(RemoteFrameTest, RoundTripsRandomFrames) {
  std::mt19937 gen(5);
  for (int trial = 0; trial < 200; ++trial) {
    RemoteFrame f;
    f.id = canbus::J1939Id{static_cast<std::uint8_t>(gen() % 8),
                           static_cast<std::uint32_t>(gen() % 0x40000),
                           static_cast<std::uint8_t>(gen() % 256)};
    f.dlc = static_cast<std::uint8_t>(gen() % 9);
    const auto parsed =
        canbus::parse_remote_wire_bits(canbus::build_wire_bits(f));
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(*parsed, f);
  }
}

TEST(RemoteFrameTest, RejectsDataFrames) {
  canbus::DataFrame data;
  data.id = canbus::J1939Id{3, 1000, 7};
  data.payload = {};
  // A data frame with empty payload has the same length but dominant RTR.
  EXPECT_FALSE(
      canbus::parse_remote_wire_bits(canbus::build_wire_bits(data))
          .has_value());
}

TEST(RemoteFrameTest, RejectsCorruptionAndOversizedDlc) {
  RemoteFrame f;
  f.id = canbus::J1939Id{3, 1000, 7};
  f.dlc = 9;
  EXPECT_THROW(canbus::build_wire_bits(f), std::invalid_argument);
  f.dlc = 4;
  auto wire = canbus::build_wire_bits(f);
  wire[25] = !wire[25];
  EXPECT_FALSE(canbus::parse_remote_wire_bits(wire).has_value());
  wire = canbus::build_wire_bits(f);
  wire.resize(20);
  EXPECT_FALSE(canbus::parse_remote_wire_bits(wire).has_value());
}

// ------------------------- Viden --------------------------------------

class VidenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    vehicle_ = new sim::Vehicle(sim::vehicle_a(), 8800);
    examples_ = new std::vector<baseline::TrainExample>();
    for (const auto& cap :
         vehicle_->capture(1200, analog::Environment::reference())) {
      examples_->push_back({cap.codes, cap.frame.id.source_address});
    }
  }
  static void TearDownTestSuite() {
    delete vehicle_;
    delete examples_;
    vehicle_ = nullptr;
  }

  static VidenIds::Options options() {
    VidenIds::Options o;
    o.base.bit_threshold = sim::default_bit_threshold(vehicle_->config());
    return o;
  }

  /// Attack messages: frames from `attacker` carrying a victim SA.
  static std::vector<dsp::Trace> attack_messages(std::size_t attacker,
                                                 std::uint8_t victim_sa,
                                                 std::size_t count) {
    std::vector<dsp::Trace> out;
    canbus::DataFrame frame;
    frame.id = vehicle_->config().ecus[attacker].messages[0].id;
    frame.id.source_address = victim_sa;
    frame.payload = {1, 2, 3, 4};
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(vehicle_
                        ->synthesize_message(frame, attacker,
                                             analog::Environment::reference())
                        .codes);
    }
    return out;
  }

  static sim::Vehicle* vehicle_;
  static std::vector<baseline::TrainExample>* examples_;
};

sim::Vehicle* VidenTest::vehicle_ = nullptr;
std::vector<baseline::TrainExample>* VidenTest::examples_ = nullptr;

TEST_F(VidenTest, TrainsProfilesForAllEcus) {
  VidenIds ids(options());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, vehicle_->database(), &error)) << error;
  EXPECT_EQ(ids.class_names().size(), 5u);
  // Profile medians reflect the configured dominant levels' ordering:
  // ECU 2 (2.28 V) above ECU 3 (1.78 V).
  const auto p2 = ids.profile_of(2);
  const auto p3 = ids.profile_of(3);
  ASSERT_TRUE(p2 && p3);
  EXPECT_GT(p2->first, p3->first);
}

TEST_F(VidenTest, IdentifiesAttackOrigin) {
  // The Viden use case: an IDS flagged messages claiming ECU 3's SA;
  // Viden's profile match must name the true origin.
  VidenIds ids(options());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, vehicle_->database(), &error)) << error;
  const std::uint8_t victim_sa =
      vehicle_->config().ecus[3].messages[0].id.source_address;
  for (std::size_t attacker : {std::size_t{0}, std::size_t{2}}) {
    const auto id = ids.identify(attack_messages(attacker, victim_sa, 30));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(ids.class_names()[id->ecu],
              vehicle_->config().ecus[attacker].name)
        << "attacker " << attacker;
  }
}

TEST_F(VidenTest, IdentifiesLegitimateSenderAsItself) {
  VidenIds ids(options());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, vehicle_->database(), &error)) << error;
  const std::uint8_t own_sa =
      vehicle_->config().ecus[1].messages[0].id.source_address;
  const auto id = ids.identify(attack_messages(1, own_sa, 30));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(ids.class_names()[id->ecu], vehicle_->config().ecus[1].name);
}

TEST_F(VidenTest, RejectsInsufficientTraining) {
  VidenIds ids(options());
  std::string error;
  std::vector<baseline::TrainExample> few(examples_->begin(),
                                          examples_->begin() + 10);
  EXPECT_FALSE(ids.train(few, vehicle_->database(), &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(VidenTest, IdentifyNeedsUsableMessages) {
  VidenIds ids(options());
  std::string error;
  ASSERT_TRUE(ids.train(*examples_, vehicle_->database(), &error)) << error;
  EXPECT_FALSE(ids.identify({}).has_value());
  EXPECT_FALSE(ids.identify({dsp::Trace(100, 0.0)}).has_value());
}

}  // namespace
