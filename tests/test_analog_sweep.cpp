// Parameterized sweeps over the analog substrate: invariants that must
// hold for every signature/environment combination the experiments visit.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "analog/synth.hpp"
#include "canbus/frame.hpp"
#include "core/extractor.hpp"
#include "dsp/adc.hpp"
#include "sim/presets.hpp"
#include "stats/rng.hpp"
#include "stats/welford.hpp"

namespace {

canbus::BitVector test_wire() {
  canbus::DataFrame f;
  f.id = canbus::J1939Id{3, 0xF004, 0x55};
  f.payload = {0xA5, 0x5A};
  return canbus::build_wire_bits(f);
}

analog::SynthOptions quiet_options() {
  analog::SynthOptions o;
  o.bitrate = units::BitRateBps{250e3};
  o.sample_rate = units::SampleRateHz{20e6};
  o.max_bits = 40;
  o.sampling_phase_jitter = false;
  return o;
}

// ---------------------------------------------------------------------
// Temperature sweep: dominant level must fall monotonically with the
// (negative-coefficient) temperature for every coupling.
// ---------------------------------------------------------------------

class TemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureSweep, DominantLevelMonotoneInTemperature) {
  const double coupling = GetParam();
  analog::EcuSignature sig;
  sig.dominant = units::Volts{2.0};
  sig.drive = {2.0e6, 0.7};
  sig.release = {1.0e6, 0.85};
  sig.noise_sigma = units::Volts{0.0};
  sig.edge_jitter = units::Seconds{0.0};
  sig.dominant_temp_coeff_v_per_c = -0.001;
  sig.temperature_coupling = coupling;

  double prev_peak = 1e9;
  for (double temp : {-10.0, 0.0, 10.0, 25.0, 40.0}) {
    stats::Rng rng(1);
    const auto trace = analog::synthesize_frame_voltage(
        test_wire(), sig,
        analog::Environment{units::Celsius{temp}, units::Volts{12.6}},
        quiet_options(),
        rng);
    const double peak = *std::max_element(trace.begin(), trace.end());
    if (coupling > 0.0) {
      EXPECT_LT(peak, prev_peak) << "temp " << temp;
    } else {
      EXPECT_NEAR(peak, prev_peak == 1e9 ? peak : prev_peak, 1e-9);
    }
    prev_peak = peak;
  }
}

INSTANTIATE_TEST_SUITE_P(Couplings, TemperatureSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "coupling_" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

// ---------------------------------------------------------------------
// Battery sweep: level rises with supply voltage for every coefficient.
// ---------------------------------------------------------------------

class BatterySweep : public ::testing::TestWithParam<double> {};

TEST_P(BatterySweep, DominantLevelMonotoneInSupply) {
  const double coeff = GetParam();
  analog::EcuSignature sig;
  sig.dominant = units::Volts{2.0};
  sig.drive = {2.0e6, 0.7};
  sig.release = {1.0e6, 0.85};
  sig.noise_sigma = units::Volts{0.0};
  sig.edge_jitter = units::Seconds{0.0};
  sig.dominant_vbat_coeff = coeff;

  double prev_peak = -1e9;
  for (double vbat : {11.5, 12.0, 12.6, 13.2, 14.0}) {
    stats::Rng rng(1);
    const auto trace = analog::synthesize_frame_voltage(
        test_wire(), sig,
        analog::Environment{units::Celsius{20.0}, units::Volts{vbat}},
        quiet_options(),
        rng);
    const double peak = *std::max_element(trace.begin(), trace.end());
    EXPECT_GT(peak, prev_peak) << "vbat " << vbat;
    prev_peak = peak;
  }
}

INSTANTIATE_TEST_SUITE_P(Coefficients, BatterySweep,
                         ::testing::Values(0.005, 0.012, 0.02),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "coeff_" +
                                  std::to_string(
                                      static_cast<int>(info.param * 1000));
                         });

// ---------------------------------------------------------------------
// Every preset ECU on both vehicles must produce extractable, correctly
// attributed edge sets under every evaluation environment.
// ---------------------------------------------------------------------

struct VehicleEnvPoint {
  char vehicle;
  double temperature_c;
  double battery_v;
};

class VehicleEnvSweep : public ::testing::TestWithParam<VehicleEnvPoint> {};

TEST_P(VehicleEnvSweep, EveryEcuExtractsUnderEnvironment) {
  const auto [vehicle_name, temp, vbat] = GetParam();
  const sim::VehicleConfig config =
      (vehicle_name == 'a') ? sim::vehicle_a() : sim::vehicle_b();
  sim::Vehicle vehicle(config, 4242);
  const auto extraction = sim::default_extraction(config);
  const analog::Environment env{units::Celsius{temp}, units::Volts{vbat}};

  for (std::size_t e = 0; e < config.ecus.size(); ++e) {
    canbus::DataFrame frame;
    frame.id = config.ecus[e].messages[0].id;
    frame.payload = {1, 2, 3};
    const auto cap = vehicle.synthesize_message(frame, e, env);
    const auto es = vprofile::extract_edge_set(cap.codes, extraction);
    ASSERT_TRUE(es.has_value()) << config.name << " ECU " << e;
    EXPECT_EQ(es->sa, frame.id.source_address) << config.name << " ECU " << e;
    EXPECT_EQ(es->samples.size(), extraction.dimension());
  }
}

INSTANTIATE_TEST_SUITE_P(
    VehiclesAndEnvironments, VehicleEnvSweep,
    ::testing::Values(VehicleEnvPoint{'a', -5.0, 13.6},
                      VehicleEnvPoint{'a', 25.0, 13.6},
                      VehicleEnvPoint{'a', 28.4, 12.54},
                      VehicleEnvPoint{'a', 40.0, 12.0},
                      VehicleEnvPoint{'b', -5.0, 13.6},
                      VehicleEnvPoint{'b', 25.0, 12.61},
                      VehicleEnvPoint{'b', 40.0, 14.0}),
    [](const ::testing::TestParamInfo<VehicleEnvPoint>& info) {
      const int t = static_cast<int>(info.param.temperature_c);
      return std::string(1, info.param.vehicle) + "_" +
             (t < 0 ? "m" + std::to_string(-t) : std::to_string(t)) + "C_" +
             std::to_string(static_cast<int>(info.param.battery_v * 10)) +
             "dV";
    });

// ---------------------------------------------------------------------
// Noise scaling: measured idle-trace spread tracks the configured sigma.
// ---------------------------------------------------------------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, IdleSpreadTracksConfiguredSigma) {
  const double sigma = GetParam();
  analog::EcuSignature sig;
  sig.dominant = units::Volts{2.0};
  sig.drive = {2.0e6, 0.7};
  sig.release = {1.0e6, 0.85};
  sig.noise_sigma = units::Volts{sigma};
  sig.edge_jitter = units::Seconds{0.0};

  stats::Rng rng(9);
  const auto trace = analog::synthesize_frame_voltage(
      canbus::BitVector(60, true), sig, analog::Environment::reference(),
      quiet_options(), rng);
  stats::Welford acc;
  for (double v : trace) acc.add(v);
  EXPECT_NEAR(acc.stddev(), sigma, sigma * 0.15 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseSweep,
                         ::testing::Values(0.0, 0.002, 0.008, 0.02),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "sigma_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10000));
                         });

}  // namespace
