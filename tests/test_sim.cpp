#include <set>

#include <gtest/gtest.h>

#include "sim/attack.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using sim::Capture;
using sim::Vehicle;
using sim::VehicleConfig;

TEST(Presets, VehicleAHasFiveEcus) {
  const VehicleConfig cfg = sim::vehicle_a();
  EXPECT_EQ(cfg.ecus.size(), 5u);
  EXPECT_DOUBLE_EQ(cfg.adc.sample_rate().value(), 20e6);
  EXPECT_EQ(cfg.adc.resolution_bits(), 16);
  EXPECT_DOUBLE_EQ(cfg.bitrate.value(), 250e3);
}

TEST(Presets, VehicleBHasTenEcusAtTenMsps) {
  const VehicleConfig cfg = sim::vehicle_b();
  EXPECT_EQ(cfg.ecus.size(), 10u);
  EXPECT_DOUBLE_EQ(cfg.adc.sample_rate().value(), 10e6);
  EXPECT_EQ(cfg.adc.resolution_bits(), 12);
}

TEST(Presets, VehicleASasAreUniquePerEcu) {
  const VehicleConfig cfg = sim::vehicle_a();
  std::set<std::uint8_t> seen;
  for (const auto& ecu : cfg.ecus) {
    for (std::uint8_t sa : ecu.source_addresses()) {
      EXPECT_TRUE(seen.insert(sa).second) << "duplicate SA " << int(sa);
    }
  }
}

TEST(Presets, VehicleBProfilesAreCloserThanVehicleA) {
  // The design premise: Vehicle B's signatures are less distinct.
  auto min_pairwise = [](const VehicleConfig& cfg) {
    double best = 1e300;
    for (std::size_t i = 0; i < cfg.ecus.size(); ++i) {
      for (std::size_t j = i + 1; j < cfg.ecus.size(); ++j) {
        best = std::min(best, cfg.ecus[i].signature.parameter_distance(
                                  cfg.ecus[j].signature));
      }
    }
    return best;
  };
  EXPECT_LT(min_pairwise(sim::vehicle_b()), min_pairwise(sim::vehicle_a()));
}

TEST(Presets, DefaultThresholdBetweenRecessiveAndDominant) {
  for (const VehicleConfig& cfg : {sim::vehicle_a(), sim::vehicle_b()}) {
    const double threshold = sim::default_bit_threshold(cfg);
    EXPECT_GT(threshold, cfg.adc.quantize(0.5));
    EXPECT_LT(threshold, cfg.adc.quantize(1.8));
  }
}

TEST(Presets, VehicleBSeedChangesSignaturesNotStructure) {
  const VehicleConfig a = sim::vehicle_b(1);
  const VehicleConfig b = sim::vehicle_b(2);
  ASSERT_EQ(a.ecus.size(), b.ecus.size());
  EXPECT_NE(a.ecus[0].signature.dominant.value(),
            b.ecus[0].signature.dominant.value());
  EXPECT_EQ(a.ecus[0].source_addresses(), b.ecus[0].source_addresses());
}

TEST(VehicleTest, DatabaseCoversAllSas) {
  Vehicle vehicle(sim::vehicle_a(), 1);
  const auto db = vehicle.database();
  for (const auto& ecu : vehicle.config().ecus) {
    for (std::uint8_t sa : ecu.source_addresses()) {
      ASSERT_TRUE(db.count(sa));
      EXPECT_EQ(db.at(sa), ecu.name);
    }
  }
}

TEST(VehicleTest, CaptureProducesRequestedCount) {
  Vehicle vehicle(sim::vehicle_a(), 2);
  const auto caps = vehicle.capture(50, analog::Environment::reference());
  EXPECT_EQ(caps.size(), 50u);
  for (const auto& cap : caps) {
    EXPECT_FALSE(cap.codes.empty());
    EXPECT_LT(cap.true_ecu, vehicle.config().ecus.size());
  }
}

TEST(VehicleTest, CapturesComeFromAllEcus) {
  Vehicle vehicle(sim::vehicle_a(), 3);
  std::set<std::size_t> senders;
  for (const auto& cap :
       vehicle.capture(400, analog::Environment::reference())) {
    senders.insert(cap.true_ecu);
  }
  EXPECT_EQ(senders.size(), vehicle.config().ecus.size());
}

TEST(VehicleTest, CodesStayWithinAdcRange) {
  Vehicle vehicle(sim::vehicle_b(), 4);
  const double max_code = vehicle.config().adc.max_code();
  for (const auto& cap :
       vehicle.capture(30, analog::Environment::reference())) {
    for (double c : cap.codes) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, max_code);
    }
  }
}

TEST(VehicleTest, DeterministicWithSameSeed) {
  Vehicle v1(sim::vehicle_a(), 77);
  Vehicle v2(sim::vehicle_a(), 77);
  const auto a = v1.capture(10, analog::Environment::reference());
  const auto b = v2.capture(10, analog::Environment::reference());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].codes, b[i].codes);
    EXPECT_EQ(a[i].true_ecu, b[i].true_ecu);
  }
}

TEST(VehicleTest, EnvironmentScheduleIsApplied) {
  // A big temperature step mid-capture must shift the dominant level of
  // the strongly coupled ECM (ECU 0).
  Vehicle vehicle(sim::vehicle_a(), 5);
  auto env_at = [](double t) {
    return analog::Environment{units::Celsius{t < 0.5 ? 20.0 : 120.0},
                               units::Volts{12.6}};
  };
  const auto caps = vehicle.capture_with_env(600, env_at);
  double early_max = 0.0;
  double late_max = 0.0;
  for (const auto& cap : caps) {
    if (cap.true_ecu != 0) continue;
    const double peak =
        *std::max_element(cap.codes.begin(), cap.codes.end());
    (cap.time_s < 0.5 ? early_max : late_max) =
        std::max(cap.time_s < 0.5 ? early_max : late_max, peak);
  }
  ASSERT_GT(early_max, 0.0);
  ASSERT_GT(late_max, 0.0);
  EXPECT_LT(late_max, early_max);  // negative temperature coefficient
}

TEST(VehicleTest, SynthesizeMessageValidatesIndex) {
  Vehicle vehicle(sim::vehicle_a(), 6);
  canbus::DataFrame f;
  f.id = canbus::J1939Id{3, 1, 2};
  EXPECT_THROW(vehicle.synthesize_message(f, 99,
                                          analog::Environment::reference()),
               std::out_of_range);
}

TEST(VehicleTest, ConstructorValidatesConfig) {
  VehicleConfig cfg = sim::vehicle_a();
  cfg.ecus.clear();
  EXPECT_THROW(Vehicle(cfg, 1), std::invalid_argument);

  VehicleConfig bad_node = sim::vehicle_a();
  bad_node.ecus[0].messages[0].node = 3;
  EXPECT_THROW(Vehicle(bad_node, 1), std::invalid_argument);

  VehicleConfig dup_sa = sim::vehicle_a();
  dup_sa.ecus[1].messages[0].id.source_address =
      dup_sa.ecus[0].messages[0].id.source_address;
  EXPECT_THROW(Vehicle(dup_sa, 1), std::invalid_argument);
}

TEST(AttackTest, NormalStreamIsAllNormal) {
  Vehicle vehicle(sim::vehicle_a(), 7);
  const auto stream =
      sim::make_normal_stream(vehicle, 50, analog::Environment::reference());
  EXPECT_EQ(stream.size(), 50u);
  for (const auto& lc : stream) EXPECT_FALSE(lc.is_attack);
}

TEST(AttackTest, HijackRateApproximatesProbability) {
  Vehicle vehicle(sim::vehicle_a(), 8);
  const auto stream = sim::make_hijack_stream(
      vehicle, 3000, 0.2, analog::Environment::reference());
  std::size_t attacks = 0;
  for (const auto& lc : stream) attacks += lc.is_attack;
  EXPECT_NEAR(static_cast<double>(attacks) /
                  static_cast<double>(stream.size()),
              0.2, 0.03);
}

TEST(AttackTest, HijackedSaBelongsToDifferentEcu) {
  Vehicle vehicle(sim::vehicle_a(), 9);
  const auto db = vehicle.database();
  const auto stream = sim::make_hijack_stream(
      vehicle, 600, 0.5, analog::Environment::reference());
  for (const auto& lc : stream) {
    if (!lc.is_attack) continue;
    const std::string& claimed =
        db.at(lc.capture.frame.id.source_address);
    const std::string& actual =
        vehicle.config().ecus[lc.capture.true_ecu].name;
    EXPECT_NE(claimed, actual);
  }
}

TEST(AttackTest, ForeignStreamReplacesImitatorTraffic) {
  Vehicle vehicle(sim::vehicle_a(), 10);
  const std::size_t imitator = 1;
  const std::size_t target = 4;
  const auto target_sas = vehicle.config().ecus[target].source_addresses();
  const auto stream = sim::make_foreign_stream(
      vehicle, imitator, target, 800, analog::Environment::reference());
  std::size_t attacks = 0;
  for (const auto& lc : stream) {
    if (lc.capture.true_ecu == imitator) {
      EXPECT_TRUE(lc.is_attack);
      EXPECT_NE(std::find(target_sas.begin(), target_sas.end(),
                          lc.capture.frame.id.source_address),
                target_sas.end());
      ++attacks;
    } else {
      EXPECT_FALSE(lc.is_attack);
    }
  }
  EXPECT_GT(attacks, 0u);
}

TEST(AttackTest, ValidatesArguments) {
  Vehicle vehicle(sim::vehicle_a(), 11);
  EXPECT_THROW(sim::make_foreign_stream(vehicle, 1, 1, 10,
                                        analog::Environment::reference()),
               std::invalid_argument);
  EXPECT_THROW(sim::make_foreign_stream(vehicle, 99, 0, 10,
                                        analog::Environment::reference()),
               std::invalid_argument);
}

TEST(MarginSelection, ScoreAtMarginFlipsExcessMessages) {
  std::vector<sim::ScoredMessage> msgs = {
      {false, false, -1.0},  // normal, inside threshold
      {false, false, 2.0},   // normal, slightly outside
      {true, true, 0.0},     // hard anomaly (mismatch)
      {true, false, 5.0},    // attack beyond threshold
  };
  const auto strict = sim::score_at_margin(msgs, 0.0);
  EXPECT_EQ(strict.false_positives(), 1u);
  EXPECT_EQ(strict.true_positives(), 2u);
  const auto mid = sim::score_at_margin(msgs, 3.0);
  EXPECT_EQ(mid.false_positives(), 0u);
  EXPECT_EQ(mid.true_positives(), 2u);  // excess-5 attack still caught
  const auto lax = sim::score_at_margin(msgs, 6.0);
  EXPECT_EQ(lax.true_positives(), 1u);  // only the hard anomaly remains
  EXPECT_EQ(lax.false_negatives(), 1u);
}

TEST(MarginSelection, PicksMarginMaximizingAccuracy) {
  // One normal message at excess 2: accuracy 1.0 requires margin > 2.
  std::vector<sim::ScoredMessage> msgs = {
      {false, false, 2.0},
      {false, false, -1.0},
  };
  const double margin =
      sim::select_margin(msgs, sim::MarginObjective::kAccuracy);
  EXPECT_GT(margin, 2.0);
  EXPECT_DOUBLE_EQ(sim::score_at_margin(msgs, margin).accuracy(), 1.0);
}

TEST(MarginSelection, PicksMarginMaximizingFScore) {
  // Attacks at excess 5, normals at excess 1: best margin sits between.
  std::vector<sim::ScoredMessage> msgs;
  for (int i = 0; i < 10; ++i) msgs.push_back({true, false, 5.0});
  for (int i = 0; i < 10; ++i) msgs.push_back({false, false, 1.0});
  const double margin =
      sim::select_margin(msgs, sim::MarginObjective::kFScore);
  EXPECT_GT(margin, 1.0);
  EXPECT_LT(margin, 5.0);
  EXPECT_DOUBLE_EQ(sim::score_at_margin(msgs, margin).f_score(), 1.0);
}

TEST(MarginSelection, NeverNegative) {
  // Paper: "we do not consider negative margins".
  std::vector<sim::ScoredMessage> msgs = {{true, false, -3.0},
                                          {false, false, -5.0}};
  EXPECT_GE(sim::select_margin(msgs, sim::MarginObjective::kFScore), 0.0);
}

TEST(FrontEndTest, DownsampleAndRequantizeApplied) {
  Vehicle vehicle(sim::vehicle_a(), 12);
  const auto caps = vehicle.capture(1, analog::Environment::reference());
  sim::FrontEnd fe;
  fe.downsample_factor = 4;
  fe.resolution_bits = 12;
  const auto out = sim::apply_front_end(caps[0], fe, 16);
  EXPECT_EQ(out.codes.size(), (caps[0].codes.size() + 3) / 4);
  const double step = 16.0;  // 2^(16-12)
  for (double c : out.codes) {
    EXPECT_DOUBLE_EQ(std::fmod(c, step), 0.0);
  }
}

TEST(FrontEndTest, ExtractionConfigScalesWithDownsampling) {
  const auto cfg = sim::vehicle_a();
  const auto native = sim::front_end_extraction(cfg, sim::FrontEnd{});
  sim::FrontEnd fe;
  fe.downsample_factor = 8;
  const auto reduced = sim::front_end_extraction(cfg, fe);
  EXPECT_EQ(native.bit_width_samples, 80u);
  EXPECT_EQ(reduced.bit_width_samples, 10u);
  EXPECT_LT(reduced.dimension(), native.dimension());
}

}  // namespace
