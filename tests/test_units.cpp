// Unit-safety tests: runtime arithmetic of the strong types in
// core/units.hpp plus a compile-time matrix (via the traits detectors)
// proving that every illegal cross-unit mix fails to compile while the
// sanctioned conversions keep compiling.
#include <type_traits>

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace {

using namespace units;
using namespace units::literals;

// ---------------------------------------------------------------------
// Runtime arithmetic.
// ---------------------------------------------------------------------

TEST(Units, SameUnitArithmetic) {
  const Volts a{2.0};
  const Volts b{0.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  Volts acc{1.0};
  acc += Volts{0.25};
  acc -= Volts{0.5};
  EXPECT_DOUBLE_EQ(acc.value(), 0.75);
  EXPECT_DOUBLE_EQ((-Seconds{3.0}).value(), -3.0);
}

TEST(Units, ScalarScaling) {
  EXPECT_DOUBLE_EQ((Volts{2.0} * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((0.5 * Volts{2.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ((Seconds{6.0} / 3.0).value(), 2.0);
  Volts v{2.0};
  v *= 2.0;
  v /= 8.0;
  EXPECT_DOUBLE_EQ(v.value(), 0.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double r = ratio(Seconds{1.0}, Seconds{4.0});
  static_assert(std::is_same_v<decltype(ratio(Volts{1.0}, Volts{2.0})),
                               double>);
  EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(Units, IndexUnitsAdvanceByRawCounts) {
  SampleIndex pos{100};
  pos = pos + std::size_t{40};
  EXPECT_EQ(pos.value(), 140u);
  pos = pos - std::size_t{40};
  ++pos;
  EXPECT_EQ(pos.value(), 101u);
  BitIndex bit{0};
  for (int i = 0; i < 3; ++i) ++bit;
  EXPECT_EQ(bit.value(), 3u);
}

TEST(Units, ComparisonAndEquality) {
  EXPECT_TRUE(SampleIndex{3} < SampleIndex{4});
  EXPECT_TRUE(BitIndex{7} == BitIndex{7});
  EXPECT_TRUE(Volts{1.0} <= Volts{1.0});
  EXPECT_TRUE(FrameCount{2} != FrameCount{3});
}

TEST(Units, DimensionCheckedConversions) {
  // 2 us at 20 MS/s lands on sample 40; the same instant at 250 kb/s is
  // still inside bit 0.
  const SampleRateHz rate{20.0e6};
  const BitRateBps bitrate{250.0e3};
  const Seconds t{2.0e-6};
  EXPECT_EQ((t * rate).value(), 40u);
  EXPECT_EQ((rate * t).value(), 40u);
  EXPECT_EQ((t * bitrate).value(), 0u);
  EXPECT_DOUBLE_EQ(samples_per_bit(rate, bitrate), 80.0);
  EXPECT_DOUBLE_EQ(period(rate).value(), 5.0e-8);
  EXPECT_DOUBLE_EQ(period(bitrate).value(), 4.0e-6);
  EXPECT_DOUBLE_EQ((SampleIndex{40} / rate).value(), 2.0e-6);
  EXPECT_DOUBLE_EQ((BitIndex{5} / bitrate).value(), 2.0e-5);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((2.5_V).value(), 2.5);
  EXPECT_DOUBLE_EQ((1.5_sec).value(), 1.5);
  EXPECT_DOUBLE_EQ((21.5_degC).value(), 21.5);
}

// ---------------------------------------------------------------------
// Compile-time matrix.  Each static_assert is a test: the build fails if
// an illegal mix starts compiling (dimension check lost) or a legal one
// stops (interface broken).
// ---------------------------------------------------------------------

// Zero overhead: strong types must be layout-identical to their reps.
static_assert(sizeof(Volts) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(SampleRateHz) == sizeof(double));
static_assert(sizeof(BitRateBps) == sizeof(double));
static_assert(sizeof(SampleIndex) == sizeof(std::size_t));
static_assert(sizeof(BitIndex) == sizeof(std::size_t));
static_assert(sizeof(FrameCount) == sizeof(std::uint64_t));
static_assert(sizeof(Seed64) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Volts>);
static_assert(std::is_trivially_copyable_v<BitIndex>);
static_assert(std::is_trivially_copyable_v<FrameCount>);

// No implicit bridges in or out of the unit system.
static_assert(!std::is_convertible_v<double, Volts>);
static_assert(!std::is_convertible_v<Volts, double>);
static_assert(!std::is_convertible_v<std::size_t, SampleIndex>);
static_assert(!std::is_convertible_v<SampleIndex, std::size_t>);
static_assert(!std::is_convertible_v<SampleIndex, BitIndex>);
static_assert(!std::is_convertible_v<Seed64, FrameCount>);
static_assert(std::is_constructible_v<Volts, double>);  // explicit entry
static_assert(!std::is_constructible_v<Volts, Seconds>);

// Legal same-unit arithmetic.
static_assert(traits::is_addable_v<Volts, Volts>);
static_assert(traits::is_addable_v<Seconds, Seconds>);
static_assert(traits::is_subtractable_v<Celsius, Celsius>);
static_assert(traits::is_addable_v<FrameCount, FrameCount>);
static_assert(traits::is_comparable_v<Volts, Volts>);
static_assert(traits::is_comparable_v<SampleIndex, SampleIndex>);

// Legal scalar scaling.
static_assert(traits::is_multipliable_v<Volts, double>);
static_assert(traits::is_multipliable_v<double, Volts>);
static_assert(traits::is_dividable_v<Seconds, double>);
static_assert(traits::is_addable_v<SampleIndex, std::size_t>);

// Legal dimension-checked conversions.
static_assert(traits::is_multipliable_v<Seconds, SampleRateHz>);
static_assert(traits::is_multipliable_v<SampleRateHz, Seconds>);
static_assert(traits::is_multipliable_v<Seconds, BitRateBps>);
static_assert(traits::is_multipliable_v<BitRateBps, Seconds>);
static_assert(traits::is_dividable_v<SampleIndex, SampleRateHz>);
static_assert(traits::is_dividable_v<BitIndex, BitRateBps>);
static_assert(
    std::is_same_v<decltype(std::declval<Seconds>() *
                            std::declval<SampleRateHz>()),
                   SampleIndex>);
static_assert(
    std::is_same_v<decltype(std::declval<Seconds>() *
                            std::declval<BitRateBps>()),
                   BitIndex>);

// Illegal cross-unit arithmetic: every mix below used to be expressible
// as raw doubles/size_ts; none may compile now.
static_assert(!traits::is_addable_v<Volts, Seconds>);
static_assert(!traits::is_addable_v<Volts, Celsius>);
static_assert(!traits::is_addable_v<Seconds, Celsius>);
static_assert(!traits::is_addable_v<SampleIndex, BitIndex>);
static_assert(!traits::is_addable_v<FrameCount, Seed64>);
static_assert(!traits::is_subtractable_v<SampleRateHz, BitRateBps>);
static_assert(!traits::is_subtractable_v<SampleIndex, FrameCount>);
static_assert(!traits::is_multipliable_v<Volts, Seconds>);
static_assert(!traits::is_multipliable_v<Volts, Volts>);
static_assert(!traits::is_multipliable_v<Seconds, Seconds>);
static_assert(!traits::is_multipliable_v<SampleRateHz, BitRateBps>);
static_assert(!traits::is_dividable_v<SampleIndex, BitRateBps>);
static_assert(!traits::is_dividable_v<BitIndex, SampleRateHz>);

// Illegal unit/raw mixes: a bare scalar cannot masquerade as a quantity.
static_assert(!traits::is_addable_v<Volts, double>);
static_assert(!traits::is_addable_v<double, Seconds>);
static_assert(!traits::is_subtractable_v<Seconds, double>);
static_assert(!traits::is_addable_v<Seconds, double>);  // no raw advance
static_assert(!traits::is_comparable_v<Volts, double>);
static_assert(!traits::is_comparable_v<SampleIndex, std::size_t>);

// Illegal cross-unit comparison.
static_assert(!traits::is_comparable_v<SampleIndex, BitIndex>);
static_assert(!traits::is_comparable_v<Volts, Seconds>);
static_assert(!traits::is_comparable_v<SampleRateHz, BitRateBps>);
static_assert(!traits::is_comparable_v<FrameCount, Seed64>);

}  // namespace
