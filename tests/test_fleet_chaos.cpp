// Deterministic transport-chaos harness for the fleet service.  Six
// tenants stream frames over the binary wire codec in lockstep while
// faults are aimed at specific tenants — torn chunks, duplicated chunks,
// reordered chunks, a wedged worker, a rotted checkpoint — and the
// containment contract is asserted exactly:
//
//  * every non-faulted tenant's fingerprint is bit-identical to the
//    fault-free baseline run;
//  * duplicated delivery is invisible (dedup keeps the dup tenant's
//    fingerprint equal to the baseline too);
//  * faulted tenants end in a *reported* quarantined / evicted / degraded
//    state — the process never dies;
//  * the whole run is byte-stable across repeated runs (statusz JSON
//    equality) and fingerprint-stable across shard counts and threading
//    modes for every tenant whose admission sequence is mode-independent.
//
// Everything is a pure function of the input bytes: supervisors run in
// lockstep on per-tenant virtual clocks, and every shedding / dedup /
// quarantine decision happens at ingest in arrival order.  The `fleet`
// ctest label lets CI schedule this suite separately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "faults/runtime_fault.hpp"
#include "fleet/fleet_service.hpp"
#include "fleet/wire.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kTrainCount = 900;
constexpr std::size_t kFramesPerTenant = 100;

const std::vector<std::string>& tenant_ids() {
  static const std::vector<std::string> ids = {
      "clean-1", "clean-2", "chaos-dup", "chaos-reorder",
      "chaos-stall", "chaos-torn"};
  return ids;
}

struct World {
  std::optional<vprofile::Model> model;
  // One benign slice of kFramesPerTenant traces per tenant.
  std::vector<std::vector<dsp::Trace>> slices;
};

const World& world() {
  static const World w = [] {
    World out;
    sim::Vehicle vehicle(sim::vehicle_a(), kSeed);
    const analog::Environment env = analog::Environment::reference();
    const auto extraction = sim::default_extraction(vehicle.config());

    std::vector<vprofile::EdgeSet> training;
    for (const sim::Capture& cap : vehicle.capture(kTrainCount, env)) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.extraction = extraction;
    auto trained =
        vprofile::train_with_database(training, vehicle.database(), tc);
    EXPECT_TRUE(trained.ok()) << trained.error;
    if (!trained.ok()) return out;
    out.model = std::move(*trained.model);

    const std::size_t total = tenant_ids().size() * kFramesPerTenant;
    auto stream = sim::make_normal_stream(vehicle, total, env);
    out.slices.resize(tenant_ids().size());
    for (std::size_t t = 0; t < tenant_ids().size(); ++t) {
      for (std::size_t i = 0; i < kFramesPerTenant; ++i) {
        out.slices[t].push_back(
            std::move(stream[t * kFramesPerTenant + i].capture.codes));
      }
    }
    return out;
  }();
  return w;
}

// ---------------------------------------------------------------------------
// Wire-level chunk streams.  Each tenant's uplink is a vector of chunks
// (one wire write each); the feeder below interleaves tenants round-robin
// so arrival order — and therefore every admission decision — is fixed.

std::vector<std::string> encode_clean(const std::string& id,
                                      const std::vector<dsp::Trace>& traces,
                                      bool with_drain) {
  std::vector<std::string> chunks;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    fleet::wire::Frame f;
    f.tenant = id;
    f.seq = i;
    f.samples = traces[i];
    chunks.push_back(fleet::wire::encode(f));
    EXPECT_FALSE(chunks.back().empty());
  }
  if (with_drain) {
    fleet::wire::Frame drain;
    drain.kind = fleet::wire::FrameKind::kDrain;
    drain.tenant = id;
    drain.seq = traces.size();
    chunks.push_back(fleet::wire::encode(drain));
  }
  return chunks;
}

/// Every data chunk delivered twice (an at-least-once relay re-sending).
std::vector<std::string> fault_duplicate(std::vector<std::string> chunks) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    out.push_back(chunks[i]);
    if (i + 1 != chunks.size()) out.push_back(chunks[i]);  // not the drain
  }
  return out;
}

/// Adjacent data chunks swapped pairwise (reordered delivery).
std::vector<std::string> fault_reorder(std::vector<std::string> chunks) {
  for (std::size_t i = 0; i + 2 < chunks.size(); i += 2) {
    std::swap(chunks[i], chunks[i + 1]);  // keep the trailing drain in place
  }
  return chunks;
}

/// Every 7th chunk loses a strided run of tail bytes (a reconnecting
/// uplink tearing frames mid-write).  The tears leave the tenant field
/// intact, so the CRC failures stay attributable — that is what drives
/// the quarantine.
std::vector<std::string> fault_tear(std::vector<std::string> chunks) {
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // never the drain
    if (i % 7 != 3) continue;
    const std::size_t cut = 1 + (i * 13) % 40;
    if (chunks[i].size() > cut + 32) {
      chunks[i].resize(chunks[i].size() - cut);
    }
  }
  return chunks;
}

struct RunOutcome {
  std::map<std::string, fleet::TenantSnapshot> pre_drain;
  std::map<std::string, fleet::TenantSnapshot> final_state;
  fleet::FleetStats stats;
  std::uint64_t fleet_fingerprint = 0;
  std::string statusz;
};

fleet::FleetConfig chaos_config(std::size_t shards, bool threaded) {
  fleet::FleetConfig cfg;
  cfg.num_shards = shards;
  cfg.threaded = threaded;
  cfg.tenant.supervisor.lockstep = true;
  cfg.tenant.supervisor.pipeline.num_workers = 1;
  cfg.tenant.supervisor.online_update = false;
  cfg.tenant.quarantine_decode_errors = 3;
  cfg.tenant.revive_backoff_frames = 16;
  cfg.tenant.revive_max_attempts = 4;
  return cfg;
}

/// Supervisor override for the stall tenant: a worker wedges on frame 30
/// and the virtual-clock watchdog must restart the pipeline (the
/// soak-scenario parameters).
runtime::SupervisorConfig stall_supervisor(const fleet::FleetConfig& cfg) {
  runtime::SupervisorConfig sc = cfg.tenant.supervisor;
  sc.watchdog.stall_timeout_ns = 4'000'000;
  sc.watchdog.initial_backoff_ns = 2'000'000;
  sc.watchdog.max_backoff_ns = 8'000'000;
  sc.watchdog.max_restarts = 4;
  sc.fault_plan.stalls.push_back(faults::WorkerStallPlan{30});
  return sc;
}

/// Drives one full fleet run over per-tenant chunk streams, interleaving
/// chunks round-robin through per-connection decoders.
RunOutcome run_fleet(const fleet::FleetConfig& cfg,
                     const std::map<std::string, std::vector<std::string>>&
                         uplinks,
                     bool stall_tenant_override) {
  const World& w = world();
  EXPECT_TRUE(w.model.has_value());

  fleet::FleetService service(cfg);
  for (const std::string& id : tenant_ids()) {
    if (stall_tenant_override && id == "chaos-stall") {
      EXPECT_TRUE(
          service.register_tenant(id, *w.model, stall_supervisor(cfg)));
    } else {
      EXPECT_TRUE(service.register_tenant(id, *w.model));
    }
  }

  std::map<std::string, fleet::wire::Decoder> decoders;
  std::size_t max_chunks = 0;
  for (const auto& [id, chunks] : uplinks) {
    decoders.emplace(id, fleet::wire::Decoder());
    max_chunks = std::max(max_chunks, chunks.size());
  }
  for (std::size_t step = 0; step < max_chunks; ++step) {
    for (const std::string& id : tenant_ids()) {
      const auto& chunks = uplinks.at(id);
      if (step >= chunks.size()) continue;
      fleet::wire::Decoder& decoder = decoders.at(id);
      decoder.feed(chunks[step].data(), chunks[step].size());
      while (auto event = decoder.next()) {
        service.handle_wire_event(*event);
      }
    }
  }

  RunOutcome out;
  for (const auto& snap : service.tenants()) {
    out.pre_drain.emplace(snap.id, snap);
  }
  service.finish();
  for (const auto& snap : service.tenants()) {
    out.final_state.emplace(snap.id, snap);
  }
  out.stats = service.stats();
  out.fleet_fingerprint = service.fingerprint();
  out.statusz = service.statusz_json();
  return out;
}

std::map<std::string, std::vector<std::string>> clean_uplinks() {
  const World& w = world();
  std::map<std::string, std::vector<std::string>> uplinks;
  for (std::size_t t = 0; t < tenant_ids().size(); ++t) {
    uplinks[tenant_ids()[t]] =
        encode_clean(tenant_ids()[t], w.slices[t], /*with_drain=*/true);
  }
  return uplinks;
}

std::map<std::string, std::vector<std::string>> chaos_uplinks() {
  auto uplinks = clean_uplinks();
  uplinks["chaos-dup"] = fault_duplicate(uplinks["chaos-dup"]);
  uplinks["chaos-reorder"] = fault_reorder(uplinks["chaos-reorder"]);
  // The torn uplink never sends its drain: a quarantined tenant's client
  // gave up; finish() drains whatever is left.
  auto torn = encode_clean("chaos-torn",
                           world().slices[tenant_ids().size() - 1],
                           /*with_drain=*/false);
  uplinks["chaos-torn"] = fault_tear(std::move(torn));
  return uplinks;
}

TEST(FleetChaos, FaultsAreContainedToTheFaultedTenants) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());

  // Fault-free baseline: every tenant clean, default supervisors.
  const RunOutcome baseline =
      run_fleet(chaos_config(2, false), clean_uplinks(), false);
  for (const std::string& id : tenant_ids()) {
    const auto& snap = baseline.final_state.at(id);
    EXPECT_EQ(snap.state, fleet::TenantState::kDrained) << id;
    EXPECT_NE(snap.fingerprint, 0u) << id;
    EXPECT_EQ(snap.transport.frames, kFramesPerTenant) << id;
  }
  EXPECT_EQ(baseline.stats.wire_errors, 0u);

  // Chaos run: duplicates, reordering, tears and a wedged worker, all at
  // once.
  const RunOutcome chaos =
      run_fleet(chaos_config(2, false), chaos_uplinks(), true);

  // Non-faulted tenants: bit-identical to the fault-free run.
  for (const std::string id : {"clean-1", "clean-2"}) {
    EXPECT_EQ(chaos.final_state.at(id).fingerprint,
              baseline.final_state.at(id).fingerprint)
        << id;
    EXPECT_EQ(chaos.final_state.at(id).state, fleet::TenantState::kDrained);
  }

  // Duplicated delivery must be invisible: dedup keeps the scored stream
  // — and the fingerprint — equal to exactly-once delivery.
  const auto& dup = chaos.final_state.at("chaos-dup");
  EXPECT_EQ(dup.fingerprint, baseline.final_state.at("chaos-dup").fingerprint);
  EXPECT_EQ(dup.transport.duplicates_dropped, kFramesPerTenant);
  EXPECT_EQ(dup.state, fleet::TenantState::kDrained);

  // Reordered delivery: late chunks drop as duplicates, the skipped seqs
  // are counted as gaps, and the tenant still drains cleanly.
  const auto& reorder = chaos.final_state.at("chaos-reorder");
  EXPECT_GE(reorder.transport.gaps_detected, 1u);
  EXPECT_GE(reorder.transport.duplicates_dropped, 1u);
  EXPECT_EQ(reorder.state, fleet::TenantState::kDrained);

  // The wedged worker: the watchdog restarts the pipeline, the wedged
  // frame comes back as a contained error, and no frame is lost.
  const auto& stall = chaos.final_state.at("chaos-stall");
  EXPECT_EQ(stall.supervisor.stalls_detected, 1u);
  EXPECT_EQ(stall.supervisor.restarts, 1u);
  EXPECT_EQ(stall.supervisor.frames_handled, kFramesPerTenant);
  EXPECT_EQ(stall.state, fleet::TenantState::kDrained);

  // The torn uplink: CRC failures are attributed, the tenant is
  // quarantined (and possibly revived and eventually evicted) — a
  // *reported* state, never a crash — and the errors never leak into any
  // other tenant's books.
  const auto& torn_pre = chaos.pre_drain.at("chaos-torn");
  EXPECT_GE(torn_pre.transport.decode_errors, 3u);
  EXPECT_TRUE(torn_pre.state == fleet::TenantState::kQuarantined ||
              torn_pre.state == fleet::TenantState::kEvicted ||
              torn_pre.state == fleet::TenantState::kDegraded ||
              torn_pre.state == fleet::TenantState::kActive)
      << fleet::to_string(torn_pre.state);
  EXPECT_GE(chaos.stats.quarantines, 1u);
  EXPECT_GE(chaos.stats.revivals, 1u);
  const auto& torn = chaos.final_state.at("chaos-torn");
  EXPECT_TRUE(torn.state == fleet::TenantState::kDrained ||
              torn.state == fleet::TenantState::kEvicted)
      << fleet::to_string(torn.state);
  for (const std::string id :
       {"clean-1", "clean-2", "chaos-dup", "chaos-reorder", "chaos-stall"}) {
    EXPECT_EQ(chaos.final_state.at(id).transport.decode_errors, 0u) << id;
  }
  EXPECT_GE(chaos.stats.wire_errors, torn_pre.transport.decode_errors);
}

// The same chaos input must produce the same bytes every time: statusz
// JSON equality is the strictest whole-run check we have.
TEST(FleetChaos, ChaosRunIsByteStableAcrossRepeats) {
  const RunOutcome first =
      run_fleet(chaos_config(2, false), chaos_uplinks(), true);
  const RunOutcome second =
      run_fleet(chaos_config(2, false), chaos_uplinks(), true);
  EXPECT_EQ(first.fleet_fingerprint, second.fleet_fingerprint);
  EXPECT_EQ(first.statusz, second.statusz);
}

// Shard count and threading must not change any tenant whose admission
// sequence is mode-independent (no mid-stream revival): lockstep
// supervisors + arrival-order admission make the fingerprints equal.
// (The torn tenant's revival timing is allowed to differ between inline
// and queued execution, so it is excluded.)
TEST(FleetChaos, FingerprintsStableAcrossShardsAndThreading) {
  const RunOutcome reference =
      run_fleet(chaos_config(1, false), chaos_uplinks(), true);
  const RunOutcome wide =
      run_fleet(chaos_config(4, false), chaos_uplinks(), true);
  const RunOutcome threaded =
      run_fleet(chaos_config(3, true), chaos_uplinks(), true);
  for (const std::string id :
       {"clean-1", "clean-2", "chaos-dup", "chaos-reorder", "chaos-stall"}) {
    EXPECT_EQ(wide.final_state.at(id).fingerprint,
              reference.final_state.at(id).fingerprint)
        << id;
    EXPECT_EQ(threaded.final_state.at(id).fingerprint,
              reference.final_state.at(id).fingerprint)
        << id;
  }
}

// Checkpoint rot under chaos: the victim's newest checkpoint is corrupted
// mid-stream, a decode-error quarantine forces a revival, and the revival
// must land on the last-good checkpoint (reported as degraded) while the
// witness never notices.
TEST(FleetChaos, CheckpointRotRevivesLastGoodMidstream) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  const std::string root = ::testing::TempDir() + "fleet_chaos_ckpt";
  std::filesystem::remove_all(root);

  fleet::FleetConfig cfg = chaos_config(2, false);
  cfg.checkpoint_root = root;
  cfg.tenant.supervisor.checkpoint_every = 8;
  cfg.tenant.quarantine_decode_errors = 1;
  cfg.tenant.revive_backoff_frames = 4;
  fleet::FleetService service(cfg);
  ASSERT_TRUE(service.register_tenant("ckpt-victim", *w.model));
  ASSERT_TRUE(service.register_tenant("ckpt-witness", *w.model));

  auto send = [&service](const std::string& id, const dsp::Trace& trace,
                         std::uint64_t seq) {
    fleet::wire::Frame f;
    f.tenant = id;
    f.seq = seq;
    f.samples = trace;
    const std::string bytes = fleet::wire::encode(f);
    fleet::wire::Decoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    while (auto event = decoder.next()) service.handle_wire_event(*event);
  };

  for (std::size_t i = 0; i < 24; ++i) {
    send("ckpt-victim", w.slices[0][i], i);
    send("ckpt-witness", w.slices[1][i], i);
  }
  {
    auto snap = service.tenant("ckpt-victim");
    ASSERT_TRUE(snap.has_value());
    ASSERT_GE(snap->supervisor.checkpoints_committed, 2u);
  }

  // One corrupt chunk claiming the victim quarantines it (the retire
  // commits the supervisor's final checkpoint); the newest file then rots
  // on disk while the tenant is down, so the revival must fall back to
  // the last-good checkpoint.
  fleet::wire::Decoder::Event corrupt;
  corrupt.error = fleet::wire::DecodeError::kBadCrc;
  corrupt.claimed_tenant = "ckpt-victim";
  service.handle_wire_event(corrupt);
  {
    auto snap = service.tenant("ckpt-victim");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, fleet::TenantState::kQuarantined);
  }
  runtime::CheckpointStore store(
      fleet::tenant_checkpoint_dir(root, "ckpt-victim"));
  ASSERT_TRUE(store.has_checkpoint());
  {
    std::fstream f(store.current_path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.seekg(16);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x08);
    f.seekp(16);
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }

  for (std::size_t i = 24; i < 40; ++i) {
    send("ckpt-victim", w.slices[0][i], i);
    send("ckpt-witness", w.slices[1][i], i);
  }
  auto victim = service.tenant("ckpt-victim");
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, fleet::TenantState::kDegraded);
  EXPECT_TRUE(victim->recovered_last_good);
  EXPECT_EQ(victim->reason, "revived from last-good checkpoint");
  EXPECT_EQ(victim->generations, 2u);

  service.finish();
  auto witness = service.tenant("ckpt-witness");
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->state, fleet::TenantState::kDrained);
  EXPECT_EQ(witness->transport.frames, 40u);
  EXPECT_EQ(witness->transport.decode_errors, 0u);
  EXPECT_EQ(witness->supervisor.frames_handled, 40u);
}

}  // namespace
