// Observability layer tests: histogram bucket/percentile math, registry
// series identity, Prometheus/JSONL exposition (including label
// escaping), trace-ring wraparound, and concurrent-increment safety (run
// under TSan in CI).  The last test pins the layer's core contract: a
// detector run with metrics and tracing attached is bit-identical to the
// same run without them.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "faults/fault.hpp"
#include "scenario_harness.hpp"
#include "sim/scenario.hpp"

namespace {

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({10, 20, 40});
  h.observe(10);  // == bound: lands in that bucket, not the next
  h.observe(11);
  h.observe(40);
  h.observe(41);  // overflow
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 10u + 11u + 40u + 41u);
  EXPECT_EQ(s.max, 41u);
}

TEST(Histogram, PercentilesReportBucketUpperBounds) {
  obs::Histogram h({100, 200, 300, 400});
  for (int i = 0; i < 50; ++i) h.observe(100);
  for (int i = 0; i < 40; ++i) h.observe(200);
  for (int i = 0; i < 9; ++i) h.observe(300);
  h.observe(5000);  // one overflow observation
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50(), 100u);
  EXPECT_EQ(s.p90(), 200u);
  EXPECT_EQ(s.p99(), 300u);
  // The overflow bucket reports the exact observed max, not +Inf.
  EXPECT_EQ(s.quantile(1.0), 5000u);
  EXPECT_DOUBLE_EQ(s.mean(), (50 * 100 + 40 * 200 + 9 * 300 + 5000) / 100.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  obs::Histogram h({1, 2});
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50(), 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(MetricsRegistry, SeriesIdentityIgnoresLabelOrder) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.counter("frames_total", {{"sa", "0x10"}, {"ecu", "3"}});
  obs::Counter* b = reg.counter("frames_total", {{"ecu", "3"}, {"sa", "0x10"}});
  obs::Counter* c = reg.counter("frames_total", {{"ecu", "4"}, {"sa", "0x10"}});
  EXPECT_EQ(a, b);  // same series, any label order
  EXPECT_NE(a, c);
  a->add(2);
  EXPECT_EQ(b->value(), 2u);

  // Histogram bounds belong to the series: a second lookup keeps the first
  // grid.
  obs::Histogram* h1 = reg.histogram("lat_ns", {}, {10, 20});
  obs::Histogram* h2 = reg.histogram("lat_ns", {}, {999});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST(MetricsRegistry, SamplesAreDeterministicallyOrdered) {
  obs::MetricsRegistry reg;
  reg.counter("z_total")->add(1);
  reg.gauge("a_depth_total")->set(-5);
  reg.counter("m_total", {{"k", "v"}});
  const auto samples = reg.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_depth_total");
  EXPECT_EQ(samples[0].gauge_value, -5);
  EXPECT_EQ(samples[1].name, "m_total");
  EXPECT_EQ(samples[2].name, "z_total");
}

TEST(Exposition, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter("odd_labels_total",
              {{"path", "a\\b"}, {"quote", "x\"y"}, {"nl", "p\nq"}})
      ->add(7);
  const std::string text = obs::to_prometheus(reg.samples());
  EXPECT_NE(text.find("# TYPE odd_labels_total counter"), std::string::npos);
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("quote=\"x\\\"y\""), std::string::npos);
  EXPECT_NE(text.find("nl=\"p\\nq\""), std::string::npos);
  EXPECT_NE(text.find(" 7\n"), std::string::npos);
}

TEST(Exposition, PrometheusHistogramBucketsAreCumulative) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("lat_ns", {}, {10, 20});
  h->observe(5);
  h->observe(15);
  h->observe(100);
  const std::string text = obs::to_prometheus(reg.samples());
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"20\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 120\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
}

TEST(Exposition, JsonlLeadsWithManifestAndOneObjectPerLine) {
  obs::MetricsRegistry reg;
  reg.counter("frames_total")->add(3);
  reg.histogram("lat_ns", {}, {10})->observe(4);
  obs::RunManifest manifest = obs::RunManifest::create("test_obs");
  manifest.seeds.emplace_back("matrix", 42u);
  const std::string text = obs::to_jsonl(reg.samples(), &manifest);
  ASSERT_EQ(text.rfind("{\"manifest\":", 0), 0u);
  EXPECT_NE(text.find("\"tool\":\"test_obs\""), std::string::npos);
  EXPECT_NE(text.find("\"matrix\":42"), std::string::npos);
  EXPECT_NE(text.find("{\"metric\":\"frames_total\",\"kind\":\"counter\""),
            std::string::npos);
  EXPECT_NE(text.find("\"p99\":"), std::string::npos);
  // Three lines: manifest + two series, each newline-terminated.
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 3u);
}

TEST(Tracer, RingKeepsTheMostRecentEventsPerThread) {
  obs::Tracer tracer(/*ring_capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record("span", /*start_ns=*/i, /*dur_ns=*/1);
  }
  EXPECT_EQ(tracer.total_recorded(), 20u);
  const std::vector<obs::TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 8u);  // the window survives, oldest first
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, 12u + i);
  }
}

TEST(Tracer, ChromeJsonHasCompleteEventsAndManifest) {
  obs::Tracer tracer(16);
  {
    obs::TraceSpan span(&tracer, "unit.test_span");
  }
  const obs::RunManifest manifest = obs::RunManifest::create("test_obs");
  const std::string json = tracer.chrome_trace_json(&manifest);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.test_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":"), std::string::npos);
}

TEST(Tracer, NullTracerSpansAreNoops) {
  // Must not crash or record anywhere; this is the disabled-observability
  // hot path every pipeline call site takes by default.
  obs::TraceSpan span(nullptr, "ignored");
}

TEST(Concurrency, RelaxedInstrumentsCountExactlyUnderContention) {
  // Run under TSan in CI: concurrent add/observe on shared instruments
  // must be race-free and lose nothing.
  obs::MetricsRegistry reg;
  obs::Counter* counter = reg.counter("hammer_total");
  obs::Histogram* hist = reg.histogram("hammer_ns", {}, {1, 2, 4, 8});
  obs::Gauge* gauge = reg.gauge("hammer_bytes");
  obs::Tracer tracer(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->add();
        hist->observe(static_cast<std::uint64_t>(i % 10));
        gauge->add(t % 2 == 0 ? 1 : -1);
        if (i % 1000 == 0) {
          tracer.record("hammer", static_cast<std::uint64_t>(i), 1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const obs::HistogramSnapshot s = hist->snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.max, 9u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 1000));
}

TEST(Manifest, JsonQuoteEscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(obs::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

// The layer's core contract: attaching a registry and tracer must not
// change a single verdict.  Scenario fingerprints hash every per-cell
// confusion count, so equality here is bit-exactness of the detector
// output, not a statistical similarity.
TEST(Observability, ScenarioFingerprintIsBitIdenticalWithInstrumentation) {
  sim::Scenario scenario;
  scenario.attack = sim::AttackKind::kHijack;
  scenario.faults = faults::emi_storm();

  sim::ScenarioRunner plain_runner(harness::kMatrixSeed);
  const sim::ScenarioResult plain = plain_runner.run(scenario);

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  sim::ScenarioRunner instrumented_runner(harness::kMatrixSeed);
  instrumented_runner.set_observability(&registry, &tracer);
  const sim::ScenarioResult instrumented = instrumented_runner.run(scenario);

  EXPECT_EQ(plain.metrics.fingerprint(), instrumented.metrics.fingerprint());

  // And the instrumentation was actually live, not silently detached.
  std::uint64_t submitted = 0;
  for (const obs::MetricSample& s : registry.samples()) {
    if (s.name == "frames_submitted_total") submitted += s.counter_value;
  }
  EXPECT_GT(submitted, 0u);
  EXPECT_GT(tracer.total_recorded(), 0u);
}

}  // namespace
