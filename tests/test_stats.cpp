#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "stats/confusion.hpp"
#include "stats/interval.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"

namespace {

using stats::BinaryConfusion;
using stats::MultiClassConfusion;
using stats::Rng;
using stats::Welford;

TEST(Welford, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  Welford acc;
  for (double x : xs) acc.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);

  EXPECT_DOUBLE_EQ(acc.mean(), mean);
  EXPECT_NEAR(acc.variance(), var / static_cast<double>(xs.size()), 1e-12);
  EXPECT_NEAR(acc.sample_variance(),
              var / static_cast<double>(xs.size() - 1), 1e-12);
}

TEST(Welford, TracksMinAndMax) {
  Welford acc;
  acc.add(3.0);
  acc.add(-7.0);
  acc.add(11.0);
  EXPECT_DOUBLE_EQ(acc.min(), -7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 11.0);
}

TEST(Welford, SingleSampleHasZeroVariance) {
  Welford acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.sample_variance(), 0.0);
}

TEST(Welford, NumericallyStableWithLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  Welford acc;
  const double offset = 1.0e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.add(x);
  EXPECT_NEAR(acc.variance(), 2.0 / 3.0, 1e-6);
}

TEST(VectorWelford, MatchesScalarWelfordPerDimension) {
  stats::VectorWelford vec(2);
  Welford s0;
  Welford s1;
  std::mt19937 gen(1);
  std::uniform_real_distribution<double> u(-1, 1);
  for (int i = 0; i < 100; ++i) {
    const double a = u(gen);
    const double b = u(gen);
    vec.add({a, b});
    s0.add(a);
    s1.add(b);
  }
  EXPECT_NEAR(vec.mean()[0], s0.mean(), 1e-12);
  EXPECT_NEAR(vec.mean()[1], s1.mean(), 1e-12);
  EXPECT_NEAR(vec.variance()[0], s0.variance(), 1e-12);
  EXPECT_NEAR(vec.stddev()[1], s1.stddev(), 1e-12);
}

TEST(VectorWelford, RejectsDimensionMismatch) {
  stats::VectorWelford vec(3);
  EXPECT_THROW(vec.add({1.0, 2.0}), std::invalid_argument);
}

TEST(VectorWelford, RejectsZeroDimension) {
  EXPECT_THROW(stats::VectorWelford(0), std::invalid_argument);
}

TEST(BinaryConfusion, CountsCellsCorrectly) {
  BinaryConfusion cm;
  cm.add(true, true);    // TP
  cm.add(true, false);   // FN
  cm.add(false, true);   // FP
  cm.add(false, false);  // TN
  cm.add(false, false);  // TN
  EXPECT_EQ(cm.true_positives(), 1u);
  EXPECT_EQ(cm.false_negatives(), 1u);
  EXPECT_EQ(cm.false_positives(), 1u);
  EXPECT_EQ(cm.true_negatives(), 2u);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(BinaryConfusion, MetricsMatchHandComputation) {
  BinaryConfusion cm;
  for (int i = 0; i < 8; ++i) cm.add(true, true);
  for (int i = 0; i < 2; ++i) cm.add(true, false);
  cm.add(false, true);
  for (int i = 0; i < 89; ++i) cm.add(false, false);
  EXPECT_NEAR(cm.accuracy(), 97.0 / 100.0, 1e-12);
  EXPECT_NEAR(cm.precision(), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(cm.recall(), 8.0 / 10.0, 1e-12);
  const double p = 8.0 / 9.0;
  const double r = 0.8;
  EXPECT_NEAR(cm.f_score(), 2 * p * r / (p + r), 1e-12);
}

TEST(BinaryConfusion, EmptyMatrixIsSafe) {
  BinaryConfusion cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 1.0);  // vacuous: nothing to find
  EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f_score(), 1.0);
}

TEST(BinaryConfusion, NoAnomaliesYieldsPerfectRecall) {
  BinaryConfusion cm;
  cm.add(false, false);
  EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(BinaryConfusion, MergeAddsCounts) {
  BinaryConfusion a;
  a.add(true, true);
  BinaryConfusion b;
  b.add(false, true);
  a.merge(b);
  EXPECT_EQ(a.true_positives(), 1u);
  EXPECT_EQ(a.false_positives(), 1u);
  EXPECT_EQ(a.total(), 2u);
}

TEST(BinaryConfusion, TableRendersCounts) {
  BinaryConfusion cm;
  cm.add(true, true);
  const std::string table = cm.to_table("T");
  EXPECT_NE(table.find('T'), std::string::npos);
  EXPECT_NE(table.find("Anomaly"), std::string::npos);
}

TEST(MultiClassConfusion, AccuracyIsDiagonalFraction) {
  MultiClassConfusion cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  cm.add(2, 0);
  cm.add(2, 2);
  EXPECT_NEAR(cm.accuracy(), 3.0 / 4.0, 1e-12);
  EXPECT_EQ(cm.count(2, 0), 1u);
}

TEST(MultiClassConfusion, PerClassMetrics) {
  MultiClassConfusion cm(2);
  for (int i = 0; i < 3; ++i) cm.add(0, 0);
  cm.add(0, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 0);
  EXPECT_NEAR(cm.recall(0), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
}

TEST(MultiClassConfusion, MacroFAveragesClasses) {
  MultiClassConfusion cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  EXPECT_NEAR(cm.macro_f_score(), 1.0, 1e-12);
}

TEST(MultiClassConfusion, RejectsOutOfRange) {
  MultiClassConfusion cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, 5), std::out_of_range);
  EXPECT_THROW(MultiClassConfusion(0), std::invalid_argument);
}

TEST(Interval, StandardQuantiles) {
  EXPECT_NEAR(stats::normal_quantile_two_sided(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(stats::normal_quantile_two_sided(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(stats::normal_quantile_two_sided(0.90), 1.644854, 1e-4);
}

TEST(Interval, RejectsBadConfidence) {
  EXPECT_THROW(stats::normal_quantile_two_sided(0.0), std::invalid_argument);
  EXPECT_THROW(stats::normal_quantile_two_sided(1.0), std::invalid_argument);
}

TEST(Interval, MeanCiCoversTrueMeanMostOfTheTime) {
  // Property: ~99% of 99% CIs on N(0,1) samples should contain 0.
  std::mt19937 gen(7);
  std::normal_distribution<double> n(0.0, 1.0);
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs(50);
    for (double& x : xs) x = n(gen);
    if (stats::mean_confidence_interval(xs, 0.99).contains(0.0)) ++covered;
  }
  EXPECT_GE(covered, trials * 95 / 100);
}

TEST(Interval, WiderConfidenceGivesWiderInterval) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci95 = stats::mean_confidence_interval(xs, 0.95);
  const auto ci99 = stats::mean_confidence_interval(xs, 0.99);
  EXPECT_GT(ci99.half_width, ci95.half_width);
  EXPECT_DOUBLE_EQ(ci95.mean, ci99.mean);
}

TEST(Interval, EmptySampleThrows) {
  EXPECT_THROW(stats::mean_confidence_interval({}, 0.99),
               std::invalid_argument);
}

TEST(Summary, BasicFields) {
  const auto s = stats::summarize({2.0, 4.0, 6.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.sample_stddev, 2.0, 1e-12);
}

TEST(Summary, EmptyInputGivesZeroSummary) {
  const auto s = stats::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(stats::percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile({5.0, 1.0, 3.0}, 1.0), 5.0);
}

TEST(Summary, PercentileValidatesInput) {
  EXPECT_THROW(stats::percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Summary, PercentDelta) {
  EXPECT_DOUBLE_EQ(stats::percent_delta(10.0, 15.0), 50.0);
  EXPECT_DOUBLE_EQ(stats::percent_delta(10.0, 5.0), -50.0);
  EXPECT_THROW(stats::percent_delta(0.0, 1.0), std::invalid_argument);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo |= (v == -1);
    saw_hi |= (v == 1);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(13);
  Welford acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
