// Scenario regression harness (see scenario_harness.hpp).
//
// Three layers of guarantees, weakest to strongest:
//  1. Never-crash: every grid cell — and deliberately nastier fault
//     profiles than any canned one — produces a result, never a throw.
//  2. Golden bounds: each cell's confusion metrics stay inside committed
//     tolerances, and every capture is accounted for exactly once.
//  3. Bit-exact determinism: re-running the grid from the same seed, in
//     reverse order, reproduces identical metric fingerprints.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/simd_dispatch.hpp"
#include "scenario_harness.hpp"

namespace {

using harness::ScenarioCase;
using sim::AttackKind;
using sim::Scenario;
using sim::ScenarioResult;
using sim::ScenarioRunner;

TEST(ScenarioMatrix, HasAtLeastTwentyFourCells) {
  EXPECT_GE(harness::default_scenario_matrix().size(), 24u);
}

TEST(ScenarioMatrix, CellNamesAreUnique) {
  std::vector<std::string> names;
  for (const ScenarioCase& c : harness::default_scenario_matrix()) {
    names.push_back(c.scenario.name() + "/" +
                    std::to_string(c.scenario.overdrive) + "/" +
                    std::to_string(c.scenario.margin));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate scenario cells would silently halve coverage";
}

// Gating must be invisible on clean captures: the same generated stream,
// scored with the gating config and with the margin-only (pre-gating)
// config, must produce identical confusion matrices.
TEST(ScenarioMatrix, CleanTrafficMatchesPreGatingDetector) {
  for (const std::string preset : {"a", "b"}) {
    for (AttackKind attack :
         {AttackKind::kNone, AttackKind::kHijack, AttackKind::kForeign}) {
      Scenario s;
      s.preset = preset;
      s.attack = attack;
      if (preset == "b") s.train_count = 3000;
      SCOPED_TRACE(s.name());

      ScenarioRunner gated_runner(harness::kMatrixSeed);
      Scenario gated = s;
      gated.quality_gating = true;
      const ScenarioResult with_gate = gated_runner.run(gated);

      ScenarioRunner legacy_runner(harness::kMatrixSeed);
      Scenario legacy = s;
      legacy.quality_gating = false;
      const ScenarioResult without_gate = legacy_runner.run(legacy);

      ASSERT_TRUE(with_gate.ok()) << with_gate.error;
      ASSERT_TRUE(without_gate.ok()) << without_gate.error;
      EXPECT_EQ(with_gate.metrics.degraded, 0u);
      EXPECT_EQ(without_gate.metrics.degraded, 0u);
      EXPECT_EQ(with_gate.metrics.confusion.true_positives(),
                without_gate.metrics.confusion.true_positives());
      EXPECT_EQ(with_gate.metrics.confusion.true_negatives(),
                without_gate.metrics.confusion.true_negatives());
      EXPECT_EQ(with_gate.metrics.confusion.false_positives(),
                without_gate.metrics.confusion.false_positives());
      EXPECT_EQ(with_gate.metrics.confusion.false_negatives(),
                without_gate.metrics.confusion.false_negatives());
      EXPECT_EQ(with_gate.metrics.fingerprint(),
                without_gate.metrics.fingerprint());
    }
  }
}

TEST(ScenarioMatrix, MeetsGoldenBounds) {
  ScenarioRunner runner(harness::kMatrixSeed);
  for (const ScenarioCase& c : harness::default_scenario_matrix()) {
    SCOPED_TRACE(c.scenario.name());
    ScenarioResult result;
    ASSERT_NO_THROW(result = runner.run(c.scenario));
    ASSERT_TRUE(result.ok()) << result.error;
    const sim::ScenarioMetrics& m = result.metrics;
    SCOPED_TRACE(harness::describe(m));

    // Every submitted capture lands in exactly one bucket.
    EXPECT_EQ(m.confusion.total() + m.degraded + m.extraction_failures,
              c.scenario.test_count);
    // The harness's own accounting agrees with pipeline telemetry.
    EXPECT_EQ(m.degraded, m.pipeline_counters.degraded());
    EXPECT_EQ(m.extraction_failures, m.pipeline_counters.extract_failures());
    EXPECT_EQ(m.fault_stats.total_traces, c.scenario.test_count);

    if (c.min_recall >= 0.0) {
      EXPECT_GE(m.confusion.recall(), c.min_recall);
    }
    if (c.max_fpr <= 1.0) {
      const double negatives = static_cast<double>(
          m.confusion.false_positives() + m.confusion.true_negatives());
      if (negatives > 0.0) {
        EXPECT_LE(static_cast<double>(m.confusion.false_positives()) /
                      negatives,
                  c.max_fpr);
      }
    }
    EXPECT_GE(m.degraded, c.min_degraded);
    EXPECT_LE(m.degraded, c.max_degraded);
    if (c.expect_faults) {
      EXPECT_GT(m.fault_stats.applied_total(), 0u);
      EXPECT_GT(m.fault_stats.faulted_traces, 0u);
    } else {
      EXPECT_EQ(m.fault_stats.applied_total(), 0u);
    }
  }
}

TEST(ScenarioMatrix, DeterministicAcrossRunnersAndExecutionOrder) {
  std::vector<ScenarioCase> forward = harness::default_scenario_matrix();
  std::vector<ScenarioCase> reverse = forward;
  std::reverse(reverse.begin(), reverse.end());

  // Two independent runners (fresh model caches), opposite visit orders.
  ScenarioRunner first(harness::kMatrixSeed);
  ScenarioRunner second(harness::kMatrixSeed);
  std::map<std::string, std::uint64_t> first_prints;
  for (const ScenarioCase& c : forward) {
    ScenarioResult r = first.run(c.scenario);
    ASSERT_TRUE(r.ok()) << c.scenario.name() << ": " << r.error;
    first_prints[c.scenario.name() + "/" +
                 std::to_string(c.scenario.overdrive) + "/" +
                 std::to_string(c.scenario.margin)] =
        r.metrics.fingerprint();
  }
  for (const ScenarioCase& c : reverse) {
    ScenarioResult r = second.run(c.scenario);
    ASSERT_TRUE(r.ok()) << c.scenario.name() << ": " << r.error;
    const std::string key = c.scenario.name() + "/" +
                            std::to_string(c.scenario.overdrive) + "/" +
                            std::to_string(c.scenario.margin);
    EXPECT_EQ(r.metrics.fingerprint(), first_prints.at(key))
        << c.scenario.name();
  }
}

// The golden matrix, scored once with dispatch pinned to the scalar
// kernels and once with the runtime-dispatched backend (AVX2 on capable
// hosts): every cell must produce an identical metric fingerprint.  This
// is the end-to-end closure of the kernel-level bit-identity contract in
// tests/test_simd_differential.cpp — if any SIMD lane ever rounded
// differently, a verdict would drift and a fingerprint would split.
TEST(ScenarioMatrix, FingerprintsIdenticalUnderBothDispatchPaths) {
  if (!linalg::simd::cpu_has_avx2()) {
    GTEST_SKIP() << "no AVX2: both dispatch paths resolve to scalar, the "
                    "comparison would be vacuous";
  }
  struct OverrideGuard {
    ~OverrideGuard() { linalg::simd::set_force_scalar_override(-1); }
  } guard;

  linalg::simd::set_force_scalar_override(1);
  ScenarioRunner forced(harness::kMatrixSeed);
  std::map<std::string, std::uint64_t> scalar_prints;
  for (const ScenarioCase& c : harness::default_scenario_matrix()) {
    ScenarioResult r = forced.run(c.scenario);
    ASSERT_TRUE(r.ok()) << c.scenario.name() << ": " << r.error;
    scalar_prints[c.scenario.name() + "/" +
                  std::to_string(c.scenario.overdrive) + "/" +
                  std::to_string(c.scenario.margin)] =
        r.metrics.fingerprint();
  }

  linalg::simd::set_force_scalar_override(0);
  ScenarioRunner dispatched(harness::kMatrixSeed);
  for (const ScenarioCase& c : harness::default_scenario_matrix()) {
    ScenarioResult r = dispatched.run(c.scenario);
    ASSERT_TRUE(r.ok()) << c.scenario.name() << ": " << r.error;
    const std::string key = c.scenario.name() + "/" +
                            std::to_string(c.scenario.overdrive) + "/" +
                            std::to_string(c.scenario.margin);
    EXPECT_EQ(r.metrics.fingerprint(), scalar_prints.at(key))
        << c.scenario.name() << ": scalar and AVX2 dispatch disagree";
  }
}

TEST(ScenarioMatrix, DifferentSeedsDiverge) {
  Scenario s;
  s.attack = AttackKind::kHijack;
  s.faults = *faults::profile_by_name("emi-storm");
  ScenarioRunner a(harness::kMatrixSeed);
  ScenarioRunner b(harness::kMatrixSeed + 1);
  const ScenarioResult ra = a.run(s);
  const ScenarioResult rb = b.run(s);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NE(ra.metrics.fingerprint(), rb.metrics.fingerprint());
}

// Nastier than any canned profile: every fault at probability 1 with
// extreme parameters.  The pipeline must still account for every capture
// and never crash; most verdicts should be degraded or extraction
// failures, not confident classifications.
TEST(ScenarioMatrix, ExtremeFaultsNeverCrash) {
  faults::FaultProfile torture;
  torture.name = "torture";
  torture.clipping = faults::ClippingFault{1.0, 0.45, true};
  torture.dropout = faults::DropoutFault{1.0, 64, 512};
  torture.dc_shift = faults::DcShiftFault{1.0, -20000.0, 20000.0};
  torture.emi_burst = faults::EmiBurstFault{1.0, 12000.0, 64, 1024};
  torture.clock_drift = faults::ClockDriftFault{1.0, 80000.0};
  torture.truncation = faults::TruncationFault{1.0, 0.05};

  for (AttackKind attack : {AttackKind::kNone, AttackKind::kHijack,
                            AttackKind::kMasquerade}) {
    Scenario s;
    s.attack = attack;
    s.faults = torture;
    s.test_count = 200;
    SCOPED_TRACE(s.name());
    ScenarioRunner runner(harness::kMatrixSeed);
    ScenarioResult r;
    ASSERT_NO_THROW(r = runner.run(s));
    ASSERT_TRUE(r.ok()) << r.error;
    const sim::ScenarioMetrics& m = r.metrics;
    SCOPED_TRACE(harness::describe(m));
    EXPECT_EQ(m.confusion.total() + m.degraded + m.extraction_failures,
              s.test_count);
    EXPECT_EQ(m.fault_stats.faulted_traces, s.test_count);
    // With every capture mangled this badly, confident classification of
    // the full stream would itself be a bug.
    EXPECT_GT(m.degraded + m.extraction_failures, 0u);
  }
}

}  // namespace
