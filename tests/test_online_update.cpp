#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/online_update.hpp"
#include "core/trainer.hpp"
#include "stats/rng.hpp"

namespace {

using vprofile::DistanceMetric;
using vprofile::EdgeSet;
using vprofile::Model;
using vprofile::OnlineUpdater;
using vprofile::UpdateStatus;

vprofile::ExtractionConfig tiny_extraction() {
  vprofile::ExtractionConfig ex;
  ex.prefix_len = 1;
  ex.suffix_len = 2;
  return ex;
}

EdgeSet gaussian_edge_set(std::uint8_t sa, double level, double sigma,
                          stats::Rng& rng, std::size_t dim) {
  EdgeSet es;
  es.sa = sa;
  es.samples.resize(dim);
  for (auto& v : es.samples) v = level + rng.gaussian(0.0, sigma);
  return es;
}

std::vector<EdgeSet> cluster_data(std::uint8_t sa, double level, double sigma,
                                  std::size_t n, stats::Rng& rng,
                                  std::size_t dim) {
  std::vector<EdgeSet> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(gaussian_edge_set(sa, level, sigma, rng, dim));
  }
  return out;
}

Model train_two_clusters(stats::Rng& rng, std::size_t per_cluster = 150) {
  const auto ex = tiny_extraction();
  std::vector<EdgeSet> sets = cluster_data(1, 100.0, 1.0, per_cluster, rng,
                                           ex.dimension());
  const auto more = cluster_data(7, 200.0, 1.0, per_cluster, rng,
                                 ex.dimension());
  sets.insert(sets.end(), more.begin(), more.end());
  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kMahalanobis;
  cfg.extraction = ex;
  auto outcome =
      vprofile::train_with_database(sets, {{1, "A"}, {7, "B"}}, cfg);
  EXPECT_TRUE(outcome.ok()) << outcome.error;
  return std::move(*outcome.model);
}

TEST(OnlineUpdate, UpdatesCountMeanAndMaxDistance) {
  stats::Rng rng(1);
  Model model = train_two_clusters(rng);
  const std::size_t cluster = *model.cluster_of(1);
  const std::size_t n_before = model.clusters()[cluster].edge_set_count;

  OnlineUpdater updater(&model, 10000);
  const EdgeSet es = gaussian_edge_set(1, 100.0, 1.0, rng,
                                       model.dimension());
  EXPECT_EQ(updater.update(es), UpdateStatus::kUpdated);
  EXPECT_EQ(model.clusters()[cluster].edge_set_count, n_before + 1);
}

TEST(OnlineUpdate, UnknownSaIsRefused) {
  stats::Rng rng(2);
  Model model = train_two_clusters(rng);
  OnlineUpdater updater(&model, 10000);
  const EdgeSet es = gaussian_edge_set(0x55, 100.0, 1.0, rng,
                                       model.dimension());
  EXPECT_EQ(updater.update(es), UpdateStatus::kUnknownSa);
}

TEST(OnlineUpdate, DimensionMismatchIsRefused) {
  stats::Rng rng(3);
  Model model = train_two_clusters(rng);
  OnlineUpdater updater(&model, 10000);
  EdgeSet es;
  es.sa = 1;
  es.samples = {1.0, 2.0};
  EXPECT_EQ(updater.update(es), UpdateStatus::kDimensionMismatch);
}

TEST(OnlineUpdate, RetrainBoundStopsUpdates) {
  stats::Rng rng(4);
  Model model = train_two_clusters(rng, 150);
  // Bound just above the current count: one update passes, the next is
  // refused and the cluster is flagged.
  OnlineUpdater updater(&model, 151);
  const EdgeSet es = gaussian_edge_set(1, 100.0, 1.0, rng,
                                       model.dimension());
  EXPECT_EQ(updater.update(es), UpdateStatus::kUpdated);
  EXPECT_EQ(updater.update(es), UpdateStatus::kRetrainRequired);
  const auto need = updater.clusters_needing_retrain();
  ASSERT_EQ(need.size(), 1u);
  EXPECT_EQ(need[0], *model.cluster_of(1));
}

TEST(OnlineUpdate, RejectsEuclideanModelAndBadArguments) {
  stats::Rng rng(5);
  const auto ex = tiny_extraction();
  auto sets = cluster_data(1, 100.0, 1.0, 50, rng, ex.dimension());
  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kEuclidean;
  cfg.extraction = ex;
  auto outcome = vprofile::train_with_database(sets, {{1, "A"}}, cfg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_THROW(OnlineUpdater(&*outcome.model, 100), std::invalid_argument);
  EXPECT_THROW(OnlineUpdater(nullptr, 100), std::invalid_argument);

  stats::Rng rng2(6);
  Model model = train_two_clusters(rng2);
  EXPECT_THROW(OnlineUpdater(&model, 0), std::invalid_argument);
}

// Property: updating with a batch must land exactly where retraining on
// the concatenated data lands (population-normalized covariance).
TEST(OnlineUpdate, MatchesRetrainingOnConcatenatedData) {
  stats::Rng rng(7);
  const auto ex = tiny_extraction();
  const std::size_t dim = ex.dimension();

  auto initial = cluster_data(1, 100.0, 1.5, 120, rng, dim);
  auto more = cluster_data(1, 100.6, 1.5, 60, rng, dim);  // slight drift

  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kMahalanobis;
  cfg.extraction = ex;
  auto base = vprofile::train_with_database(initial, {{1, "A"}}, cfg);
  ASSERT_TRUE(base.ok());
  Model updated = std::move(*base.model);
  OnlineUpdater updater(&updated, 100000);
  EXPECT_EQ(updater.update_all(more), more.size());

  auto all = initial;
  all.insert(all.end(), more.begin(), more.end());
  auto retrained = vprofile::train_with_database(all, {{1, "A"}}, cfg);
  ASSERT_TRUE(retrained.ok());

  const auto& uc = updated.clusters()[0];
  const auto& rc = retrained.model->clusters()[0];
  EXPECT_EQ(uc.edge_set_count, rc.edge_set_count);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(uc.mean[i], rc.mean[i], 1e-9);
  }
  EXPECT_LT(uc.covariance.max_abs_diff(rc.covariance), 1e-8);
  EXPECT_LT(uc.inv_covariance.max_abs_diff(rc.inv_covariance), 1e-5);
  // max_distance can only be >= the retrained one (it never shrinks),
  // and both must cover the new data.
  EXPECT_GE(uc.max_distance + 1e-9, rc.max_distance * 0.5);
}

// The paper's §5.3 use case: a drifting bus voltage pushes distances up;
// online updates pull the model back toward the new operating point.
TEST(OnlineUpdate, AdaptsToDrift) {
  stats::Rng rng(8);
  Model model = train_two_clusters(rng);
  const std::size_t cluster = *model.cluster_of(1);

  // Drifted operating point.
  const double drifted_level = 103.0;
  auto drifted_probe = gaussian_edge_set(1, drifted_level, 1.0, rng,
                                         model.dimension());
  const double before = model.distance(cluster, drifted_probe.samples);

  OnlineUpdater updater(&model, 100000);
  for (int i = 0; i < 400; ++i) {
    updater.update(gaussian_edge_set(1, drifted_level, 1.0, rng,
                                     model.dimension()));
  }
  const double after = model.distance(cluster, drifted_probe.samples);
  EXPECT_LT(after, before * 0.8);
}

TEST(OnlineUpdate, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(UpdateStatus::kUpdated), "updated");
  EXPECT_STREQ(to_string(UpdateStatus::kUnknownSa), "unknown SA");
  EXPECT_STREQ(to_string(UpdateStatus::kRetrainRequired),
               "retrain required");
  EXPECT_STREQ(to_string(UpdateStatus::kDimensionMismatch),
               "dimension mismatch");
}

double max_abs_mean_diff(const Model& a, const Model& b, std::size_t cluster) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    worst = std::max(worst, std::abs(a.clusters()[cluster].mean[i] -
                                     b.clusters()[cluster].mean[i]));
  }
  return worst;
}

TEST(GatedUpdate, FoldsHighMarginBenignFramesOnly) {
  stats::Rng rng(10);
  Model model = train_two_clusters(rng);
  const std::size_t cluster = *model.cluster_of(1);
  const std::size_t n_before = model.clusters()[cluster].edge_set_count;

  vprofile::GatedUpdater gated(&model, {});
  const vprofile::DetectionConfig dc;

  // A frame at the cluster's own mean (distance exactly 0) passes the
  // gate unconditionally — no dependence on a lucky draw.
  EdgeSet benign;
  benign.sa = 1;
  benign.samples = model.clusters()[cluster].mean;
  EXPECT_EQ(gated.consider(benign, vprofile::detect(model, benign, dc)),
            vprofile::GateDecision::kAccepted);
  EXPECT_EQ(model.clusters()[cluster].edge_set_count, n_before + 1);

  // An unknown-SA frame is rejected on the verdict alone.
  const EdgeSet foreign = gaussian_edge_set(0x55, 100.0, 1.0, rng,
                                            model.dimension());
  EXPECT_EQ(gated.consider(foreign, vprofile::detect(model, foreign, dc)),
            vprofile::GateDecision::kRejectedVerdict);

  // A frame near (but inside) the threshold passes detection yet fails
  // the high-margin requirement — the slow-poisoning band.
  vprofile::Detection near_threshold;
  near_threshold.verdict = vprofile::Verdict::kOk;
  near_threshold.expected_cluster = cluster;
  near_threshold.min_distance =
      0.95 * model.clusters()[cluster].max_distance;
  EXPECT_EQ(gated.consider(benign, near_threshold),
            vprofile::GateDecision::kRejectedMargin);

  EXPECT_EQ(gated.stats().accepted, 1u);
  EXPECT_EQ(gated.stats().rejected_verdict, 1u);
  EXPECT_EQ(gated.stats().rejected_margin, 1u);
  EXPECT_EQ(gated.stats().considered(), 3u);

  EXPECT_THROW(vprofile::GatedUpdater(&model, {100, 0.0}),
               std::invalid_argument);
  EXPECT_STREQ(to_string(vprofile::GateDecision::kAccepted), "accepted");
  EXPECT_STREQ(to_string(vprofile::GateDecision::kRejectedMargin),
               "rejected-margin");
}

// The Sagong-style poisoning experiment: a masquerading attacker ramps its
// injected signature toward the victim's operating point in sub-margin
// steps.  An ungated updater folds every frame and walks the stored
// profile to the attacker; the verdict gate stalls the walk — the mean can
// only chase at (acceptance radius / N) per frame, slower than any ramp
// that wants to stay under the margin, so the attacker runs out of
// acceptance and the profile freezes within tolerance of the clean one.
TEST(GatedUpdate, VerdictGateResistsSlowPoisoning) {
  stats::Rng rng(11);
  const Model clean = train_two_clusters(rng);
  const std::size_t cluster = *clean.cluster_of(1);

  Model poisoned = clean;  // ungated victim
  Model guarded = clean;   // gate in front
  OnlineUpdater ungated(&poisoned, 1000000);
  vprofile::GatedUpdater gated(&guarded, {});
  const vprofile::DetectionConfig dc;

  const int n = 800;
  for (int i = 0; i < n; ++i) {
    // 100 -> 140 codes over the run: 0.05 codes per frame, far below the
    // per-frame detection margin.
    const double level =
        100.0 + 40.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    const EdgeSet es = gaussian_edge_set(1, level, 1.0, rng,
                                         clean.dimension());
    ungated.update(es);
    gated.consider(es, vprofile::detect(guarded, es, dc));
  }

  const double walked = max_abs_mean_diff(poisoned, clean, cluster);
  const double held = max_abs_mean_diff(guarded, clean, cluster);
  EXPECT_GT(walked, 10.0);  // ungated profile dragged toward the attacker
  EXPECT_LT(held, 2.0);     // gated profile stays at the clean posture
  // The gate visibly did the work: the ramp's tail was refused.
  EXPECT_GT(gated.stats().rejected_margin + gated.stats().rejected_verdict,
            static_cast<std::uint64_t>(n) / 2);
}

TEST(OnlineUpdate, MaxDistanceGrowsForOutlyingUpdate) {
  stats::Rng rng(9);
  Model model = train_two_clusters(rng);
  const std::size_t cluster = *model.cluster_of(1);
  const double before = model.clusters()[cluster].max_distance;
  OnlineUpdater updater(&model, 100000);
  // An edge set well outside the training cloud (trusted data by
  // assumption) must widen the threshold.
  updater.update(gaussian_edge_set(1, 106.0, 0.5, rng, model.dimension()));
  EXPECT_GT(model.clusters()[cluster].max_distance, before);
}

}  // namespace
