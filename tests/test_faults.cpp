// Unit tests for the analog fault-injection layer (src/faults).
#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "faults/fault.hpp"
#include "stats/rng.hpp"

namespace {

constexpr double kMaxCode = 65535.0;

dsp::Trace ramp(std::size_t n) {
  dsp::Trace t(n);
  // A full-scale ramp exercises both rails and every intermediate level.
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = kMaxCode * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return t;
}

TEST(FaultKindTest, NamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < faults::kNumFaultKinds; ++i) {
    names.emplace_back(faults::to_string(static_cast<faults::FaultKind>(i)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_STREQ(faults::to_string(faults::FaultKind::kClipping), "clipping");
  EXPECT_STREQ(faults::to_string(faults::FaultKind::kTruncation),
               "truncation");
}

TEST(FaultTransformTest, ClippingClampsAboveLevel) {
  const dsp::Trace in = ramp(1000);
  faults::ClippingFault f;
  f.level_fraction = 0.7;
  f.symmetric = false;
  const dsp::Trace out = faults::apply_clipping(in, f, kMaxCode);
  ASSERT_EQ(out.size(), in.size());
  const double rail = 0.7 * kMaxCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LE(out[i], rail + 1e-9);
    if (in[i] < rail) {
      EXPECT_DOUBLE_EQ(out[i], in[i]);
    }
  }
}

TEST(FaultTransformTest, SymmetricClippingClampsBothRails) {
  const dsp::Trace in = ramp(1000);
  faults::ClippingFault f;
  f.level_fraction = 0.8;
  f.symmetric = true;
  const dsp::Trace out = faults::apply_clipping(in, f, kMaxCode);
  const double hi = 0.8 * kMaxCode;
  const double lo = 0.2 * kMaxCode;
  for (double s : out) {
    EXPECT_LE(s, hi + 1e-9);
    EXPECT_GE(s, lo - 1e-9);
  }
}

TEST(FaultTransformTest, DropoutZeroesOneBoundedRun) {
  const dsp::Trace in(500, 1000.0);
  faults::DropoutFault f;
  f.min_len = 16;
  f.max_len = 64;
  stats::Rng rng(7);
  const dsp::Trace out = faults::apply_dropout(in, f, rng);
  ASSERT_EQ(out.size(), in.size());
  std::size_t zeros = 0;
  for (double s : out) zeros += (s == 0.0);
  EXPECT_GE(zeros, f.min_len);
  EXPECT_LE(zeros, f.max_len);
  // The zeroed samples form one contiguous run.
  const auto first = std::find(out.begin(), out.end(), 0.0);
  const auto last = std::find_if(first, out.end(),
                                 [](double s) { return s != 0.0; });
  EXPECT_EQ(static_cast<std::size_t>(last - first), zeros);
}

TEST(FaultTransformTest, DcShiftIsConstantAndClamped) {
  const dsp::Trace in = ramp(200);
  faults::DcShiftFault f;
  f.min_shift = 500.0;
  f.max_shift = 500.0;  // deterministic shift
  stats::Rng rng(1);
  const dsp::Trace out = faults::apply_dc_shift(in, f, kMaxCode, rng);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], std::min(in[i] + 500.0, kMaxCode));
  }
}

TEST(FaultTransformTest, EmiBurstStaysWithinAdcRange) {
  const dsp::Trace in(2000, kMaxCode / 2);
  faults::EmiBurstFault f;
  f.sigma = 20000.0;
  f.min_len = 100;
  f.max_len = 500;
  stats::Rng rng(11);
  const dsp::Trace out = faults::apply_emi_burst(in, f, kMaxCode, rng);
  ASSERT_EQ(out.size(), in.size());
  std::size_t changed = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0.0);
    EXPECT_LE(out[i], kMaxCode);
    changed += (out[i] != in[i]);
  }
  EXPECT_GE(changed, f.min_len / 2);  // a zero-mean draw can land on 0 rarely
  EXPECT_LE(changed, f.max_len);
}

TEST(FaultTransformTest, ClockDriftPreservesEndpointsApproximately) {
  const dsp::Trace in = ramp(1000);
  faults::ClockDriftFault f;
  f.max_drift_ppm = 50000.0;  // 5%
  stats::Rng rng(3);
  const dsp::Trace out = faults::apply_clock_drift(in, f, rng);
  ASSERT_FALSE(out.empty());
  // Resampling a ramp yields a ramp: strictly non-decreasing, same start.
  EXPECT_DOUBLE_EQ(out.front(), in.front());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  const double len_ratio =
      static_cast<double>(out.size()) / static_cast<double>(in.size());
  EXPECT_GE(len_ratio, 0.94);
  EXPECT_LE(len_ratio, 1.06);
}

TEST(FaultTransformTest, TruncationKeepsBoundedPrefix) {
  const dsp::Trace in = ramp(1000);
  faults::TruncationFault f;
  f.min_keep = 0.25;
  stats::Rng rng(5);
  const dsp::Trace out = faults::apply_truncation(in, f, rng);
  ASSERT_GE(out.size(), 250u);
  ASSERT_LE(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], in[i]);
  }
}

TEST(FaultTransformTest, EmptyTracesPassThroughEveryTransform) {
  const dsp::Trace empty;
  stats::Rng rng(1);
  EXPECT_TRUE(faults::apply_clipping(empty, {}, kMaxCode).empty());
  EXPECT_TRUE(faults::apply_dropout(empty, {}, rng).empty());
  EXPECT_TRUE(faults::apply_dc_shift(empty, {}, kMaxCode, rng).empty());
  EXPECT_TRUE(faults::apply_emi_burst(empty, {}, kMaxCode, rng).empty());
  EXPECT_TRUE(faults::apply_clock_drift(empty, {}, rng).empty());
  EXPECT_TRUE(faults::apply_truncation(empty, {}, rng).empty());
}

TEST(FaultProfileTest, CannedProfilesAreNamedUniquelyAndResolvable) {
  const auto profiles = faults::canned_profiles();
  ASSERT_GE(profiles.size(), 7u);
  std::vector<std::string> names;
  for (const auto& p : profiles) {
    names.push_back(p.name);
    const auto found = faults::profile_by_name(p.name);
    ASSERT_TRUE(found.has_value()) << p.name;
    EXPECT_EQ(found->name, p.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_FALSE(faults::profile_by_name("no-such-profile").has_value());
}

TEST(FaultProfileTest, CleanProfileIsEmptyOthersAreNot) {
  EXPECT_TRUE(faults::clean_profile().empty());
  for (const auto& p : faults::canned_profiles()) {
    if (p.name == "clean") continue;
    EXPECT_FALSE(p.empty()) << p.name;
  }
}

TEST(FaultInjectorTest, SlowDriftRampAccumulatesAndSaturates) {
  faults::FaultProfile p = faults::slow_poison();
  p.slow_drift->step = 100.0;
  p.slow_drift->max_shift = 250.0;
  faults::FaultInjector inj(p, kMaxCode, 7);
  const dsp::Trace in(64, 1000.0);

  const dsp::Trace t1 = inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.slow_drift_shift(), 100.0);
  EXPECT_DOUBLE_EQ(t1.front(), 1100.0);

  const dsp::Trace t2 = inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.slow_drift_shift(), 200.0);
  EXPECT_DOUBLE_EQ(t2.front(), 1200.0);

  // The third step would reach 300 but saturates at max_shift, and every
  // later firing stays pinned there.
  for (int i = 0; i < 5; ++i) inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.slow_drift_shift(), 250.0);
  EXPECT_DOUBLE_EQ(inj.apply(in).front(), 1250.0);

  const auto& s = inj.stats();
  EXPECT_EQ(s.applied[static_cast<std::size_t>(faults::FaultKind::kSlowDrift)],
            8u);
}

TEST(FaultInjectorTest, SlowDriftClampsAtTheRails) {
  faults::FaultProfile p = faults::slow_poison();
  p.slow_drift->step = kMaxCode;  // one firing pushes everything past the rail
  p.slow_drift->max_shift = 2.0 * kMaxCode;
  faults::FaultInjector inj(p, kMaxCode, 9);
  const dsp::Trace out = inj.apply(ramp(128));
  for (double c : out) EXPECT_DOUBLE_EQ(c, kMaxCode);
}

TEST(FaultInjectorTest, SameSeedSameOutput) {
  const faults::FaultProfile profile = faults::harsh_environment();
  faults::FaultInjector a(profile, kMaxCode, 42);
  faults::FaultInjector b(profile, kMaxCode, 42);
  for (int i = 0; i < 50; ++i) {
    const dsp::Trace in = ramp(800 + i);
    EXPECT_EQ(a.apply(in), b.apply(in)) << "trace " << i;
  }
  EXPECT_EQ(a.stats().applied, b.stats().applied);
  EXPECT_EQ(a.stats().faulted_traces, b.stats().faulted_traces);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  const faults::FaultProfile profile = faults::emi_storm();
  faults::FaultInjector a(profile, kMaxCode, 1);
  faults::FaultInjector b(profile, kMaxCode, 2);
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = a.apply(ramp(800)) != b.apply(ramp(800));
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, CleanProfileIsIdentityWithZeroStats) {
  faults::FaultInjector injector(faults::clean_profile(), kMaxCode, 9);
  const dsp::Trace in = ramp(500);
  EXPECT_EQ(injector.apply(in), in);
  EXPECT_EQ(injector.stats().applied_total(), 0u);
  EXPECT_EQ(injector.stats().faulted_traces, 0u);
  EXPECT_EQ(injector.stats().total_traces, 1u);
}

TEST(FaultInjectorTest, StatsCountEveryFiredFault) {
  faults::FaultProfile always;
  always.name = "always";
  always.clipping = faults::ClippingFault{1.0, 0.7, false};
  always.dropout = faults::DropoutFault{1.0, 8, 32};
  always.truncation = faults::TruncationFault{1.0, 0.5};
  faults::FaultInjector injector(always, kMaxCode, 13);
  const std::size_t n = 25;
  for (std::size_t i = 0; i < n; ++i) injector.apply(ramp(600));
  const faults::FaultStats& s = injector.stats();
  EXPECT_EQ(s.total_traces, n);
  EXPECT_EQ(s.faulted_traces, n);
  EXPECT_EQ(s.applied[static_cast<std::size_t>(faults::FaultKind::kClipping)],
            n);
  EXPECT_EQ(s.applied[static_cast<std::size_t>(faults::FaultKind::kDropout)],
            n);
  EXPECT_EQ(
      s.applied[static_cast<std::size_t>(faults::FaultKind::kTruncation)], n);
  EXPECT_EQ(s.applied_total(), 3 * n);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  faults::FaultProfile p;
  p.name = "zeroed";
  p.emi_burst = faults::EmiBurstFault{0.0, 5000.0, 16, 64};
  faults::FaultInjector injector(p, kMaxCode, 17);
  const dsp::Trace in = ramp(400);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(injector.apply(in), in);
  EXPECT_EQ(injector.stats().applied_total(), 0u);
}

TEST(FaultInjectorTest, ResetStatsClearsCounters) {
  faults::FaultInjector injector(faults::truncating_tap(), kMaxCode, 23);
  for (int i = 0; i < 30; ++i) injector.apply(ramp(300));
  EXPECT_EQ(injector.stats().total_traces, 30u);
  injector.reset_stats();
  EXPECT_EQ(injector.stats().total_traces, 0u);
  EXPECT_EQ(injector.stats().applied_total(), 0u);
}

TEST(FaultInjectorTest, OutputAlwaysWithinAdcRange) {
  // Physical faults can never produce codes a real ADC cannot emit.
  faults::FaultProfile p = faults::harsh_environment();
  faults::FaultInjector injector(p, kMaxCode, 29);
  for (int i = 0; i < 100; ++i) {
    for (double s : injector.apply(ramp(700))) {
      ASSERT_GE(s, 0.0);
      ASSERT_LE(s, kMaxCode);
      ASSERT_TRUE(std::isfinite(s));
    }
  }
}

// --- Sagong-style attack transforms (kOvercurrent, kCorruptionBurst,
// kDriftMasquerade). ---

TEST(AttackTransformTest, OvercurrentZeroParametersIsBitExactNoOp) {
  // The adversary search's grid includes the all-zero point; it must
  // reproduce the clean trace bit for bit, or the search's baseline cell
  // would differ from clean traffic.
  const dsp::Trace in = ramp(1024);
  faults::OvercurrentFault f;
  f.gain = 0.0;
  f.offset = 0.0;
  f.dominant_fraction = 0.6;
  EXPECT_EQ(faults::apply_overcurrent(in, f, kMaxCode), in);
}

TEST(AttackTransformTest, OvercurrentBoostsOnlyDominantSamples) {
  const dsp::Trace in = ramp(1000);
  faults::OvercurrentFault f;
  f.gain = 0.25;
  f.dominant_fraction = 0.6;
  f.offset = 0.0;
  const double level = f.dominant_fraction * kMaxCode;
  const dsp::Trace out = faults::apply_overcurrent(in, f, kMaxCode);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (in[i] < level) {
      EXPECT_DOUBLE_EQ(out[i], in[i]) << "recessive sample " << i;
    } else {
      EXPECT_DOUBLE_EQ(out[i], std::min(in[i] * 1.25, kMaxCode))
          << "dominant sample " << i;
    }
  }
}

TEST(AttackTransformTest, CorruptionBurstZeroAmplitudeIsBitExactNoOp) {
  const dsp::Trace in = ramp(1024);
  faults::CorruptionBurstFault f;
  f.amplitude = 0.0;
  f.duty = 1.0;  // every sample is inside the corruption window
  EXPECT_EQ(faults::apply_corruption_burst(in, f, kMaxCode), in);
}

TEST(AttackTransformTest, CorruptionBurstTouchesOnlyTheDutyWindow) {
  const dsp::Trace in(256, kMaxCode / 2);
  faults::CorruptionBurstFault f;
  f.amplitude = 5000.0;
  f.period_samples = 64.0;
  f.phase = 0.0;
  f.duty = 0.25;
  const dsp::Trace out = faults::apply_corruption_burst(in, f, kMaxCode);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double frac = static_cast<double>(i % 64) / 64.0;
    if (frac >= f.duty) {
      EXPECT_DOUBLE_EQ(out[i], in[i]) << "sample " << i << " outside window";
    }
    EXPECT_GE(out[i], 0.0);
    EXPECT_LE(out[i], kMaxCode);
  }
  EXPECT_NE(out, in) << "a nonzero burst must corrupt something";
}

TEST(AttackTransformTest, DutyCycleScheduleIsExactBresenham) {
  // duty 1 fires every tick, duty 0 never; duty 0.5 fires on exactly the
  // even ticks (the quota floor(tick/2) advances there and nowhere else).
  for (std::uint64_t tick = 1; tick <= 16; ++tick) {
    EXPECT_TRUE(faults::duty_cycle_fires(tick, 1.0)) << tick;
    EXPECT_FALSE(faults::duty_cycle_fires(tick, 0.0)) << tick;
    EXPECT_EQ(faults::duty_cycle_fires(tick, 0.5), tick % 2 == 0) << tick;
  }
  // Any duty's firing count over N ticks is exactly floor(N * duty).
  for (double duty : {0.1, 0.3, 0.37, 0.75, 0.9}) {
    std::uint64_t fired = 0;
    for (std::uint64_t tick = 1; tick <= 1000; ++tick) {
      fired += faults::duty_cycle_fires(tick, duty) ? 1u : 0u;
    }
    EXPECT_EQ(fired, static_cast<std::uint64_t>(std::floor(1000.0 * duty)))
        << "duty " << duty;
  }
}

TEST(FaultInjectorTest, DriftMasqueradeRampSaturatesAtMaxShift) {
  faults::FaultProfile p;
  p.name = "masquerade";
  p.drift_masquerade = faults::DriftMasqueradeFault{
      .probability = 1.0, .ramp_rate = 100.0, .max_shift = 250.0,
      .duty = 1.0};
  faults::FaultInjector inj(p, kMaxCode, 11);
  const dsp::Trace in(64, 1000.0);

  EXPECT_DOUBLE_EQ(inj.apply(in).front(), 1100.0);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 100.0);
  EXPECT_DOUBLE_EQ(inj.apply(in).front(), 1200.0);
  // The third firing would reach 300 but saturates at max_shift; later
  // firings stay pinned.
  for (int i = 0; i < 5; ++i) inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 250.0);
  EXPECT_DOUBLE_EQ(inj.apply(in).front(), 1250.0);
}

TEST(FaultInjectorTest, DriftMasqueradeClampsAtTheAdcRails) {
  faults::FaultProfile p;
  p.name = "masquerade-rails";
  p.drift_masquerade = faults::DriftMasqueradeFault{
      .probability = 1.0, .ramp_rate = kMaxCode, .max_shift = 2.0 * kMaxCode,
      .duty = 1.0};
  faults::FaultInjector inj(p, kMaxCode, 13);
  // One firing pushes the whole ramp past the upper rail.
  for (double c : inj.apply(ramp(128))) EXPECT_DOUBLE_EQ(c, kMaxCode);
}

TEST(FaultInjectorTest, DriftMasqueradeDutyGatesTheRamp) {
  faults::FaultProfile p;
  p.name = "masquerade-duty";
  p.drift_masquerade = faults::DriftMasqueradeFault{
      .probability = 1.0, .ramp_rate = 10.0, .max_shift = 1000.0,
      .duty = 0.5};
  faults::FaultInjector inj(p, kMaxCode, 17);
  const dsp::Trace in(32, 1000.0);
  // Ticks 1..4 at duty 0.5: advance on the even ticks only.
  inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 0.0);
  inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 10.0);
  inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 10.0);
  inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 20.0);
}

TEST(FaultInjectorTest, SlowDriftComposesWithMasqueradeInEnumOrder) {
  // Both ramps configured: kSlowDrift (enum order) applies first, then
  // kDriftMasquerade stacks its own shift on the already-shifted trace.
  // The two cumulative states are independent and the result equals the
  // manual composition of the two transforms.
  faults::FaultProfile p;
  p.name = "both-ramps";
  p.slow_drift = faults::SlowDriftFault{
      .probability = 1.0, .step = 100.0, .max_shift = 300.0};
  p.drift_masquerade = faults::DriftMasqueradeFault{
      .probability = 1.0, .ramp_rate = 40.0, .max_shift = 500.0, .duty = 1.0};
  faults::FaultInjector inj(p, kMaxCode, 19);
  const dsp::Trace in(64, 1000.0);

  const dsp::Trace t1 = inj.apply(in);
  EXPECT_DOUBLE_EQ(inj.slow_drift_shift(), 100.0);
  EXPECT_DOUBLE_EQ(inj.masquerade_shift(), 40.0);
  const dsp::Trace manual = faults::apply_slow_drift(
      faults::apply_slow_drift(in, 100.0, kMaxCode), 40.0, kMaxCode);
  EXPECT_EQ(t1, manual);
  EXPECT_DOUBLE_EQ(t1.front(), 1140.0);

  const dsp::Trace t2 = inj.apply(in);
  EXPECT_DOUBLE_EQ(t2.front(), 1280.0);  // 1000 + 200 + 80
  const auto& applied = inj.stats().applied;
  EXPECT_EQ(applied[static_cast<std::size_t>(faults::FaultKind::kSlowDrift)],
            2u);
  EXPECT_EQ(
      applied[static_cast<std::size_t>(faults::FaultKind::kDriftMasquerade)],
      2u);
}

}  // namespace
