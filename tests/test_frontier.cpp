// Golden tests for the adaptive-adversary frontier harness
// (sim/adversary.hpp).
//
// Two properties are pinned, in the same spirit as the scenario-matrix
// fingerprints in test_scenarios.cpp:
//  1. Bit-identical determinism: the same seed, through a fresh
//     ScenarioRunner and AdversarySearch, reproduces the exact frontier
//     fingerprint AND the exact report bytes (to_json), on three pinned
//     seeds.  Different seeds diverge.
//  2. Worker invariance: the hill-climb's result is a pure function of
//     the candidate list, so the frontier does not change with
//     config.num_workers.
//
// A third test runs the reduced reference workload (the bench-catalog
// frontier seed) and asserts the acceptance narrative: at least one
// family evades the plain detector (margin < 0) and a named defense
// closes that cell.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "sim/adversary.hpp"
#include "sim/scenario.hpp"

namespace {

using sim::AdversaryConfig;
using sim::AdversarySearch;
using sim::AttackFamily;
using sim::DefenseArm;
using sim::FamilyFrontier;
using sim::FrontierReport;

// Reduced-scale search: short streams, single hill-climb generation, and
// only the two families with distinct stream shapes (foreign-frame bursts
// and benign-traffic drift) so the suite stays seconds, not minutes.
AdversaryConfig reduced_config() {
  AdversaryConfig config;
  config.stream_count = 48;
  config.generations = 1;
  config.families = {AttackFamily::kCorruptionBurst,
                     AttackFamily::kDriftMasquerade};
  return config;
}

FrontierReport run_frontier(std::uint64_t seed, const AdversaryConfig& config) {
  sim::ScenarioRunner runner(seed);
  AdversarySearch search(runner, config);
  return search.run();
}

// The three pinned seeds.  Arbitrary but fixed: changing them invalidates
// the divergence assertions below, nothing else.
constexpr std::uint64_t kPinnedSeeds[] = {0x5eed0f01, 0x5eed0f02, 0x5eed0f03};

// The bench-catalog seed the frontier driver publishes artifacts under
// (bench_seed("frontier") in bench/bench_common.cpp).
constexpr std::uint64_t kCatalogSeed = 0xf407e2;

TEST(FrontierDeterminism, FingerprintBitIdenticalAcrossRuns) {
  const AdversaryConfig config = reduced_config();
  std::uint64_t fingerprints[3] = {};
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(testing::Message() << "seed " << kPinnedSeeds[i]);
    const FrontierReport first = run_frontier(kPinnedSeeds[i], config);
    const FrontierReport second = run_frontier(kPinnedSeeds[i], config);
    EXPECT_EQ(first.fingerprint(), second.fingerprint());
    // Byte-identical reports, not just matching digests: the published
    // FRONTIER_report.json must be reproducible bit for bit.
    EXPECT_EQ(first.to_json(), second.to_json());
    fingerprints[i] = first.fingerprint();
  }
  // The fingerprint must actually depend on the seed, or the identity
  // assertions above would pass vacuously.
  EXPECT_NE(fingerprints[0], fingerprints[1]);
  EXPECT_NE(fingerprints[1], fingerprints[2]);
  EXPECT_NE(fingerprints[0], fingerprints[2]);
}

TEST(FrontierDeterminism, HillClimbInvariantToWorkerCount) {
  // Two generations so the refinement loop (not just the coarse sweep)
  // runs under both worker counts.
  AdversaryConfig config = reduced_config();
  config.generations = 2;

  AdversaryConfig serial = config;
  serial.num_workers = 1;
  const FrontierReport one = run_frontier(kPinnedSeeds[0], serial);

  AdversaryConfig threaded = config;
  threaded.num_workers = 3;
  const FrontierReport three = run_frontier(kPinnedSeeds[0], threaded);

  EXPECT_EQ(one.fingerprint(), three.fingerprint());
  EXPECT_EQ(one.to_json(), three.to_json());
}

TEST(Frontier, ReferenceWorkloadFindsClosedEvasion) {
  AdversaryConfig config;
  config.stream_count = 64;
  config.generations = 1;
  const FrontierReport report = run_frontier(kCatalogSeed, config);

  ASSERT_EQ(report.families.size(), 3u);
  bool closed_evasion = false;
  for (const FamilyFrontier& f : report.families) {
    SCOPED_TRACE(sim::to_string(f.family));
    EXPECT_GT(f.evaluations, 0u);
    EXPECT_GT(f.weakest.arm(DefenseArm::kPlain).attack_frames, 0u);
    // A cell with a negative plain margin is an evasion; the harness must
    // name which defense closes it.
    if (f.weakest.plain_margin() < 0.0 && f.closing_defense.has_value()) {
      EXPECT_GE(f.weakest.arm(*f.closing_defense).margin, 0.0);
      closed_evasion = true;
    }
  }
  EXPECT_TRUE(closed_evasion)
      << "reference workload must expose at least one plain-detector "
         "evasion that a named defense closes";
}

TEST(Frontier, ParamSpecsNameTheSearchedDimensions) {
  for (AttackFamily family :
       {AttackFamily::kOvercurrent, AttackFamily::kCorruptionBurst,
        AttackFamily::kDriftMasquerade}) {
    SCOPED_TRACE(sim::to_string(family));
    const auto specs = AdversarySearch::param_specs(family);
    bool any_searched = false;
    for (const sim::ParamSpec& spec : specs) {
      if (std::string(spec.name) == "unused") {
        EXPECT_EQ(spec.grid, 1u);
        continue;
      }
      any_searched = true;
      EXPECT_LT(spec.lo, spec.hi);
      EXPECT_GE(spec.grid, 2u);
    }
    EXPECT_TRUE(any_searched);
  }
}

}  // namespace
