// End-to-end tests over the full pipeline: simulated vehicle -> analog
// capture -> extraction -> training -> detection, reproducing the paper's
// headline claims at reduced scale.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/online_update.hpp"
#include "io/model_store.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"

namespace {

using sim::Experiment;
using sim::ExperimentParams;
using vprofile::DistanceMetric;

ExperimentParams small_params(DistanceMetric metric) {
  ExperimentParams p;
  p.metric = metric;
  p.train_count = 1500;
  p.test_count = 2500;
  return p;
}

TEST(VehicleAIntegration, MahalanobisFalsePositiveTestIsNearPerfect) {
  Experiment exp(sim::vehicle_a(), 101);
  const auto result =
      exp.false_positive_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.accuracy(), 0.999);
  EXPECT_EQ(result.extraction_failures, 0u);
}

TEST(VehicleAIntegration, MahalanobisHijackTestIsNearPerfect) {
  Experiment exp(sim::vehicle_a(), 102);
  const auto result =
      exp.hijack_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.f_score(), 0.999);
  // ~20% of the stream is attacks.
  const double attack_rate =
      static_cast<double>(result.confusion.true_positives() +
                          result.confusion.false_negatives()) /
      static_cast<double>(result.confusion.total());
  EXPECT_NEAR(attack_rate, 0.2, 0.05);
}

TEST(VehicleAIntegration, MahalanobisForeignTestIsNearPerfect) {
  Experiment exp(sim::vehicle_a(), 103);
  const auto result =
      exp.foreign_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.f_score(), 0.99);
}

TEST(VehicleAIntegration, EuclideanForeignTestCollapses) {
  // The paper's headline contrast (Tables 4.1c vs 4.3c): Euclidean cannot
  // see the foreign device imitating its most-similar peer.
  Experiment exp(sim::vehicle_a(), 104);
  const auto result =
      exp.foreign_test(small_params(DistanceMetric::kEuclidean));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_LE(result.confusion.f_score(), 0.5);
}

TEST(VehicleAIntegration, EuclideanStillFineOnFalsePositives) {
  Experiment exp(sim::vehicle_a(), 105);
  const auto result =
      exp.false_positive_test(small_params(DistanceMetric::kEuclidean));
  ASSERT_TRUE(result.ok()) << result.error;
  // At this reduced scale the Euclidean margin sweep has fewer points to
  // tune against, so allow slightly more slack than the paper's 0.99994;
  // the contrast that matters is against Vehicle B's ~0.89.
  EXPECT_GE(result.confusion.accuracy(), 0.98);
}

TEST(VehicleAIntegration, MostSimilarPairIsOneAndFour) {
  // Vehicle A's presets encode the paper's finding that ECUs 1 and 4 have
  // the closest profiles.
  Experiment exp(sim::vehicle_a(), 106);
  auto trained = exp.train(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(trained.ok()) << trained.error;
  const auto pair = Experiment::most_similar_pair(*trained.model);
  const auto lo = std::min(pair.first, pair.second);
  const auto hi = std::max(pair.first, pair.second);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 4u);
}

TEST(VehicleBIntegration, MahalanobisBeatsEuclideanDecisively) {
  // Paper Tables 4.2 vs 4.4: Euclidean degrades badly on Vehicle B's
  // close profiles; Mahalanobis stays essentially perfect.
  Experiment mahal(sim::vehicle_b(), 107);
  const auto m =
      mahal.false_positive_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(m.ok()) << m.error;

  Experiment euclid(sim::vehicle_b(), 107);
  const auto e =
      euclid.false_positive_test(small_params(DistanceMetric::kEuclidean));
  ASSERT_TRUE(e.ok()) << e.error;

  EXPECT_GE(m.confusion.accuracy(), 0.999);
  EXPECT_LE(e.confusion.accuracy(), 0.97);
  EXPECT_GT(m.confusion.accuracy(), e.confusion.accuracy());
}

TEST(VehicleBIntegration, MahalanobisHijackAndForeignStayStrong) {
  Experiment exp(sim::vehicle_b(), 108);
  const auto hijack =
      exp.hijack_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(hijack.ok()) << hijack.error;
  EXPECT_GE(hijack.confusion.f_score(), 0.995);

  const auto foreign =
      exp.foreign_test(small_params(DistanceMetric::kMahalanobis));
  ASSERT_TRUE(foreign.ok()) << foreign.error;
  EXPECT_GE(foreign.confusion.f_score(), 0.99);
}

TEST(SamplingSweep, HalfRateStillDetects) {
  // Table 4.6: 10 MS/s (factor 2 from Vehicle A's 20 MS/s) keeps scores.
  Experiment exp(sim::vehicle_a(), 109);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.front_end.downsample_factor = 2;
  const auto result = exp.hijack_test(p);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.f_score(), 0.99);
}

TEST(SamplingSweep, QuarterRateStillDetects) {
  Experiment exp(sim::vehicle_a(), 110);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.front_end.downsample_factor = 4;
  const auto result = exp.false_positive_test(p);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.accuracy(), 0.995);
}

TEST(SamplingSweep, ReducedResolutionStillDetects) {
  // 12-bit data (dropping 4 LSBs of the 16-bit capture) was the paper's
  // chosen operating point.
  Experiment exp(sim::vehicle_a(), 111);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.front_end.resolution_bits = 12;
  const auto result = exp.false_positive_test(p);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.accuracy(), 0.999);
}

TEST(SamplingSweep, VeryLowResolutionGoesSingular) {
  // Paper §4.3: "We could not reduce the resolution past 10 bits since it
  // resulted in singular covariance matrices."  Our noise floor sits just
  // below the 10-bit step, reproducing the failure without a ridge.
  Experiment exp(sim::vehicle_a(), 112);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.front_end.resolution_bits = 8;
  p.ridge = 0.0;
  const auto result = exp.false_positive_test(p);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("singular"), std::string::npos);
}

TEST(SamplingSweep, RidgeRecoversLowResolution) {
  Experiment exp(sim::vehicle_a(), 113);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.front_end.resolution_bits = 8;
  p.ridge = 1.0;
  const auto result = exp.false_positive_test(p);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.accuracy(), 0.98);
}

TEST(ModelPersistence, ReloadedModelScoresIdentically) {
  Experiment exp(sim::vehicle_a(), 114);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.train_count = 1200;
  auto trained = exp.train(p);
  ASSERT_TRUE(trained.ok()) << trained.error;

  std::stringstream ss;
  ASSERT_TRUE(io::save_model(*trained.model, ss));
  const auto reloaded = io::load_model(ss);
  ASSERT_TRUE(reloaded.has_value());

  const auto stream = sim::make_hijack_stream(
      exp.vehicle(), 400, 0.3, analog::Environment::reference());
  const vprofile::DetectionConfig dc{5.0};
  for (const auto& lc : stream) {
    const auto es =
        vprofile::extract_edge_set(lc.capture.codes, trained.model->extraction());
    if (!es) continue;
    const auto a = vprofile::detect(*trained.model, *es, dc);
    const auto b = vprofile::detect(*reloaded, *es, dc);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_DOUBLE_EQ(a.min_distance, b.min_distance);
  }
}

TEST(OnlineUpdateIntegration, AdaptationBeatsStaleModelUnderDrift) {
  // §5.3: temperature drift raises distances; the online updater keeps the
  // model centred while a stale model drifts toward false positives.
  Experiment exp(sim::vehicle_a(), 115);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  p.env = analog::Environment{units::Celsius{0.0}, units::Volts{13.60}};
  auto trained = exp.train(p);
  ASSERT_TRUE(trained.ok()) << trained.error;
  vprofile::Model stale = *trained.model;
  vprofile::Model adaptive = *trained.model;
  vprofile::OnlineUpdater updater(&adaptive, 1u << 20);

  double stale_excess_sum = 0.0;
  double adaptive_excess_sum = 0.0;
  std::size_t n = 0;
  for (double temp : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    const auto caps =
        exp.vehicle().capture(
            400,
            analog::Environment{units::Celsius{temp}, units::Volts{13.60}});
    for (const auto& cap : caps) {
      const auto es =
          vprofile::extract_edge_set(cap.codes, stale.extraction());
      if (!es) continue;
      const auto cs = stale.cluster_of(es->sa);
      if (!cs) continue;
      stale_excess_sum += stale.distance(*cs, es->samples) -
                          stale.clusters()[*cs].max_distance;
      adaptive_excess_sum += adaptive.distance(*cs, es->samples) -
                             adaptive.clusters()[*cs].max_distance;
      ++n;
      updater.update(*es);  // trusted update stream
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(adaptive_excess_sum / static_cast<double>(n),
                stale_excess_sum / static_cast<double>(n));
}

TEST(ThreatModel, UnknownSaIsHardAnomaly) {
  Experiment exp(sim::vehicle_a(), 116);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  auto trained = exp.train(p);
  ASSERT_TRUE(trained.ok());

  // Craft a frame with an SA nobody owns, transmitted by ECU 0.
  canbus::DataFrame frame;
  frame.id = canbus::J1939Id{3, 0xF004, 0xEE};
  frame.payload = {1, 2, 3};
  const auto cap = exp.vehicle().synthesize_message(
      frame, 0, analog::Environment::reference());
  const auto es =
      vprofile::extract_edge_set(cap.codes, trained.model->extraction());
  ASSERT_TRUE(es.has_value());
  const auto d =
      vprofile::detect(*trained.model, *es, vprofile::DetectionConfig{});
  EXPECT_EQ(d.verdict, vprofile::Verdict::kUnknownSa);
}

TEST(TrainByDistanceIntegration, RecoversEcuGroupingWithoutDatabase) {
  // The "unfortunate" path of Algorithm 2 on real captures: SA groups from
  // the same ECU merge, different ECUs stay apart.
  sim::Vehicle vehicle(sim::vehicle_a(), 117);
  const auto extraction = sim::default_extraction(vehicle.config());
  std::vector<vprofile::EdgeSet> sets;
  for (const auto& cap :
       vehicle.capture(1500, analog::Environment::reference())) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kMahalanobis;
  cfg.extraction = extraction;
  const auto outcome = vprofile::train_by_distance(sets, cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_EQ(outcome.model->clusters().size(), 5u);
  // ECU 1's two SAs (0x03, 0x05) must share a cluster; ECU 3's (0x21,
  // 0x31) likewise.
  EXPECT_EQ(outcome.model->cluster_of(0x03), outcome.model->cluster_of(0x05));
  EXPECT_EQ(outcome.model->cluster_of(0x21), outcome.model->cluster_of(0x31));
  EXPECT_NE(outcome.model->cluster_of(0x03), outcome.model->cluster_of(0x00));
}

TEST(Attribution, HijackOriginIsIdentified) {
  // §3.2.3: for attacks from trained ECUs the predicted cluster names the
  // origin.
  Experiment exp(sim::vehicle_a(), 118);
  ExperimentParams p = small_params(DistanceMetric::kMahalanobis);
  auto trained = exp.train(p);
  ASSERT_TRUE(trained.ok());

  canbus::DataFrame frame;
  frame.id = exp.vehicle().config().ecus[0].messages[0].id;  // claim ECU 0
  frame.payload = {9, 9, 9};
  const auto cap = exp.vehicle().synthesize_message(
      frame, 2, analog::Environment::reference());  // sent by ECU 2
  const auto es =
      vprofile::extract_edge_set(cap.codes, trained.model->extraction());
  ASSERT_TRUE(es.has_value());
  const auto d = vprofile::detect(*trained.model, *es,
                                  vprofile::DetectionConfig{5.0});
  EXPECT_EQ(d.verdict, vprofile::Verdict::kClusterMismatch);
  ASSERT_TRUE(d.predicted_cluster.has_value());
  EXPECT_EQ(trained.model->clusters()[*d.predicted_cluster].name, "ECU 2");
}

TEST(ClusterThresholds, PerClusterThresholdExtractionWorks) {
  // §5.1: per-cluster bit thresholds estimated from each ECU's own traces
  // still produce valid models.
  sim::Vehicle vehicle(sim::vehicle_a(), 119);
  const auto caps = vehicle.capture(1500, analog::Environment::reference());
  const auto base = sim::default_extraction(vehicle.config());

  // First pass: per-ECU threshold estimates from raw traces.
  std::vector<double> per_ecu_threshold(5, 0.0);
  std::vector<std::size_t> counts(5, 0);
  for (const auto& cap : caps) {
    per_ecu_threshold[cap.true_ecu] +=
        vprofile::estimate_bit_threshold(cap.codes);
    ++counts[cap.true_ecu];
  }
  for (std::size_t e = 0; e < 5; ++e) {
    ASSERT_GT(counts[e], 0u);
    per_ecu_threshold[e] /= static_cast<double>(counts[e]);
  }

  // Second pass: extract with each ECU's own threshold and train.
  std::vector<vprofile::EdgeSet> sets;
  for (const auto& cap : caps) {
    vprofile::ExtractionConfig cfg = base;
    cfg.bit_threshold = per_ecu_threshold[cap.true_ecu];
    if (auto es = vprofile::extract_edge_set(cap.codes, cfg)) {
      sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kMahalanobis;
  cfg.extraction = base;
  const auto outcome =
      vprofile::train_with_database(sets, vehicle.database(), cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_EQ(outcome.model->clusters().size(), 5u);
}

}  // namespace
