#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "dsp/adc.hpp"
#include "dsp/fir.hpp"
#include "dsp/resample.hpp"
#include "dsp/trace.hpp"

namespace {

using dsp::AdcModel;
using dsp::Trace;

TEST(Adc, QuantizesRailsToCodeRange) {
  const AdcModel adc(units::SampleRateHz{10e6}, 12, units::Volts{-1.0},
                     units::Volts{3.0});
  EXPECT_DOUBLE_EQ(adc.quantize(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(adc.quantize(3.0), 4095.0);
  EXPECT_DOUBLE_EQ(adc.quantize(-5.0), 0.0);   // clamps below
  EXPECT_DOUBLE_EQ(adc.quantize(99.0), 4095.0);  // clamps above
}

TEST(Adc, MidScaleValue) {
  const AdcModel adc(units::SampleRateHz{10e6}, 16, units::Volts{-1.0},
                     units::Volts{3.0});
  // 1.0 V is exactly halfway through [-1, 3].
  EXPECT_NEAR(adc.quantize(1.0), 65535.0 / 2.0, 1.0);
}

TEST(Adc, RoundTripWithinHalfLsb) {
  const AdcModel adc(units::SampleRateHz{10e6}, 12, units::Volts{-1.0},
                     units::Volts{3.0});
  const double lsb = 4.0 / 4095.0;
  for (double v = -0.9; v < 2.9; v += 0.137) {
    EXPECT_NEAR(adc.to_volts(adc.quantize(v)), v, lsb / 2.0 + 1e-12);
  }
}

TEST(Adc, PaperThresholdLandsMidEdgeFor16Bit) {
  // The paper's Fig 2.5 threshold of 38000 (16-bit) should sit between the
  // recessive (~0 V) and dominant (~2 V) code levels with this range.
  const AdcModel adc(units::SampleRateHz{20e6}, 16);
  const double rec = adc.quantize(0.0);
  const double dom = adc.quantize(2.0);
  EXPECT_GT(38000.0, rec);
  EXPECT_LT(38000.0, dom);
}

TEST(Adc, LowerResolutionCoarsensCodes) {
  const AdcModel adc16(units::SampleRateHz{10e6}, 16, units::Volts{-1.0},
                       units::Volts{3.0});
  const AdcModel adc8 = adc16.with_resolution(8);
  EXPECT_EQ(adc8.max_code(), 255u);
  EXPECT_EQ(adc8.resolution_bits(), 8);
  EXPECT_DOUBLE_EQ(adc8.v_min().value(), adc16.v_min().value());
}

TEST(Adc, WithSampleRateKeepsRange) {
  const AdcModel adc(units::SampleRateHz{10e6}, 12, units::Volts{-1.0},
                     units::Volts{3.0});
  const AdcModel fast = adc.with_sample_rate(units::SampleRateHz{20e6});
  EXPECT_DOUBLE_EQ(fast.sample_rate().value(), 20e6);
  EXPECT_EQ(fast.resolution_bits(), 12);
}

TEST(Adc, ValidatesConstruction) {
  EXPECT_THROW(AdcModel(units::SampleRateHz{0.0}, 12), std::invalid_argument);
  EXPECT_THROW(AdcModel(units::SampleRateHz{1e6}, 1), std::invalid_argument);
  EXPECT_THROW(AdcModel(units::SampleRateHz{1e6}, 25), std::invalid_argument);
  EXPECT_THROW(AdcModel(units::SampleRateHz{1e6}, 12, units::Volts{3.0},
                        units::Volts{-1.0}),
               std::invalid_argument);
}

TEST(Adc, QuantizeTraceMapsAllSamples) {
  const AdcModel adc(units::SampleRateHz{10e6}, 12, units::Volts{-1.0},
                     units::Volts{3.0});
  const Trace out = adc.quantize_trace({0.0, 1.0, 2.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], adc.quantize(0.0));
  EXPECT_DOUBLE_EQ(out[2], adc.quantize(2.0));
}

TEST(Requantize, DropsLsbsKeepingScale) {
  // 16 -> 14 bits: codes snap to multiples of 4.
  const Trace out = dsp::requantize_codes({5.0, 38001.0, 65535.0}, 16, 14);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 38000.0);
  EXPECT_DOUBLE_EQ(out[2], 65532.0);
}

TEST(Requantize, SameWidthIsIdentity) {
  const Trace in = {1.0, 2.0, 3.0};
  EXPECT_EQ(dsp::requantize_codes(in, 12, 12), in);
}

TEST(Requantize, ValidatesWidths) {
  EXPECT_THROW(dsp::requantize_codes({1.0}, 10, 12), std::invalid_argument);
  EXPECT_THROW(dsp::requantize_codes({1.0}, 0, 0), std::invalid_argument);
}

TEST(Requantize, CollapsesSubStepVariation) {
  // Variation smaller than the new step disappears — the mechanism behind
  // the paper's singular covariance matrices at low resolutions.
  Trace in;
  for (int i = 0; i < 16; ++i) in.push_back(1000.0 + i);  // +-16 codes
  const Trace out = dsp::requantize_codes(in, 16, 10);    // step 64
  for (double v : out) EXPECT_DOUBLE_EQ(v, 960.0);
}

TEST(Downsample, KeepsEveryKth) {
  const Trace out = dsp::downsample({0, 1, 2, 3, 4, 5, 6, 7}, 3);
  EXPECT_EQ(out, (Trace{0, 3, 6}));
}

TEST(Downsample, PhaseOffsetsStart) {
  const Trace out = dsp::downsample({0, 1, 2, 3, 4, 5}, 2, 1);
  EXPECT_EQ(out, (Trace{1, 3, 5}));
}

TEST(Downsample, FactorOneIsIdentity) {
  const Trace in = {5, 6, 7};
  EXPECT_EQ(dsp::downsample(in, 1), in);
}

TEST(Downsample, Validates) {
  EXPECT_THROW(dsp::downsample({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(dsp::downsample({1.0}, 2, 2), std::invalid_argument);
}

TEST(FindSof, LocatesFirstCrossing) {
  const Trace t = {0, 0, 0, 100, 100, 0};
  const auto sof = dsp::find_sof(t, 50.0);
  ASSERT_TRUE(sof.has_value());
  EXPECT_EQ(*sof, 3u);
}

TEST(FindSof, NoCrossingReturnsNullopt) {
  EXPECT_FALSE(dsp::find_sof({0, 1, 2}, 50.0).has_value());
  EXPECT_FALSE(dsp::find_sof({}, 50.0).has_value());
}

TEST(AlignToEdgeStart, WalksBackToCrossing) {
  //             0  1  2    3    4    5
  const Trace t = {0, 0, 100, 100, 100, 0};
  EXPECT_EQ(dsp::align_to_edge_start(t, 4, 50.0), 2u);
  EXPECT_EQ(dsp::align_to_edge_start(t, 1, 50.0), 0u);
}

TEST(AlignToEdgeStart, HandlesEdgesOfTrace) {
  const Trace t = {100, 100};
  EXPECT_EQ(dsp::align_to_edge_start(t, 10, 50.0), 0u);  // clamped pos
  EXPECT_EQ(dsp::align_to_edge_start({}, 0, 50.0), 0u);
}

TEST(Fir, PreservesDcLevel) {
  const dsp::FirLowPass lp(1e6, 10e6, 31);
  const Trace out = lp.apply(Trace(100, 5.0));
  for (double v : out) EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(Fir, AttenuatesHighFrequency) {
  const dsp::FirLowPass lp(0.5e6, 10e6, 63);
  // Nyquist-rate alternating signal should be strongly attenuated.
  Trace in(200);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const Trace out = lp.apply(in);
  double max_abs = 0.0;
  for (std::size_t i = 50; i < 150; ++i) {
    max_abs = std::max(max_abs, std::fabs(out[i]));
  }
  EXPECT_LT(max_abs, 0.05);
}

TEST(Fir, PassesLowFrequency) {
  const dsp::FirLowPass lp(2e6, 10e6, 63);
  // 100 kHz sine sampled at 10 MHz is far below cutoff.
  Trace in(400);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(2.0 * M_PI * 1e5 * static_cast<double>(i) / 10e6);
  }
  const Trace out = lp.apply(in);
  for (std::size_t i = 100; i < 300; ++i) {
    EXPECT_NEAR(out[i], in[i], 0.02);
  }
}

TEST(Fir, OutputLengthMatchesInput) {
  const dsp::FirLowPass lp(1e6, 10e6, 15);
  EXPECT_EQ(lp.apply(Trace(37, 1.0)).size(), 37u);
  EXPECT_TRUE(lp.apply({}).empty());
}

TEST(Fir, ValidatesParameters) {
  EXPECT_THROW(dsp::FirLowPass(0.0, 10e6, 31), std::invalid_argument);
  EXPECT_THROW(dsp::FirLowPass(6e6, 10e6, 31), std::invalid_argument);
  EXPECT_THROW(dsp::FirLowPass(1e6, 10e6, 30), std::invalid_argument);
  EXPECT_THROW(dsp::FirLowPass(1e6, 10e6, 1), std::invalid_argument);
}

TEST(Fir, TapsSumToUnity) {
  const dsp::FirLowPass lp(1e6, 10e6, 21);
  double sum = 0.0;
  for (double t : lp.taps()) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
