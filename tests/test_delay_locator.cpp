#include <cmath>

#include <gtest/gtest.h>

#include "analog/two_tap.hpp"
#include "baseline/delay_locator.hpp"
#include "canbus/frame.hpp"
#include "dsp/adc.hpp"
#include "stats/rng.hpp"

namespace {

using analog::TwoTapBus;
using baseline::DelayEstimator;
using baseline::DelayLocatorIds;

analog::EcuSignature test_signature() {
  analog::EcuSignature s;
  s.dominant = units::Volts{2.0};
  s.drive = {2.0e6, 0.7};
  s.release = {1.0e6, 0.85};
  s.noise_sigma = units::Volts{0.003};
  return s;
}

analog::SynthOptions fast_options() {
  analog::SynthOptions o;
  o.bitrate = units::BitRateBps{250e3};
  o.sample_rate = units::SampleRateHz{20e6};
  o.max_bits = 40;
  return o;
}

canbus::DataFrame test_frame(std::uint8_t sa) {
  canbus::DataFrame f;
  f.id = canbus::J1939Id{3, 0xF004, sa};
  f.payload = {1, 2, 3, 4};
  return f;
}

TEST(TwoTapBusTest, DelayDifferenceIsLinearInPosition) {
  TwoTapBus bus;
  bus.length_m = 10.0;
  bus.propagation_mps = 2.0e8;
  EXPECT_DOUBLE_EQ(bus.delay_difference_s(5.0), 0.0);    // centre
  EXPECT_LT(bus.delay_difference_s(0.0), 0.0);           // near tap A
  EXPECT_GT(bus.delay_difference_s(10.0), 0.0);          // near tap B
  EXPECT_NEAR(bus.delay_difference_s(10.0), 50e-9, 1e-12);
}

TEST(TwoTapBusTest, SynthesizedTapsShareWaveformShape) {
  stats::Rng rng(1);
  TwoTapBus bus;
  const auto [a, b] = analog::synthesize_two_tap_voltage(
      canbus::build_wire_bits(test_frame(0x10)), test_signature(),
      analog::Environment::reference(), fast_options(), bus, 5.0, rng);
  ASSERT_EQ(a.size(), b.size());
  // At the centre both taps see the same delay; traces differ only by
  // noise.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 0.05);
}

TEST(TwoTapBusTest, PositionValidation) {
  stats::Rng rng(2);
  TwoTapBus bus;
  EXPECT_THROW(analog::synthesize_two_tap_voltage(
                   canbus::build_wire_bits(test_frame(1)), test_signature(),
                   analog::Environment::reference(), fast_options(), bus,
                   -1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(analog::synthesize_two_tap_voltage(
                   canbus::build_wire_bits(test_frame(1)), test_signature(),
                   analog::Environment::reference(), fast_options(), bus,
                   99.0, rng),
               std::invalid_argument);
}

TEST(DelayEstimatorTest, RecoversKnownIntegerShift) {
  // b = a delayed by 3 samples.
  dsp::Trace a(400, 0.0);
  for (int i = 100; i < 200; ++i) a[i] = 1.0;
  dsp::Trace b(400, 0.0);
  for (int i = 103; i < 203; ++i) b[i] = 1.0;
  const DelayEstimator est(8, 1.0);  // 1 Hz => delay in samples
  const auto d = est.estimate(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 3.0, 0.05);
}

TEST(DelayEstimatorTest, RecoversSubSampleShiftFromPhysics) {
  // Synthesize the same frame at two positions 2 m apart; the recovered
  // delay difference must track the geometry (10 ns at 2e8 m/s).
  TwoTapBus bus;
  bus.length_m = 10.0;
  bus.attenuation_per_m = 0.0;
  const DelayEstimator est(8, 20e6);
  stats::Rng rng(3);

  auto measure = [&](double pos) {
    double sum = 0.0;
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      const auto [a, b] = analog::synthesize_two_tap_voltage(
          canbus::build_wire_bits(test_frame(0x22)), test_signature(),
          analog::Environment::reference(), fast_options(), bus, pos, rng);
      const auto d = est.estimate(a, b);
      EXPECT_TRUE(d.has_value());
      sum += d.value_or(0.0);
    }
    return sum / reps;
  };
  const double d3 = measure(3.0);
  const double d5 = measure(5.0);
  const double d7 = measure(7.0);
  // Moving the node toward tap B makes tap A later relative to tap B:
  // delay(b relative to a) shrinks by 2*(dx)/v = 20 ns per 2 m.
  EXPECT_NEAR(d5 - d3, -20e-9, 6e-9);
  EXPECT_NEAR(d7 - d5, -20e-9, 6e-9);
  EXPECT_NEAR(d5, 0.0, 6e-9);  // centre: symmetric
}

TEST(DelayEstimatorTest, RejectsFlatAndShortInputs) {
  const DelayEstimator est(8, 20e6);
  EXPECT_FALSE(est.estimate(dsp::Trace(10, 0.0), dsp::Trace(10, 0.0)));
  EXPECT_FALSE(
      est.estimate(dsp::Trace(400, 1.0), dsp::Trace(400, 1.0)).has_value());
  EXPECT_THROW(DelayEstimator(0, 1.0), std::invalid_argument);
}

class DelayLocatorTest : public ::testing::Test {
 protected:
  DelayLocatorTest() {
    bus_.length_m = 10.0;
    options_.sample_rate_hz = 20e6;
    options_.max_lag_samples = 8;
  }

  DelayLocatorIds::TapPair capture(std::uint8_t sa, double pos,
                                   stats::Rng& rng) {
    auto [a, b] = analog::synthesize_two_tap_voltage(
        canbus::build_wire_bits(test_frame(sa)), test_signature(),
        analog::Environment::reference(), fast_options(), bus_, pos, rng);
    return {std::move(a), std::move(b), sa};
  }

  TwoTapBus bus_;
  DelayLocatorIds::Options options_;
};

TEST_F(DelayLocatorTest, TrainsAndAcceptsLegitimatePositions) {
  stats::Rng rng(5);
  std::vector<DelayLocatorIds::TapPair> training;
  for (int i = 0; i < 30; ++i) {
    training.push_back(capture(0x10, 1.0, rng));   // node near tap A
    training.push_back(capture(0x20, 8.5, rng));   // node near tap B
  }
  DelayLocatorIds ids(options_);
  std::string error;
  ASSERT_TRUE(ids.train(training, &error)) << error;
  EXPECT_LT(*ids.delay_of(0x20), *ids.delay_of(0x10));

  std::size_t false_alarms = 0;
  for (int i = 0; i < 30; ++i) {
    const auto pair = capture(0x10, 1.0, rng);
    const auto c = ids.classify(pair.tap_a, pair.tap_b, 0x10);
    ASSERT_TRUE(c.has_value());
    false_alarms += c->anomaly;
  }
  EXPECT_LE(false_alarms, 1u);
}

TEST_F(DelayLocatorTest, DetectsWrongPositionImitation) {
  // A foreign device at the OBD port (position ~9.5 m) imitating an ECU
  // fingerprinted at 1 m: the position cannot be faked.
  stats::Rng rng(6);
  std::vector<DelayLocatorIds::TapPair> training;
  for (int i = 0; i < 30; ++i) training.push_back(capture(0x10, 1.0, rng));
  DelayLocatorIds ids(options_);
  std::string error;
  ASSERT_TRUE(ids.train(training, &error)) << error;

  std::size_t detected = 0;
  for (int i = 0; i < 20; ++i) {
    const auto pair = capture(0x10, 9.5, rng);  // same SA, wrong place
    const auto c = ids.classify(pair.tap_a, pair.tap_b, 0x10);
    ASSERT_TRUE(c.has_value());
    detected += c->anomaly;
  }
  EXPECT_GE(detected, 18u);
}

TEST_F(DelayLocatorTest, UnknownSaReturnsNullopt) {
  stats::Rng rng(7);
  std::vector<DelayLocatorIds::TapPair> training;
  for (int i = 0; i < 20; ++i) training.push_back(capture(0x10, 2.0, rng));
  DelayLocatorIds ids(options_);
  std::string error;
  ASSERT_TRUE(ids.train(training, &error)) << error;
  const auto pair = capture(0x10, 2.0, rng);
  EXPECT_FALSE(ids.classify(pair.tap_a, pair.tap_b, 0x99).has_value());
}

TEST_F(DelayLocatorTest, TrainingValidatesSampleCounts) {
  stats::Rng rng(8);
  std::vector<DelayLocatorIds::TapPair> training;
  for (int i = 0; i < 3; ++i) training.push_back(capture(0x10, 2.0, rng));
  DelayLocatorIds ids(options_);
  std::string error;
  EXPECT_FALSE(ids.train(training, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ids.train({}, &error));
}

}  // namespace
