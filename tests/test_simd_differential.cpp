// Differential harness for the batched scoring hot path.
//
// The contract under test (core/batch_scorer.hpp, linalg/simd_kernels.hpp):
//   * scalar batch kernels are bit-identical to the one-frame reference
//     (linalg::euclidean_distance / mahalanobis_distance_inv / detect()),
//   * the AVX2 kernels are bit-identical to the scalar kernels, in every
//     batch size and [body|tail] split the dispatcher produces,
//   * the int16 fixed-point backend stays inside its analytically derived
//     error bound (ClusterQuant::distance_error_bound) and only ever flips
//     a verdict when the oracle's own decision margin is smaller than the
//     bound,
//   * the batched pipeline worker preserves all of the above end to end.
//
// Failure messages report ULP distances (stats/ulp.hpp): 0 is identity,
// small numbers point at reassociation/contraction, huge ones at logic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_scorer.hpp"
#include "core/detector.hpp"
#include "core/trainer.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/fixed_point.hpp"
#include "linalg/mahalanobis.hpp"
#include "linalg/simd_dispatch.hpp"
#include "linalg/simd_kernels.hpp"
#include "stats/rng.hpp"
#include "stats/ulp.hpp"

namespace {

using linalg::Matrix;
using linalg::Vector;
using linalg::simd::Backend;
using vprofile::BatchScorer;
using vprofile::Detection;
using vprofile::DetectionConfig;
using vprofile::DistanceMetric;
using vprofile::EdgeSet;
using vprofile::Model;
using vprofile::ScoringPlan;
using vprofile::Verdict;

/// Bitwise double equality with a ULP-distance diagnostic.
#define EXPECT_BITEQ(a, b)                                              \
  EXPECT_EQ(stats::ulp_distance((a), (b)), 0u)                          \
      << #a " = " << (a) << " vs " #b " = " << (b)                      \
      << " (ulp distance " << stats::ulp_distance((a), (b)) << ")"

/// The batch sizes the harness sweeps: 1 (degenerate), 3 (tail only),
/// 4 (one quad), 5/7 (quad + tail), 13 (8-edge block + quad + tail),
/// 29 (16-edge block + 8 + 4 + tail: every AVX2 block width in one
/// call), 64 (many 16-edge blocks).
const std::size_t kBatchSizes[] = {1, 3, 4, 5, 7, 13, 29, 64};

bool same_detection(const Detection& a, const Detection& b) {
  return a.verdict == b.verdict && a.expected_cluster == b.expected_cluster &&
         a.predicted_cluster == b.predicted_cluster &&
         stats::ulp_distance(a.min_distance, b.min_distance) == 0 &&
         stats::ulp_distance(a.confidence, b.confidence) == 0 &&
         a.unreliable_samples == b.unreliable_samples;
}

void expect_same_detection(const Detection& a, const Detection& b,
                           const std::string& context) {
  EXPECT_EQ(a.verdict, b.verdict) << context;
  EXPECT_EQ(a.expected_cluster, b.expected_cluster) << context;
  EXPECT_EQ(a.predicted_cluster, b.predicted_cluster) << context;
  EXPECT_BITEQ(a.min_distance, b.min_distance) << context;
  EXPECT_BITEQ(a.confidence, b.confidence) << context;
  EXPECT_EQ(a.unreliable_samples, b.unreliable_samples) << context;
}

// ---------------------------------------------------------------------------
// Kernel level: SoA kernels vs the one-at-a-time linalg reference.
// ---------------------------------------------------------------------------

/// Random SPD matrix B^T B + ridge I and its inverse.
std::pair<Matrix, Matrix> random_spd(std::size_t dim, stats::Rng& rng) {
  Matrix b(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) b.at(r, c) = rng.gaussian(0.0, 1.0);
  }
  Matrix spd = b.transpose() * b;
  spd.add_ridge(0.5);
  auto chol = linalg::Cholesky::factorize(spd);
  EXPECT_TRUE(chol.has_value());
  return {spd, chol->inverse()};
}

struct SoaBatch {
  std::vector<double> soa;  // soa[i * stride + e]
  std::size_t stride = 0;
  std::size_t count = 0;
  std::size_t dim = 0;

  linalg::simd::BatchView view() const { return {soa.data(), stride, count, dim}; }
  Vector edge(std::size_t e) const {
    Vector x(dim);
    for (std::size_t i = 0; i < dim; ++i) x[i] = soa[i * stride + e];
    return x;
  }
};

SoaBatch random_batch(std::size_t count, std::size_t dim, stats::Rng& rng,
                      double center, double spread) {
  SoaBatch batch;
  batch.count = count;
  batch.dim = dim;
  batch.stride = (count + 3) & ~std::size_t{3};
  batch.soa.assign(dim * batch.stride, 0.0);
  for (std::size_t e = 0; e < count; ++e) {
    for (std::size_t i = 0; i < dim; ++i) {
      batch.soa[i * batch.stride + e] = center + rng.gaussian(0.0, spread);
    }
  }
  return batch;
}

TEST(SimdKernels, ScalarEuclideanMatchesReferenceBitwise) {
  stats::Rng rng(0x51D0001);
  const std::size_t dim = 9;
  Vector mu(dim);
  for (auto& m : mu) m = rng.gaussian(100.0, 20.0);
  for (std::size_t n : kBatchSizes) {
    SoaBatch batch = random_batch(n, dim, rng, 100.0, 30.0);
    std::vector<double> out(batch.stride, -1.0);
    linalg::simd::euclidean_scalar(batch.view(), mu.data(), out.data(), 0, n);
    for (std::size_t e = 0; e < n; ++e) {
      EXPECT_BITEQ(out[e], linalg::euclidean_distance(batch.edge(e), mu));
    }
  }
}

TEST(SimdKernels, ScalarMahalanobisMatchesReferenceBitwise) {
  stats::Rng rng(0x51D0002);
  const std::size_t dim = 7;
  Vector mu(dim);
  for (auto& m : mu) m = rng.gaussian(150.0, 10.0);
  const auto [cov, inv] = random_spd(dim, rng);
  std::vector<double> dscratch(dim * 16, 0.0);
  for (std::size_t n : kBatchSizes) {
    SoaBatch batch = random_batch(n, dim, rng, 150.0, 25.0);
    std::vector<double> out(batch.stride, -1.0);
    linalg::simd::mahalanobis_scalar(batch.view(), mu.data(),
                                     inv.data().data(), dscratch.data(),
                                     out.data(), 0, n);
    for (std::size_t e = 0; e < n; ++e) {
      EXPECT_BITEQ(out[e], linalg::mahalanobis_distance_inv(batch.edge(e),
                                                            mu, inv));
    }
  }
}

TEST(SimdKernels, Avx2MatchesScalarBitwiseIncludingTailSplit) {
  if (!linalg::simd::cpu_has_avx2()) {
    GTEST_SKIP() << "CPU lacks AVX2; nothing to differentiate";
  }
  stats::Rng rng(0x51D0003);
  const std::size_t dim = 11;
  Vector mu(dim);
  for (auto& m : mu) m = rng.gaussian(120.0, 15.0);
  const auto [cov, inv] = random_spd(dim, rng);
  std::vector<double> dscratch(dim * 16, 0.0);
  for (std::size_t n : kBatchSizes) {
    SoaBatch batch = random_batch(n, dim, rng, 120.0, 40.0);
    std::vector<double> expected(batch.stride, -1.0);
    std::vector<double> got(batch.stride, -2.0);
    const std::size_t body = n & ~std::size_t{3};

    linalg::simd::euclidean_scalar(batch.view(), mu.data(), expected.data(),
                                   0, n);
    if (body > 0) {
      linalg::simd::euclidean_avx2(batch.view(), mu.data(), got.data(), 0,
                                   body);
    }
    if (body < n) {
      linalg::simd::euclidean_scalar(batch.view(), mu.data(), got.data(),
                                     body, n);
    }
    for (std::size_t e = 0; e < n; ++e) {
      EXPECT_BITEQ(got[e], expected[e]) << "euclidean n=" << n << " e=" << e;
    }

    linalg::simd::mahalanobis_scalar(batch.view(), mu.data(),
                                     inv.data().data(), dscratch.data(),
                                     expected.data(), 0, n);
    if (body > 0) {
      linalg::simd::mahalanobis_avx2(batch.view(), mu.data(),
                                     inv.data().data(), dscratch.data(),
                                     got.data(), 0, body);
    }
    if (body < n) {
      linalg::simd::mahalanobis_scalar(batch.view(), mu.data(),
                                       inv.data().data(), dscratch.data(),
                                       got.data(), body, n);
    }
    for (std::size_t e = 0; e < n; ++e) {
      EXPECT_BITEQ(got[e], expected[e])
          << "mahalanobis n=" << n << " e=" << e;
    }
  }
}

TEST(FixedPointKernels, StaysInsideAnalyticErrorBound) {
  stats::Rng rng(0x51D0004);
  const std::size_t dim = 8;
  for (int trial = 0; trial < 20; ++trial) {
    Vector mu(dim);
    for (auto& m : mu) m = rng.gaussian(2000.0, 300.0);
    const auto [cov, inv] = random_spd(dim, rng);

    double max_abs = 0.0;
    for (double m : mu) max_abs = std::max(max_abs, std::abs(m));
    const double step = linalg::fixed::choose_feature_step(max_abs);
    const auto quant = linalg::fixed::quantize_cluster(
        mu.data(), inv.data().data(), dim, step);
    const auto quant_euclid =
        linalg::fixed::quantize_cluster(mu.data(), nullptr, dim, step);

    const std::size_t n = 16;
    SoaBatch batch = random_batch(n, dim, rng, 2000.0, 400.0);
    std::vector<std::int16_t> soa_fx(batch.soa.size(), 0);
    for (std::size_t k = 0; k < batch.soa.size(); ++k) {
      soa_fx[k] = linalg::fixed::quantize_feature(batch.soa[k], step);
    }
    const linalg::fixed::FixedBatchView fview{soa_fx.data(), batch.stride, n,
                                              dim};
    std::vector<double> out_m(batch.stride, 0.0);
    std::vector<double> out_e(batch.stride, 0.0);
    linalg::fixed::mahalanobis_fixed(fview, quant, out_m.data(), 0, n);
    linalg::fixed::euclidean_fixed(fview, quant_euclid, out_e.data(), 0, n);

    for (std::size_t e = 0; e < n; ++e) {
      const Vector x = batch.edge(e);
      double radius = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        radius = std::max(radius, std::abs(x[i] - mu[i]));
      }
      const double oracle_m = linalg::mahalanobis_distance_inv(x, mu, inv);
      const double bound_m = quant.distance_error_bound(radius);
      EXPECT_LE(std::abs(out_m[e] - oracle_m), bound_m)
          << "trial " << trial << " edge " << e << " radius " << radius;

      const double oracle_e = linalg::euclidean_distance(x, mu);
      const double bound_e = quant_euclid.distance_error_bound(radius);
      EXPECT_LE(std::abs(out_e[e] - oracle_e), bound_e)
          << "trial " << trial << " edge " << e << " radius " << radius;
    }
  }
}

TEST(FixedPointKernels, FeatureStepMirrorsAdcResolution) {
  // A 12-bit digitizer's full scale maps losslessly (step 1); a 16-bit
  // card's 4x larger code range needs step 16 to fit the same grid.
  EXPECT_EQ(linalg::fixed::choose_feature_step(2047.0), 1.0);
  EXPECT_EQ(linalg::fixed::choose_feature_step(32767.0), 16.0);
  // Degenerate all-zero profile still gets a sane grid.
  EXPECT_EQ(linalg::fixed::choose_feature_step(0.0), 1.0);
}

// ---------------------------------------------------------------------------
// Detector level: BatchScorer vs the per-frame detect() oracle.
// ---------------------------------------------------------------------------

constexpr std::uint8_t kSaA = 0x10;
constexpr std::uint8_t kSaB = 0x33;
constexpr std::uint8_t kSaUnknown = 0x99;

/// Trains a 2-ECU model and builds an adversarial stream: in-cluster
/// frames, borderline frames, hijacks (wrong level for the SA), far
/// outliers, unknown SAs, wrong dimensionality, non-finite samples, rail
/// hits and flat runs — every prescore and postscore path.
struct DifferentialFixture {
  std::optional<Model> model;
  std::vector<EdgeSet> stream;
  std::size_t dim = 0;

  explicit DifferentialFixture(DistanceMetric metric, std::uint64_t seed) {
    vprofile::ExtractionConfig ex;
    ex.prefix_len = 2;
    ex.suffix_len = 3;
    dim = ex.dimension();

    stats::Rng rng(seed);
    std::vector<EdgeSet> train;
    for (auto [sa, level] : {std::pair<std::uint8_t, double>{kSaA, 1000.0},
                             {kSaB, 1800.0}}) {
      for (int i = 0; i < 200; ++i) {
        EdgeSet es;
        es.sa = sa;
        es.samples.resize(dim);
        for (auto& v : es.samples) v = level + rng.gaussian(0.0, 8.0);
        train.push_back(std::move(es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.metric = metric;
    tc.extraction = ex;
    auto out = vprofile::train_with_database(
        train, {{kSaA, "A"}, {kSaB, "B"}}, tc);
    if (!out.ok()) {
      ADD_FAILURE() << "training failed: " << out.error;
      return;
    }
    model.emplace(std::move(*out.model));

    auto make = [&](std::uint8_t sa, double level, double jitter) {
      EdgeSet es;
      es.sa = sa;
      es.samples.resize(dim);
      for (auto& v : es.samples) v = level + rng.gaussian(0.0, jitter);
      return es;
    };
    for (int i = 0; i < 40; ++i) {
      stream.push_back(make(kSaA, 1000.0, 8.0));   // in-cluster
      stream.push_back(make(kSaB, 1800.0, 8.0));   // in-cluster
      stream.push_back(make(kSaA, 1000.0, 30.0));  // borderline
      stream.push_back(make(kSaA, 1800.0, 8.0));   // hijack (mismatch)
      stream.push_back(make(kSaB, 2600.0, 8.0));   // far outlier
      stream.push_back(make(kSaUnknown, 1000.0, 8.0));
    }
    // Fault injection: one of each degraded-path shape.
    EdgeSet wrong_dim = make(kSaA, 1000.0, 8.0);
    wrong_dim.samples.push_back(1000.0);
    stream.push_back(std::move(wrong_dim));
    EdgeSet nan_frame = make(kSaA, 1000.0, 8.0);
    nan_frame.samples[2] = std::numeric_limits<double>::quiet_NaN();
    stream.push_back(std::move(nan_frame));
    EdgeSet inf_frame = make(kSaB, 1800.0, 8.0);
    inf_frame.samples[0] = std::numeric_limits<double>::infinity();
    stream.push_back(std::move(inf_frame));
    EdgeSet railed = make(kSaA, 1000.0, 8.0);
    for (std::size_t i = 0; i + 1 < railed.samples.size(); i += 2) {
      railed.samples[i] = 4095.0;  // saturation under the gated config
    }
    stream.push_back(std::move(railed));
    EdgeSet flat = make(kSaB, 1800.0, 8.0);
    std::fill(flat.samples.begin(), flat.samples.end(), 1800.0);
    stream.push_back(std::move(flat));
    EdgeSet empty;
    empty.sa = kSaA;
    stream.push_back(std::move(empty));
  }
};

std::vector<Detection> oracle_detections(const Model& model,
                                         const std::vector<EdgeSet>& stream,
                                         const DetectionConfig& dc) {
  std::vector<Detection> out;
  out.reserve(stream.size());
  for (const EdgeSet& es : stream) out.push_back(vprofile::detect(model, es, dc));
  return out;
}

std::vector<Detection> batched_detections(const ScoringPlan& plan,
                                          const std::vector<EdgeSet>& stream,
                                          const DetectionConfig& dc,
                                          std::size_t batch_size) {
  BatchScorer scorer(plan);
  std::vector<Detection> out(stream.size());
  std::vector<const EdgeSet*> ptrs;
  for (std::size_t begin = 0; begin < stream.size(); begin += batch_size) {
    const std::size_t end = std::min(stream.size(), begin + batch_size);
    ptrs.clear();
    for (std::size_t i = begin; i < end; ++i) ptrs.push_back(&stream[i]);
    scorer.detect(ptrs.data(), ptrs.size(), dc, out.data() + begin);
  }
  return out;
}

DetectionConfig plain_config() {
  DetectionConfig dc;
  dc.margin = 2.0;
  return dc;
}

DetectionConfig gated_config() {
  DetectionConfig dc;
  dc.margin = 2.0;
  dc.saturation_code = 4000.0;
  dc.dead_code = 10.0;
  dc.degraded_fraction = 0.3;
  dc.flat_run_min = 4;
  return dc;
}

class SimdDifferential : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(SimdDifferential, ScalarBatchIsBitIdenticalToPerFrameOracle) {
  DifferentialFixture f(GetParam(), 0xD1FF0001);
  const ScoringPlan plan(*f.model, Backend::kScalar);
  ASSERT_EQ(plan.backend(), Backend::kScalar);
  for (const DetectionConfig& dc : {plain_config(), gated_config()}) {
    const auto oracle = oracle_detections(*f.model, f.stream, dc);
    for (std::size_t bs : kBatchSizes) {
      const auto got = batched_detections(plan, f.stream, dc, bs);
      ASSERT_EQ(got.size(), oracle.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same_detection(got[i], oracle[i],
                              "batch_size=" + std::to_string(bs) +
                                  " frame=" + std::to_string(i));
      }
    }
  }
}

TEST_P(SimdDifferential, Avx2BatchIsBitIdenticalToScalarBatch) {
  if (linalg::simd::resolve(Backend::kAvx2) != Backend::kAvx2) {
    GTEST_SKIP() << "AVX2 unavailable or scalar-forced; dispatch covered by "
                    "the forced-scalar CI arm";
  }
  DifferentialFixture f(GetParam(), 0xD1FF0002);
  const ScoringPlan scalar_plan(*f.model, Backend::kScalar);
  const ScoringPlan avx2_plan(*f.model, Backend::kAvx2);
  ASSERT_EQ(avx2_plan.backend(), Backend::kAvx2);
  for (const DetectionConfig& dc : {plain_config(), gated_config()}) {
    for (std::size_t bs : kBatchSizes) {
      const auto expected = batched_detections(scalar_plan, f.stream, dc, bs);
      const auto got = batched_detections(avx2_plan, f.stream, dc, bs);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same_detection(got[i], expected[i],
                              "batch_size=" + std::to_string(bs) +
                                  " frame=" + std::to_string(i));
      }
    }
  }
}

TEST_P(SimdDifferential, FixedBackendHonorsBoundAndNeverFlipsClearVerdicts) {
  DifferentialFixture f(GetParam(), 0xD1FF0003);
  const ScoringPlan plan(*f.model, Backend::kFixed);
  ASSERT_EQ(plan.backend(), Backend::kFixed);
  const DetectionConfig dc = plain_config();
  const auto oracle = oracle_detections(*f.model, f.stream, dc);
  const auto got = batched_detections(plan, f.stream, dc, 16);
  ASSERT_EQ(got.size(), oracle.size());

  const auto& clusters = f.model->clusters();
  std::size_t flips = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const EdgeSet& es = f.stream[i];
    // Prescore outcomes carry no arithmetic: they must match exactly.
    if (oracle[i].verdict == Verdict::kDegraded ||
        oracle[i].verdict == Verdict::kUnknownSa) {
      expect_same_detection(got[i], oracle[i], "frame=" + std::to_string(i));
      continue;
    }
    // Per-cluster oracle distances and error bounds for this frame.
    std::vector<double> dist(clusters.size());
    std::vector<double> bound(clusters.size());
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      dist[c] = f.model->distance(c, es.samples);
      double radius = 0.0;
      for (std::size_t k = 0; k < es.samples.size(); ++k) {
        radius = std::max(radius,
                          std::abs(es.samples[k] - clusters[c].mean[k]));
      }
      bound[c] = plan.distance_error_bound(c, radius);
    }
    const std::size_t pf = *got[i].predicted_cluster;
    const std::size_t po = *oracle[i].predicted_cluster;
    // The fixed distance to the cluster it picked is within that cluster's
    // bound of the oracle distance to the same cluster.
    EXPECT_LE(std::abs(got[i].min_distance - dist[pf]), bound[pf])
        << "frame=" << i;
    if (pf != po) {
      // A cluster flip is only possible when the two true distances are
      // within the summed bounds of each other.
      ++flips;
      EXPECT_LE(dist[pf] - dist[po], bound[pf] + bound[po]) << "frame=" << i;
    }
    if (got[i].verdict != oracle[i].verdict) {
      ++flips;
      if (pf == po) {
        // A threshold flip requires the oracle margin to be inside the
        // bound of the scored cluster.
        const double threshold = clusters[po].max_distance + dc.margin;
        EXPECT_LE(std::abs(dist[po] - threshold), bound[po]) << "frame=" << i;
      }
    }
  }
  // The stream is dominated by clear-cut frames; the quantized profile
  // must agree on nearly all of it, not just stay inside the bound.
  EXPECT_LE(flips, got.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(Metrics, SimdDifferential,
                         ::testing::Values(DistanceMetric::kEuclidean,
                                           DistanceMetric::kMahalanobis),
                         [](const auto& info) {
                           return info.param == DistanceMetric::kEuclidean
                                      ? "euclidean"
                                      : "mahalanobis";
                         });

// ---------------------------------------------------------------------------
// Dispatch + plan construction.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ForceScalarOverridePinsFloatBackendsOnly) {
  linalg::simd::set_force_scalar_override(1);
  EXPECT_EQ(linalg::simd::resolve(Backend::kAuto), Backend::kScalar);
  EXPECT_EQ(linalg::simd::resolve(Backend::kAvx2), Backend::kScalar);
  EXPECT_EQ(linalg::simd::resolve(Backend::kFixed), Backend::kFixed);
  linalg::simd::set_force_scalar_override(0);
  const Backend expect_auto =
      linalg::simd::cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
  EXPECT_EQ(linalg::simd::resolve(Backend::kAuto), expect_auto);
  EXPECT_EQ(linalg::simd::resolve(Backend::kScalar), Backend::kScalar);
  linalg::simd::set_force_scalar_override(-1);
}

TEST(ScoringPlanTest, CachesFactorsAndValidatesStoredInverse) {
  DifferentialFixture f(DistanceMetric::kMahalanobis, 0xD1FF0004);
  const ScoringPlan plan(*f.model, Backend::kScalar);
  ASSERT_EQ(plan.num_clusters(), 2u);
  for (std::size_t c = 0; c < plan.num_clusters(); ++c) {
    ASSERT_TRUE(plan.factor(c).has_value()) << "cluster " << c;
    EXPECT_EQ(plan.factor(c)->dim(), plan.dimension());
    EXPECT_EQ(plan.factor_ridge(c), 0.0) << "cluster " << c;
    EXPECT_TRUE(plan.inverse_consistent(c)) << "cluster " << c;
  }
  // The shared feature grid is a power of two and spans the profile.
  const double step = plan.feature_step();
  EXPECT_GE(step, 1.0);
  EXPECT_EQ(std::exp2(std::round(std::log2(step))), step);
}

TEST(ScoringPlanTest, DetectsCorruptedStoredInverse) {
  DifferentialFixture f(DistanceMetric::kMahalanobis, 0xD1FF0005);
  Model tampered = *f.model;
  // Corrupt one coefficient of cluster 0's stored inverse — the shape of a
  // bad checkpoint or a stale online update.
  tampered.clusters()[0].inv_covariance.at(0, 0) *= 3.0;
  const ScoringPlan plan(tampered, Backend::kScalar);
  EXPECT_FALSE(plan.inverse_consistent(0));
  EXPECT_TRUE(plan.inverse_consistent(1));
}

// ---------------------------------------------------------------------------
// ULP distance (the harness's own diagnostic must be trustworthy).
// ---------------------------------------------------------------------------

TEST(UlpDistance, CountsRepresentableSteps) {
  EXPECT_EQ(stats::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(stats::ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(stats::ulp_distance(-1.0, std::nextafter(-1.0, 0.0)), 1u);
  EXPECT_EQ(stats::ulp_distance(0.0, -0.0), 1u);  // sign drift is visible
  EXPECT_EQ(stats::ulp_distance(std::nextafter(0.0, -1.0),
                                std::nextafter(0.0, 1.0)),
            3u);
  EXPECT_EQ(stats::ulp_distance(std::nan(""), 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------------
// Pipeline level: the batched worker is still the sequential oracle.
// ---------------------------------------------------------------------------

TEST(BatchScorerVector, ConvenienceOverloadMatchesPointerForm) {
  DifferentialFixture f(DistanceMetric::kMahalanobis, 0xD1FF0006);
  const ScoringPlan plan(*f.model, Backend::kScalar);
  BatchScorer scorer(plan);
  const DetectionConfig dc = plain_config();
  const auto via_vector = scorer.detect(f.stream, dc);
  const auto oracle = oracle_detections(*f.model, f.stream, dc);
  ASSERT_EQ(via_vector.size(), oracle.size());
  for (std::size_t i = 0; i < via_vector.size(); ++i) {
    EXPECT_TRUE(same_detection(via_vector[i], oracle[i])) << "frame " << i;
  }
}

}  // namespace
