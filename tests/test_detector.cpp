#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/trainer.hpp"
#include "stats/rng.hpp"

namespace {

using vprofile::Detection;
using vprofile::DetectionConfig;
using vprofile::DistanceMetric;
using vprofile::EdgeSet;
using vprofile::Model;
using vprofile::Verdict;

/// Shared fixture: a two-cluster Mahalanobis model with well-separated
/// levels (cluster A at 100, cluster B at 200, unit noise).
class DetectorTest : public ::testing::Test {
 protected:
  static constexpr std::uint8_t kSaA = 1;
  static constexpr std::uint8_t kSaA2 = 2;  // second SA of ECU A
  static constexpr std::uint8_t kSaB = 7;

  void SetUp() override {
    vprofile::ExtractionConfig ex;
    ex.prefix_len = 1;
    ex.suffix_len = 2;
    dim_ = ex.dimension();

    stats::Rng rng(42);
    std::vector<EdgeSet> sets;
    for (auto [sa, level] : {std::pair<std::uint8_t, double>{kSaA, 100.0},
                             {kSaA2, 100.0},
                             {kSaB, 200.0}}) {
      for (int i = 0; i < 150; ++i) {
        EdgeSet es;
        es.sa = sa;
        es.samples.resize(dim_);
        for (auto& v : es.samples) v = level + rng.gaussian(0.0, 1.0);
        sets.push_back(std::move(es));
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = DistanceMetric::kMahalanobis;
    cfg.extraction = ex;
    auto outcome = vprofile::train_with_database(
        sets, {{kSaA, "A"}, {kSaA2, "A"}, {kSaB, "B"}}, cfg);
    ASSERT_TRUE(outcome.ok()) << outcome.error;
    model_.emplace(std::move(*outcome.model));
  }

  EdgeSet edge_set(std::uint8_t sa, double level, double jitter = 0.0) {
    stats::Rng rng(7);
    EdgeSet es;
    es.sa = sa;
    es.samples.resize(dim_);
    for (auto& v : es.samples) v = level + rng.gaussian(0.0, jitter);
    return es;
  }

  std::size_t dim_ = 0;
  std::optional<Model> model_;
};

TEST_F(DetectorTest, LegitimateMessagePasses) {
  const Detection d = vprofile::detect(*model_, edge_set(kSaA, 100.0, 1.0),
                                       DetectionConfig{2.0});
  EXPECT_EQ(d.verdict, Verdict::kOk);
  EXPECT_FALSE(d.is_anomaly());
  EXPECT_EQ(d.expected_cluster, d.predicted_cluster);
}

TEST_F(DetectorTest, SecondSaOfSameEcuPasses) {
  const Detection d = vprofile::detect(*model_, edge_set(kSaA2, 100.0, 1.0),
                                       DetectionConfig{2.0});
  EXPECT_EQ(d.verdict, Verdict::kOk);
}

TEST_F(DetectorTest, UnknownSaIsTriviallyDetected) {
  const Detection d = vprofile::detect(*model_, edge_set(0x99, 100.0),
                                       DetectionConfig{});
  EXPECT_EQ(d.verdict, Verdict::kUnknownSa);
  EXPECT_TRUE(d.is_anomaly());
  EXPECT_FALSE(d.expected_cluster.has_value());
  EXPECT_FALSE(d.predicted_cluster.has_value());
}

TEST_F(DetectorTest, HijackedSaTriggersClusterMismatch) {
  // Waveform of B (level 200) claiming A's SA.
  const Detection d = vprofile::detect(*model_, edge_set(kSaA, 200.0, 1.0),
                                       DetectionConfig{5.0});
  EXPECT_EQ(d.verdict, Verdict::kClusterMismatch);
  EXPECT_TRUE(d.is_anomaly());
  // Attribution: the predicted cluster identifies the attacker (B).
  ASSERT_TRUE(d.predicted_cluster.has_value());
  EXPECT_EQ(model_->clusters()[*d.predicted_cluster].name, "B");
}

TEST_F(DetectorTest, ForeignWaveformTriggersDistanceExceeded) {
  // A device whose level sits between the clusters but nearer A, claiming
  // A: predicted == expected but far outside the training radius.
  const Detection d = vprofile::detect(*model_, edge_set(kSaA, 120.0, 1.0),
                                       DetectionConfig{5.0});
  EXPECT_EQ(d.verdict, Verdict::kDistanceExceeded);
  EXPECT_TRUE(d.is_anomaly());
  EXPECT_GT(d.min_distance,
            model_->clusters()[*d.predicted_cluster].max_distance);
}

TEST_F(DetectorTest, MarginTradesFalsePositivesForFalseNegatives) {
  // A slightly-off waveform: rejected at zero margin, accepted with a
  // generous one (Section 3.2.3's margin discussion).
  const std::size_t cluster = *model_->cluster_of(kSaA);
  const double max_dist = model_->clusters()[cluster].max_distance;
  EdgeSet borderline = edge_set(kSaA, 100.0);
  // Push the edge set to a known distance just beyond max_dist.
  const double target = max_dist * 1.2;
  // Mahalanobis distance for a uniform offset o over dim d with unit-ish
  // covariance scales ~ o * sqrt(sum(inv_cov)); find it numerically.
  double lo = 0.0;
  double hi = 50.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    EdgeSet probe = borderline;
    for (auto& v : probe.samples) v += mid;
    (model_->distance(cluster, probe.samples) < target ? lo : hi) = mid;
  }
  for (auto& v : borderline.samples) v += hi;

  const Detection strict =
      vprofile::detect(*model_, borderline, DetectionConfig{0.0});
  EXPECT_EQ(strict.verdict, Verdict::kDistanceExceeded);
  const Detection lax = vprofile::detect(*model_, borderline,
                                         DetectionConfig{max_dist});
  EXPECT_EQ(lax.verdict, Verdict::kOk);
}

TEST_F(DetectorTest, DistanceReportedMatchesModelDistance) {
  const EdgeSet es = edge_set(kSaA, 101.0);
  const Detection d = vprofile::detect(*model_, es, DetectionConfig{100.0});
  const std::size_t cluster = *model_->cluster_of(kSaA);
  EXPECT_DOUBLE_EQ(d.min_distance, model_->distance(cluster, es.samples));
}

TEST_F(DetectorTest, VerdictNamesAreStable) {
  EXPECT_STREQ(to_string(Verdict::kOk), "ok");
  EXPECT_STREQ(to_string(Verdict::kUnknownSa), "unknown SA");
  EXPECT_STREQ(to_string(Verdict::kClusterMismatch), "cluster mismatch");
  EXPECT_STREQ(to_string(Verdict::kDistanceExceeded), "distance exceeded");
}

TEST_F(DetectorTest, EuclideanModelDetectsSameObviousAttacks) {
  // Rebuild the same clusters with the Euclidean metric.
  stats::Rng rng(43);
  std::vector<EdgeSet> sets;
  for (auto [sa, level] :
       {std::pair<std::uint8_t, double>{kSaA, 100.0}, {kSaB, 200.0}}) {
    for (int i = 0; i < 100; ++i) {
      EdgeSet es;
      es.sa = sa;
      es.samples.resize(dim_);
      for (auto& v : es.samples) v = level + rng.gaussian(0.0, 1.0);
      sets.push_back(std::move(es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = DistanceMetric::kEuclidean;
  cfg.extraction.prefix_len = 1;
  cfg.extraction.suffix_len = 2;
  auto outcome = vprofile::train_with_database(
      sets, {{kSaA, "A"}, {kSaB, "B"}}, cfg);
  ASSERT_TRUE(outcome.ok());

  const Detection ok = vprofile::detect(*outcome.model,
                                        edge_set(kSaA, 100.0, 1.0),
                                        DetectionConfig{3.0});
  EXPECT_EQ(ok.verdict, Verdict::kOk);
  const Detection hijack = vprofile::detect(*outcome.model,
                                            edge_set(kSaA, 200.0, 1.0),
                                            DetectionConfig{3.0});
  EXPECT_TRUE(hijack.is_anomaly());
}

}  // namespace
