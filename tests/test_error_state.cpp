#include <gtest/gtest.h>

#include "canbus/error_state.hpp"

namespace {

using canbus::ErrorCounters;
using canbus::ErrorState;

TEST(ErrorStateTest, StartsErrorActive) {
  ErrorCounters ec;
  EXPECT_EQ(ec.state(), ErrorState::kErrorActive);
  EXPECT_EQ(ec.tec(), 0u);
  EXPECT_EQ(ec.rec(), 0u);
  EXPECT_TRUE(ec.can_transmit());
}

TEST(ErrorStateTest, TransmitErrorsAddEight) {
  ErrorCounters ec;
  ec.on_transmit_error();
  EXPECT_EQ(ec.tec(), 8u);
  ec.on_transmit_error();
  EXPECT_EQ(ec.tec(), 16u);
}

TEST(ErrorStateTest, ReceiveErrorsAddOneOrEight) {
  ErrorCounters ec;
  ec.on_receive_error();
  EXPECT_EQ(ec.rec(), 1u);
  ec.on_receive_error(/*primary=*/true);
  EXPECT_EQ(ec.rec(), 9u);
}

TEST(ErrorStateTest, SuccessesDecrementWithFloorZero) {
  ErrorCounters ec;
  ec.on_transmit_success();
  EXPECT_EQ(ec.tec(), 0u);
  ec.on_transmit_error();
  for (int i = 0; i < 20; ++i) ec.on_transmit_success();
  EXPECT_EQ(ec.tec(), 0u);
  ec.on_receive_error();
  ec.on_receive_success();
  EXPECT_EQ(ec.rec(), 0u);
}

TEST(ErrorStateTest, ErrorPassiveAbove127) {
  ErrorCounters ec;
  for (int i = 0; i < 16; ++i) ec.on_transmit_error();  // TEC = 128
  EXPECT_EQ(ec.tec(), 128u);
  EXPECT_EQ(ec.state(), ErrorState::kErrorPassive);
  EXPECT_TRUE(ec.can_transmit());
}

TEST(ErrorStateTest, RecAbove127AlsoGoesPassive) {
  ErrorCounters ec;
  for (int i = 0; i < 16; ++i) ec.on_receive_error(/*primary=*/true);
  EXPECT_EQ(ec.state(), ErrorState::kErrorPassive);
}

TEST(ErrorStateTest, RecoversToActiveWhenCountersDrop) {
  ErrorCounters ec;
  for (int i = 0; i < 16; ++i) ec.on_transmit_error();
  EXPECT_EQ(ec.state(), ErrorState::kErrorPassive);
  ec.on_transmit_success();  // TEC = 127
  EXPECT_EQ(ec.state(), ErrorState::kErrorActive);
}

TEST(ErrorStateTest, BusOffAbove255) {
  // The bus-off attack scenario: 32 forced transmit errors disconnect the
  // victim.
  ErrorCounters ec;
  for (int i = 0; i < 32; ++i) ec.on_transmit_error();  // TEC = 256
  EXPECT_EQ(ec.state(), ErrorState::kBusOff);
  EXPECT_FALSE(ec.can_transmit());
}

TEST(ErrorStateTest, BusOffIsAbsorbing) {
  ErrorCounters ec;
  for (int i = 0; i < 32; ++i) ec.on_transmit_error();
  ASSERT_EQ(ec.state(), ErrorState::kBusOff);
  // Counters freeze; successes do not silently restore the node.
  ec.on_transmit_success();
  ec.on_receive_success();
  ec.on_transmit_error();
  EXPECT_EQ(ec.state(), ErrorState::kBusOff);
}

TEST(ErrorStateTest, BusOffRecoveryResetsEverything) {
  ErrorCounters ec;
  for (int i = 0; i < 32; ++i) ec.on_transmit_error();
  ec.recover_from_bus_off();
  EXPECT_EQ(ec.state(), ErrorState::kErrorActive);
  EXPECT_EQ(ec.tec(), 0u);
  EXPECT_EQ(ec.rec(), 0u);
  EXPECT_TRUE(ec.can_transmit());
}

TEST(ErrorStateTest, PassiveReceiveSuccessCapsRec) {
  ErrorCounters ec;
  for (int i = 0; i < 20; ++i) ec.on_receive_error(/*primary=*/true);
  ASSERT_GT(ec.rec(), 127u);
  ec.on_receive_success();
  EXPECT_EQ(ec.rec(), 127u);
}

TEST(ErrorStateTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(ErrorState::kErrorActive), "error-active");
  EXPECT_STREQ(to_string(ErrorState::kErrorPassive), "error-passive");
  EXPECT_STREQ(to_string(ErrorState::kBusOff), "bus-off");
}

}  // namespace
