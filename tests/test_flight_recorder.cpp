// Unit tests for the obs flight recorder: ring wrap-around, freeze-on-
// trigger with disjoint pre/post windows, trigger coalescing and the
// max_incidents cap, partial flush, bundle JSON shape and on-disk
// emission, plus the supervisor integration — same-seed bundles must be
// byte-identical across worker counts, and every recorded verdict must
// match the ordered sink bit-for-bit (the in-process half of what
// tools/vprofile_replay.cpp checks offline).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "io/json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using obs::EvidenceRecord;
using obs::FlightRecorder;
using obs::FlightRecorderConfig;
using obs::IncidentCause;

// ------------------------------------------------------------- helpers

/// A distinguishable record: seq drives every field so window contents
/// can be asserted from the parsed bundle alone.
EvidenceRecord make_record(std::uint64_t seq) {
  EvidenceRecord r;
  r.seq = seq;
  r.tick_ns = seq * 10;
  r.sa = static_cast<std::uint8_t>(seq & 0x7F);
  r.verdict = 0;
  r.min_distance = 0.5 * static_cast<double>(seq);
  r.confidence = 1.0;
  r.dim = 2;
  r.features[0] = static_cast<double>(seq);
  r.features[1] = 0.25;
  return r;
}

/// Fixed-provenance config: byte-stable bundles need a manifest that
/// does not read the wall clock (RunManifest::create() does).
FlightRecorderConfig small_config() {
  FlightRecorderConfig fc;
  fc.ring_capacity = 8;
  fc.pre_trigger = 8;
  fc.post_trigger = 2;
  fc.manifest.tool = "test_flight_recorder";
  fc.manifest.git_describe = "test";
  fc.manifest.iso8601 = "1970-01-01T00:00:00Z";
  return fc;
}

/// Sequence numbers of one evidence window ("pre" / "post") in a parsed
/// bundle.
std::vector<std::uint64_t> window_seqs(const io::json::Value& root,
                                       const char* part) {
  std::vector<std::uint64_t> seqs;
  const io::json::Value* evidence = io::json::get(&root, "evidence");
  const io::json::Value* window = io::json::get(evidence, part);
  if (window == nullptr || !window->is_array()) return seqs;
  for (const io::json::Value& rec : window->array) {
    const io::json::Value* seq = io::json::get(&rec, "seq");
    if (seq != nullptr && seq->is_number()) {
      seqs.push_back(static_cast<std::uint64_t>(seq->number));
    }
  }
  return seqs;
}

io::json::Value parse_bundle(const std::string& text) {
  io::json::Value root;
  std::string error;
  EXPECT_TRUE(io::json::parse(text, &root, &error)) << error;
  return root;
}

// -------------------------------------------------------- ring behavior

TEST(FlightRecorderTest, RingWrapAroundFreezesTheMostRecentWindow) {
  FlightRecorder rec(small_config());  // capacity 8, pre 8, post 2
  for (std::uint64_t s = 0; s < 20; ++s) rec.record(make_record(s));
  EXPECT_EQ(rec.records_seen(), 20u);

  // The trigger arms; the next record() freezes the pre-window first,
  // so the ring's survivors at freeze time are seqs 12..19.
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kOperator, 19, "wrap"));
  rec.record(make_record(20));
  EXPECT_TRUE(rec.incident_open());
  rec.record(make_record(21));  // post-window full -> bundle emitted
  EXPECT_FALSE(rec.incident_open());
  ASSERT_EQ(rec.incidents_emitted(), 1u);

  const io::json::Value root = parse_bundle(rec.bundle_json(1));
  const std::vector<std::uint64_t> pre = window_seqs(root, "pre");
  const std::vector<std::uint64_t> post = window_seqs(root, "post");
  ASSERT_EQ(pre.size(), 8u);
  for (std::size_t i = 0; i < pre.size(); ++i) EXPECT_EQ(pre[i], 12 + i);
  ASSERT_EQ(post.size(), 2u);
  EXPECT_EQ(post[0], 20u);
  EXPECT_EQ(post[1], 21u);
}

TEST(FlightRecorderTest, PreAndPostWindowsAreDisjointAndContiguous) {
  FlightRecorderConfig fc = small_config();
  fc.ring_capacity = 16;
  fc.pre_trigger = 4;
  fc.post_trigger = 3;
  FlightRecorder rec(fc);
  for (std::uint64_t s = 0; s < 10; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kDriftAlarm, 9, "drift"));
  for (std::uint64_t s = 10; s < 13; ++s) rec.record(make_record(s));
  ASSERT_EQ(rec.incidents_emitted(), 1u);

  // The trigger frame (seq 9) is the *last* pre-window record; the first
  // record stored after the arm opens the post-window.  Nothing repeats.
  const io::json::Value root = parse_bundle(rec.bundle_json(1));
  const std::vector<std::uint64_t> pre = window_seqs(root, "pre");
  const std::vector<std::uint64_t> post = window_seqs(root, "post");
  ASSERT_EQ(pre.size(), 4u);
  ASSERT_EQ(post.size(), 3u);
  EXPECT_EQ(pre.back(), 9u);
  EXPECT_EQ(post.front(), 10u);
  for (std::size_t i = 1; i < pre.size(); ++i) {
    EXPECT_EQ(pre[i], pre[i - 1] + 1);
  }
  for (std::size_t i = 1; i < post.size(); ++i) {
    EXPECT_EQ(post[i], post[i - 1] + 1);
  }

  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trigger_seq, 9u);
  EXPECT_EQ(incidents[0].cause, IncidentCause::kDriftAlarm);
  EXPECT_EQ(incidents[0].pre_records, 4u);
  EXPECT_EQ(incidents[0].post_records, 3u);
}

TEST(FlightRecorderTest, ShortHistoryYieldsAShortPreWindow) {
  FlightRecorder rec(small_config());  // pre 8, but only 3 records exist
  for (std::uint64_t s = 0; s < 3; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kOperator, 2, "early"));
  for (std::uint64_t s = 3; s < 5; ++s) rec.record(make_record(s));
  ASSERT_EQ(rec.incidents_emitted(), 1u);
  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  EXPECT_EQ(incidents[0].pre_records, 3u);
  EXPECT_EQ(incidents[0].post_records, 2u);
}

// ------------------------------------------- coalescing and suppression

TEST(FlightRecorderTest, TriggersWhileArmedOrOpenAreCoalesced) {
  FlightRecorderConfig fc = small_config();
  fc.post_trigger = 4;
  FlightRecorder rec(fc);
  for (std::uint64_t s = 0; s < 4; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kAnomalyVerdict, 3, "first"));
  // Still armed: merged, not a second incident.
  EXPECT_FALSE(rec.request_trigger(IncidentCause::kOperator, 3, "second"));
  rec.record(make_record(4));  // freeze; post-window open
  // Open: still merged.
  EXPECT_FALSE(rec.request_trigger(IncidentCause::kDriftAlarm, 4, "third"));
  for (std::uint64_t s = 5; s < 8; ++s) rec.record(make_record(s));
  ASSERT_EQ(rec.incidents_emitted(), 1u);
  EXPECT_EQ(rec.triggers_coalesced(), 2u);

  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  // The first trigger wins the cause.  The bundle reports merges that
  // landed during *its* capture window (the open phase); the armed-phase
  // merge shows up only in the recorder-wide counter above.
  EXPECT_EQ(incidents[0].cause, IncidentCause::kAnomalyVerdict);
  EXPECT_EQ(incidents[0].coalesced, 1u);
}

TEST(FlightRecorderTest, MaxIncidentsCapSuppressesFurtherBundles) {
  FlightRecorderConfig fc = small_config();
  fc.post_trigger = 1;
  fc.max_incidents = 1;
  FlightRecorder rec(fc);
  for (std::uint64_t s = 0; s < 4; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kOperator, 3, "kept"));
  rec.record(make_record(4));
  ASSERT_EQ(rec.incidents_emitted(), 1u);

  rec.request_trigger(IncidentCause::kOperator, 4, "capped");
  for (std::uint64_t s = 5; s < 10; ++s) rec.record(make_record(s));
  EXPECT_EQ(rec.incidents_emitted(), 1u);
  EXPECT_EQ(rec.incidents_suppressed(), 1u);
  EXPECT_EQ(rec.incidents().size(), 1u);
}

TEST(FlightRecorderTest, FlushEmitsThePartialPostWindow) {
  FlightRecorderConfig fc = small_config();
  fc.post_trigger = 16;
  FlightRecorder rec(fc);
  for (std::uint64_t s = 0; s < 4; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kWatchdogRestart, 3, "eof"));
  rec.record(make_record(4));  // one post record, 15 still owed
  EXPECT_TRUE(rec.incident_open());
  rec.flush();  // quiescence: emit with what exists
  EXPECT_FALSE(rec.incident_open());
  ASSERT_EQ(rec.incidents_emitted(), 1u);
  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  EXPECT_EQ(incidents[0].pre_records, 4u);
  EXPECT_EQ(incidents[0].post_records, 1u);
}

TEST(FlightRecorderTest, FlushConsumesAnArmedTriggerWithNoPostRecords) {
  FlightRecorder rec(small_config());
  for (std::uint64_t s = 0; s < 4; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kOperator, 3, "tail"));
  rec.flush();  // no record() ever consumed the arm
  ASSERT_EQ(rec.incidents_emitted(), 1u);
  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  EXPECT_EQ(incidents[0].pre_records, 4u);
  EXPECT_EQ(incidents[0].post_records, 0u);
}

// ------------------------------------------------- bundle shape on disk

TEST(FlightRecorderTest, BundleSchemaMetricsAndDiskCopyAgree) {
  obs::MetricsRegistry registry;
  FlightRecorderConfig fc = small_config();
  fc.bus = "test_bus";
  fc.post_trigger = 1;
  fc.incident_dir = ::testing::TempDir() + "/fr_bundles";
  fc.metrics = &registry;
  FlightRecorder rec(fc);
  for (std::uint64_t s = 0; s < 6; ++s) rec.record(make_record(s));
  EXPECT_TRUE(rec.request_trigger(IncidentCause::kOperator, 5, "disk"));
  rec.record(make_record(6));
  ASSERT_EQ(rec.incidents_emitted(), 1u);

  const std::string json = rec.bundle_json(1);
  ASSERT_FALSE(json.empty());
  const io::json::Value root = parse_bundle(json);
  const io::json::Value* schema = io::json::get(&root, "schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "vprofile-incident-v1");
  const io::json::Value* manifest = io::json::get(&root, "manifest");
  const io::json::Value* tool = io::json::get(manifest, "tool");
  ASSERT_NE(tool, nullptr);
  EXPECT_EQ(tool->string, "test_flight_recorder");
  const io::json::Value* incident = io::json::get(&root, "incident");
  const io::json::Value* cause = io::json::get(incident, "cause");
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->string, "operator");

  // The on-disk bundle is the same bytes the retained copy holds.
  const std::vector<obs::IncidentSummary> incidents = rec.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  ASSERT_FALSE(incidents[0].path.empty());
  std::ifstream in(incidents[0].path, std::ios::binary);
  ASSERT_TRUE(in.good()) << incidents[0].path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);

  // Eager per-cause registration: every cause exports from frame zero,
  // and the fired one reads 1.
  std::uint64_t causes_seen = 0;
  for (const obs::MetricSample& s : registry.samples()) {
    if (s.name != "incidents_total") continue;
    ++causes_seen;
    std::string cause_label;
    for (const auto& [k, v] : s.labels) {
      if (k == "cause") cause_label = v;
    }
    EXPECT_EQ(s.counter_value, cause_label == "operator" ? 1u : 0u)
        << cause_label;
  }
  EXPECT_EQ(causes_seen, obs::kNumIncidentCauses);
}

// --------------------------------------------- supervisor integration

struct Fixture {
  std::optional<sim::Vehicle> vehicle;
  std::optional<vprofile::Model> model;
  vprofile::ExtractionConfig extraction;
  std::vector<dsp::Trace> traces;  // benign stream
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    fx.vehicle.emplace(sim::vehicle_a(), 11);
    const analog::Environment env = analog::Environment::reference();
    fx.extraction = sim::default_extraction(fx.vehicle->config());
    std::vector<vprofile::EdgeSet> training;
    for (const sim::Capture& cap : fx.vehicle->capture(900, env)) {
      if (auto es = vprofile::extract_edge_set(cap.codes, fx.extraction)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.extraction = fx.extraction;
    auto out =
        vprofile::train_with_database(training, fx.vehicle->database(), tc);
    EXPECT_TRUE(out.ok()) << out.error;
    if (!out.ok()) return fx;
    fx.model = std::move(*out.model);
    for (sim::LabeledCapture& lc :
         sim::make_normal_stream(*fx.vehicle, 40, env)) {
      fx.traces.push_back(std::move(lc.capture.codes));
    }
    return fx;
  }();
  return f;
}

/// One deterministic supervised run with the recorder on: lockstep, no
/// online update, a fixed manifest, and an operator trigger at a fixed
/// frame.  The post-trigger window is wider than the stream remainder,
/// so the bundle is emitted by flush() at finish() — at quiescence —
/// which is what makes the context counters (live pipeline snapshots)
/// byte-stable too; a mid-stream emission snapshots them while workers
/// are still scoring ahead of the serialized handler.  Returns the first
/// bundle plus the sink's view of every result.
struct SupervisedRun {
  std::string bundle;
  std::map<std::uint64_t, pipeline::FrameResult> results;
};

SupervisedRun run_supervised(std::size_t workers) {
  const Fixture& fx = fixture();
  SupervisedRun out;
  runtime::SupervisorConfig sc;
  sc.pipeline.num_workers = workers;
  sc.pipeline.keep_edge_set = true;  // evidence retains feature vectors
  sc.online_update = false;
  sc.lockstep = true;
  sc.flight_recorder = true;
  sc.recorder.bus = "test_bus";
  sc.recorder.ring_capacity = 32;
  sc.recorder.pre_trigger = 8;
  sc.recorder.post_trigger = 1024;
  sc.recorder.manifest.tool = "test_flight_recorder";
  sc.recorder.manifest.git_describe = "test";
  sc.recorder.manifest.iso8601 = "1970-01-01T00:00:00Z";
  runtime::Supervisor sup(*fx.model, sc, [&](const pipeline::FrameResult& r) {
    out.results.emplace(r.seq, r);
  });
  for (std::size_t i = 0; i < fx.traces.size(); ++i) {
    sup.submit(fx.traces[i]);
    // Lockstep: frame i is fully handled here, so the trigger lands at
    // the same frames_handled in every run regardless of worker count.
    if (i == 19) sup.trigger_incident("fixed-point trigger");
  }
  sup.finish();
  const obs::FlightRecorder* rec = sup.flight_recorder();
  EXPECT_NE(rec, nullptr);
  if (rec != nullptr) {
    EXPECT_GE(rec->incidents_emitted(), 1u);
    out.bundle = rec->bundle_json(1);
  }
  return out;
}

TEST(FlightRecorderSupervisorTest, BundlesAreByteIdenticalAcrossWorkerCounts) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  const SupervisedRun one = run_supervised(1);
  const SupervisedRun two = run_supervised(2);
  ASSERT_FALSE(one.bundle.empty());
  // Same seed, same stream, same trigger point: the bundle — manifest,
  // context, evidence doubles — is a pure function of the run.
  EXPECT_EQ(one.bundle, two.bundle);
}

TEST(FlightRecorderSupervisorTest, EvidenceVerdictsMatchTheSinkBitForBit) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  const SupervisedRun run = run_supervised(2);
  ASSERT_FALSE(run.bundle.empty());
  const io::json::Value root = parse_bundle(run.bundle);
  const io::json::Value* evidence = io::json::get(&root, "evidence");
  std::size_t checked = 0;
  for (const char* part : {"pre", "post"}) {
    const io::json::Value* window = io::json::get(evidence, part);
    ASSERT_NE(window, nullptr);
    for (const io::json::Value& rec : window->array) {
      const io::json::Value* seq = io::json::get(&rec, "seq");
      const io::json::Value* verdict_code = io::json::get(&rec, "verdict_code");
      const io::json::Value* dist = io::json::get(&rec, "min_distance");
      ASSERT_NE(seq, nullptr);
      if (verdict_code == nullptr || !verdict_code->is_number()) continue;
      const auto it =
          run.results.find(static_cast<std::uint64_t>(seq->number));
      ASSERT_NE(it, run.results.end());
      ASSERT_TRUE(it->second.detection.has_value());
      EXPECT_EQ(static_cast<unsigned>(verdict_code->number),
                static_cast<unsigned>(it->second.detection->verdict));
      // %.17g round-trips doubles exactly: the parsed value must carry
      // the same bit pattern the detector produced.
      double parsed = 0.0;
      ASSERT_TRUE(io::json::flexible_number(*dist, &parsed));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed),
                std::bit_cast<std::uint64_t>(it->second.detection->min_distance));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
