// Deterministic-equivalence tests for the streaming pipeline: for several
// seeds and both vehicle presets, the parallel pipeline must emit exactly
// the FrameResult stream the sequential reference produces — same order,
// same verdicts, bit-identical distances — including the extraction error
// paths (kNoSof / kTruncated / kStuffViolation).  Plus determinism of the
// multi-threaded trainer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using pipeline::DetectionPipeline;
using pipeline::FrameResult;
using pipeline::PipelineConfig;
using vprofile::ExtractError;

struct Fixture {
  std::optional<sim::Vehicle> vehicle;
  std::optional<vprofile::Model> model;
  std::vector<dsp::Trace> traces;
};

/// Trains a small model and builds a mixed stream: hijack traffic with a
/// corrupted trace of each failure mode spliced in at fixed positions.
Fixture make_fixture(const sim::VehicleConfig& config, std::uint64_t seed,
                     std::size_t train_count, std::size_t stream_count) {
  Fixture f;
  f.vehicle.emplace(config, seed);
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction = sim::default_extraction(config);

  std::vector<vprofile::EdgeSet> edge_sets;
  for (const sim::Capture& cap : f.vehicle->capture(train_count, env)) {
    auto es = vprofile::extract_edge_set(cap.codes, extraction);
    if (es) edge_sets.push_back(std::move(*es));
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  vprofile::TrainOutcome out =
      vprofile::train_with_database(edge_sets, f.vehicle->database(), tc);
  EXPECT_TRUE(out.ok()) << out.error;
  if (!out.ok()) return f;
  f.model = std::move(*out.model);

  for (sim::LabeledCapture& lc :
       sim::make_hijack_stream(*f.vehicle, stream_count, 0.2, env)) {
    f.traces.push_back(std::move(lc.capture.codes));
  }

  // Corrupt three traces, one per failure mode.
  const std::size_t bw = extraction.bit_width_samples;
  const double threshold = extraction.bit_threshold;
  // kNoSof: never crosses the bit threshold.
  f.traces[1].assign(f.traces[1].size(), 0.0);
  // kTruncated: ends mid-arbitration.
  {
    dsp::Trace& t = f.traces[3];
    const auto sof = dsp::find_sof(t, threshold);
    EXPECT_TRUE(sof.has_value());
    t.resize(*sof + 5 * bw);
  }
  // kStuffViolation: six-plus consecutive dominant bits early in the frame.
  {
    dsp::Trace& t = f.traces[5];
    const auto sof = dsp::find_sof(t, threshold);
    EXPECT_TRUE(sof.has_value());
    const double dominant = *std::max_element(t.begin(), t.end());
    const std::size_t first = *sof + 2 * bw;
    const std::size_t last = std::min(t.size(), first + 9 * bw);
    std::fill(t.begin() + first, t.begin() + last, dominant);
  }
  return f;
}

/// Runs the pipeline over the traces and returns the sink's stream.
std::vector<FrameResult> run_pipeline(const vprofile::Model& model,
                                      const std::vector<dsp::Trace>& traces,
                                      const vprofile::DetectionConfig& dc,
                                      std::size_t workers,
                                      std::size_t queue_capacity = 64) {
  PipelineConfig pc;
  pc.num_workers = workers;
  pc.queue_capacity = queue_capacity;
  pc.detection = dc;
  std::vector<FrameResult> results;
  results.reserve(traces.size());
  DetectionPipeline pipe(model, pc, [&](FrameResult&& r) {
    results.push_back(std::move(r));
  });
  for (const dsp::Trace& t : traces) {
    EXPECT_TRUE(pipe.submit(t).has_value());
  }
  pipe.finish();
  return results;
}

void expect_identical(const std::vector<FrameResult>& a,
                      const std::vector<FrameResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].dropped, b[i].dropped);
    EXPECT_EQ(a[i].extract_error, b[i].extract_error);
    EXPECT_EQ(a[i].sa, b[i].sa);
    ASSERT_EQ(a[i].detection.has_value(), b[i].detection.has_value());
    if (a[i].detection) {
      EXPECT_EQ(a[i].detection->verdict, b[i].detection->verdict);
      EXPECT_EQ(a[i].detection->expected_cluster,
                b[i].detection->expected_cluster);
      EXPECT_EQ(a[i].detection->predicted_cluster,
                b[i].detection->predicted_cluster);
      // Bit-identical, not approximately equal: the pipeline runs the very
      // same scoring code on the very same inputs.
      EXPECT_EQ(a[i].detection->min_distance, b[i].detection->min_distance);
    }
  }
}

TEST(PipelineEquivalence, MatchesSequentialAcrossSeedsAndVehicles) {
  struct Case {
    sim::VehicleConfig config;
    std::uint64_t seed;
    std::size_t train;
    std::size_t stream;
  };
  const Case cases[] = {
      {sim::vehicle_a(), 11, 900, 160},
      {sim::vehicle_a(), 12, 900, 160},
      {sim::vehicle_b(), 13, 1400, 120},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.config.name + " seed " + std::to_string(c.seed));
    Fixture f = make_fixture(c.config, c.seed, c.train, c.stream);
    ASSERT_TRUE(f.model.has_value());
    const vprofile::DetectionConfig dc{0.5};
    const auto sequential =
        pipeline::score_sequential(*f.model, f.traces, dc);
    const auto parallel = run_pipeline(*f.model, f.traces, dc, 4);
    expect_identical(sequential, parallel);
    // Sequence numbers are dense and in capture order.
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].seq, i);
    }
  }
}

TEST(PipelineEquivalence, ExtractErrorPathsSurviveThePipeline) {
  Fixture f = make_fixture(sim::vehicle_a(), 21, 900, 60);
  ASSERT_TRUE(f.model.has_value());
  const auto results =
      run_pipeline(*f.model, f.traces, vprofile::DetectionConfig{}, 3);
  ASSERT_EQ(results.size(), f.traces.size());
  EXPECT_EQ(results[1].extract_error, ExtractError::kNoSof);
  EXPECT_EQ(results[3].extract_error, ExtractError::kTruncated);
  EXPECT_EQ(results[5].extract_error, ExtractError::kStuffViolation);
  for (const std::size_t i : {1, 3, 5}) {
    EXPECT_FALSE(results[i].ok());
    EXPECT_FALSE(results[i].detection.has_value());
  }
  // Everything else scored normally.
  std::size_t scored = 0;
  for (const FrameResult& r : results) scored += r.ok() ? 1 : 0;
  EXPECT_EQ(scored, results.size() - 3);
}

TEST(PipelineEquivalence, WorkerCountDoesNotChangeTheStream) {
  Fixture f = make_fixture(sim::vehicle_a(), 31, 900, 100);
  ASSERT_TRUE(f.model.has_value());
  const vprofile::DetectionConfig dc{1.0};
  const auto reference = run_pipeline(*f.model, f.traces, dc, 1);
  for (const std::size_t workers : {2, 3, 8}) {
    SCOPED_TRACE(workers);
    expect_identical(reference,
                     run_pipeline(*f.model, f.traces, dc, workers,
                                  /*queue_capacity=*/8));
  }
}

TEST(PipelineEquivalence, CountersAccountForEveryFrame) {
  Fixture f = make_fixture(sim::vehicle_a(), 41, 900, 80);
  ASSERT_TRUE(f.model.has_value());
  PipelineConfig pc;
  pc.num_workers = 2;
  pc.queue_capacity = 16;
  std::size_t emitted = 0;
  DetectionPipeline pipe(*f.model, pc, [&](FrameResult&&) { ++emitted; });
  for (const dsp::Trace& t : f.traces) pipe.submit(t);
  pipe.finish();
  const pipeline::CountersSnapshot c = pipe.counters();
  EXPECT_EQ(c.submitted.value(), f.traces.size());
  EXPECT_EQ(c.completed.value(), f.traces.size());
  EXPECT_EQ(c.dropped.value(), 0u);
  EXPECT_EQ(emitted, f.traces.size());
  EXPECT_GE(c.queue_high_watermark, 1u);
  EXPECT_LE(c.queue_high_watermark, pc.queue_capacity);
  EXPECT_GT(c.extract_ns, 0u);
}

TEST(PipelineEquivalence, DropPathKeepsCountersConsistent) {
  // Regression test for the finish()-time conservation law with drops in
  // play: every submitted frame must land in exactly one of
  // completed/dropped, and every completed frame in exactly one outcome
  // bucket (verdict or extraction failure).  A sink that sleeps makes the
  // one-slot queue overflow on real mixed traffic (valid frames plus the
  // fixture's three corrupted traces), so all three paths — verdicts,
  // extraction failures, and drops — are exercised at once.
  Fixture f = make_fixture(sim::vehicle_a(), 71, 900, 300);
  ASSERT_TRUE(f.model.has_value());
  PipelineConfig pc;
  pc.num_workers = 1;
  pc.queue_capacity = 1;
  pc.block_when_full = false;
  std::size_t emitted = 0;
  DetectionPipeline pipe(*f.model, pc, [&](FrameResult&&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++emitted;
  });
  for (const dsp::Trace& t : f.traces) pipe.submit(t);
  pipe.finish();
  const pipeline::CountersSnapshot c = pipe.counters();
  EXPECT_GT(c.dropped.value(), 0u)
      << "queue never overflowed; slow the sink or shrink the queue";
  EXPECT_EQ(emitted, f.traces.size());  // dropped frames still emitted
  EXPECT_EQ(c.submitted.value(), f.traces.size());
  EXPECT_TRUE(c.consistent());
  EXPECT_EQ(c.completed.value(), c.classified() + c.extract_failures());
  EXPECT_GT(c.classified(), 0u);
}

TEST(PipelineEquivalence, SubmitAfterFinishIsRefused) {
  Fixture f = make_fixture(sim::vehicle_a(), 51, 900, 10);
  ASSERT_TRUE(f.model.has_value());
  std::size_t emitted = 0;
  DetectionPipeline pipe(*f.model, PipelineConfig{},
                         [&](FrameResult&&) { ++emitted; });
  for (const dsp::Trace& t : f.traces) pipe.submit(t);
  pipe.finish();
  EXPECT_FALSE(pipe.submit(f.traces.front()).has_value());
  EXPECT_EQ(emitted, f.traces.size());
  EXPECT_EQ(pipe.counters().submitted.value(), f.traces.size());
}

TEST(PipelineRobustness, ThrowingStageCostsOneFrameNotTheWorker) {
  // A stage that throws mid-stream must be contained per frame: the worker
  // survives, the poisoned frames come back as worker_error results in
  // order, and every other frame scores exactly as the sequential
  // reference says.  Before containment this was std::terminate.
  Fixture f = make_fixture(sim::vehicle_a(), 11, 900, 120);
  ASSERT_TRUE(f.model.has_value());
  const vprofile::DetectionConfig dc;
  const auto reference = pipeline::score_sequential(*f.model, f.traces, dc);

  for (const std::size_t workers : {1u, 4u}) {
    PipelineConfig pc;
    pc.num_workers = workers;
    pc.queue_capacity = 32;
    pc.detection = dc;
    pc.stage_hook = [](std::uint64_t seq, const dsp::Trace&) {
      if (seq % 7 == 3) throw std::runtime_error("injected stage failure");
    };
    std::vector<FrameResult> results;
    DetectionPipeline pipe(*f.model, pc, [&](FrameResult&& r) {
      results.push_back(std::move(r));
    });
    for (const dsp::Trace& t : f.traces) pipe.submit(t);
    pipe.finish();

    ASSERT_EQ(results.size(), f.traces.size());
    std::uint64_t errors = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(results[i].seq, i);
      if (i % 7 == 3) {
        ++errors;
        EXPECT_TRUE(results[i].worker_error);
        EXPECT_FALSE(results[i].ok());
        EXPECT_FALSE(results[i].detection.has_value());
      } else {
        EXPECT_FALSE(results[i].worker_error);
        EXPECT_EQ(results[i].extract_error, reference[i].extract_error);
        if (results[i].ok()) {
          EXPECT_EQ(results[i].detection->verdict,
                    reference[i].detection->verdict);
          EXPECT_EQ(results[i].detection->min_distance,
                    reference[i].detection->min_distance);
        }
      }
    }
    const pipeline::CountersSnapshot c = pipe.counters();
    EXPECT_EQ(c.worker_errors, errors);
    EXPECT_TRUE(c.consistent());
  }
}

TEST(PipelineRobustness, KeepEdgeSetRetainsScoredEdgeSets) {
  Fixture f = make_fixture(sim::vehicle_a(), 12, 900, 60);
  ASSERT_TRUE(f.model.has_value());
  const vprofile::DetectionConfig dc;
  const auto reference = pipeline::score_sequential(*f.model, f.traces, dc);

  PipelineConfig pc;
  pc.num_workers = 2;
  pc.detection = dc;
  pc.keep_edge_set = true;
  std::vector<FrameResult> results;
  DetectionPipeline pipe(*f.model, pc, [&](FrameResult&& r) {
    results.push_back(std::move(r));
  });
  for (const dsp::Trace& t : f.traces) pipe.submit(t);
  pipe.finish();

  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(results[i].ok(), reference[i].ok());
    if (results[i].ok()) {
      // The retained edge set is the one that was scored: same SA, model
      // dimensionality, and verdicts unchanged by retention.
      ASSERT_TRUE(results[i].edge_set.has_value());
      EXPECT_EQ(results[i].edge_set->sa, results[i].sa);
      EXPECT_EQ(results[i].edge_set->samples.size(), f.model->dimension());
      EXPECT_EQ(results[i].detection->verdict, reference[i].detection->verdict);
      EXPECT_EQ(results[i].detection->min_distance,
                reference[i].detection->min_distance);
    } else {
      EXPECT_FALSE(results[i].edge_set.has_value());
    }
  }
}

TEST(ParallelTrainer, ThreadCountDoesNotChangeTheModel) {
  sim::Vehicle vehicle(sim::vehicle_a(), 61);
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction =
      sim::default_extraction(vehicle.config());
  std::vector<vprofile::EdgeSet> edge_sets;
  for (const sim::Capture& cap : vehicle.capture(900, env)) {
    auto es = vprofile::extract_edge_set(cap.codes, extraction);
    if (es) edge_sets.push_back(std::move(*es));
  }

  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  tc.num_threads = 1;
  const auto seq = vprofile::train_with_database(edge_sets,
                                                 vehicle.database(), tc);
  ASSERT_TRUE(seq.ok()) << seq.error;
  for (const std::size_t threads : {2, 4, 7}) {
    SCOPED_TRACE(threads);
    tc.num_threads = threads;
    const auto par =
        vprofile::train_with_database(edge_sets, vehicle.database(), tc);
    ASSERT_TRUE(par.ok()) << par.error;
    EXPECT_EQ(par.ridge_used, seq.ridge_used);
    const auto& a = seq.model->clusters();
    const auto& b = par.model->clusters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(a[i].name, b[i].name);
      EXPECT_EQ(a[i].sas, b[i].sas);
      EXPECT_EQ(a[i].mean, b[i].mean);  // bit-identical
      EXPECT_EQ(a[i].max_distance, b[i].max_distance);
      EXPECT_EQ(a[i].edge_set_count, b[i].edge_set_count);
      EXPECT_EQ(a[i].inv_covariance.data(), b[i].inv_covariance.data());
    }
  }
}

TEST(ParallelTrainer, ErrorsAreDeterministicAcrossThreadCounts) {
  sim::Vehicle vehicle(sim::vehicle_a(), 71);
  const vprofile::ExtractionConfig extraction =
      sim::default_extraction(vehicle.config());
  std::vector<vprofile::EdgeSet> edge_sets;
  for (const sim::Capture& cap :
       vehicle.capture(120, analog::Environment::reference())) {
    auto es = vprofile::extract_edge_set(cap.codes, extraction);
    if (es) edge_sets.push_back(std::move(*es));
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  // Unsatisfiable: every cluster fails; the *first* cluster's complaint
  // must be reported regardless of which worker hits an error first.
  tc.min_cluster_size = 100000;
  tc.num_threads = 1;
  const auto seq = vprofile::train_with_database(edge_sets,
                                                 vehicle.database(), tc);
  ASSERT_FALSE(seq.ok());
  tc.num_threads = 6;
  const auto par = vprofile::train_with_database(edge_sets,
                                                 vehicle.database(), tc);
  ASSERT_FALSE(par.ok());
  EXPECT_EQ(seq.error, par.error);
}

}  // namespace
