// Tests for the vprofile_lint rule engine: every rule must fire on a
// minimal violating fixture and stay silent on the conforming rewrite,
// suppressions must be honored, and the scrubber must keep comments and
// string literals from producing findings.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace {

using vplint::Finding;
using vplint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

TEST(LintDeterminism, FlagsRandSrandTimeClock) {
  const std::string src = R"cpp(
int f() {
  srand(42);
  int a = rand();
  long t = time(nullptr);
  long c = clock();
  return a + int(t + c);
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"determinism", "determinism",
                                      "determinism", "determinism"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintDeterminism, FlagsRandomDevice) {
  const auto findings =
      lint_source("fixture.cpp", "std::mt19937 g{std::random_device{}()};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintDeterminism, CleanOnSeededRngAndUnrelatedNames) {
  const std::string src = R"cpp(
#include "stats/rng.hpp"
double g(const Frame& frame, units::Seed64 seed) {
  stats::Rng rng(seed);                // seeded stream: fine
  double start_time(double);           // _time suffix is a different token
  return rng.uniform(0.0, 1.0) + frame.time() + clk->clock();
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintDeterminism, AllowlistExemptsSeedHelperFile) {
  const std::string src = "unsigned s = std::random_device{}();\n";
  EXPECT_FALSE(lint_source("src/other/file.hpp", src).empty());
  EXPECT_TRUE(lint_source("src/stats/rng.hpp", src).empty());
}

// ---------------------------------------------------------------------
// raw-new-delete
// ---------------------------------------------------------------------

TEST(LintRawNewDelete, FlagsRawNewAndDelete) {
  const std::string src = R"cpp(
void f() {
  int* p = new int[4];
  delete[] p;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"raw-new-delete",
                                                          "raw-new-delete"}));
}

TEST(LintRawNewDelete, AllowsDeletedFunctionsAndAllocatorShims) {
  const std::string src = R"cpp(
struct Arena {
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) =delete;
  void* operator new(std::size_t n);
  void operator delete(void* p);
};
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------

TEST(LintUnorderedIteration, FlagsRangeForOverDeclaredVariable) {
  const std::string src = R"cpp(
#include <unordered_map>
double score(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [k, w] : weights) sum += w;
  return sum;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintUnorderedIteration, FlagsMultiLineDeclarations) {
  const std::string src = R"cpp(
std::unordered_map<std::string,
                   std::vector<double>> table;
void dump() {
  for (auto it = table.begin(); it != table.end(); ++it) emit(*it);
}
)cpp";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src),
                       "unordered-iteration"));
}

TEST(LintUnorderedIteration, CleanOnLookupsAndOrderedMaps) {
  const std::string src = R"cpp(
#include <map>
#include <unordered_map>
std::unordered_map<int, double> cache;
std::map<int, double> ordered;
double f(int k) {
  const auto it = cache.find(k);       // point lookup: fine
  for (const auto& [key, v] : ordered) use(key, v);
  return it == cache.end() ? 0.0 : it->second;
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------

TEST(LintFloatEq, FlagsEqualityAgainstFloatLiterals) {
  const std::string src = R"cpp(
bool f(double x, double y) {
  if (x == 0.0) return true;
  if (1.5f != y) return false;
  return x == 1e-9;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"float-eq", "float-eq", "float-eq"}));
}

TEST(LintFloatEq, CleanOnIntegerComparisonsAndOperators) {
  const std::string src = R"cpp(
struct Id {
  int v = 0;
  friend bool operator==(Id, Id) = default;
};
bool g(int n, std::size_t i, const std::vector<int>& xs) {
  return n == 0 && i != xs.size() && xs[0] == 0x10;
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// unit-cast
// ---------------------------------------------------------------------

TEST(LintUnitCast, FlagsStaticCastToUnitType) {
  const std::string src =
      "auto i = static_cast<units::SampleIndex>(bit_index);\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unit-cast");
}

TEST(LintUnitCast, FlagsRewrappingOneUnitAsAnother) {
  const std::string src =
      "units::SampleIndex pos{units::BitIndex{3}.value()};\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "unit-cast"));
}

TEST(LintUnitCast, CleanOnEntryExitAndSameUnitWraps) {
  const std::string src = R"cpp(
units::Volts v{2.5};
double raw = v.value();
units::SampleRateHz rate{adc.sample_rate().value() / 2.0};
units::SampleIndex pos = t * rate_of(cfg);
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// metric-name
// ---------------------------------------------------------------------

TEST(LintMetricName, FlagsBadCaseAndMissingUnitSuffix) {
  const std::string src = R"cpp(
void wire(obs::MetricsRegistry& reg, obs::MetricsRegistry* ptr) {
  reg.counter("FramesTotal");
  reg.gauge("queue_depth");
  ptr->histogram("detectLatency_ns");
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "metric-name");
  EXPECT_NE(findings[0].message.find("FramesTotal"), std::string::npos);
  EXPECT_NE(findings[1].message.find("queue_depth"), std::string::npos);
}

TEST(LintMetricName, CleanOnConformingNamesAndNonRegistryCalls) {
  const std::string src = R"cpp(
void wire(obs::MetricsRegistry& reg, obs::MetricsRegistry* ptr) {
  reg.counter("frames_submitted_total");
  reg.gauge("arena_bytes");
  ptr->histogram(
      "detect_latency_ns", {{"sa", "0x12"}});
  // Free functions and types that merely share the factory names.
  int counter(int);
  obs::Counter c;
  int x = counter(3);
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintMetricName, DynamicNamesAreSkipped) {
  // A computed name can't be validated by a token scanner; the rule must
  // skip it rather than flag or crash.
  const std::string src =
      "void f(obs::MetricsRegistry& reg, const std::string& n) {\n"
      "  reg.counter(n);\n"
      "}\n";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintMetricName, AllowCommentSuppresses) {
  // Mirrors the one sanctioned exemption in src/pipeline/pipeline.cpp
  // (queue_depth is deliberately unitless).
  const std::string src =
      "// vprofile-lint: allow(metric-name)\n"
      "obs::Gauge* g = reg.gauge(\"queue_depth\");\n"
      "obs::Gauge* h = reg.gauge(\"other_depth\");\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "metric-name");
}

// ---------------------------------------------------------------------
// seed-literal
// ---------------------------------------------------------------------

TEST(LintSeedLiteral, FlagsLiteralSeedsAtSeededEntryPoints) {
  const std::string src = R"cpp(
void f() {
  units::Seed64 s{1234};
  stats::Rng rng(42);
  sim::ScenarioRunner runner(0xf407e2);
  auto t = units::Seed64{0xBEEF};
}
)cpp";
  const auto findings = lint_source("src/sim/adversary.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"seed-literal", "seed-literal",
                                      "seed-literal", "seed-literal"}));
  EXPECT_NE(findings[0].message.find("bench::bench_seed"), std::string::npos);
}

TEST(LintSeedLiteral, CleanOnDerivedAndNamedSeeds) {
  const std::string src = R"cpp(
void f(units::Seed64 seed, std::uint64_t raw) {
  stats::Rng rng(seed);
  sim::ScenarioRunner runner(bench::bench_seed("frontier"));
  units::Seed64 derived = sim::derive_stream_seed(seed, "stream/adversary");
  units::Seed64 wrapped{raw};
  units::Seed64 fallback{h == 0 ? 0x9e3779b97f4a7c15ULL : h};
}
)cpp";
  EXPECT_TRUE(lint_source("src/sim/adversary.cpp", src).empty());
}

TEST(LintSeedLiteral, BenchSeedCatalogIsExempt) {
  const std::string src = "units::Seed64 s{4400};\n";
  EXPECT_TRUE(has_rule(lint_source("src/sim/adversary.cpp", src),
                       "seed-literal"));
  EXPECT_TRUE(lint_source("bench/bench_common.cpp", src).empty());
}

TEST(LintSeedLiteral, AllowCommentSuppresses) {
  const std::string src =
      "// vprofile-lint: allow(seed-literal)\n"
      "units::Seed64 s{99};\n"
      "units::Seed64 t{99};\n";
  const auto findings = lint_source("src/sim/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "seed-literal");
}

// ---------------------------------------------------------------------
// simd-boundary
// ---------------------------------------------------------------------

TEST(LintSimdBoundary, FlagsIntrinsicsAndVectorTypesOutsideKernelDir) {
  const std::string src = R"cpp(
void hot_loop(const double* a, const double* b, double* out) {
  __m256d x = _mm256_loadu_pd(a);
  __m256d y = _mm256_loadu_pd(b);
  _mm256_storeu_pd(out, _mm256_add_pd(x, y));
  __m128i small = _mm_setzero_si128();
  (void)small;
}
)cpp";
  const auto findings = lint_source("src/core/fast_path.cpp", src);
  ASSERT_GE(findings.size(), 6u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-boundary");
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                          [](const Finding& f) {
                            return f.message.find("__m256d") !=
                                   std::string::npos;
                          }));
  EXPECT_NE(findings[0].message.find("simd_dispatch"), std::string::npos);
}

TEST(LintSimdBoundary, AllowedInsideTheKernelDirectory) {
  const std::string src =
      "__m256d q = _mm256_setzero_pd();\n"
      "_mm256_storeu_pd(out, q);\n";
  EXPECT_TRUE(lint_source("src/linalg/simd_avx2.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/linalg/simd_kernels.hpp", src).empty());
  // Anywhere else the same text is a violation.
  EXPECT_TRUE(has_rule(lint_source("src/linalg/matrix.cpp", src),
                       "simd-boundary"));
}

TEST(LintSimdBoundary, CleanOnLookalikesCommentsAndStrings) {
  const std::string src = R"cpp(
// _mm256_add_pd in a comment is documentation, not a violation.
const char* doc = "_mm256_loadu_pd";
int my_mm256_helper = 0;
double warm_mm = 0.0;
)cpp";
  EXPECT_TRUE(lint_source("src/core/detector.cpp", src).empty());
}

TEST(LintSimdBoundary, AllowCommentSuppresses) {
  const std::string src =
      "// vprofile-lint: allow(simd-boundary)\n"
      "__m256d q = _mm256_setzero_pd();\n"
      "__m256d r = _mm256_setzero_pd();\n";
  const auto findings = lint_source("src/core/fast.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 3u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-boundary");
}

// ---------------------------------------------------------------------
// Suppressions and scrubbing
// ---------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesOneRule) {
  const std::string src =
      "bool z = (x == 0.0);  // vprofile-lint: allow(float-eq)\n"
      "bool w = (y == 0.0);\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintSuppression, PrecedingLineAllowCoversNextLine) {
  const std::string src =
      "// vprofile-lint: allow(raw-new-delete)\n"
      "int* p = new int;\n";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintSuppression, AllowOnlySilencesTheNamedRule) {
  const std::string src =
      "// vprofile-lint: allow(float-eq)\n"
      "int* p = new int;\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "raw-new-delete"));
}

TEST(LintScrub, CommentsAndStringsProduceNoFindings) {
  const std::string src = R"cpp(
// a comment mentioning rand() and new and x == 0.0
/* block: time(nullptr) and delete p */
const char* s = "rand() time(0) new delete == 0.0";
const char* r = R"(random_device == 1.5)";
char c = '=';
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintScrub, DigitSeparatorsAreNotCharLiterals) {
  // A digit separator must not open a character literal and swallow the
  // rest of the file (which would hide the violation on the next line).
  const std::string src =
      "const long n = 1'000'000;\n"
      "int* p = new int;\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "raw-new-delete"));
}

TEST(LintScrub, FindingsReportOneBasedLines) {
  const auto findings =
      lint_source("fixture.cpp", "\n\n\nint a = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

// ---------------------------------------------------------------------
// compile_commands.json parsing
// ---------------------------------------------------------------------

TEST(LintCompileCommands, ExtractsSortedUniqueFiles) {
  const std::string json = R"json(
[
  {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/a.cpp"},
  {"directory": "/b", "command": "c++ -c b.cpp", "file": "/repo/src/b.cpp"},
  {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/a.cpp"}
]
)json";
  const auto files = vplint::files_from_compile_commands(json);
  EXPECT_EQ(files, (std::vector<std::string>{"/repo/src/a.cpp",
                                             "/repo/src/b.cpp"}));
}

}  // namespace
