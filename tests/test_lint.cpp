// Tests for the vprofile_lint rule engine: every rule must fire on a
// minimal violating fixture and stay silent on the conforming rewrite,
// suppressions must be honored, and the scrubber must keep comments and
// string literals from producing findings.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"
#include "lint/project.hpp"

namespace {

using vplint::Finding;
using vplint::lint_source;

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

TEST(LintDeterminism, FlagsRandSrandTimeClock) {
  const std::string src = R"cpp(
int f() {
  srand(42);
  int a = rand();
  long t = time(nullptr);
  long c = clock();
  return a + int(t + c);
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"determinism", "determinism",
                                      "determinism", "determinism"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintDeterminism, FlagsRandomDevice) {
  const auto findings =
      lint_source("fixture.cpp", "std::mt19937 g{std::random_device{}()};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism");
}

TEST(LintDeterminism, CleanOnSeededRngAndUnrelatedNames) {
  const std::string src = R"cpp(
#include "stats/rng.hpp"
double g(const Frame& frame, units::Seed64 seed) {
  stats::Rng rng(seed);                // seeded stream: fine
  double start_time(double);           // _time suffix is a different token
  return rng.uniform(0.0, 1.0) + frame.time() + clk->clock();
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintDeterminism, AllowlistExemptsSeedHelperFile) {
  const std::string src = "unsigned s = std::random_device{}();\n";
  EXPECT_FALSE(lint_source("src/other/file.hpp", src).empty());
  EXPECT_TRUE(lint_source("src/stats/rng.hpp", src).empty());
}

// ---------------------------------------------------------------------
// raw-new-delete
// ---------------------------------------------------------------------

TEST(LintRawNewDelete, FlagsRawNewAndDelete) {
  const std::string src = R"cpp(
void f() {
  int* p = new int[4];
  delete[] p;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings), (std::vector<std::string>{"raw-new-delete",
                                                          "raw-new-delete"}));
}

TEST(LintRawNewDelete, AllowsDeletedFunctionsAndAllocatorShims) {
  const std::string src = R"cpp(
struct Arena {
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) =delete;
  void* operator new(std::size_t n);
  void operator delete(void* p);
};
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------

TEST(LintUnorderedIteration, FlagsRangeForOverDeclaredVariable) {
  const std::string src = R"cpp(
#include <unordered_map>
double score(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [k, w] : weights) sum += w;
  return sum;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintUnorderedIteration, FlagsMultiLineDeclarations) {
  const std::string src = R"cpp(
std::unordered_map<std::string,
                   std::vector<double>> table;
void dump() {
  for (auto it = table.begin(); it != table.end(); ++it) emit(*it);
}
)cpp";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src),
                       "unordered-iteration"));
}

TEST(LintUnorderedIteration, CleanOnLookupsAndOrderedMaps) {
  const std::string src = R"cpp(
#include <map>
#include <unordered_map>
std::unordered_map<int, double> cache;
std::map<int, double> ordered;
double f(int k) {
  const auto it = cache.find(k);       // point lookup: fine
  for (const auto& [key, v] : ordered) use(key, v);
  return it == cache.end() ? 0.0 : it->second;
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------

TEST(LintFloatEq, FlagsEqualityAgainstFloatLiterals) {
  const std::string src = R"cpp(
bool f(double x, double y) {
  if (x == 0.0) return true;
  if (1.5f != y) return false;
  return x == 1e-9;
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"float-eq", "float-eq", "float-eq"}));
}

TEST(LintFloatEq, CleanOnIntegerComparisonsAndOperators) {
  const std::string src = R"cpp(
struct Id {
  int v = 0;
  friend bool operator==(Id, Id) = default;
};
bool g(int n, std::size_t i, const std::vector<int>& xs) {
  return n == 0 && i != xs.size() && xs[0] == 0x10;
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// unit-cast
// ---------------------------------------------------------------------

TEST(LintUnitCast, FlagsStaticCastToUnitType) {
  const std::string src =
      "auto i = static_cast<units::SampleIndex>(bit_index);\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unit-cast");
}

TEST(LintUnitCast, FlagsRewrappingOneUnitAsAnother) {
  const std::string src =
      "units::SampleIndex pos{units::BitIndex{3}.value()};\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "unit-cast"));
}

TEST(LintUnitCast, CleanOnEntryExitAndSameUnitWraps) {
  const std::string src = R"cpp(
units::Volts v{2.5};
double raw = v.value();
units::SampleRateHz rate{adc.sample_rate().value() / 2.0};
units::SampleIndex pos = t * rate_of(cfg);
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

// ---------------------------------------------------------------------
// metric-name
// ---------------------------------------------------------------------

TEST(LintMetricName, FlagsBadCaseAndMissingUnitSuffix) {
  const std::string src = R"cpp(
void wire(obs::MetricsRegistry& reg, obs::MetricsRegistry* ptr) {
  reg.counter("FramesTotal");
  reg.gauge("queue_depth");
  ptr->histogram("detectLatency_ns");
}
)cpp";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 3u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "metric-name");
  EXPECT_NE(findings[0].message.find("FramesTotal"), std::string::npos);
  EXPECT_NE(findings[1].message.find("queue_depth"), std::string::npos);
}

TEST(LintMetricName, CleanOnConformingNamesAndNonRegistryCalls) {
  const std::string src = R"cpp(
void wire(obs::MetricsRegistry& reg, obs::MetricsRegistry* ptr) {
  reg.counter("frames_submitted_total");
  reg.gauge("arena_bytes");
  ptr->histogram(
      "detect_latency_ns", {{"sa", "0x12"}});
  // Free functions and types that merely share the factory names.
  int counter(int);
  obs::Counter c;
  int x = counter(3);
}
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintMetricName, DynamicNamesAreSkipped) {
  // A computed name can't be validated by a token scanner; the rule must
  // skip it rather than flag or crash.
  const std::string src =
      "void f(obs::MetricsRegistry& reg, const std::string& n) {\n"
      "  reg.counter(n);\n"
      "}\n";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintMetricName, AllowCommentSuppresses) {
  // Mirrors the one sanctioned exemption in src/pipeline/pipeline.cpp
  // (queue_depth is deliberately unitless).
  const std::string src =
      "// vprofile-lint: allow(metric-name)\n"
      "obs::Gauge* g = reg.gauge(\"queue_depth\");\n"
      "obs::Gauge* h = reg.gauge(\"other_depth\");\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "metric-name");
}

// ---------------------------------------------------------------------
// seed-literal
// ---------------------------------------------------------------------

TEST(LintSeedLiteral, FlagsLiteralSeedsAtSeededEntryPoints) {
  const std::string src = R"cpp(
void f() {
  units::Seed64 s{1234};
  stats::Rng rng(42);
  sim::ScenarioRunner runner(0xf407e2);
  auto t = units::Seed64{0xBEEF};
}
)cpp";
  const auto findings = lint_source("src/sim/adversary.cpp", src);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"seed-literal", "seed-literal",
                                      "seed-literal", "seed-literal"}));
  EXPECT_NE(findings[0].message.find("bench::bench_seed"), std::string::npos);
}

TEST(LintSeedLiteral, CleanOnDerivedAndNamedSeeds) {
  const std::string src = R"cpp(
void f(units::Seed64 seed, std::uint64_t raw) {
  stats::Rng rng(seed);
  sim::ScenarioRunner runner(bench::bench_seed("frontier"));
  units::Seed64 derived = sim::derive_stream_seed(seed, "stream/adversary");
  units::Seed64 wrapped{raw};
  units::Seed64 fallback{h == 0 ? 0x9e3779b97f4a7c15ULL : h};
}
)cpp";
  EXPECT_TRUE(lint_source("src/sim/adversary.cpp", src).empty());
}

TEST(LintSeedLiteral, BenchSeedCatalogIsExempt) {
  const std::string src = "units::Seed64 s{4400};\n";
  EXPECT_TRUE(has_rule(lint_source("src/sim/adversary.cpp", src),
                       "seed-literal"));
  EXPECT_TRUE(lint_source("bench/bench_common.cpp", src).empty());
}

TEST(LintSeedLiteral, AllowCommentSuppresses) {
  const std::string src =
      "// vprofile-lint: allow(seed-literal)\n"
      "units::Seed64 s{99};\n"
      "units::Seed64 t{99};\n";
  const auto findings = lint_source("src/sim/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "seed-literal");
}

// ---------------------------------------------------------------------
// simd-boundary
// ---------------------------------------------------------------------

TEST(LintSimdBoundary, FlagsIntrinsicsAndVectorTypesOutsideKernelDir) {
  const std::string src = R"cpp(
void hot_loop(const double* a, const double* b, double* out) {
  __m256d x = _mm256_loadu_pd(a);
  __m256d y = _mm256_loadu_pd(b);
  _mm256_storeu_pd(out, _mm256_add_pd(x, y));
  __m128i small = _mm_setzero_si128();
  (void)small;
}
)cpp";
  const auto findings = lint_source("src/core/fast_path.cpp", src);
  ASSERT_GE(findings.size(), 6u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-boundary");
  EXPECT_TRUE(std::any_of(findings.begin(), findings.end(),
                          [](const Finding& f) {
                            return f.message.find("__m256d") !=
                                   std::string::npos;
                          }));
  EXPECT_NE(findings[0].message.find("simd_dispatch"), std::string::npos);
}

TEST(LintSimdBoundary, AllowedInsideTheKernelDirectory) {
  const std::string src =
      "__m256d q = _mm256_setzero_pd();\n"
      "_mm256_storeu_pd(out, q);\n";
  EXPECT_TRUE(lint_source("src/linalg/simd_avx2.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/linalg/simd_kernels.hpp", src).empty());
  // Anywhere else the same text is a violation.
  EXPECT_TRUE(has_rule(lint_source("src/linalg/matrix.cpp", src),
                       "simd-boundary"));
}

TEST(LintSimdBoundary, CleanOnLookalikesCommentsAndStrings) {
  const std::string src = R"cpp(
// _mm256_add_pd in a comment is documentation, not a violation.
const char* doc = "_mm256_loadu_pd";
int my_mm256_helper = 0;
double warm_mm = 0.0;
)cpp";
  EXPECT_TRUE(lint_source("src/core/detector.cpp", src).empty());
}

TEST(LintSimdBoundary, AllowCommentSuppresses) {
  const std::string src =
      "// vprofile-lint: allow(simd-boundary)\n"
      "__m256d q = _mm256_setzero_pd();\n"
      "__m256d r = _mm256_setzero_pd();\n";
  const auto findings = lint_source("src/core/fast.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 3u);
  for (const auto& f : findings) EXPECT_EQ(f.rule, "simd-boundary");
}

// ---------------------------------------------------------------------
// Suppressions and scrubbing
// ---------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesOneRule) {
  const std::string src =
      "bool z = (x == 0.0);  // vprofile-lint: allow(float-eq)\n"
      "bool w = (y == 0.0);\n";
  const auto findings = lint_source("fixture.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintSuppression, PrecedingLineAllowCoversNextLine) {
  const std::string src =
      "// vprofile-lint: allow(raw-new-delete)\n"
      "int* p = new int;\n";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintSuppression, AllowOnlySilencesTheNamedRule) {
  const std::string src =
      "// vprofile-lint: allow(float-eq)\n"
      "int* p = new int;\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "raw-new-delete"));
}

TEST(LintScrub, CommentsAndStringsProduceNoFindings) {
  const std::string src = R"cpp(
// a comment mentioning rand() and new and x == 0.0
/* block: time(nullptr) and delete p */
const char* s = "rand() time(0) new delete == 0.0";
const char* r = R"(random_device == 1.5)";
char c = '=';
)cpp";
  EXPECT_TRUE(lint_source("fixture.cpp", src).empty());
}

TEST(LintScrub, DigitSeparatorsAreNotCharLiterals) {
  // A digit separator must not open a character literal and swallow the
  // rest of the file (which would hide the violation on the next line).
  const std::string src =
      "const long n = 1'000'000;\n"
      "int* p = new int;\n";
  EXPECT_TRUE(has_rule(lint_source("fixture.cpp", src), "raw-new-delete"));
}

TEST(LintScrub, FindingsReportOneBasedLines) {
  const auto findings =
      lint_source("fixture.cpp", "\n\n\nint a = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

// ---------------------------------------------------------------------
// compile_commands.json parsing
// ---------------------------------------------------------------------

TEST(LintCompileCommands, ExtractsSortedUniqueFiles) {
  const std::string json = R"json(
[
  {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/a.cpp"},
  {"directory": "/b", "command": "c++ -c b.cpp", "file": "/repo/src/b.cpp"},
  {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/a.cpp"}
]
)json";
  const auto files = vplint::files_from_compile_commands(json);
  EXPECT_EQ(files, (std::vector<std::string>{"/repo/src/a.cpp",
                                             "/repo/src/b.cpp"}));
}

// ---------------------------------------------------------------------
// project analyzer: architecture layering
// ---------------------------------------------------------------------

using vplint::ProjectFinding;
using vplint::ProjectOptions;
using vplint::run_project;

constexpr const char* kTwoLayers =
    "layer base: src/core\nlayer services: src/pipeline\n";

std::vector<ProjectFinding> with_rule(
    const std::vector<ProjectFinding>& findings, const std::string& rule) {
  std::vector<ProjectFinding> out;
  for (const auto& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintLayering, FlagsUpwardIncludeOnly) {
  const std::map<std::string, std::string> sources = {
      {"src/core/low.hpp", "int low();\n"},
      {"src/core/bad.cpp", "#include \"pipeline/high.hpp\"\n"},
      {"src/pipeline/high.hpp", "#include \"core/low.hpp\"\nint high();\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto findings = run_project(sources, opts, &error);
  EXPECT_TRUE(error.empty());
  const auto layering = with_rule(findings, "architecture-layering");
  ASSERT_EQ(layering.size(), 1u);  // downward services->base stays legal
  EXPECT_EQ(layering[0].file, "src/core/bad.cpp");
  EXPECT_EQ(layering[0].line, 1u);
  EXPECT_EQ(layering[0].key, "layering:src/core/bad.cpp->src/pipeline");
}

TEST(LintLayering, SystemIncludesAndUnlayeredFilesAreIgnored) {
  const std::map<std::string, std::string> sources = {
      {"src/core/a.cpp", "#include <vector>\n#include \"misc/b.hpp\"\n"},
      {"misc/b.hpp", "int b();\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  EXPECT_TRUE(
      with_rule(run_project(sources, opts, &error), "architecture-layering")
          .empty());
}

TEST(LintLayering, MalformedSpecReportsErrorAndNoFindings) {
  const std::map<std::string, std::string> sources = {
      {"src/core/a.cpp", "int a();\n"}};
  ProjectOptions opts;
  opts.layer_spec = "this is not a layer line\n";
  std::string error;
  EXPECT_TRUE(run_project(sources, opts, &error).empty());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// project analyzer: hot-path purity
// ---------------------------------------------------------------------

TEST(LintPurity, FlagsForbiddenTokenReachableFromHotRoot) {
  const std::map<std::string, std::string> sources = {
      {"src/core/hot.cpp",
       "// vprofile-lint: hot\n"
       "void kernel() { helper(); }\n"
       "void helper() { std::mutex m; }\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto purity =
      with_rule(run_project(sources, opts, &error), "hot-path-purity");
  ASSERT_EQ(purity.size(), 1u);
  EXPECT_EQ(purity[0].line, 3u);
  EXPECT_EQ(purity[0].key, "purity:src/core/hot.cpp:helper:mutex");
  EXPECT_NE(purity[0].message.find("hot entry `kernel`"), std::string::npos);
}

TEST(LintPurity, ColdBoundaryStopsTraversal) {
  const std::map<std::string, std::string> sources = {
      {"src/core/hot.cpp",
       "// vprofile-lint: hot\n"
       "void kernel() { handoff(); }\n"
       "// vprofile-lint: cold\n"
       "void handoff() { std::mutex m; locked(); }\n"
       "void locked() { std::lock_guard<std::mutex> g(mu); }\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  EXPECT_TRUE(
      with_rule(run_project(sources, opts, &error), "hot-path-purity")
          .empty());
}

TEST(LintPurity, UnreachableViolationsAndMemberShadowsStayClean) {
  const std::map<std::string, std::string> sources = {
      {"src/core/hot.cpp",
       "// vprofile-lint: hot\n"
       "void kernel(const Trace& t) { double x = t.time(); }\n"
       "void never_called() { std::mutex m; }\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  EXPECT_TRUE(
      with_rule(run_project(sources, opts, &error), "hot-path-purity")
          .empty());
}

TEST(LintPurity, AllowSuppressesAndIsNotReportedStale) {
  const std::map<std::string, std::string> sources = {
      {"src/core/hot.cpp",
       "// vprofile-lint: hot\n"
       "void kernel() {\n"
       "  // vprofile-lint: allow(hot-path-purity)\n"
       "  const char* v = getenv(\"KNOB\");\n"
       "  (void)v;\n"
       "}\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto findings = run_project(sources, opts, &error);
  EXPECT_TRUE(with_rule(findings, "hot-path-purity").empty());
  EXPECT_TRUE(with_rule(findings, "stale-suppression").empty());
}

// ---------------------------------------------------------------------
// project analyzer: cross-file consistency
// ---------------------------------------------------------------------

TEST(LintConsistency, MetricContractChecksBothDirections) {
  const std::map<std::string, std::string> sources = {
      {"src/obs/use.cpp",
       "void wire(Reg& reg) { auto* c = reg.counter(\"foo_total\"); }\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  opts.metrics_spec = "# contract\nbar_total\n";
  std::string error;
  const auto metric =
      with_rule(run_project(sources, opts, &error), "metric-export");
  ASSERT_EQ(metric.size(), 2u);
  EXPECT_EQ(metric[0].key, "consistency:metric-unexported:foo_total");
  EXPECT_EQ(metric[0].file, "src/obs/use.cpp");
  EXPECT_EQ(metric[1].key, "consistency:metric-orphan:bar_total");
  EXPECT_EQ(metric[1].file, "tools/lint/metrics.spec");
  EXPECT_EQ(metric[1].line, 2u);
}

TEST(LintConsistency, SeedCatalogChecksBothDirections) {
  const std::map<std::string, std::string> sources = {
      {"bench/bench_common.cpp",
       "static constexpr std::array<std::pair<std::string_view, int>, 2>\n"
       "    kSeeds{{\n"
       "        {\"used\", 1},\n"
       "        {\"dead\", 2},\n"
       "    }};\n"},
      {"bench/bench_use.cpp",
       "auto a = bench_seed(\"used\");\n"
       "auto b = bench_seed(\"ghost\");\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto seeds =
      with_rule(run_project(sources, opts, &error), "seed-catalog");
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0].key, "consistency:seed-unused:dead");
  EXPECT_EQ(seeds[0].file, "bench/bench_common.cpp");
  EXPECT_EQ(seeds[0].line, 4u);
  EXPECT_EQ(seeds[1].key, "consistency:seed-undefined:ghost");
  EXPECT_EQ(seeds[1].file, "bench/bench_use.cpp");
  EXPECT_EQ(seeds[1].line, 2u);
}

TEST(LintConsistency, StaleSuppressionIsFlaggedLiveOneIsNot) {
  const std::map<std::string, std::string> sources = {
      {"src/core/mixed.cpp",
       "// vprofile-lint: allow(raw-new-delete)\n"
       "int* p = new int;\n"
       "// vprofile-lint: allow(float-eq)\n"
       "int q = 1;\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto findings = run_project(sources, opts, &error);
  const auto stale = with_rule(findings, "stale-suppression");
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].line, 3u);
  EXPECT_EQ(stale[0].key,
            "consistency:stale-allow:src/core/mixed.cpp:float-eq");
  // The live suppression masked its finding and is not re-reported.
  EXPECT_TRUE(with_rule(findings, "raw-new-delete").empty());
}

// ---------------------------------------------------------------------
// project analyzer: ratchet + report
// ---------------------------------------------------------------------

TEST(LintRatchet, SplitsFreshAndStaleKeys) {
  std::vector<ProjectFinding> findings(2);
  findings[0].key = "layering:a->b";
  findings[1].key = "purity:f:g:new";
  const std::set<std::string> baseline = {"purity:f:g:new", "paid:off"};
  const auto delta = vplint::ratchet(findings, baseline);
  EXPECT_EQ(delta.fresh, std::vector<std::string>{"layering:a->b"});
  EXPECT_EQ(delta.stale, std::vector<std::string>{"paid:off"});
  EXPECT_FALSE(delta.empty());
  EXPECT_TRUE(vplint::ratchet(findings, vplint::parse_baseline(
                                            vplint::baseline_json(findings)))
                  .empty());
}

TEST(LintReport, ByteIdenticalAcrossRunsAndVersioned) {
  const std::map<std::string, std::string> sources = {
      {"src/core/bad.cpp", "#include \"pipeline/high.hpp\"\n"},
      {"src/pipeline/high.hpp", "int high();\n"},
  };
  ProjectOptions opts;
  opts.layer_spec = kTwoLayers;
  std::string error;
  const auto run1 = run_project(sources, opts, &error);
  const auto run2 = run_project(sources, opts, &error);
  const std::set<std::string> baseline;
  const std::string report1 = vplint::report_json(run1, baseline);
  const std::string report2 = vplint::report_json(run2, baseline);
  EXPECT_EQ(report1, report2);
  EXPECT_NE(report1.find("\"schema\": \"vprofile-lint-v1\""),
            std::string::npos);
  EXPECT_NE(report1.find("layering:src/core/bad.cpp->src/pipeline"),
            std::string::npos);
  // Baselining the key flips it from fresh to baselined byte-stably.
  const std::set<std::string> accepted = {
      "layering:src/core/bad.cpp->src/pipeline"};
  const std::string report3 = vplint::report_json(run1, accepted);
  EXPECT_NE(report3.find("\"fresh\": 0"), std::string::npos);
  EXPECT_NE(report3.find("\"baselined\": true"), std::string::npos);
}

}  // namespace
