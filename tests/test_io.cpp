#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "io/atomic_file.hpp"
#include "io/checksum.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/model_store.hpp"
#include "io/trace_store.hpp"
#include "stats/rng.hpp"

namespace {

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream os;
  io::CsvWriter w(os);
  w.write_row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(io::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(io::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(io::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(io::CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, NumericRowKeepsPrecision) {
  std::ostringstream os;
  io::CsvWriter w(os);
  w.write_row(std::vector<double>{1.0, 0.1234567890123456});
  EXPECT_NE(os.str().find("0.123456789012345"), std::string::npos);
}

vprofile::Model make_model(vprofile::DistanceMetric metric) {
  vprofile::ExtractionConfig ex;
  ex.prefix_len = 1;
  ex.suffix_len = 2;
  stats::Rng rng(1);
  std::vector<vprofile::EdgeSet> sets;
  for (auto [sa, level] :
       {std::pair<std::uint8_t, double>{1, 100.0}, {7, 200.0}}) {
    for (int i = 0; i < 60; ++i) {
      vprofile::EdgeSet es;
      es.sa = sa;
      es.samples.resize(ex.dimension());
      for (auto& v : es.samples) v = level + rng.gaussian(0.0, 1.0);
      sets.push_back(std::move(es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = metric;
  cfg.extraction = ex;
  auto outcome = vprofile::train_with_database(
      sets, {{1, "ECU Alpha"}, {7, "ECU Beta"}}, cfg);
  EXPECT_TRUE(outcome.ok()) << outcome.error;
  return std::move(*outcome.model);
}

TEST(ModelStore, MahalanobisRoundTrip) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  std::string error;
  const auto loaded = io::load_model(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->metric(), model.metric());
  EXPECT_EQ(loaded->dimension(), model.dimension());
  ASSERT_EQ(loaded->clusters().size(), model.clusters().size());
  for (std::size_t c = 0; c < model.clusters().size(); ++c) {
    const auto& a = model.clusters()[c];
    const auto& b = loaded->clusters()[c];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.sas, b.sas);
    EXPECT_EQ(a.edge_set_count, b.edge_set_count);
    EXPECT_DOUBLE_EQ(a.max_distance, b.max_distance);
    for (std::size_t i = 0; i < a.mean.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.mean[i], b.mean[i]);
    }
    EXPECT_LT(a.covariance.max_abs_diff(b.covariance), 1e-15);
    EXPECT_LT(a.inv_covariance.max_abs_diff(b.inv_covariance), 1e-15);
  }
  // The reloaded model computes identical distances.
  linalg::Vector probe(model.dimension(), 150.0);
  EXPECT_DOUBLE_EQ(model.distance(0, probe), loaded->distance(0, probe));
}

TEST(ModelStore, EuclideanRoundTrip) {
  const auto model = make_model(vprofile::DistanceMetric::kEuclidean);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const auto loaded = io::load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->metric(), vprofile::DistanceMetric::kEuclidean);
  EXPECT_TRUE(loaded->clusters().front().covariance.empty());
}

TEST(ModelStore, ExtractionConfigRoundTrips) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const auto loaded = io::load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->extraction().bit_width_samples,
            model.extraction().bit_width_samples);
  EXPECT_DOUBLE_EQ(loaded->extraction().bit_threshold,
                   model.extraction().bit_threshold);
  EXPECT_EQ(loaded->extraction().prefix_len, model.extraction().prefix_len);
  EXPECT_EQ(loaded->extraction().suffix_len, model.extraction().suffix_len);
}

TEST(ModelStore, RejectsGarbage) {
  std::stringstream ss("not a model at all");
  std::string error;
  EXPECT_FALSE(io::load_model(ss, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, RejectsWrongVersion) {
  std::stringstream ss("vprofile-model 999\n");
  std::string error;
  EXPECT_FALSE(io::load_model(ss, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ModelStore, RejectsTruncatedFile) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  std::string error;
  EXPECT_FALSE(io::load_model(truncated, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, FileHelpersWork) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  const std::string path = ::testing::TempDir() + "/model.vpm";
  ASSERT_TRUE(io::save_model_file(model, path));
  std::string error;
  EXPECT_TRUE(io::load_model_file(path, &error).has_value()) << error;
  EXPECT_FALSE(io::load_model_file("/nonexistent/x.vpm").has_value());
}

TEST(TraceStore, RoundTrip) {
  io::TraceSet set;
  set.sample_rate_hz = 20e6;
  set.resolution_bits = 16;
  set.traces = {{1.0, 2.0, 3.0}, {}, {42.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  std::string error;
  const auto loaded = io::load_traces(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_DOUBLE_EQ(loaded->sample_rate_hz, 20e6);
  EXPECT_EQ(loaded->resolution_bits, 16);
  ASSERT_EQ(loaded->traces.size(), 3u);
  EXPECT_EQ(loaded->traces[0], set.traces[0]);
  EXPECT_TRUE(loaded->traces[1].empty());
  EXPECT_EQ(loaded->traces[2], set.traces[2]);
}

TEST(ModelStore, RejectsNonFiniteClusterStatistics) {
  // A model whose statistics were NaN-poisoned upstream: saving succeeds
  // (text "nan"/"inf" tokens), but loading must refuse — detection with
  // such a model would emit NaN distances for every frame.
  for (const bool poison_mean : {true, false}) {
    auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
    auto clusters = model.clusters();
    if (poison_mean) {
      clusters[0].mean[0] = std::numeric_limits<double>::quiet_NaN();
    } else {
      clusters[0].inv_covariance.data()[0] =
          std::numeric_limits<double>::infinity();
    }
    const vprofile::Model poisoned(model.metric(), model.extraction(),
                                   std::move(clusters));
    std::stringstream ss;
    ASSERT_TRUE(io::save_model(poisoned, ss));
    std::string error;
    EXPECT_FALSE(io::load_model(ss, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(ModelStore, RejectsNonFiniteMaxDistance) {
  auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  auto clusters = model.clusters();
  clusters[0].max_distance = std::numeric_limits<double>::infinity();
  const vprofile::Model poisoned(model.metric(), model.extraction(),
                                 std::move(clusters));
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(poisoned, ss));
  std::string error;
  EXPECT_FALSE(io::load_model(ss, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, TruncationAtEveryByteFailsCleanly) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  // Sweep truncation points through the whole file; every prefix must
  // either load (only the complete file) or fail with a set error.
  for (std::size_t len = 0; len < full.size();
       len += std::max<std::size_t>(1, full.size() / 97)) {
    std::stringstream truncated(full.substr(0, len));
    std::string error = "unset";
    const auto loaded = io::load_model(truncated, &error);
    EXPECT_FALSE(loaded.has_value()) << "prefix length " << len;
    EXPECT_NE(error, "unset") << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
  }
}

TEST(Checksum, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 test vector: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(io::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::crc32("", 0), 0u);
  EXPECT_EQ(io::crc32_hex(0xCBF43926u), "cbf43926");
  std::uint32_t parsed = 0;
  EXPECT_TRUE(io::parse_crc32_hex("cbf43926", &parsed));
  EXPECT_EQ(parsed, 0xCBF43926u);
  EXPECT_TRUE(io::parse_crc32_hex("DEADBEEF", &parsed));
  EXPECT_EQ(parsed, 0xDEADBEEFu);
  EXPECT_FALSE(io::parse_crc32_hex("deadbee", &parsed));
  EXPECT_FALSE(io::parse_crc32_hex("deadbeefs", &parsed));
  EXPECT_FALSE(io::parse_crc32_hex("deadbeeg", &parsed));
}

TEST(ModelStore, SavedFileCarriesCrcFooter) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  // Last line is "crc32 <8 hex>\n" and it verifies against the payload.
  ASSERT_GE(full.size(), 15u);
  const std::string footer = full.substr(full.size() - 15);
  EXPECT_EQ(footer.substr(0, 6), "crc32 ");
  std::uint32_t stored = 0;
  ASSERT_TRUE(io::parse_crc32_hex(footer.substr(6, 8), &stored));
  EXPECT_EQ(stored, io::crc32(full.substr(0, full.size() - 15)));
}

TEST(ModelStore, BitFlipAnywhereIsDetected) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  // Flip one bit at positions swept through the file (including inside
  // the footer itself); every corruption must be refused.
  for (std::size_t pos = 0; pos < full.size();
       pos += std::max<std::size_t>(1, full.size() / 61)) {
    std::string corrupted = full;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x08);
    if (corrupted == full) continue;
    std::stringstream in(corrupted);
    std::string error;
    EXPECT_FALSE(io::load_model(in, &error).has_value())
        << "bit flip at byte " << pos << " was not detected";
    EXPECT_FALSE(error.empty());
  }
}

TEST(ModelStore, TruncatedFooterIsRejected) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  // Chop 1..15 bytes off the end: the footer is progressively mangled,
  // then gone entirely.  All of it must fail, none of it crash.
  for (std::size_t cut = 1; cut <= 15; ++cut) {
    std::stringstream in(full.substr(0, full.size() - cut));
    std::string error;
    EXPECT_FALSE(io::load_model(in, &error).has_value())
        << "footer truncated by " << cut << " bytes";
    EXPECT_NE(error.find("footer"), std::string::npos)
        << "unexpected error: " << error;
  }
}

TEST(ModelStore, LegacyFooterlessVersion1StillLoads) {
  // Files written before the integrity footer existed declare version 1
  // and end after the last cluster; they must keep loading (with no
  // integrity check) so a fleet upgrade does not orphan stored models.
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  std::string legacy = ss.str();
  legacy.resize(legacy.size() - 15);  // strip "crc32 <8 hex>\n"
  const std::string v2_header = "vprofile-model 2";
  ASSERT_EQ(legacy.compare(0, v2_header.size(), v2_header), 0);
  legacy.replace(0, v2_header.size(), "vprofile-model 1");
  std::stringstream in(legacy);
  std::string error;
  const auto loaded = io::load_model(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->clusters().size(), model.clusters().size());
  EXPECT_DOUBLE_EQ(loaded->clusters()[0].max_distance,
                   model.clusters()[0].max_distance);
}

TEST(AtomicFile, ReplacesContentAtomically) {
  const std::string path = ::testing::TempDir() + "/atomic_probe.txt";
  std::string error;
  ASSERT_TRUE(io::atomic_write_file(path, "first\n", &error)) << error;
  ASSERT_TRUE(io::atomic_write_file(path, "second\n", &error)) << error;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second\n");
  // No temp file left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST(AtomicFile, FailureLeavesTargetUntouched) {
  std::string error;
  EXPECT_FALSE(io::atomic_write_file("/nonexistent-dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, RoundTripPreservesExactBits) {
  // setprecision(17) guarantees double -> text -> double identity; the
  // round-trip must therefore be bit-exact, not merely close.
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream first;
  ASSERT_TRUE(io::save_model(model, first));
  const auto loaded = io::load_model(first);
  ASSERT_TRUE(loaded.has_value());
  std::stringstream second;
  ASSERT_TRUE(io::save_model(*loaded, second));
  EXPECT_EQ(first.str(), second.str());
}

TEST(TraceStore, RejectsWrongMagic) {
  std::stringstream ss("XXXXGARBAGE");
  std::string error;
  EXPECT_FALSE(io::load_traces(ss, &error).has_value());
  EXPECT_NE(error.find("not a vprofile trace file"), std::string::npos);
}

TEST(TraceStore, RejectsByteSwappedMagicAsEndiannessMismatch) {
  io::TraceSet set;
  set.sample_rate_hz = 1e6;
  set.resolution_bits = 16;
  set.traces = {{1.0, 2.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  std::string bytes = ss.str();
  // Reverse the 4 magic bytes, as written by an opposite-endian machine.
  std::swap(bytes[0], bytes[3]);
  std::swap(bytes[1], bytes[2]);
  std::stringstream swapped(bytes);
  std::string error;
  EXPECT_FALSE(io::load_traces(swapped, &error).has_value());
  EXPECT_NE(error.find("endianness"), std::string::npos);
}

TEST(TraceStore, RejectsTruncatedSamples) {
  io::TraceSet set;
  set.sample_rate_hz = 1.0;
  set.resolution_bits = 8;
  set.traces = {{1.0, 2.0, 3.0, 4.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 8));
  EXPECT_FALSE(io::load_traces(truncated).has_value());
}

TEST(TraceStore, TruncationAtEveryByteFailsCleanly) {
  io::TraceSet set;
  set.sample_rate_hz = 20e6;
  set.resolution_bits = 16;
  set.traces = {{1.5, 2.5, 3.5}, {}, {42.0, 43.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  const std::string full = ss.str();
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::stringstream truncated(full.substr(0, len));
    std::string error = "unset";
    const auto loaded = io::load_traces(truncated, &error);
    EXPECT_FALSE(loaded.has_value()) << "prefix length " << len;
    EXPECT_NE(error, "unset") << "prefix length " << len;
  }
}

TEST(TraceStore, RejectsNonFiniteSamples) {
  io::TraceSet set;
  set.sample_rate_hz = 1e6;
  set.resolution_bits = 12;
  set.traces = {{1.0, std::numeric_limits<double>::quiet_NaN(), 3.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  std::string error;
  EXPECT_FALSE(io::load_traces(ss, &error).has_value());
  EXPECT_NE(error.find("non-finite"), std::string::npos);
}

TEST(TraceStore, RejectsNonFiniteSampleRate) {
  io::TraceSet set;
  set.sample_rate_hz = std::numeric_limits<double>::infinity();
  set.resolution_bits = 12;
  set.traces = {{1.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  std::string error;
  EXPECT_FALSE(io::load_traces(ss, &error).has_value());
  EXPECT_NE(error.find("sample rate"), std::string::npos);
}

TEST(TraceStore, RejectsInvalidResolution) {
  for (int bits : {0, -4, 48}) {
    io::TraceSet set;
    set.sample_rate_hz = 1e6;
    set.resolution_bits = bits;
    set.traces = {{1.0}};
    std::stringstream ss;
    ASSERT_TRUE(io::save_traces(set, ss));
    std::string error;
    EXPECT_FALSE(io::load_traces(ss, &error).has_value()) << bits;
    EXPECT_NE(error.find("resolution"), std::string::npos) << bits;
  }
}

TEST(TraceStore, RejectsImplausibleDeclaredLength) {
  // Hand-build a header that declares a multi-terabyte trace; the loader
  // must reject it from the header alone rather than attempt the
  // allocation.
  std::stringstream ss;
  const std::uint32_t magic = 0x56505452;
  const std::uint32_t version = 1;
  const double rate = 1e6;
  const std::int32_t bits = 16;
  const std::uint64_t count = 1;
  const std::uint64_t huge_len = 1ull << 40;
  ss.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  ss.write(reinterpret_cast<const char*>(&version), sizeof(version));
  ss.write(reinterpret_cast<const char*>(&rate), sizeof(rate));
  ss.write(reinterpret_cast<const char*>(&bits), sizeof(bits));
  ss.write(reinterpret_cast<const char*>(&count), sizeof(count));
  ss.write(reinterpret_cast<const char*>(&huge_len), sizeof(huge_len));
  std::string error;
  EXPECT_FALSE(io::load_traces(ss, &error).has_value());
  EXPECT_NE(error.find("implausible"), std::string::npos);
}

TEST(TraceStore, RoundTripPreservesExactBits) {
  // Binary doubles round-trip untouched: exercise awkward bit patterns
  // (denormals, negative zero, code values with long fractions).
  io::TraceSet set;
  set.sample_rate_hz = 20e6;
  set.resolution_bits = 16;
  set.traces = {{5e-324, -0.0, 1.0 / 3.0, 65535.000000001, 0.1}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  const auto loaded = io::load_traces(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->traces.size(), 1u);
  for (std::size_t i = 0; i < set.traces[0].size(); ++i) {
    EXPECT_EQ(std::memcmp(&loaded->traces[0][i], &set.traces[0][i],
                          sizeof(double)),
              0)
        << "sample " << i;
  }
}

TEST(TraceStore, FileHelpersWork) {
  io::TraceSet set;
  set.sample_rate_hz = 10e6;
  set.resolution_bits = 12;
  set.traces = {{7.0, 8.0}};
  const std::string path = ::testing::TempDir() + "/traces.vpt";
  ASSERT_TRUE(io::save_traces_file(set, path));
  EXPECT_TRUE(io::load_traces_file(path).has_value());
  EXPECT_FALSE(io::load_traces_file("/nonexistent/y.vpt").has_value());
}

// ---------------------------------------------------------------------------
// io::json negative-path fuzz.  The parser reads incident bundles and
// manifests that may arrive torn or corrupted; every failure must be a
// clean `false` with a diagnostic — never a throw, crash or over-read.

/// A representative document exercising every value type, escapes,
/// nesting and the project's non-finite number convention.
const std::string& fuzz_document() {
  static const std::string doc =
      "{\"name\":\"bundle \\\"x\\\"\\n\",\"version\":2,"
      "\"values\":[1.5,-0.25,1e308,\"inf\",\"nan\",null,true,false],"
      "\"nested\":{\"deep\":[[{\"k\":\"v\"}]],\"empty\":{},\"arr\":[]},"
      "\"text\":\"braces {не} [ascii] \\u0041\"}  ";
  return doc;
}

TEST(Json, FuzzDocumentParsesWhole) {
  io::json::Value root;
  std::string error;
  ASSERT_TRUE(io::json::parse(fuzz_document(), &root, &error)) << error;
  ASSERT_TRUE(root.is_object());
  const io::json::Value* values = root.find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_TRUE(values->is_array());
  double out = 0.0;
  ASSERT_TRUE(io::json::flexible_number(values->array[3], &out));
  EXPECT_TRUE(std::isinf(out));
}

// A document truncated at EVERY byte offset must fail cleanly: a prefix
// of an object is never a complete document.
TEST(Json, TruncationAtEveryByteOffsetFailsCleanly) {
  const std::string& doc = fuzz_document();
  // Cuts inside the trailing whitespace still leave a complete document;
  // every cut at or before the closing brace must fail.
  const std::size_t end = doc.find_last_of('}') + 1;
  for (std::size_t cut = 0; cut < end; ++cut) {
    io::json::Value root;
    std::string error;
    EXPECT_FALSE(io::json::parse(doc.substr(0, cut), &root, &error))
        << "cut=" << cut;
    EXPECT_FALSE(error.empty()) << "cut=" << cut;
  }
}

// Flipping any single byte must never crash the parser; it either
// rejects the document with a diagnostic or yields some other valid
// document (a digit flip, say) — both are acceptable, dying is not.
TEST(Json, SingleByteFlipsNeverCrashTheParser) {
  const std::string& doc = fuzz_document();
  const unsigned char masks[] = {0x01, 0x20, 0x80};
  for (std::size_t off = 0; off < doc.size(); ++off) {
    for (const unsigned char mask : masks) {
      std::string mutated = doc;
      mutated[off] = static_cast<char>(
          static_cast<unsigned char>(mutated[off]) ^ mask);
      io::json::Value root;
      std::string error;
      const bool ok = io::json::parse(mutated, &root, &error);
      if (!ok) {
        EXPECT_FALSE(error.empty()) << "off=" << off << " mask=" << int{mask};
      }
    }
  }
}

// Deterministic garbage (an LCG byte stream) must always be rejected.
TEST(Json, GarbageBytesAreRejected) {
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  for (int round = 0; round < 32; ++round) {
    std::string garbage;
    for (int i = 0; i < 64; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      garbage.push_back(static_cast<char>((state >> 33) & 0xFF));
    }
    io::json::Value root;
    std::string error;
    EXPECT_FALSE(io::json::parse(garbage, &root, &error)) << "round=" << round;
  }
}

// A hostile nesting bomb must hit the depth ceiling, not the stack.
TEST(Json, NestingBombIsRejectedNotOverflowed) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb.push_back('[');
  io::json::Value root;
  std::string error;
  EXPECT_FALSE(io::json::parse(bomb, &root, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(Json, TrailingGarbageAfterDocumentIsRejected) {
  io::json::Value root;
  std::string error;
  EXPECT_FALSE(io::json::parse("{\"a\":1} trailing", &root, &error));
  EXPECT_FALSE(io::json::parse("{\"a\":1}{\"b\":2}", &root, &error));
}

}  // namespace
