#include <sstream>

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "io/csv.hpp"
#include "io/model_store.hpp"
#include "io/trace_store.hpp"
#include "stats/rng.hpp"

namespace {

TEST(Csv, PlainFieldsUnquoted) {
  std::ostringstream os;
  io::CsvWriter w(os);
  w.write_row(std::vector<std::string>{"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(io::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(io::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(io::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(io::CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, NumericRowKeepsPrecision) {
  std::ostringstream os;
  io::CsvWriter w(os);
  w.write_row(std::vector<double>{1.0, 0.1234567890123456});
  EXPECT_NE(os.str().find("0.123456789012345"), std::string::npos);
}

vprofile::Model make_model(vprofile::DistanceMetric metric) {
  vprofile::ExtractionConfig ex;
  ex.prefix_len = 1;
  ex.suffix_len = 2;
  stats::Rng rng(1);
  std::vector<vprofile::EdgeSet> sets;
  for (auto [sa, level] :
       {std::pair<std::uint8_t, double>{1, 100.0}, {7, 200.0}}) {
    for (int i = 0; i < 60; ++i) {
      vprofile::EdgeSet es;
      es.sa = sa;
      es.samples.resize(ex.dimension());
      for (auto& v : es.samples) v = level + rng.gaussian(0.0, 1.0);
      sets.push_back(std::move(es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = metric;
  cfg.extraction = ex;
  auto outcome = vprofile::train_with_database(
      sets, {{1, "ECU Alpha"}, {7, "ECU Beta"}}, cfg);
  EXPECT_TRUE(outcome.ok()) << outcome.error;
  return std::move(*outcome.model);
}

TEST(ModelStore, MahalanobisRoundTrip) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  std::string error;
  const auto loaded = io::load_model(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->metric(), model.metric());
  EXPECT_EQ(loaded->dimension(), model.dimension());
  ASSERT_EQ(loaded->clusters().size(), model.clusters().size());
  for (std::size_t c = 0; c < model.clusters().size(); ++c) {
    const auto& a = model.clusters()[c];
    const auto& b = loaded->clusters()[c];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.sas, b.sas);
    EXPECT_EQ(a.edge_set_count, b.edge_set_count);
    EXPECT_DOUBLE_EQ(a.max_distance, b.max_distance);
    for (std::size_t i = 0; i < a.mean.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.mean[i], b.mean[i]);
    }
    EXPECT_LT(a.covariance.max_abs_diff(b.covariance), 1e-15);
    EXPECT_LT(a.inv_covariance.max_abs_diff(b.inv_covariance), 1e-15);
  }
  // The reloaded model computes identical distances.
  linalg::Vector probe(model.dimension(), 150.0);
  EXPECT_DOUBLE_EQ(model.distance(0, probe), loaded->distance(0, probe));
}

TEST(ModelStore, EuclideanRoundTrip) {
  const auto model = make_model(vprofile::DistanceMetric::kEuclidean);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const auto loaded = io::load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->metric(), vprofile::DistanceMetric::kEuclidean);
  EXPECT_TRUE(loaded->clusters().front().covariance.empty());
}

TEST(ModelStore, ExtractionConfigRoundTrips) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const auto loaded = io::load_model(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->extraction().bit_width_samples,
            model.extraction().bit_width_samples);
  EXPECT_DOUBLE_EQ(loaded->extraction().bit_threshold,
                   model.extraction().bit_threshold);
  EXPECT_EQ(loaded->extraction().prefix_len, model.extraction().prefix_len);
  EXPECT_EQ(loaded->extraction().suffix_len, model.extraction().suffix_len);
}

TEST(ModelStore, RejectsGarbage) {
  std::stringstream ss("not a model at all");
  std::string error;
  EXPECT_FALSE(io::load_model(ss, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, RejectsWrongVersion) {
  std::stringstream ss("vprofile-model 999\n");
  std::string error;
  EXPECT_FALSE(io::load_model(ss, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ModelStore, RejectsTruncatedFile) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  std::stringstream ss;
  ASSERT_TRUE(io::save_model(model, ss));
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  std::string error;
  EXPECT_FALSE(io::load_model(truncated, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelStore, FileHelpersWork) {
  const auto model = make_model(vprofile::DistanceMetric::kMahalanobis);
  const std::string path = ::testing::TempDir() + "/model.vpm";
  ASSERT_TRUE(io::save_model_file(model, path));
  std::string error;
  EXPECT_TRUE(io::load_model_file(path, &error).has_value()) << error;
  EXPECT_FALSE(io::load_model_file("/nonexistent/x.vpm").has_value());
}

TEST(TraceStore, RoundTrip) {
  io::TraceSet set;
  set.sample_rate_hz = 20e6;
  set.resolution_bits = 16;
  set.traces = {{1.0, 2.0, 3.0}, {}, {42.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  std::string error;
  const auto loaded = io::load_traces(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_DOUBLE_EQ(loaded->sample_rate_hz, 20e6);
  EXPECT_EQ(loaded->resolution_bits, 16);
  ASSERT_EQ(loaded->traces.size(), 3u);
  EXPECT_EQ(loaded->traces[0], set.traces[0]);
  EXPECT_TRUE(loaded->traces[1].empty());
  EXPECT_EQ(loaded->traces[2], set.traces[2]);
}

TEST(TraceStore, RejectsWrongMagic) {
  std::stringstream ss("XXXXGARBAGE");
  std::string error;
  EXPECT_FALSE(io::load_traces(ss, &error).has_value());
  EXPECT_NE(error.find("not a vprofile trace file"), std::string::npos);
}

TEST(TraceStore, RejectsTruncatedSamples) {
  io::TraceSet set;
  set.sample_rate_hz = 1.0;
  set.resolution_bits = 8;
  set.traces = {{1.0, 2.0, 3.0, 4.0}};
  std::stringstream ss;
  ASSERT_TRUE(io::save_traces(set, ss));
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() - 8));
  EXPECT_FALSE(io::load_traces(truncated).has_value());
}

TEST(TraceStore, FileHelpersWork) {
  io::TraceSet set;
  set.sample_rate_hz = 10e6;
  set.resolution_bits = 12;
  set.traces = {{7.0, 8.0}};
  const std::string path = ::testing::TempDir() + "/traces.vpt";
  ASSERT_TRUE(io::save_traces_file(set, path));
  EXPECT_TRUE(io::load_traces_file(path).has_value());
  EXPECT_FALSE(io::load_traces_file("/nonexistent/y.vpt").has_value());
}

}  // namespace
