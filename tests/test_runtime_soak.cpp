// Deterministic soak scenarios for the runtime supervision layer.  Each
// scenario drives the Supervisor in lockstep mode on virtual time, so a
// run is a pure function of (seed, config, fault plan): worker stalls
// wedge exactly the planned frame, the watchdog restarts on a virtual
// clock, drift alarms / candidate validation / promotion & rollback all
// happen at frame-indexed points, and two same-seed runs must produce
// bit-identical verdict fingerprints.  The `soak` ctest label lets CI
// schedule these separately from the fast unit suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "faults/fault.hpp"
#include "faults/runtime_fault.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kTrainCount = 900;
constexpr std::size_t kStreamCount = 1600;

struct World {
  std::optional<vprofile::Model> model;
  std::vector<dsp::Trace> traces;  // benign, pre-fault
  double max_code = 0.0;
};

/// Trained model + benign stream, generated once; every soak run copies
/// its input traces from here, so repeated runs see identical bytes.
const World& world() {
  static const World w = [] {
    World out;
    sim::Vehicle vehicle(sim::vehicle_a(), kSeed);
    const analog::Environment env = analog::Environment::reference();
    const auto extraction = sim::default_extraction(vehicle.config());
    out.max_code = vehicle.config().adc.max_code();

    std::vector<vprofile::EdgeSet> training;
    for (const sim::Capture& cap : vehicle.capture(kTrainCount, env)) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.extraction = extraction;
    auto trained =
        vprofile::train_with_database(training, vehicle.database(), tc);
    EXPECT_TRUE(trained.ok()) << trained.error;
    if (!trained.ok()) return out;
    out.model = std::move(*trained.model);

    for (sim::LabeledCapture& lc :
         sim::make_normal_stream(vehicle, kStreamCount, env)) {
      out.traces.push_back(std::move(lc.capture.codes));
    }
    return out;
  }();
  return w;
}

/// A Sagong-style transient poisoning attack: the DC offset ramps up by
/// `step` codes per frame from `ramp_start`, saturates at `max_shift`, and
/// vanishes at `cliff_frame` (the attacker detaches).  Deterministic: no
/// injector RNG involved.
struct TransientDrift {
  std::size_t ramp_start = 0;
  std::size_t cliff_frame = 0;
  double step = 0.0;
  double max_shift = 0.0;

  double shift_at(std::size_t frame) const {
    if (frame < ramp_start || frame >= cliff_frame) return 0.0;
    const double s = static_cast<double>(frame - ramp_start) * step;
    return std::min(s, max_shift);
  }
};

struct SoakConfig {
  std::size_t frame_count = 1200;
  /// Analog slow-drift ramp applied to every frame (nullopt = clean).
  std::optional<faults::SlowDriftFault> drift;
  /// Ramp-then-detach poisoning applied directly (nullopt = none).
  std::optional<TransientDrift> transient;
  runtime::SupervisorConfig sup;
  /// Virtual nanoseconds between supervision ticks (one per frame).
  std::uint64_t tick_ns = 1'000'000;
};

struct SoakOutcome {
  std::uint64_t fingerprint = 0;
  runtime::SupervisorStats stats;
  runtime::HealthState health = runtime::HealthState::kHealthy;
  pipeline::CountersSnapshot counters;
};

SoakOutcome run_soak(const SoakConfig& cfg) {
  const World& w = world();
  EXPECT_TRUE(w.model.has_value());
  EXPECT_LE(cfg.frame_count, w.traces.size());

  faults::FaultProfile profile;
  profile.name = "soak-drift";
  profile.slow_drift = cfg.drift;
  faults::FaultInjector injector(profile, w.max_code, kSeed ^ 0x50a4ULL);

  runtime::SupervisorConfig sc = cfg.sup;
  sc.lockstep = true;  // verdict stream == pure function of the inputs
  sc.pipeline.num_workers = 1;

  runtime::Supervisor sup(*w.model, sc, nullptr);
  for (std::size_t i = 0; i < cfg.frame_count; ++i) {
    const dsp::Trace& t = w.traces[i];
    if (!profile.empty()) {
      sup.submit(injector.apply(t));
    } else if (cfg.transient && cfg.transient->shift_at(i) != 0.0) {
      sup.submit(
          faults::apply_slow_drift(t, cfg.transient->shift_at(i), w.max_code));
    } else {
      sup.submit(t);
    }
    sup.poll(static_cast<std::uint64_t>(i + 1) * cfg.tick_ns);
  }
  sup.finish();

  SoakOutcome out;
  out.fingerprint = sup.fingerprint();
  out.stats = sup.stats();
  out.health = sup.health();
  out.counters = sup.pipeline_counters();
  return out;
}

/// The watchdog scenario: a worker wedges on one planned frame; the
/// virtual-clock watchdog must detect the stall, restart the pipeline, and
/// the wedged frame must come back as a contained worker error.
SoakConfig stall_restart_config() {
  SoakConfig cfg;
  cfg.frame_count = 400;
  cfg.sup.online_update = false;
  cfg.sup.watchdog.stall_timeout_ns = 4'000'000;   // 4 virtual ticks
  cfg.sup.watchdog.initial_backoff_ns = 2'000'000;
  cfg.sup.watchdog.max_backoff_ns = 8'000'000;
  cfg.sup.watchdog.max_restarts = 4;
  cfg.sup.fault_plan.stalls.push_back(faults::WorkerStallPlan{150});
  return cfg;
}

SoakConfig drift_promote_config() {
  SoakConfig cfg;
  cfg.frame_count = 1200;
  // Gentle environmental drift: +0.5 ADC codes per frame, saturating at a
  // 30-code DC shift — distances rise but stay well inside the margin, so
  // the gate keeps accepting and the candidate validates cleanly.
  cfg.drift = faults::SlowDriftFault{1.0, 0.5, 30.0};
  cfg.sup.pipeline.detection.margin = 30.0;
  cfg.sup.drift.delta = 0.25;
  cfg.sup.drift.lambda = 60.0;
  cfg.sup.drift.min_samples = 48;
  cfg.sup.gate.max_distance_fraction = 1.0;
  cfg.sup.retrain_batch = 48;
  cfg.sup.validation_window = 48;
  cfg.sup.validation_max_regressions = 6;
  return cfg;
}

SoakConfig poison_rollback_config() {
  SoakConfig cfg;
  cfg.frame_count = 1600;
  // Ramp-then-detach poisoning: the candidate chases the attacker's ramp,
  // the attacker unplugs at frame 600, and the held-out window refills
  // with normal frames the candidate has drifted away from.  With zero
  // margin those frames sit against the threshold, so strict validation
  // (no regressions allowed) catches the poisoned candidate.
  cfg.transient = TransientDrift{200, 600, 0.25, 60.0};
  cfg.sup.pipeline.detection.margin = 0.0;
  cfg.sup.drift.delta = 0.25;
  cfg.sup.drift.lambda = 25.0;
  cfg.sup.drift.min_samples = 48;
  cfg.sup.gate.max_distance_fraction = 1.0;
  cfg.sup.retrain_batch = 128;
  cfg.sup.validation_window = 64;
  cfg.sup.validation_max_regressions = 0;
  return cfg;
}

void corrupt_file(const std::string& path, std::size_t offset,
                  unsigned char mask) {
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  ASSERT_GT(size, 0u);
  const auto pos = static_cast<std::streamoff>(offset % size);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ static_cast<char>(mask));
  f.seekp(pos);
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

TEST(Soak, StallIsDetectedRestartedAndContained) {
  const SoakOutcome o = run_soak(stall_restart_config());
  EXPECT_EQ(o.stats.stalls_detected, 1u);
  EXPECT_EQ(o.stats.restarts, 1u);
  EXPECT_EQ(o.stats.worker_errors, 1u);
  // The wedged frame is released on restart and comes back as a contained
  // worker error, so no frame is lost.
  EXPECT_EQ(o.stats.frames_handled, 400u);
  EXPECT_EQ(o.stats.frames_submitted, 400u);
  EXPECT_EQ(o.health, runtime::HealthState::kHealthy);
}

TEST(Soak, CheckpointCorruptionRecoversLastGood) {
  const std::string dir = ::testing::TempDir() + "soak_ckpt_corrupt";
  SoakConfig cfg;
  cfg.frame_count = 600;
  cfg.sup.online_update = false;
  cfg.sup.checkpoint_dir = dir;
  cfg.sup.checkpoint_every = 200;
  const SoakOutcome o = run_soak(cfg);
  ASSERT_GE(o.stats.checkpoints_committed, 2u);

  // The injected plan flips one byte in the newest checkpoint after the
  // final commit; the CRC-32 footer must reject it and load() must fall
  // back to the last-good file.
  const faults::CheckpointCorruptionPlan plan;
  runtime::CheckpointStore store(dir);
  corrupt_file(store.current_path(), plan.byte_offset, plan.xor_mask);

  const auto loaded = store.load();
  ASSERT_TRUE(loaded.model.has_value()) << loaded.error;
  EXPECT_TRUE(loaded.recovered_last_good);
  EXPECT_EQ(loaded.model->clusters().size(),
            world().model->clusters().size());
}

TEST(Soak, SustainedDriftRetrainsAndPromotes) {
  const SoakOutcome o = run_soak(drift_promote_config());
  EXPECT_GE(o.stats.drift_alarms, 1u);
  EXPECT_GE(o.stats.candidates_started, 1u);
  EXPECT_GE(o.stats.promotions, 1u);
  EXPECT_EQ(o.stats.rollbacks, 0u);
  EXPECT_NE(o.health, runtime::HealthState::kDegraded);
  EXPECT_EQ(o.stats.frames_handled, 1200u);
}

TEST(Soak, PoisonedRetrainRollsBack) {
  const SoakOutcome o = run_soak(poison_rollback_config());
  EXPECT_GE(o.stats.drift_alarms, 1u);
  EXPECT_EQ(o.stats.candidates_started, 1u);
  EXPECT_EQ(o.stats.promotions, 0u);
  EXPECT_EQ(o.stats.rollbacks, 1u);
  EXPECT_EQ(o.health, runtime::HealthState::kDegraded);
  EXPECT_EQ(o.stats.frames_handled, 1600u);
}

TEST(Soak, SameSeedRunsAreBitIdentical) {
  for (const SoakConfig& cfg :
       {stall_restart_config(), drift_promote_config(),
        poison_rollback_config()}) {
    const SoakOutcome a = run_soak(cfg);
    const SoakOutcome b = run_soak(cfg);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.stats.frames_handled, b.stats.frames_handled);
    EXPECT_EQ(a.stats.worker_errors, b.stats.worker_errors);
    EXPECT_EQ(a.stats.restarts, b.stats.restarts);
    EXPECT_EQ(a.stats.drift_alarms, b.stats.drift_alarms);
    EXPECT_EQ(a.stats.promotions, b.stats.promotions);
    EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks);
    EXPECT_EQ(a.stats.frames_decimated, b.stats.frames_decimated);
    EXPECT_EQ(a.health, b.health);
  }
}

}  // namespace
