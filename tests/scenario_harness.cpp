#include "scenario_harness.hpp"

#include <sstream>

#include "analog/environment.hpp"

namespace harness {
namespace {

using faults::FaultProfile;
using sim::AttackKind;
using sim::Scenario;

// The matrix operates the detector at margin 12 (Mahalanobis): the probe
// sweep over seeds showed clean-traffic FPR collapsing from ~12% at
// margin 4 to <=0.3% at 12 while hijack/foreign/masquerade recall stays
// 1.0 — only the imitation sweep's near-perfect-duplicate tail evades,
// which the paper accepts for any voltage fingerprint.
constexpr double kMahalanobisMargin = 12.0;
// Euclidean distances live on a codes scale, ~3 orders larger.
constexpr double kEuclideanMargin = 40.0;

Scenario base(const std::string& preset, AttackKind attack,
              FaultProfile faults) {
  Scenario s;
  s.preset = preset;
  s.attack = attack;
  s.faults = std::move(faults);
  s.margin = kMahalanobisMargin;
  if (preset == "b") {
    // Vehicle B's ten ECUs sit closer together in profile space; it needs
    // more training captures per cluster for stable covariance estimates.
    s.train_count = 3000;
  }
  return s;
}

Scenario with_env(Scenario s, const analog::Environment& env,
                  const std::string& env_name) {
  s.env = env;
  s.env_name = env_name;
  return s;
}

ScenarioCase attacks_caught(Scenario s, double min_recall = 0.98,
                            double max_fpr = 0.02) {
  ScenarioCase c;
  c.scenario = std::move(s);
  c.min_recall = min_recall;
  c.max_fpr = max_fpr;
  c.expect_faults = !c.scenario.faults.empty();
  return c;
}

ScenarioCase clean_traffic(Scenario s, double max_fpr = 0.02) {
  ScenarioCase c;
  c.scenario = std::move(s);
  c.max_fpr = max_fpr;
  c.expect_faults = !c.scenario.faults.empty();
  return c;
}

}  // namespace

std::vector<ScenarioCase> default_scenario_matrix() {
  std::vector<ScenarioCase> matrix;
  const analog::Environment accessory = analog::accessory_mode();
  const analog::Environment engine = analog::engine_running();

  // --- Vehicle A, clean tap: every attack kind against the baseline. ---
  {
    ScenarioCase c = clean_traffic(base("a", AttackKind::kNone,
                                        faults::clean_profile()));
    // No faults, no attacks: nothing may degrade and nothing may fail.
    c.max_degraded = 0;
    matrix.push_back(std::move(c));
  }
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::clean_profile())));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kForeign, faults::clean_profile())));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kMasquerade, faults::clean_profile())));
  {
    // The sweep's early transmissions are the imitator's native signature
    // claiming the target's SA — a cluster mismatch, caught.  Late ones
    // are near-perfect parameter-space duplicates; the paper accepts that
    // those evade a voltage fingerprint, so recall is bounded looser
    // (observed ~0.79 at this margin).
    ScenarioCase c = attacks_caught(
        base("a", AttackKind::kImitationSweep, faults::clean_profile()),
        /*min_recall=*/0.60, /*max_fpr=*/0.05);
    matrix.push_back(std::move(c));
  }

  // --- Vehicle A, hijack attack through every canned fault profile.
  // Bounds encode graceful degradation, calibrated per profile:
  //  * saturated-tap turns ~3/4 of captures into degraded verdicts, and
  //    the surviving quarter still classifies accurately;
  //  * flaky-connector's DC shifts genuinely displace the waveform, so
  //    its false alarms are real analog damage, bounded rather than
  //    hidden;
  //  * truncation costs extraction failures, never wrong verdicts. ---
  {
    ScenarioCase c = attacks_caught(
        base("a", AttackKind::kHijack, faults::saturated_tap()),
        /*min_recall=*/0.90, /*max_fpr=*/0.10);
    c.min_degraded = 200;
    matrix.push_back(std::move(c));
  }
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::flaky_connector()),
      /*min_recall=*/0.90, /*max_fpr=*/0.65));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::emi_storm()),
      /*min_recall=*/0.95, /*max_fpr=*/0.15));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::drifting_clock()),
      /*min_recall=*/0.90, /*max_fpr=*/0.25));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::truncating_tap()),
      /*min_recall=*/0.90, /*max_fpr=*/0.10));
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kHijack, faults::harsh_environment()),
      /*min_recall=*/0.90, /*max_fpr=*/0.50));

  // --- Vehicle A, clean traffic through faulty taps: the fault layer
  // must not masquerade as an attack wave beyond each profile's
  // calibrated false-alarm ceiling (unclassifiable captures land in
  // `degraded`, not in the confusion matrix). ---
  {
    ScenarioCase c = clean_traffic(
        base("a", AttackKind::kNone, faults::saturated_tap()),
        /*max_fpr=*/0.10);
    c.min_degraded = 200;
    matrix.push_back(std::move(c));
  }
  matrix.push_back(clean_traffic(
      base("a", AttackKind::kNone, faults::flaky_connector()),
      /*max_fpr=*/0.65));
  matrix.push_back(clean_traffic(
      base("a", AttackKind::kNone, faults::emi_storm()),
      /*max_fpr=*/0.15));
  matrix.push_back(clean_traffic(
      base("a", AttackKind::kNone, faults::drifting_clock()),
      /*max_fpr=*/0.25));

  // --- Vehicle A, masquerade under hostile analog conditions. ---
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kMasquerade, faults::emi_storm()),
      /*min_recall=*/0.95, /*max_fpr=*/0.15));
  {
    ScenarioCase c = attacks_caught(
        base("a", AttackKind::kMasquerade, faults::saturated_tap()),
        /*min_recall=*/0.90, /*max_fpr=*/0.10);
    c.min_degraded = 200;
    matrix.push_back(std::move(c));
  }
  {
    // Overcurrent strong enough to push the victim's superimposed level
    // into the digitizer rail: the quality gate must turn those captures
    // into degraded verdicts rather than confident guesses (observed: all
    // ~83 corrupted frames degrade at overdrive 0.8, none at 0.4).
    ScenarioCase c;
    c.scenario = base("a", AttackKind::kMasquerade, faults::clean_profile());
    c.scenario.overdrive = 0.8;
    c.min_degraded = 50;
    c.max_fpr = 0.02;
    matrix.push_back(std::move(c));
  }
  matrix.push_back(attacks_caught(
      base("a", AttackKind::kImitationSweep, faults::flaky_connector()),
      /*min_recall=*/0.60, /*max_fpr=*/0.65));

  // --- Vehicle A across electrical environments (trained in-env). ---
  matrix.push_back(clean_traffic(with_env(
      base("a", AttackKind::kNone, faults::clean_profile()), accessory,
      "accessory")));
  matrix.push_back(clean_traffic(with_env(
      base("a", AttackKind::kNone, faults::clean_profile()), engine,
      "engine-running")));
  matrix.push_back(attacks_caught(with_env(
      base("a", AttackKind::kHijack, faults::clean_profile()), accessory,
      "accessory")));
  matrix.push_back(attacks_caught(with_env(
      base("a", AttackKind::kHijack, faults::clean_profile()), engine,
      "engine-running")));
  matrix.push_back(attacks_caught(
      with_env(base("a", AttackKind::kHijack, faults::emi_storm()), engine,
               "engine-running"),
      /*min_recall=*/0.95, /*max_fpr=*/0.20));

  // --- Vehicle A, Euclidean metric (paper compares both distances). ---
  {
    ScenarioCase c = attacks_caught(
        base("a", AttackKind::kHijack, faults::clean_profile()),
        /*min_recall=*/0.98, /*max_fpr=*/0.03);
    c.scenario.metric = vprofile::DistanceMetric::kEuclidean;
    c.scenario.margin = kEuclideanMargin;
    matrix.push_back(std::move(c));
  }

  // --- Vehicle B: ten close-profile ECUs, 12-bit / 10 MS/s digitizer. ---
  matrix.push_back(clean_traffic(
      base("b", AttackKind::kNone, faults::clean_profile())));
  matrix.push_back(attacks_caught(
      base("b", AttackKind::kHijack, faults::clean_profile())));
  matrix.push_back(attacks_caught(
      base("b", AttackKind::kForeign, faults::clean_profile())));
  matrix.push_back(attacks_caught(
      base("b", AttackKind::kHijack, faults::emi_storm()),
      /*min_recall=*/0.90, /*max_fpr=*/0.35));
  matrix.push_back(clean_traffic(with_env(
      base("b", AttackKind::kNone, faults::clean_profile()), accessory,
      "accessory")));
  return matrix;
}

std::string describe(const sim::ScenarioMetrics& m) {
  std::ostringstream os;
  os << "tp=" << m.confusion.true_positives()
     << " tn=" << m.confusion.true_negatives()
     << " fp=" << m.confusion.false_positives()
     << " fn=" << m.confusion.false_negatives()
     << " recall=" << m.confusion.recall()
     << " degraded=" << m.degraded
     << " extract_fail=" << m.extraction_failures << " faults=[";
  for (std::size_t i = 0; i < faults::kNumFaultKinds; ++i) {
    if (i) os << ' ';
    os << faults::to_string(static_cast<faults::FaultKind>(i)) << '='
       << m.fault_stats.applied[i];
  }
  os << "] faulted_traces=" << m.fault_stats.faulted_traces << '/'
     << m.fault_stats.total_traces
     << " fingerprint=" << m.fingerprint();
  return os.str();
}

}  // namespace harness
