#include <stdexcept>

#include <gtest/gtest.h>

#include "canbus/arbitration.hpp"
#include "canbus/crc15.hpp"
#include "canbus/frame.hpp"
#include "canbus/j1939.hpp"
#include "canbus/scheduler.hpp"
#include "canbus/stuffing.hpp"

namespace {

using canbus::BitVector;
using canbus::DataFrame;
using canbus::J1939Id;

TEST(J1939, PackUnpackRoundTrip) {
  const J1939Id id{3, 0xF004, 0x17};
  EXPECT_EQ(J1939Id::unpack(id.pack()), id);
}

TEST(J1939, FieldPlacementMatchesFig24) {
  // priority | 18-bit PGN | 8-bit SA.
  const J1939Id id{7, 0x3FFFF, 0xFF};
  EXPECT_EQ(id.pack(), 0x1FFFFFFFu);
  const J1939Id sa_only{0, 0, 0xAB};
  EXPECT_EQ(sa_only.pack(), 0xABu);
  const J1939Id prio_only{1, 0, 0};
  EXPECT_EQ(prio_only.pack(), 1u << 26);
}

TEST(J1939, RejectsOversizedFields) {
  EXPECT_THROW((J1939Id{8, 0, 0}).pack(), std::invalid_argument);
  EXPECT_THROW((J1939Id{0, 0x40000, 0}).pack(), std::invalid_argument);
  EXPECT_THROW(J1939Id::unpack(0x20000000u), std::invalid_argument);
}

TEST(J1939, ToStringMentionsFields) {
  const std::string s = J1939Id{3, 42, 7}.to_string();
  EXPECT_NE(s.find("prio=3"), std::string::npos);
  EXPECT_NE(s.find("pgn=42"), std::string::npos);
  EXPECT_NE(s.find("sa=7"), std::string::npos);
}

TEST(Crc15, EmptyInputIsZero) { EXPECT_EQ(canbus::crc15({}), 0u); }

TEST(Crc15, SingleOneBit) {
  // LFSR: one '1' bit shifts in polynomial 0x4599.
  EXPECT_EQ(canbus::crc15({true}), 0x4599u);
}

TEST(Crc15, DetectsSingleBitFlips) {
  BitVector bits(64, false);
  for (std::size_t i = 0; i < bits.size(); i += 7) bits[i] = true;
  const auto crc = canbus::crc15(bits);
  for (std::size_t flip = 0; flip < bits.size(); ++flip) {
    BitVector corrupted = bits;
    corrupted[flip] = !corrupted[flip];
    EXPECT_NE(canbus::crc15(corrupted), crc) << "missed flip at " << flip;
  }
}

TEST(Crc15, AppendWritesFifteenBits) {
  BitVector bits = {true, false, true};
  BitVector out;
  canbus::append_crc15(bits, out);
  EXPECT_EQ(out.size(), 15u);
}

TEST(Stuffing, InsertsAfterFiveEqualBits) {
  const BitVector in(5, false);
  const BitVector out = canbus::stuff(in);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_TRUE(out[5]);  // complement inserted
}

TEST(Stuffing, StuffBitStartsNewRun) {
  // 5 zeros + stuff(1) + 4 ones would make a run of 5 ones with the stuff
  // bit; the 5th consecutive '1' then triggers another stuff bit.
  BitVector in(5, false);
  for (int i = 0; i < 4; ++i) in.push_back(true);
  const BitVector out = canbus::stuff(in);
  // 0,0,0,0,0,S(1),1,1,1,1 -> the stuff bit plus 4 ones is a run of 5
  // => one more stuff bit (0) appended.
  ASSERT_EQ(out.size(), 11u);
  EXPECT_FALSE(out[10]);
}

TEST(Stuffing, RoundTripsRandomPayloads) {
  std::mt19937 gen(3);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector in(1 + gen() % 120);
    for (auto&& b : in) b = (gen() & 1) != 0;
    const auto out = canbus::destuff(canbus::stuff(in));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, in);
  }
}

TEST(Stuffing, DestuffRejectsSixEqualBits) {
  EXPECT_FALSE(canbus::destuff(BitVector(6, true)).has_value());
}

TEST(Stuffing, CountMatchesSizeDelta) {
  BitVector in(17, false);
  EXPECT_EQ(canbus::count_stuff_bits(in),
            canbus::stuff(in).size() - in.size());
}

TEST(Frame, UnstuffedLayoutMatchesTable21) {
  DataFrame f;
  f.id = J1939Id{0, 0, 0};
  f.payload = {};
  const BitVector bits = canbus::build_unstuffed_bits(f);
  namespace fb = canbus::frame_bits;
  EXPECT_FALSE(bits[fb::kSof.value()]);
  EXPECT_TRUE(bits[fb::kSrr.value()]);
  EXPECT_TRUE(bits[fb::kIde.value()]);
  EXPECT_FALSE(bits[fb::kRtr.value()]);
  // Empty payload: SOF..CRC is 39+15 bits, plus the 10-bit tail.
  EXPECT_EQ(bits.size(), 39u + 15u + 10u);
  // EOF: last 7 bits recessive.
  for (std::size_t i = bits.size() - 7; i < bits.size(); ++i) {
    EXPECT_TRUE(bits[i]);
  }
}

TEST(Frame, SourceAddressOccupiesBits24To31) {
  // SA = last 8 bits of the 29-bit ID = unstuffed bits 24..31, MSB first.
  DataFrame f;
  f.id = J1939Id{0, 0, 0xA5};
  const BitVector bits = canbus::build_unstuffed_bits(f);
  std::uint32_t sa = 0;
  for (std::size_t i = canbus::frame_bits::kSourceAddrFirst.value();
       i <= canbus::frame_bits::kSourceAddrLast.value(); ++i) {
    sa = (sa << 1) | (bits[i] ? 1u : 0u);
  }
  EXPECT_EQ(sa, 0xA5u);
}

TEST(Frame, DlcEncodesPayloadLength) {
  DataFrame f;
  f.id = J1939Id{0, 0, 0};
  f.payload = {1, 2, 3};
  const BitVector bits = canbus::build_unstuffed_bits(f);
  std::uint32_t dlc = 0;
  for (std::size_t i = canbus::frame_bits::kDlcFirst.value();
       i < (canbus::frame_bits::kDlcFirst+4).value(); ++i) {
    dlc = (dlc << 1) | (bits[i] ? 1u : 0u);
  }
  EXPECT_EQ(dlc, 3u);
}

TEST(Frame, RejectsOversizedPayload) {
  DataFrame f;
  f.payload.resize(9);
  EXPECT_THROW(canbus::build_wire_bits(f), std::invalid_argument);
}

TEST(Frame, WireRoundTripsRandomFrames) {
  std::mt19937 gen(17);
  for (int trial = 0; trial < 300; ++trial) {
    DataFrame f;
    f.id = J1939Id{static_cast<std::uint8_t>(gen() % 8),
                   static_cast<std::uint32_t>(gen() % 0x40000),
                   static_cast<std::uint8_t>(gen() % 256)};
    f.payload.resize(gen() % 9);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(gen() % 256);
    const auto parsed = canbus::parse_wire_bits(canbus::build_wire_bits(f));
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(*parsed, f);
  }
}

TEST(Frame, ParseRejectsCorruptedCrc) {
  DataFrame f;
  f.id = J1939Id{3, 1234, 56};
  f.payload = {0xDE, 0xAD};
  BitVector wire = canbus::build_wire_bits(f);
  // Flip a payload bit (inside the stuffed region, before the tail).
  wire[45] = !wire[45];
  EXPECT_FALSE(canbus::parse_wire_bits(wire).has_value());
}

TEST(Frame, ParseRejectsTruncation) {
  DataFrame f;
  f.id = J1939Id{3, 1234, 56};
  f.payload = {1};
  BitVector wire = canbus::build_wire_bits(f);
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(canbus::parse_wire_bits(wire).has_value());
}

TEST(Frame, WireBitCountIncludesStuffingAndTail) {
  DataFrame f;
  f.id = J1939Id{0, 0, 0};  // long runs of zeros => stuff bits
  f.payload = {};
  const std::size_t unstuffed = canbus::build_unstuffed_bits(f).size();
  EXPECT_GT(canbus::wire_bit_count(f), unstuffed);
}

TEST(Arbitration, LowestIdWins) {
  DataFrame hi;
  hi.id = J1939Id{0, 0, 1};  // numerically smaller => dominant earlier
  DataFrame lo;
  lo.id = J1939Id{7, 0x3FFFF, 0xFF};
  const auto result = canbus::arbitrate({lo, hi});
  EXPECT_EQ(result.winner, 1u);
}

TEST(Arbitration, PriorityFieldDecidesFirst) {
  DataFrame a;
  a.id = J1939Id{2, 0, 0xFF};
  DataFrame b;
  b.id = J1939Id{3, 0, 0x00};
  EXPECT_EQ(canbus::arbitrate({a, b}).winner, 0u);
}

TEST(Arbitration, LoserRecordsBackOffBit) {
  DataFrame a;
  a.id = J1939Id{0, 0, 0};
  DataFrame b;
  b.id = J1939Id{0, 0, 1};  // differs only in the last SA bit
  const auto result = canbus::arbitrate({a, b});
  EXPECT_EQ(result.winner, 0u);
  // SA LSB is unstuffed bit 31; the loser backs off exactly there.
  EXPECT_EQ(result.lost_at_bit[1], 31u);
  EXPECT_GT(result.lost_at_bit[0], result.lost_at_bit[1]);
}

TEST(Arbitration, SingleContenderWins) {
  DataFrame a;
  a.id = J1939Id{1, 2, 3};
  EXPECT_EQ(canbus::arbitrate({a}).winner, 0u);
}

TEST(Arbitration, ManyContendersAgreeWithNumericOrder) {
  std::vector<DataFrame> frames;
  for (int sa_value : {0x44, 0x11, 0x99, 0x22}) {
    const auto sa = static_cast<std::uint8_t>(sa_value);
    DataFrame f;
    f.id = J1939Id{3, 100, sa};
    frames.push_back(f);
  }
  EXPECT_EQ(canbus::arbitrate(frames).winner, 1u);  // sa 0x11
}

TEST(Arbitration, RejectsDuplicatesAndEmpty) {
  DataFrame a;
  a.id = J1939Id{1, 2, 3};
  EXPECT_THROW(canbus::arbitrate({}), std::invalid_argument);
  EXPECT_THROW(canbus::arbitrate({a, a}), std::invalid_argument);
}

TEST(Scheduler, ProducesRequestedCount) {
  canbus::PeriodicMessage m;
  m.id = J1939Id{3, 10, 1};
  m.period_s = 0.01;
  canbus::Scheduler sched({m}, units::BitRateBps{250e3}, stats::Rng(1));
  EXPECT_EQ(sched.run(100).size(), 100u);
}

TEST(Scheduler, TimestampsMonotonicallyIncrease) {
  canbus::PeriodicMessage a;
  a.id = J1939Id{3, 10, 1};
  a.period_s = 0.01;
  canbus::PeriodicMessage b;
  b.id = J1939Id{6, 20, 2};
  b.period_s = 0.013;
  b.node = 1;
  canbus::Scheduler sched({a, b}, units::BitRateBps{250e3}, stats::Rng(2));
  const auto txs = sched.run(200);
  for (std::size_t i = 1; i < txs.size(); ++i) {
    EXPECT_GE(txs[i].start_s, txs[i - 1].start_s);
  }
}

TEST(Scheduler, MessageMixTracksPeriodRatio) {
  canbus::PeriodicMessage fast;
  fast.id = J1939Id{3, 10, 1};
  fast.period_s = 0.01;
  canbus::PeriodicMessage slow;
  slow.id = J1939Id{6, 20, 2};
  slow.period_s = 0.1;
  slow.node = 1;
  canbus::Scheduler sched({fast, slow}, units::BitRateBps{250e3},
                          stats::Rng(3));
  const auto txs = sched.run(1100);
  std::size_t fast_count = 0;
  for (const auto& tx : txs) fast_count += (tx.node == 0);
  // 10:1 period ratio => ~10/11 of messages from the fast sender.
  EXPECT_NEAR(static_cast<double>(fast_count) /
                  static_cast<double>(txs.size()),
              10.0 / 11.0,
              0.05);
}

TEST(Scheduler, HigherPriorityWinsContention) {
  // Two messages always released together: the lower ID must never starve
  // behind the higher one (arbitration decides, then the loser retries).
  canbus::PeriodicMessage hi;
  hi.id = J1939Id{0, 0, 0};
  hi.period_s = 0.005;
  canbus::PeriodicMessage lo;
  lo.id = J1939Id{7, 0x3FFFF, 0xFF};
  lo.period_s = 0.005;
  lo.node = 1;
  canbus::Scheduler sched({hi, lo}, units::BitRateBps{250e3}, stats::Rng(4));
  const auto txs = sched.run(100);
  std::size_t hi_count = 0;
  for (const auto& tx : txs) hi_count += (tx.node == 0);
  EXPECT_GT(hi_count, 30u);
  EXPECT_LT(hi_count, 70u);  // both still get through
}

TEST(Scheduler, ValidatesConfiguration) {
  canbus::PeriodicMessage m;
  m.id = J1939Id{3, 10, 1};
  m.period_s = 0.0;
  EXPECT_THROW(canbus::Scheduler({}, units::BitRateBps{250e3}, stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(canbus::Scheduler({m}, units::BitRateBps{250e3}, stats::Rng(1)),
               std::invalid_argument);
  m.period_s = 0.1;
  EXPECT_THROW(canbus::Scheduler({m}, units::BitRateBps{0.0}, stats::Rng(1)),
               std::invalid_argument);
  m.payload_len = 9;
  EXPECT_THROW(canbus::Scheduler({m}, units::BitRateBps{250e3}, stats::Rng(1)),
               std::invalid_argument);
}

TEST(Scheduler, DeterministicWithSameSeed) {
  canbus::PeriodicMessage m;
  m.id = J1939Id{3, 10, 1};
  m.period_s = 0.01;
  m.jitter_s = 0.001;
  canbus::Scheduler s1({m}, units::BitRateBps{250e3}, stats::Rng(42));
  canbus::Scheduler s2({m}, units::BitRateBps{250e3}, stats::Rng(42));
  const auto a = s1.run(50);
  const auto b = s2.run(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].frame, b[i].frame);
  }
}

}  // namespace
