#include <gtest/gtest.h>

#include "baseline/timing_ids.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"
#include "stats/rng.hpp"

namespace {

using baseline::ClockSkewIds;
using baseline::TimedMessage;

/// Synthetic periodic stream with a given clock skew (ppm) and jitter.
std::vector<TimedMessage> make_stream(std::uint8_t sa, double period_s,
                                      double skew_ppm, double jitter_s,
                                      std::size_t count, stats::Rng& rng,
                                      double start_s = 0.0) {
  std::vector<TimedMessage> out;
  const double effective = period_s * (1.0 + skew_ppm * 1e-6);
  double t = start_s;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({t + rng.gaussian(0.0, jitter_s), sa});
    t += effective;
  }
  return out;
}

ClockSkewIds::Options test_options() {
  ClockSkewIds::Options o;
  o.cusum_threshold = 8.0;
  return o;
}

TEST(ClockSkew, TrainsOnCleanStream) {
  stats::Rng rng(1);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 50.0, 1e-4, 200, rng), &error))
      << error;
  EXPECT_TRUE(ids.skew_of(1).has_value());
  EXPECT_FALSE(ids.skew_of(2).has_value());
}

TEST(ClockSkew, RejectsTooFewMessages) {
  stats::Rng rng(2);
  ClockSkewIds ids(test_options());
  std::string error;
  EXPECT_FALSE(ids.train(make_stream(1, 0.1, 0.0, 1e-4, 5, rng), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ids.train({}, &error));
}

TEST(ClockSkew, CleanReplayRaisesNoAlarm) {
  stats::Rng rng(3);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 40.0, 2e-4, 300, rng), &error));
  std::size_t alarms = 0;
  for (const auto& m : make_stream(1, 0.1, 40.0, 2e-4, 300, rng)) {
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) ++alarms;
  }
  EXPECT_EQ(alarms, 0u);
}

TEST(ClockSkew, UnknownSaIsFlagged) {
  stats::Rng rng(4);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 0.0, 1e-4, 100, rng), &error));
  EXPECT_EQ(ids.observe({0.0, 9}), ClockSkewIds::Verdict::kUnknownSa);
}

TEST(ClockSkew, DifferentSkewSenderIsDetected) {
  // The CIDS masquerade scenario: another ECU (different oscillator)
  // takes over the SA; the accumulated offset departs from the trained
  // slope and the CUSUM fires.
  stats::Rng rng(5);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 60.0, 1e-4, 300, rng), &error));
  bool detected = false;
  for (const auto& m : make_stream(1, 0.1, -90.0, 1e-4, 500, rng)) {
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) {
      detected = true;
      break;
    }
  }
  EXPECT_TRUE(detected);
}

TEST(ClockSkew, InjectedMessagesAreDetected) {
  // Message injection doubles the arrival rate; the offset trend breaks
  // immediately.
  stats::Rng rng(6);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 20.0, 1e-4, 300, rng), &error));
  bool detected = false;
  for (const auto& m : make_stream(1, 0.05, 20.0, 1e-4, 200, rng)) {
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) {
      detected = true;
      break;
    }
  }
  EXPECT_TRUE(detected);
}

TEST(ClockSkew, SameSkewAttackerIsMissed) {
  // The known blind spot the paper's Section 6.1 highlights: a timing
  // fingerprint cannot separate senders with matching clocks — that is
  // what vProfile's voltage fingerprint adds.
  stats::Rng rng(7);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 30.0, 2e-4, 300, rng), &error));
  std::size_t alarms = 0;
  for (const auto& m : make_stream(1, 0.1, 30.0, 2e-4, 300, rng)) {
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) ++alarms;
  }
  EXPECT_EQ(alarms, 0u);
}

TEST(ClockSkew, ResetClearsOnlineState) {
  stats::Rng rng(8);
  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(make_stream(1, 0.1, 0.0, 1e-4, 100, rng), &error));
  // Drive the CUSUM up, then reset; a clean stream must stay clean.
  for (const auto& m : make_stream(1, 0.07, 0.0, 1e-4, 100, rng)) {
    ids.observe(m);
  }
  ids.reset_online_state();
  std::size_t alarms = 0;
  for (const auto& m : make_stream(1, 0.1, 0.0, 1e-4, 100, rng)) {
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) ++alarms;
  }
  EXPECT_EQ(alarms, 0u);
}

TEST(ClockSkew, DetectsReplacedOscillatorOnSimulatedVehicle) {
  // End-to-end with the simulator: train on Vehicle A's scheduled
  // traffic, then watch a vehicle whose ECU 0 oscillator was replaced (a
  // hijacking device with its own clock).  The timing IDS must stay quiet
  // on a clean replay and fire on the replaced clock.
  // Timing fingerprints are per periodic message; restrict the stream to
  // ECU 0's fast engine-speed message (SA 0x00 carries a second, slower
  // message whose interleaving would corrupt the period estimate).
  auto stream_from = [](const sim::VehicleConfig& cfg, std::uint64_t seed) {
    sim::Vehicle vehicle(cfg, seed);
    std::vector<TimedMessage> stream;
    for (const auto& tx : vehicle.schedule(4000)) {
      if (tx.frame.id.source_address == 0x00 && tx.frame.id.pgn != 0) {
        continue;
      }
      stream.push_back({tx.start_s, tx.frame.id.source_address});
    }
    return stream;
  };

  ClockSkewIds ids(test_options());
  std::string error;
  ASSERT_TRUE(ids.train(stream_from(sim::vehicle_a(), 55), &error)) << error;

  // Clean replay (fresh seed): no sa-0x00 alarms.
  std::size_t clean_alarms = 0;
  for (const auto& m : stream_from(sim::vehicle_a(), 56)) {
    if (m.sa != 0x00) continue;
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) ++clean_alarms;
  }
  EXPECT_EQ(clean_alarms, 0u);

  // Replaced oscillator: +5000 ppm on ECU 0.
  ids.reset_online_state();
  sim::VehicleConfig tampered = sim::vehicle_a();
  tampered.ecus[0].clock_skew_ppm += 5000.0;
  bool detected = false;
  for (const auto& m : stream_from(tampered, 57)) {
    if (m.sa != 0x00) continue;
    if (ids.observe(m) == ClockSkewIds::Verdict::kAnomaly) {
      detected = true;
      break;
    }
  }
  EXPECT_TRUE(detected);
}

}  // namespace
