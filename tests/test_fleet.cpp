// Unit and negative-path fuzz tests for the fleet layer: the hardened
// wire codec (torn / truncated / corrupted chunks must surface as counted
// errors, never as crashes or over-reads) and the FleetService bulkheads
// (governors, dedup, quarantine → revival → eviction, checkpoint layout).
// The long-running containment scenarios live in test_fleet_chaos.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "fleet/fleet_service.hpp"
#include "fleet/wire.hpp"
#include "io/checksum.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using fleet::wire::Decoder;
using fleet::wire::DecodeError;
using fleet::wire::Frame;
using fleet::wire::FrameKind;

// ---------------------------------------------------------------------------
// Wire codec helpers.

Frame make_frame(std::string tenant, std::uint64_t seq, std::size_t samples) {
  Frame f;
  f.kind = FrameKind::kData;
  f.tenant = std::move(tenant);
  f.seq = seq;
  for (std::size_t i = 0; i < samples; ++i) {
    f.samples.push_back(static_cast<double>(i) * 1.5 +
                        static_cast<double>(seq) * 0.25);
  }
  return f;
}

std::vector<Decoder::Event> pump(Decoder& decoder) {
  std::vector<Decoder::Event> events;
  while (auto ev = decoder.next()) events.push_back(std::move(*ev));
  return events;
}

std::size_t count_frames(const std::vector<Decoder::Event>& events) {
  std::size_t n = 0;
  for (const auto& ev : events) {
    if (ev.frame.has_value()) ++n;
  }
  return n;
}

bool frames_equal(const Frame& a, const Frame& b) {
  if (a.kind != b.kind || a.tenant != b.tenant || a.seq != b.seq ||
      a.samples.size() != b.samples.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    // Bit-pattern comparison, so NaNs and signed zeros round-trip too.
    std::uint64_t lhs = 0;
    std::uint64_t rhs = 0;
    std::memcpy(&lhs, &a.samples[i], sizeof(lhs));
    std::memcpy(&rhs, &b.samples[i], sizeof(rhs));
    if (lhs != rhs) return false;
  }
  return true;
}

TEST(Wire, RoundTripPreservesBitPatterns) {
  Frame f = make_frame("truck-7", 42, 0);
  f.samples = {0.0, -0.0, 1.5, -1e300, 5e-324,
               std::numeric_limits<double>::infinity(),
               -std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::quiet_NaN()};
  const std::string bytes = fleet::wire::encode(f);
  ASSERT_FALSE(bytes.empty());

  Decoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto events = pump(decoder);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].frame.has_value());
  EXPECT_EQ(events[0].error, DecodeError::kNone);
  EXPECT_TRUE(frames_equal(*events[0].frame, f));
  EXPECT_EQ(events[0].claimed_tenant, "truck-7");
  EXPECT_EQ(decoder.stats().frames_decoded, 1u);
  EXPECT_EQ(decoder.stats().errors, 0u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, DrainFrameRoundTrips) {
  Frame f;
  f.kind = FrameKind::kDrain;
  f.tenant = "bus.0";
  f.seq = 9;
  Decoder decoder;
  const std::string bytes = fleet::wire::encode(f);
  decoder.feed(bytes.data(), bytes.size());
  const auto events = pump(decoder);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].frame.has_value());
  EXPECT_EQ(events[0].frame->kind, FrameKind::kDrain);
  EXPECT_TRUE(events[0].frame->samples.empty());
}

TEST(Wire, EncodeRefusesOverCeilingInputs) {
  Frame huge_tenant = make_frame(std::string(fleet::wire::kMaxTenantBytes + 1,
                                             't'),
                                 0, 1);
  EXPECT_TRUE(fleet::wire::encode(huge_tenant).empty());

  Frame empty_tenant = make_frame("", 0, 1);
  EXPECT_TRUE(fleet::wire::encode(empty_tenant).empty());

  Frame huge_trace = make_frame("t", 0, 0);
  huge_trace.samples.assign(fleet::wire::kMaxSamples + 1, 0.0);
  EXPECT_TRUE(fleet::wire::encode(huge_trace).empty());
}

// The core torn-uplink property: a valid frame truncated at EVERY byte
// offset must never decode, never throw and never over-read; feeding the
// remaining suffix afterwards must always produce exactly the original
// frame (per-connection reassembly).
TEST(Wire, TruncationAtEveryByteOffsetThenReassembly) {
  const Frame f = make_frame("truck-1", 3, 5);
  const std::string bytes = fleet::wire::encode(f);
  ASSERT_FALSE(bytes.empty());

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder decoder;
    decoder.feed(bytes.data(), cut);
    const auto before = pump(decoder);
    EXPECT_EQ(count_frames(before), 0u) << "cut=" << cut;

    decoder.feed(bytes.data() + cut, bytes.size() - cut);
    const auto after = pump(decoder);
    ASSERT_EQ(count_frames(after), 1u) << "cut=" << cut;
    for (const auto& ev : after) {
      if (ev.frame.has_value()) {
        EXPECT_TRUE(frames_equal(*ev.frame, f));
      }
    }
    EXPECT_EQ(decoder.buffered(), 0u) << "cut=" << cut;
  }
}

// A connection that dies mid-frame and never comes back must leave the
// decoder waiting or erroring — not producing a phantom frame.
TEST(Wire, TruncatedTailAloneNeverDecodes) {
  const Frame f = make_frame("truck-1", 7, 4);
  const std::string bytes = fleet::wire::encode(f);
  for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    Decoder decoder;
    decoder.feed(bytes.data(), cut);
    const auto events = pump(decoder);
    EXPECT_EQ(count_frames(events), 0u) << "cut=" << cut;
    EXPECT_EQ(decoder.stats().frames_decoded, 0u) << "cut=" << cut;
  }
}

// Flipping any byte of the length prefix must never yield the original
// frame; the decoder either reports an error or keeps waiting for the
// (hostile) longer length, and never crashes.
TEST(Wire, FlippedLengthPrefixNeverYieldsFrame) {
  const Frame f0 = make_frame("truck-1", 0, 4);
  const Frame f1 = make_frame("truck-1", 1, 4);
  const std::string b0 = fleet::wire::encode(f0);
  const std::string b1 = fleet::wire::encode(f1);

  const unsigned char masks[] = {0x01, 0x80, 0xFF};
  for (std::size_t byte = 4; byte < 8; ++byte) {  // u32 after the magic
    for (const unsigned char mask : masks) {
      std::string corrupted = b0;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ mask);
      Decoder decoder;
      decoder.feed(corrupted.data(), corrupted.size());
      decoder.feed(b1.data(), b1.size());
      const auto events = pump(decoder);
      for (const auto& ev : events) {
        if (ev.frame.has_value()) {
          EXPECT_NE(ev.frame->seq, 0u)
              << "byte=" << byte << " mask=" << int{mask};
        }
      }
      // Either the corruption surfaced as a counted error, or the decoder
      // is still (safely) waiting for the inflated length.
      EXPECT_TRUE(decoder.stats().errors >= 1 || decoder.buffered() > 0)
          << "byte=" << byte << " mask=" << int{mask};
    }
  }
}

// A flipped payload byte is caught by the CRC; the following pristine
// frame always decodes (consume-and-continue, not connection death).
TEST(Wire, FlippedPayloadByteAtEveryOffsetIsCaughtByCrc) {
  const Frame f0 = make_frame("truck-1", 0, 3);
  const Frame f1 = make_frame("truck-1", 1, 3);
  const std::string b0 = fleet::wire::encode(f0);
  const std::string b1 = fleet::wire::encode(f1);
  const std::size_t payload_len = b0.size() - 8 - 4;
  const std::size_t samples_start = 8 + 1 + 2 + f0.tenant.size() + 8 + 4;

  for (std::size_t off = 8; off < 8 + payload_len; ++off) {
    std::string corrupted = b0;
    corrupted[off] = static_cast<char>(
        static_cast<unsigned char>(corrupted[off]) ^ 0x20);
    Decoder decoder;
    decoder.feed(corrupted.data(), corrupted.size());
    decoder.feed(b1.data(), b1.size());
    const auto events = pump(decoder);
    ASSERT_EQ(events.size(), 2u) << "off=" << off;
    EXPECT_EQ(events[0].error, DecodeError::kBadCrc) << "off=" << off;
    if (off >= samples_start) {
      // Flips outside the identity fields still attribute the error to
      // the claimed tenant — that is what drives quarantine.
      EXPECT_EQ(events[0].claimed_tenant, "truck-1") << "off=" << off;
    }
    ASSERT_TRUE(events[1].frame.has_value()) << "off=" << off;
    EXPECT_TRUE(frames_equal(*events[1].frame, f1));
  }
}

// Flipping CRC trailer bytes must also surface as kBadCrc.
TEST(Wire, FlippedCrcTrailerIsRejected) {
  const Frame f = make_frame("truck-1", 5, 2);
  const std::string bytes = fleet::wire::encode(f);
  for (std::size_t i = 0; i < 4; ++i) {
    std::string corrupted = bytes;
    const std::size_t off = bytes.size() - 4 + i;
    corrupted[off] = static_cast<char>(
        static_cast<unsigned char>(corrupted[off]) ^ 0x01);
    Decoder decoder;
    decoder.feed(corrupted.data(), corrupted.size());
    const auto events = pump(decoder);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].error, DecodeError::kBadCrc);
    EXPECT_EQ(events[0].claimed_tenant, "truck-1");
  }
}

TEST(Wire, GarbagePrefixResynchronizes) {
  const Frame f = make_frame("truck-2", 11, 3);
  const std::string bytes = fleet::wire::encode(f);
  std::string stream(64, static_cast<char>(0xAA));
  stream += bytes;

  Decoder decoder;
  decoder.feed(stream.data(), stream.size());
  const auto events = pump(decoder);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].error, DecodeError::kBadMagic);
  ASSERT_TRUE(events.back().frame.has_value());
  EXPECT_TRUE(frames_equal(*events.back().frame, f));
  EXPECT_GE(decoder.stats().resyncs, 1u);
  EXPECT_GE(decoder.stats().bytes_skipped, 64u);
}

TEST(Wire, MagicSplitAcrossFeedsStillDecodes) {
  const Frame f = make_frame("truck-3", 0, 2);
  const std::string bytes = fleet::wire::encode(f);
  Decoder decoder;
  // Garbage, then the first half of the magic: the partial magic at the
  // tail must be kept across the resync, not discarded.
  const std::string junk(16, static_cast<char>(0x11));
  decoder.feed(junk.data(), junk.size());
  decoder.feed(bytes.data(), 2);
  auto events = pump(decoder);
  EXPECT_EQ(count_frames(events), 0u);
  decoder.feed(bytes.data() + 2, bytes.size() - 2);
  events = pump(decoder);
  ASSERT_EQ(count_frames(events), 1u);
  for (const auto& ev : events) {
    if (ev.frame.has_value()) {
      EXPECT_TRUE(frames_equal(*ev.frame, f));
    }
  }
}

// A hostile length prefix beyond the ceiling must be rejected immediately
// (no multi-gigabyte buffering) and the stream must recover.
TEST(Wire, OversizedLengthPrefixIsRejectedAndRecovers) {
  std::string hostile(reinterpret_cast<const char*>(fleet::wire::kMagic), 4);
  const std::uint64_t huge = fleet::wire::kMaxPayloadBytes + 1;
  for (int shift = 0; shift < 32; shift += 8) {
    hostile.push_back(static_cast<char>((huge >> shift) & 0xFF));
  }
  hostile += "some trailing garbage";
  const Frame f = make_frame("truck-4", 2, 3);
  hostile += fleet::wire::encode(f);

  Decoder decoder;
  decoder.feed(hostile.data(), hostile.size());
  const auto events = pump(decoder);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].error, DecodeError::kOversized);
  ASSERT_TRUE(events.back().frame.has_value());
  EXPECT_TRUE(frames_equal(*events.back().frame, f));
}

// A frame whose CRC is valid but whose internals are inconsistent (bad
// kind byte, sample count disagreeing with the length) is kBadPayload
// with tenant attribution.
TEST(Wire, InternallyInconsistentPayloadIsRejectedWithAttribution) {
  // Bad kind byte, correct CRC.
  std::string payload;
  payload.push_back(static_cast<char>(9));  // no such FrameKind
  payload.push_back(static_cast<char>(7));  // tenant_len = 7 LE
  payload.push_back(static_cast<char>(0));
  payload += "truck-9";
  payload.append(8, '\0');  // seq
  payload.append(4, '\0');  // sample_count = 0
  std::string bytes(reinterpret_cast<const char*>(fleet::wire::kMagic), 4);
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<char>((payload.size() >> shift) & 0xFF));
  }
  bytes += payload;
  const std::uint32_t crc = io::crc32(payload);
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<char>((crc >> shift) & 0xFF));
  }

  Decoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto events = pump(decoder);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].error, DecodeError::kBadPayload);
  EXPECT_EQ(events[0].claimed_tenant, "truck-9");
  EXPECT_EQ(decoder.stats().frames_decoded, 0u);
}

TEST(Wire, ChunkedDeliveryMatchesSingleFeed) {
  std::string stream;
  std::vector<Frame> frames;
  for (std::uint64_t seq = 0; seq < 12; ++seq) {
    frames.push_back(make_frame("truck-5", seq, 7));
    stream += fleet::wire::encode(frames.back());
  }
  for (const std::size_t chunk : {1u, 3u, 13u, 64u}) {
    Decoder decoder;
    std::vector<Decoder::Event> events;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      decoder.feed(stream.data() + off, n);
      for (auto ev = decoder.next(); ev.has_value(); ev = decoder.next()) {
        events.push_back(std::move(*ev));
      }
    }
    ASSERT_EQ(events.size(), frames.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      ASSERT_TRUE(events[i].frame.has_value());
      EXPECT_TRUE(frames_equal(*events[i].frame, frames[i]));
    }
    EXPECT_EQ(decoder.stats().errors, 0u);
  }
}

// ---------------------------------------------------------------------------
// FleetService: shared trained world (one model, one benign stream).

constexpr std::uint64_t kSeed = 11;
constexpr std::size_t kTrainCount = 900;
constexpr std::size_t kStreamCount = 220;

struct World {
  std::optional<vprofile::Model> model;
  std::vector<dsp::Trace> traces;
};

const World& world() {
  static const World w = [] {
    World out;
    sim::Vehicle vehicle(sim::vehicle_a(), kSeed);
    const analog::Environment env = analog::Environment::reference();
    const auto extraction = sim::default_extraction(vehicle.config());

    std::vector<vprofile::EdgeSet> training;
    for (const sim::Capture& cap : vehicle.capture(kTrainCount, env)) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.extraction = extraction;
    auto trained =
        vprofile::train_with_database(training, vehicle.database(), tc);
    EXPECT_TRUE(trained.ok()) << trained.error;
    if (!trained.ok()) return out;
    out.model = std::move(*trained.model);

    for (sim::LabeledCapture& lc :
         sim::make_normal_stream(vehicle, kStreamCount, env)) {
      out.traces.push_back(std::move(lc.capture.codes));
    }
    return out;
  }();
  return w;
}

fleet::FleetConfig base_config() {
  fleet::FleetConfig cfg;
  cfg.num_shards = 2;
  cfg.threaded = false;
  cfg.tenant.supervisor.lockstep = true;
  cfg.tenant.supervisor.pipeline.num_workers = 1;
  cfg.tenant.supervisor.online_update = false;
  return cfg;
}

fleet::wire::Decoder::Event error_event(DecodeError error,
                                        std::string claimed) {
  fleet::wire::Decoder::Event ev;
  ev.error = error;
  ev.claimed_tenant = std::move(claimed);
  return ev;
}

TEST(FleetCheckpointLayout, SanitizesAndDisambiguates) {
  const std::string a = fleet::tenant_checkpoint_dir("/tmp/fleet", "a/0");
  const std::string b = fleet::tenant_checkpoint_dir("/tmp/fleet", "a_0");
  EXPECT_NE(a, b);  // sanitization must not alias distinct ids
  // The leaf itself contains no path separators.
  EXPECT_EQ(a.find('/', std::string("/tmp/fleet/").size()), std::string::npos);
  // Stable output for stable input.
  EXPECT_EQ(a, fleet::tenant_checkpoint_dir("/tmp/fleet", "a/0"));
}

TEST(FleetSharding, PinIsStableAndInRange) {
  for (const std::size_t shards : {1u, 2u, 7u}) {
    const std::size_t pin = fleet::shard_of("truck-1", shards);
    EXPECT_LT(pin, shards);
    EXPECT_EQ(pin, fleet::shard_of("truck-1", shards));
  }
  EXPECT_EQ(fleet::shard_of("anything", 1), 0u);
}

TEST(FleetService, RegistrationValidation) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetService service(base_config());

  std::string err;
  EXPECT_FALSE(service.register_tenant("", *w.model, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(service.register_tenant("truck-1", *w.model));
  EXPECT_FALSE(service.register_tenant("truck-1", *w.model, &err));

  EXPECT_EQ(service.ingest("nobody", w.traces[0]),
            fleet::IngestResult::kUnknownTenant);
  EXPECT_EQ(service.stats().unknown_tenant_frames, 1u);

  service.finish();
  EXPECT_FALSE(service.register_tenant("truck-2", *w.model, &err));
  EXPECT_EQ(service.ingest("truck-1", w.traces[0]),
            fleet::IngestResult::kFinished);
}

TEST(FleetService, ScoresAndDrainsDeterministically) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());

  auto run = [&w] {
    fleet::FleetService service(base_config());
    EXPECT_TRUE(service.register_tenant("truck-1", *w.model));
    EXPECT_TRUE(service.register_tenant("truck-2", *w.model));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(service.ingest("truck-1", w.traces[i]),
                fleet::IngestResult::kAccepted);
      EXPECT_EQ(service.ingest("truck-2", w.traces[i + 64]),
                fleet::IngestResult::kAccepted);
    }
    service.finish();
    return std::make_pair(service.fingerprint(), service.statusz_json());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);  // /statusz is byte-stable

  fleet::FleetService service(base_config());
  ASSERT_TRUE(service.register_tenant("truck-1", *w.model));
  for (std::size_t i = 0; i < 8; ++i) {
    service.ingest("truck-1", w.traces[i]);
  }
  service.drain_tenant("truck-1");
  auto snap = service.tenant("truck-1");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, fleet::TenantState::kDrained);
  EXPECT_EQ(snap->supervisor.frames_handled, 8u);
  EXPECT_EQ(service.ingest("truck-1", w.traces[0]),
            fleet::IngestResult::kUnavailable);
  service.finish();
}

// Sync single-shard, sync multi-shard and threaded multi-shard runs must
// produce bit-identical per-tenant fingerprints — the determinism contract
// the chaos harness leans on.
TEST(FleetService, FingerprintStableAcrossShardCountsAndThreading) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());

  auto run = [&w](std::size_t shards, bool threaded) {
    fleet::FleetConfig cfg = base_config();
    cfg.num_shards = shards;
    cfg.threaded = threaded;
    fleet::FleetService service(cfg);
    EXPECT_TRUE(service.register_tenant("truck-1", *w.model));
    EXPECT_TRUE(service.register_tenant("truck-2", *w.model));
    EXPECT_TRUE(service.register_tenant("bus/0", *w.model));
    for (std::size_t i = 0; i < 48; ++i) {
      service.ingest("truck-1", w.traces[i]);
      service.ingest("truck-2", w.traces[i + 48]);
      service.ingest("bus/0", w.traces[i + 96]);
    }
    service.finish();
    std::vector<std::uint64_t> prints;
    for (const auto& snap : service.tenants()) {
      prints.push_back(snap.fingerprint);
      EXPECT_NE(snap.fingerprint, 0u) << snap.id;
    }
    prints.push_back(service.fingerprint());
    return prints;
  };

  const auto reference = run(1, false);
  EXPECT_EQ(run(4, false), reference);
  EXPECT_EQ(run(2, true), reference);
  EXPECT_EQ(run(4, true), reference);
}

TEST(FleetService, GovernorShedsExcessDeterministically) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetConfig cfg = base_config();
  cfg.tenant.governor_window = 4;
  cfg.tenant.governor_quota = 1;
  fleet::FleetService service(cfg);
  ASSERT_TRUE(service.register_tenant("a", *w.model));
  ASSERT_TRUE(service.register_tenant("b", *w.model));

  // Alternating offers: each window of 4 fleet offers holds 2 per tenant,
  // quota 1 → exactly one accepted and one shed per tenant per window.
  std::size_t accepted_a = 0;
  std::size_t shed_a = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto ra = service.ingest("a", w.traces[i]);
    const auto rb = service.ingest("b", w.traces[i + 8]);
    if (ra == fleet::IngestResult::kAccepted) ++accepted_a;
    if (ra == fleet::IngestResult::kShedGovernor) ++shed_a;
    EXPECT_EQ(ra, rb);  // symmetric arrival pattern → symmetric outcome
  }
  EXPECT_EQ(accepted_a, 4u);
  EXPECT_EQ(shed_a, 4u);
  const fleet::FleetStats stats = service.stats();
  EXPECT_EQ(stats.frames_accepted, 8u);
  EXPECT_EQ(stats.frames_shed, 8u);
  auto snap = service.tenant("a");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->frames_accepted, 4u);
  EXPECT_EQ(snap->frames_shed, 4u);
  service.finish();
}

TEST(FleetService, AdmissionGovernorCapsAggregate) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetConfig cfg = base_config();
  cfg.admission_window = 10;
  cfg.admission_quota = 3;
  fleet::FleetService service(cfg);
  ASSERT_TRUE(service.register_tenant("a", *w.model));

  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto r = service.ingest("a", w.traces[i]);
    if (r == fleet::IngestResult::kAccepted) ++accepted;
    if (r == fleet::IngestResult::kRejectedAdmission) ++rejected;
  }
  EXPECT_EQ(accepted, 6u);   // 3 per window × 2 windows
  EXPECT_EQ(rejected, 14u);
  EXPECT_EQ(service.stats().admission_rejected, 14u);
  service.finish();
}

// Duplicate and reordered wire chunks: duplicates are dropped before
// scoring (the fingerprint must equal exactly-once delivery), gaps are
// counted.
TEST(FleetService, WireDedupKeepsFingerprintAndCountsGaps) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());

  auto frame_event = [&w](std::uint64_t seq, std::size_t trace_idx) {
    fleet::wire::Decoder::Event ev;
    Frame f;
    f.tenant = "truck-1";
    f.seq = seq;
    f.samples = w.traces[trace_idx];
    ev.frame = std::move(f);
    ev.claimed_tenant = "truck-1";
    return ev;
  };

  // At-least-once delivery: 0, 1, 1 (redelivered), 3 (2 lost).
  fleet::FleetService dup_service(base_config());
  ASSERT_TRUE(dup_service.register_tenant("truck-1", *w.model));
  dup_service.handle_wire_event(frame_event(0, 0));
  dup_service.handle_wire_event(frame_event(1, 1));
  dup_service.handle_wire_event(frame_event(1, 1));
  dup_service.handle_wire_event(frame_event(3, 3));
  dup_service.finish();

  // Exactly-once reference: 0, 1, 3.
  fleet::FleetService ref_service(base_config());
  ASSERT_TRUE(ref_service.register_tenant("truck-1", *w.model));
  ref_service.handle_wire_event(frame_event(0, 0));
  ref_service.handle_wire_event(frame_event(1, 1));
  ref_service.handle_wire_event(frame_event(3, 3));
  ref_service.finish();

  auto dup_snap = dup_service.tenant("truck-1");
  auto ref_snap = ref_service.tenant("truck-1");
  ASSERT_TRUE(dup_snap.has_value());
  ASSERT_TRUE(ref_snap.has_value());
  EXPECT_EQ(dup_snap->fingerprint, ref_snap->fingerprint);
  EXPECT_EQ(dup_snap->transport.duplicates_dropped, 1u);
  EXPECT_EQ(dup_snap->transport.gaps_detected, 1u);  // seq 2 missing
  EXPECT_EQ(dup_snap->transport.frames, 3u);
  EXPECT_EQ(dup_service.stats().wire_duplicates, 1u);
  EXPECT_EQ(dup_service.stats().wire_gaps, 1u);
}

TEST(FleetService, WireDrainFrameDrainsTenant) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetService service(base_config());
  ASSERT_TRUE(service.register_tenant("truck-1", *w.model));

  fleet::wire::Decoder::Event ev;
  Frame f;
  f.kind = FrameKind::kDrain;
  f.tenant = "truck-1";
  ev.frame = std::move(f);
  ev.claimed_tenant = "truck-1";
  service.handle_wire_event(ev);

  auto snap = service.tenant("truck-1");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, fleet::TenantState::kDrained);
  service.finish();
}

// The full containment arc: decode errors quarantine the tenant, the
// neighbour keeps scoring, a frame-counted backoff revives it from the
// initial model, and a second quarantine past the revival budget evicts
// it for good.
TEST(FleetService, QuarantineReviveThenEvict) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetConfig cfg = base_config();
  cfg.tenant.quarantine_decode_errors = 2;
  cfg.tenant.revive_backoff_frames = 3;
  cfg.tenant.revive_max_attempts = 1;
  fleet::FleetService service(cfg);
  ASSERT_TRUE(service.register_tenant("sick", *w.model));
  ASSERT_TRUE(service.register_tenant("healthy", *w.model));

  service.handle_wire_event(error_event(DecodeError::kBadCrc, "sick"));
  service.handle_wire_event(error_event(DecodeError::kBadPayload, "sick"));
  {
    auto snap = service.tenant("sick");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, fleet::TenantState::kQuarantined);
    EXPECT_EQ(snap->transport.decode_errors, 2u);
  }
  EXPECT_EQ(service.stats().quarantines, 1u);

  // Errors too mangled to attribute only count against the connection.
  service.handle_wire_event(error_event(DecodeError::kBadMagic, ""));
  EXPECT_EQ(service.stats().wire_unattributed_errors, 1u);

  // Quarantined frames are dropped until the backoff elapses...
  std::size_t offers = 0;
  while (offers < 16) {
    const auto r = service.ingest("sick", w.traces[offers % 8]);
    ++offers;
    if (r == fleet::IngestResult::kUnavailable) continue;
    break;
  }
  auto revived = service.tenant("sick");
  ASSERT_TRUE(revived.has_value());
  EXPECT_EQ(revived->state, fleet::TenantState::kActive);
  EXPECT_EQ(revived->reason, "revived from initial model");
  EXPECT_EQ(revived->revive_attempts, 1u);
  EXPECT_EQ(revived->generations, 2u);
  EXPECT_EQ(service.stats().revivals, 1u);

  // The neighbour never noticed.
  EXPECT_EQ(service.ingest("healthy", w.traces[0]),
            fleet::IngestResult::kAccepted);

  // Second quarantine: the revival budget (1) is exhausted → eviction.
  service.handle_wire_event(error_event(DecodeError::kBadCrc, "sick"));
  service.handle_wire_event(error_event(DecodeError::kBadCrc, "sick"));
  {
    auto snap = service.tenant("sick");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, fleet::TenantState::kQuarantined);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    service.ingest("sick", w.traces[i % 8]);
  }
  auto evicted = service.tenant("sick");
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->state, fleet::TenantState::kEvicted);
  EXPECT_EQ(service.stats().evictions, 1u);
  EXPECT_EQ(service.ingest("sick", w.traces[0]),
            fleet::IngestResult::kUnavailable);

  service.finish();
  auto healthy = service.tenant("healthy");
  ASSERT_TRUE(healthy.has_value());
  EXPECT_EQ(healthy->state, fleet::TenantState::kDrained);
}

// Revival reads the tenant's own checkpoint directory; when the newest
// checkpoint is corrupt the CRC footer rejects it and revival falls back
// to the last-good file, reporting the degraded state.
TEST(FleetService, RevivalRecoversLastGoodCheckpoint) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  const std::string root = ::testing::TempDir() + "fleet_revival_ckpt";

  fleet::FleetConfig cfg = base_config();
  cfg.checkpoint_root = root;
  cfg.tenant.supervisor.checkpoint_every = 8;
  cfg.tenant.quarantine_decode_errors = 1;
  cfg.tenant.revive_backoff_frames = 2;
  cfg.tenant.revive_max_attempts = 2;
  fleet::FleetService service(cfg);
  ASSERT_TRUE(service.register_tenant("truck-1", *w.model));

  for (std::size_t i = 0; i < 24; ++i) {
    ASSERT_EQ(service.ingest("truck-1", w.traces[i]),
              fleet::IngestResult::kAccepted);
  }
  {
    auto snap = service.tenant("truck-1");
    ASSERT_TRUE(snap.has_value());
    ASSERT_GE(snap->supervisor.checkpoints_committed, 2u);
  }

  // Quarantine first (retiring the supervisor commits its final
  // checkpoint), then rot the newest file on disk — the gap between a
  // tenant's death and its revival is exactly when checkpoints rot.
  service.handle_wire_event(error_event(DecodeError::kBadCrc, "truck-1"));
  {
    auto snap = service.tenant("truck-1");
    ASSERT_TRUE(snap.has_value());
    ASSERT_EQ(snap->state, fleet::TenantState::kQuarantined);
  }
  runtime::CheckpointStore store(fleet::tenant_checkpoint_dir(root, "truck-1"));
  ASSERT_TRUE(store.has_checkpoint());
  {
    std::fstream f(store.current_path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.seekg(12);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(12);
    f.write(&byte, 1);
  }

  for (std::size_t i = 0; i < 4; ++i) {
    service.ingest("truck-1", w.traces[i]);
  }
  auto snap = service.tenant("truck-1");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, fleet::TenantState::kDegraded);
  EXPECT_EQ(snap->reason, "revived from last-good checkpoint");
  EXPECT_TRUE(snap->recovered_last_good);

  // The revived tenant keeps scoring.
  EXPECT_EQ(service.ingest("truck-1", w.traces[30]),
            fleet::IngestResult::kAccepted);
  service.finish();
}

TEST(FleetService, StatuszJsonCarriesTenantTable) {
  const World& w = world();
  ASSERT_TRUE(w.model.has_value());
  fleet::FleetService service(base_config());
  ASSERT_TRUE(service.register_tenant("truck-1", *w.model));
  for (std::size_t i = 0; i < 4; ++i) {
    service.ingest("truck-1", w.traces[i]);
  }
  service.finish();
  const std::string json = service.statusz_json();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"truck-1\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
}

}  // namespace
