#include <cmath>
#include <random>
#include <stdexcept>

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/covariance.hpp"
#include "linalg/eigen.hpp"
#include "linalg/mahalanobis.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using linalg::Cholesky;
using linalg::CovarianceAccumulator;
using linalg::IncrementalCovariance;
using linalg::Matrix;
using linalg::Vector;

Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = u(gen);
  }
  Matrix spd = a * a.transpose();
  spd.add_ridge(0.5);  // guarantee positive definiteness
  return spd;
}

TEST(VectorOps, AddSubtractScaleDot) {
  const Vector a = {1.0, 2.0, 3.0};
  const Vector b = {4.0, 5.0, 6.0};
  EXPECT_EQ(linalg::add(a, b), (Vector{5.0, 7.0, 9.0}));
  EXPECT_EQ(linalg::subtract(b, a), (Vector{3.0, 3.0, 3.0}));
  EXPECT_EQ(linalg::scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
  EXPECT_DOUBLE_EQ(linalg::dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(linalg::norm({3.0, 4.0}), 5.0);
}

TEST(VectorOps, EuclideanDistanceMatchesEq21) {
  // Paper Eq 2.1: sqrt((x-y)^T (x-y)).
  EXPECT_DOUBLE_EQ(linalg::euclidean_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(linalg::euclidean_distance({1.0}, {1.0}), 0.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(linalg::add({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linalg::dot({1.0}, {}), std::invalid_argument);
  EXPECT_THROW(linalg::euclidean_distance({1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(VectorOps, MeanOfVectors) {
  const Vector m = linalg::mean_of({{1.0, 10.0}, {3.0, 20.0}});
  EXPECT_EQ(m, (Vector{2.0, 15.0}));
  EXPECT_THROW(linalg::mean_of({}), std::invalid_argument);
  EXPECT_THROW(linalg::mean_of({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 2), 0.0);
  const Matrix d = Matrix::diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);
}

TEST(MatrixTest, MultiplicationMatchesHandComputation) {
  Matrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;
  b.at(0, 1) = 8;
  b.at(1, 0) = 9;
  b.at(1, 1) = 10;
  b.at(2, 0) = 11;
  b.at(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  EXPECT_EQ(a * Vector({1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(MatrixTest, TransposeAndSymmetryCheck) {
  Matrix a(2, 2);
  a.at(0, 1) = 5.0;
  EXPECT_FALSE(a.is_symmetric());
  const Matrix sym = a + a.transpose();
  EXPECT_TRUE(sym.is_symmetric());
}

TEST(MatrixTest, OuterProduct) {
  const Matrix o = Matrix::outer({1.0, 2.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(o.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(o.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(o.at(1, 1), 8.0);
}

TEST(MatrixTest, ShapeErrors) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  Matrix a(2, 3);
  Matrix b(3, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(b * Vector({1.0}), std::invalid_argument);
  EXPECT_THROW(a.trace(), std::logic_error);
  EXPECT_THROW(a.add_ridge(1.0), std::logic_error);
}

TEST(CholeskyTest, ReconstructsInput) {
  const Matrix a = random_spd(6, 1);
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Matrix rebuilt = f->lower() * f->lower().transpose();
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-9);
}

TEST(CholeskyTest, SolveSatisfiesSystem) {
  const Matrix a = random_spd(5, 2);
  const Vector b = {1.0, -2.0, 0.5, 3.0, -1.0};
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Vector x = f->solve(b);
  const Vector ax = a * x;
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  const Matrix a = random_spd(4, 3);
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Matrix prod = a * f->inverse();
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(4)), 1e-9);
}

TEST(CholeskyTest, LogDeterminantMatchesKnownMatrix) {
  // diag(2, 3): det = 6.
  const auto f = Cholesky::factorize(Matrix::diagonal({2.0, 3.0}));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->log_determinant(), std::log(6.0), 1e-12);
}

TEST(CholeskyTest, QuadraticFormMatchesExplicitInverse) {
  const Matrix a = random_spd(5, 4);
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Vector x = {0.3, -1.2, 2.0, 0.0, 0.7};
  const Vector ix = f->inverse() * x;
  EXPECT_NEAR(f->quadratic_form(x), linalg::dot(x, ix), 1e-9);
}

TEST(CholeskyTest, SingularMatrixReturnsNullopt) {
  // Rank-1 matrix: singular.
  const Matrix s = Matrix::outer({1.0, 2.0}, {1.0, 2.0});
  EXPECT_FALSE(Cholesky::factorize(s).has_value());
}

TEST(CholeskyTest, IndefiniteMatrixReturnsNullopt) {
  Matrix m = Matrix::identity(2);
  m.at(1, 1) = -1.0;
  EXPECT_FALSE(Cholesky::factorize(m).has_value());
}

TEST(CholeskyTest, NonSquareThrows) {
  EXPECT_THROW(Cholesky::factorize(Matrix(2, 3)), std::invalid_argument);
}

TEST(CholeskyTest, RidgeFallbackRecoversSingular) {
  const Matrix s = Matrix::outer({1.0, 2.0}, {1.0, 2.0});
  const auto r = linalg::factorize_with_ridge(s, 1e-6);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->ridge, 0.0);
}

TEST(CholeskyTest, RidgeFallbackUsesZeroWhenPossible) {
  const auto r = linalg::factorize_with_ridge(Matrix::identity(3), 1e-6);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->ridge, 0.0);
}

TEST(Eigen, DiagonalMatrixEigenvaluesSortedDescending) {
  const auto e = linalg::jacobi_eigen(Matrix::diagonal({1.0, 5.0, 3.0}));
  EXPECT_NEAR(e.values[0], 5.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(Eigen, ReconstructsSymmetricMatrix) {
  const Matrix a = random_spd(6, 9);
  const auto e = linalg::jacobi_eigen(a);
  // A = V diag(lambda) V^T.
  const Matrix rebuilt =
      e.vectors * Matrix::diagonal(e.values) * e.vectors.transpose();
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-8);
}

TEST(Eigen, EigenvectorsAreOrthonormal) {
  const Matrix a = random_spd(5, 10);
  const auto e = linalg::jacobi_eigen(a);
  const Matrix vtv = e.vectors.transpose() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(5)), 1e-9);
}

TEST(Eigen, RejectsAsymmetricInput) {
  Matrix a(2, 2);
  a.at(0, 1) = 1.0;
  EXPECT_THROW(linalg::jacobi_eigen(a), std::invalid_argument);
  EXPECT_THROW(linalg::jacobi_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(Covariance, MatchesDirectTwoPassEstimate) {
  std::mt19937 gen(21);
  std::normal_distribution<double> n(0.0, 1.0);
  const std::size_t dim = 3;
  std::vector<Vector> xs;
  for (int i = 0; i < 500; ++i) {
    Vector x(dim);
    x[0] = n(gen);
    x[1] = 0.5 * x[0] + n(gen);
    x[2] = n(gen) - x[1];
    xs.push_back(x);
  }
  CovarianceAccumulator acc(dim);
  for (const auto& x : xs) acc.add(x);

  // Two-pass reference.
  Vector mean(dim, 0.0);
  for (const auto& x : xs) {
    for (std::size_t i = 0; i < dim; ++i) mean[i] += x[i];
  }
  for (double& m : mean) m /= static_cast<double>(xs.size());
  Matrix ref(dim, dim);
  for (const auto& x : xs) {
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        ref.at(i, j) += (x[i] - mean[i]) * (x[j] - mean[j]);
      }
    }
  }
  ref = ref * (1.0 / static_cast<double>(xs.size()));

  EXPECT_LT(acc.covariance().max_abs_diff(ref), 1e-10);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(acc.mean()[i], mean[i], 1e-12);
  }
}

TEST(Covariance, NeedsTwoObservations) {
  CovarianceAccumulator acc(2);
  acc.add({1.0, 2.0});
  EXPECT_THROW(acc.covariance(), std::logic_error);
}

TEST(Covariance, RejectsBadDimensions) {
  EXPECT_THROW(CovarianceAccumulator(0), std::invalid_argument);
  CovarianceAccumulator acc(2);
  EXPECT_THROW(acc.add({1.0}), std::invalid_argument);
}

TEST(ShermanMorrison, MatchesDirectInverse) {
  const Matrix a = random_spd(4, 30);
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Vector u = {0.1, -0.2, 0.3, 0.4};
  const Vector v = {0.5, 0.1, -0.3, 0.2};
  const auto updated = linalg::sherman_morrison(f->inverse(), u, v);
  ASSERT_TRUE(updated.has_value());
  const Matrix a_plus = a + Matrix::outer(u, v);
  const Matrix prod = a_plus * (*updated);
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(4)), 1e-8);
}

TEST(ShermanMorrison, SingularUpdateReturnsNullopt) {
  // A = I, u = -v => denominator 1 + v^T u = 1 - |v|^2 = 0 when |v| = 1.
  const Vector v = {1.0, 0.0};
  const Vector u = {-1.0, 0.0};
  EXPECT_FALSE(
      linalg::sherman_morrison(Matrix::identity(2), u, v).has_value());
}

// Property test: the paper's Eq 5.1 incremental update must agree with a
// batch recomputation after every step.
TEST(IncrementalCovariance, AgreesWithBatchAfterEachUpdate) {
  std::mt19937 gen(33);
  std::normal_distribution<double> n(0.0, 1.0);
  const std::size_t dim = 4;

  std::vector<Vector> xs;
  for (int i = 0; i < 40; ++i) {
    Vector x(dim);
    for (double& v : x) v = n(gen);
    xs.push_back(x);
  }

  // Seed from the first 20 observations.
  CovarianceAccumulator seed(dim);
  for (int i = 0; i < 20; ++i) seed.add(xs[i]);
  const Matrix cov = seed.covariance();
  const auto f = Cholesky::factorize(cov);
  ASSERT_TRUE(f.has_value());
  IncrementalCovariance inc(seed.mean(), cov, f->inverse(), seed.count());

  CovarianceAccumulator batch(dim);
  for (int i = 0; i < 20; ++i) batch.add(xs[i]);

  for (int i = 20; i < 40; ++i) {
    inc.update(xs[i]);
    batch.add(xs[i]);
    EXPECT_LT(inc.covariance().max_abs_diff(batch.covariance()), 1e-9)
        << "diverged at step " << i;
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_NEAR(inc.mean()[d], batch.mean()[d], 1e-10);
    }
  }
  // The maintained inverse must still invert the maintained covariance.
  const Matrix prod = inc.covariance() * inc.inverse();
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(dim)), 1e-6);
}

TEST(IncrementalCovariance, ValidatesConstruction) {
  EXPECT_THROW(IncrementalCovariance({1.0}, Matrix(1, 1, 1.0),
                                     Matrix(2, 2), 5),
               std::invalid_argument);
  EXPECT_THROW(IncrementalCovariance({1.0}, Matrix(1, 1, 1.0),
                                     Matrix(1, 1, 1.0), 1),
               std::invalid_argument);
}

TEST(Mahalanobis, IdentityCovarianceReducesToEuclidean) {
  // Paper: Eq 2.2 reduces to Eq 2.1 when Sigma is the identity.
  const Vector x = {1.0, 2.0, 2.0};
  const Vector mu = {0.0, 0.0, 0.0};
  const auto f = Cholesky::factorize(Matrix::identity(3));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(linalg::mahalanobis_distance(x, mu, *f),
              linalg::euclidean_distance(x, mu), 1e-12);
  EXPECT_NEAR(linalg::mahalanobis_distance_inv(x, mu, Matrix::identity(3)),
              3.0, 1e-12);
}

TEST(Mahalanobis, ScalesByVariance) {
  // Variance 4 along dim 0 halves that dimension's contribution.
  const auto f = Cholesky::factorize(Matrix::diagonal({4.0, 1.0}));
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(linalg::mahalanobis_distance({2.0, 0.0}, {0.0, 0.0}, *f), 1.0,
              1e-12);
  EXPECT_NEAR(linalg::mahalanobis_distance({0.0, 2.0}, {0.0, 0.0}, *f), 2.0,
              1e-12);
}

TEST(Mahalanobis, FactorAndInverseAgree) {
  const Matrix a = random_spd(5, 77);
  const auto f = Cholesky::factorize(a);
  ASSERT_TRUE(f.has_value());
  const Matrix inv = f->inverse();
  const Vector x = {1.0, 0.0, -2.0, 0.5, 0.25};
  const Vector mu = {0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_NEAR(linalg::mahalanobis_distance(x, mu, *f),
              linalg::mahalanobis_distance_inv(x, mu, inv), 1e-9);
}

TEST(Mahalanobis, SizeMismatchThrows) {
  const auto f = Cholesky::factorize(Matrix::identity(2));
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(linalg::mahalanobis_distance({1.0}, {1.0, 2.0}, *f),
               std::invalid_argument);
}

}  // namespace
