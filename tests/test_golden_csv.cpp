// Golden-file regression for the committed figure CSVs.
//
// The three fig*.csv files at the repo root are the paper-figure data the
// benches exported when they were last run.  These tests regenerate each
// series in-process — same seeds, same math as the bench — and diff the
// result against the committed copy with a numeric tolerance.  A drift in
// the simulator, the extractor, or the statistics layer that silently
// changes the paper figures now fails CI instead of being discovered the
// next time someone replots.
//
// Tolerances: fig2_5 / fig4_4 are written by CsvWriter at full double
// precision, so the parse-back tolerance is pure round-trip slack.
// fig3_1 goes through std::to_string (6 fractional digits), which caps
// the committed file's own precision at 5e-7.
#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analog/environment.hpp"
#include "canbus/frame.hpp"
#include "core/extractor.hpp"
#include "dsp/resample.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"
#include "stats/welford.hpp"

namespace {

struct Csv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

Csv read_csv(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  Csv csv;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (first) {
      csv.header = std::move(fields);
      first = false;
    } else {
      csv.rows.push_back(std::move(fields));
    }
  }
  return csv;
}

std::string golden_path(const std::string& name) {
  return std::string(VPROFILE_SOURCE_DIR) + "/" + name;
}

void expect_near_golden(double regenerated, const std::string& committed,
                        double abs_tol, const std::string& where) {
  const double golden = std::stod(committed);
  const double tol = abs_tol + 1e-9 * std::abs(golden);
  EXPECT_NEAR(regenerated, golden, tol) << where;
}

// Full-precision CsvWriter round-trip slack only.
constexpr double kFullPrecisionTol = 1e-6;
// std::to_string keeps 6 fractional digits.
constexpr double kToStringTol = 5e-7 + 1e-6;

TEST(GoldenCsv, Fig2_5ProfilesMatchCommitted) {
  // Mirror of bench_fig2_5_4_2_profiles.cpp (seed 2500, 200 traces/ECU).
  sim::Vehicle vehicle(sim::vehicle_a(), 2500);
  const auto extraction = sim::default_extraction(vehicle.config());
  const std::size_t num_ecus = vehicle.config().ecus.size();
  const std::size_t dim = extraction.dimension();

  std::vector<stats::VectorWelford> profiles(num_ecus,
                                             stats::VectorWelford(dim));
  std::size_t captured = 0;
  while (true) {
    bool done = true;
    for (const auto& p : profiles) done &= (p.count() >= 200);
    if (done) break;
    for (const auto& cap :
         vehicle.capture(500, analog::Environment::reference())) {
      const auto es = vprofile::extract_edge_set(cap.codes, extraction);
      if (!es) continue;
      profiles[cap.true_ecu].add(es->samples);
      ++captured;
    }
    ASSERT_LE(captured, 20000u) << "simulator starved an ECU of captures";
  }

  const Csv golden = read_csv(golden_path("fig2_5_profiles.csv"));
  ASSERT_EQ(golden.header.size(), 1 + 2 * num_ecus);
  ASSERT_EQ(golden.rows.size(), dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const auto& row = golden.rows[i];
    ASSERT_EQ(row.size(), 1 + 2 * num_ecus);
    const std::string where = "row " + std::to_string(i);
    expect_near_golden(static_cast<double>(i), row[0], kFullPrecisionTol,
                       where);
    for (std::size_t e = 0; e < num_ecus; ++e) {
      expect_near_golden(profiles[e].mean()[i], row[1 + 2 * e],
                         kFullPrecisionTol,
                         where + " ecu " + std::to_string(e) + " mean");
      expect_near_golden(profiles[e].stddev()[i], row[2 + 2 * e],
                         kFullPrecisionTol,
                         where + " ecu " + std::to_string(e) + " stddev");
    }
  }
}

TEST(GoldenCsv, Fig4_4StddevMatchesCommitted) {
  // Mirror of bench_fig4_4_stddev.cpp (seed 4400, 4000 captures, ECU 0).
  sim::Vehicle vehicle(sim::vehicle_a(), 4400);
  const auto extraction = sim::default_extraction(vehicle.config());
  const std::size_t dim = extraction.dimension();

  stats::VectorWelford acc(dim);
  for (const auto& cap :
       vehicle.capture(4000, analog::Environment::reference())) {
    if (cap.true_ecu != 0) continue;
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      acc.add(es->samples);
    }
  }

  const Csv golden = read_csv(golden_path("fig4_4_stddev.csv"));
  ASSERT_EQ(golden.header,
            (std::vector<std::string>{"index", "mean", "stddev"}));
  ASSERT_EQ(golden.rows.size(), dim);
  const auto mean = acc.mean();
  const auto sd = acc.stddev();
  for (std::size_t i = 0; i < dim; ++i) {
    const auto& row = golden.rows[i];
    ASSERT_EQ(row.size(), 3u);
    const std::string where = "row " + std::to_string(i);
    expect_near_golden(mean[i], row[1], kFullPrecisionTol, where + " mean");
    expect_near_golden(sd[i], row[2], kFullPrecisionTol, where + " stddev");
  }
}

// The paper's lateral rescaling, as in bench_fig3_1_sampling_effects.cpp.
std::vector<double> stretch(const std::vector<double>& xs, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) *
                       static_cast<double>(xs.size() - 1) /
                       static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] + (xs[hi] - xs[lo]) * frac;
  }
  return out;
}

TEST(GoldenCsv, Fig3_1EdgeSetsMatchCommitted) {
  // Mirror of bench_fig3_1_sampling_effects.cpp (seed 3100).
  sim::Vehicle vehicle(sim::vehicle_a(), 3100);
  canbus::DataFrame frame;
  frame.id = vehicle.config().ecus[0].messages[0].id;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto cap = vehicle.synthesize_message(
      frame, 0, analog::Environment::reference());

  const auto base_cfg = sim::default_extraction(vehicle.config());
  const auto reference = vprofile::extract_edge_set(cap.codes, base_cfg);
  ASSERT_TRUE(reference.has_value());
  const std::size_t n = reference->samples.size();

  // Regenerate every (variant, sample) -> code series the bench dumps, in
  // the bench's dump order.
  std::vector<std::pair<std::string, std::vector<double>>> series;
  series.emplace_back("20MSps_16bit", reference->samples);
  for (const auto& [factor, name] :
       std::vector<std::pair<std::size_t, const char*>>{
           {2, "10 MS/s"}, {4, "5 MS/s"}, {8, "2.5 MS/s"},
           {16, "1.25 MS/s"}}) {
    const auto down = dsp::downsample(cap.codes, factor);
    const auto cfg = vprofile::make_extraction_config(
        units::SampleRateHz{20e6 / static_cast<double>(factor)},
        units::BitRateBps{250e3}, base_cfg.bit_threshold);
    const auto es = vprofile::extract_edge_set(down, cfg);
    if (!es) continue;
    series.emplace_back(name, stretch(es->samples, n));
  }
  for (int bits : {14, 12, 10, 8, 6, 4}) {
    const auto reduced = dsp::requantize_codes(cap.codes, 16, bits);
    const auto es = vprofile::extract_edge_set(reduced, base_cfg);
    if (!es) continue;
    series.emplace_back(std::to_string(bits) + "bit", es->samples);
  }

  const Csv golden = read_csv(golden_path("fig3_1_edge_sets.csv"));
  ASSERT_EQ(golden.header,
            (std::vector<std::string>{"variant", "sample", "code"}));
  std::size_t row_idx = 0;
  for (const auto& [name, values] : series) {
    for (std::size_t i = 0; i < values.size(); ++i, ++row_idx) {
      ASSERT_LT(row_idx, golden.rows.size())
          << "committed file is shorter than the regenerated series";
      const auto& row = golden.rows[row_idx];
      ASSERT_EQ(row.size(), 3u);
      const std::string where =
          name + " sample " + std::to_string(i) + " (row " +
          std::to_string(row_idx) + ")";
      EXPECT_EQ(row[0], name) << where;
      EXPECT_EQ(row[1], std::to_string(i)) << where;
      expect_near_golden(values[i], row[2], kToStringTol, where);
    }
  }
  EXPECT_EQ(row_idx, golden.rows.size())
      << "committed file has extra rows the bench no longer produces";
}

}  // namespace
