#include <cmath>

#include <gtest/gtest.h>

#include "analog/synth.hpp"
#include "canbus/frame.hpp"
#include "core/extractor.hpp"
#include "dsp/adc.hpp"
#include "stats/rng.hpp"

namespace {

using analog::EcuSignature;
using analog::Environment;
using canbus::DataFrame;
using canbus::J1939Id;
using vprofile::EdgeSet;
using vprofile::ExtractError;
using vprofile::ExtractionConfig;

EcuSignature test_signature() {
  EcuSignature s;
  s.dominant = units::Volts{2.0};
  s.recessive = units::Volts{0.0};
  s.drive = {2.0e6, 0.7};
  s.release = {1.0e6, 0.85};
  s.noise_sigma = units::Volts{0.003};
  return s;
}

struct Pipeline {
  dsp::AdcModel adc{units::SampleRateHz{20e6}, 16};
  analog::SynthOptions synth;
  ExtractionConfig extraction;

  Pipeline() {
    synth.bitrate = units::BitRateBps{250e3};
    synth.sample_rate = units::SampleRateHz{20e6};
    synth.max_bits = 70;
    extraction = vprofile::make_extraction_config(units::SampleRateHz{20e6},
                                                  units::BitRateBps{250e3},
                                                  adc.quantize(1.25));
  }

  dsp::Trace capture(const DataFrame& frame, const EcuSignature& sig,
                     stats::Rng& rng) const {
    const auto wire = canbus::build_wire_bits(frame);
    const auto volts = analog::synthesize_frame_voltage(
        wire, sig, Environment::reference(), synth, rng);
    return adc.quantize_trace(volts);
  }
};

TEST(ExtractionConfigTest, ScalesPaperConstantsWithRate) {
  // Reference: 10 MS/s / 250 kb/s => bit width 40, prefix 2, suffix 14.
  const auto ref = vprofile::make_extraction_config(
      units::SampleRateHz{10e6}, units::BitRateBps{250e3}, 38000);
  EXPECT_EQ(ref.bit_width_samples, 40u);
  EXPECT_EQ(ref.prefix_len, 2u);
  EXPECT_EQ(ref.suffix_len, 14u);
  EXPECT_EQ(ref.dimension(), 2u * (2 + 14 + 1));

  const auto doubled = vprofile::make_extraction_config(
      units::SampleRateHz{20e6}, units::BitRateBps{250e3}, 38000);
  EXPECT_EQ(doubled.bit_width_samples, 80u);
  EXPECT_EQ(doubled.prefix_len, 4u);
  EXPECT_EQ(doubled.suffix_len, 28u);

  const auto slow = vprofile::make_extraction_config(
      units::SampleRateHz{2.5e6}, units::BitRateBps{250e3}, 38000);
  EXPECT_EQ(slow.bit_width_samples, 10u);
  EXPECT_GE(slow.prefix_len, 1u);
  EXPECT_GE(slow.suffix_len, 2u);
}

TEST(ExtractionConfigTest, RejectsNonPositiveRates) {
  EXPECT_THROW(vprofile::make_extraction_config(units::SampleRateHz{0},
                                                units::BitRateBps{250e3}, 1),
               std::invalid_argument);
  EXPECT_THROW(vprofile::make_extraction_config(units::SampleRateHz{1e6},
                                                units::BitRateBps{0}, 1),
               std::invalid_argument);
}

TEST(Extractor, DecodesSourceAddressFromTrace) {
  Pipeline p;
  stats::Rng rng(1);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x42};
  frame.payload = {1, 2, 3, 4};
  const auto trace = p.capture(frame, test_signature(), rng);
  const auto es = vprofile::extract_edge_set(trace, p.extraction);
  ASSERT_TRUE(es.has_value());
  EXPECT_EQ(es->sa, 0x42);
}

// Property test over random frames: the SA decoded from the analog trace
// must equal the SA packed into the frame, for every payload/ID/stuffing
// pattern the frame generator produces.
TEST(Extractor, SaDecodingSurvivesRandomFrames) {
  Pipeline p;
  stats::Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    DataFrame frame;
    frame.id = J1939Id{static_cast<std::uint8_t>(rng.below(8)),
                       static_cast<std::uint32_t>(rng.below(0x40000)),
                       static_cast<std::uint8_t>(rng.below(256))};
    frame.payload.resize(rng.below(9));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto trace = p.capture(frame, test_signature(), rng);
    const auto es = vprofile::extract_edge_set(trace, p.extraction);
    ASSERT_TRUE(es.has_value()) << "trial " << trial;
    EXPECT_EQ(es->sa, frame.id.source_address) << "trial " << trial;
  }
}

// SAs whose bit patterns force stuff bits inside the arbitration field are
// the regression case for stuff-skipping (e.g. long runs of equal bits in
// the 29-bit ID).
TEST(Extractor, HandlesStuffBitsInsideArbitrationField) {
  Pipeline p;
  stats::Rng rng(3);
  for (int sa_value : {0x00, 0xFF, 0xF0, 0x0F, 0xAA, 0x55, 0x1F, 0xF8}) {
    const auto sa = static_cast<std::uint8_t>(sa_value);
    for (std::uint32_t pgn : {0u, 0x3FFFFu, 0x1F000u, 0x000FFu}) {
      DataFrame frame;
      frame.id = J1939Id{0, pgn, sa};
      frame.payload = {0xAA, 0x55};
      const auto trace = p.capture(frame, test_signature(), rng);
      const auto es = vprofile::extract_edge_set(trace, p.extraction);
      ASSERT_TRUE(es.has_value()) << "sa=" << int(sa) << " pgn=" << pgn;
      EXPECT_EQ(es->sa, sa) << "pgn=" << pgn;
    }
  }
}

TEST(Extractor, EdgeSetHasConfiguredDimension) {
  Pipeline p;
  stats::Rng rng(4);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {9, 8, 7};
  const auto trace = p.capture(frame, test_signature(), rng);
  const auto es = vprofile::extract_edge_set(trace, p.extraction);
  ASSERT_TRUE(es.has_value());
  EXPECT_EQ(es->samples.size(), p.extraction.dimension());
}

TEST(Extractor, EdgeSetSpansThresholdCrossings) {
  Pipeline p;
  stats::Rng rng(5);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {1, 2};
  const auto trace = p.capture(frame, test_signature(), rng);
  const auto es = vprofile::extract_edge_set(trace, p.extraction);
  ASSERT_TRUE(es.has_value());
  const std::size_t half = es->samples.size() / 2;
  // Rising window: starts below threshold, ends above.
  EXPECT_LT(es->samples.front(), p.extraction.bit_threshold);
  EXPECT_GE(es->samples[half - 1], p.extraction.bit_threshold * 0.9);
  // Falling window: starts above, ends below.
  EXPECT_GE(es->samples[half], p.extraction.bit_threshold * 0.9);
  EXPECT_LT(es->samples.back(), p.extraction.bit_threshold);
}

TEST(Extractor, FlatTraceReportsNoSof) {
  ExtractError err = ExtractError::kNone;
  const auto es = vprofile::extract_edge_set(dsp::Trace(1000, 0.0),
                                             ExtractionConfig{}, &err);
  EXPECT_FALSE(es.has_value());
  EXPECT_EQ(err, ExtractError::kNoSof);
  EXPECT_STREQ(vprofile::to_string(err), "no SOF found");
}

TEST(Extractor, TruncatedTraceReportsTruncation) {
  Pipeline p;
  stats::Rng rng(6);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {1};
  auto trace = p.capture(frame, test_signature(), rng);
  trace.resize(trace.size() / 4);  // cut inside the arbitration field
  ExtractError err = ExtractError::kNone;
  const auto es = vprofile::extract_edge_set(trace, p.extraction, &err);
  EXPECT_FALSE(es.has_value());
  EXPECT_EQ(err, ExtractError::kTruncated);
}

TEST(Extractor, RejectsTinyBitWidth) {
  ExtractionConfig cfg;
  cfg.bit_width_samples = 1;
  EXPECT_THROW(vprofile::extract_edge_set(dsp::Trace(100, 0.0), cfg),
               std::invalid_argument);
}

TEST(Extractor, MultipleEdgeSetsAreAveraged) {
  // Section 5.2: extracting 3 edge sets and averaging reduces noise.
  Pipeline p;
  stats::Rng rng(7);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {0x12, 0x34, 0x56, 0x78, 0x9A};
  p.synth.max_bits = 110;  // deeper synthesis for later edge sets

  ExtractionConfig one = p.extraction;
  one.num_edge_sets = 1;
  ExtractionConfig three = p.extraction;
  three.num_edge_sets = 3;
  three.edge_set_spacing = 250;

  const auto trace = p.capture(frame, test_signature(), rng);
  const auto es1 = vprofile::extract_edge_set(trace, one);
  const auto es3 = vprofile::extract_edge_set(trace, three);
  ASSERT_TRUE(es1.has_value());
  ASSERT_TRUE(es3.has_value());
  EXPECT_EQ(es1->samples.size(), es3->samples.size());
  EXPECT_EQ(es1->sa, es3->sa);
  // Averaging changes the vector (different edges contribute).
  double diff = 0.0;
  for (std::size_t i = 0; i < es1->samples.size(); ++i) {
    diff += std::fabs(es1->samples[i] - es3->samples[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Extractor, MultiEdgeSetFailsGracefullyOnShortTrace) {
  Pipeline p;
  stats::Rng rng(8);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {1};
  ExtractionConfig cfg = p.extraction;
  cfg.num_edge_sets = 4;
  cfg.edge_set_spacing = 4000;  // way past the synthesized trace
  const auto trace = p.capture(frame, test_signature(), rng);
  ExtractError err = ExtractError::kNone;
  const auto es = vprofile::extract_edge_set(trace, cfg, &err);
  EXPECT_FALSE(es.has_value());
  EXPECT_EQ(err, ExtractError::kTruncated);
}

TEST(Extractor, WorksAcrossSamplingRates) {
  // The same message must extract at every rate the paper sweeps.
  for (double rate : {20e6, 10e6, 5e6, 2.5e6}) {
    dsp::AdcModel adc(units::SampleRateHz{rate}, 16);
    analog::SynthOptions synth;
    synth.bitrate = units::BitRateBps{250e3};
    synth.sample_rate = units::SampleRateHz{rate};
    synth.max_bits = 70;
    const auto cfg =
        vprofile::make_extraction_config(units::SampleRateHz{rate},
                                         units::BitRateBps{250e3},
                                         adc.quantize(1.25));

    stats::Rng rng(9);
    DataFrame frame;
    frame.id = J1939Id{3, 0xF004, 0x33};
    frame.payload = {1, 2, 3};
    const auto wire = canbus::build_wire_bits(frame);
    const auto volts = analog::synthesize_frame_voltage(
        wire, test_signature(), Environment::reference(), synth, rng);
    const auto es = vprofile::extract_edge_set(adc.quantize_trace(volts), cfg);
    ASSERT_TRUE(es.has_value()) << "rate " << rate;
    EXPECT_EQ(es->sa, 0x33) << "rate " << rate;
  }
}

TEST(Extractor, ConsistentDimensionAcrossMessages) {
  Pipeline p;
  stats::Rng rng(10);
  std::size_t dim = 0;
  for (int i = 0; i < 50; ++i) {
    DataFrame frame;
    frame.id = J1939Id{3, static_cast<std::uint32_t>(rng.below(0x40000)),
                       static_cast<std::uint8_t>(rng.below(256))};
    frame.payload.resize(1 + rng.below(8));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto trace = p.capture(frame, test_signature(), rng);
    const auto es = vprofile::extract_edge_set(trace, p.extraction);
    ASSERT_TRUE(es.has_value());
    if (dim == 0) dim = es->samples.size();
    EXPECT_EQ(es->samples.size(), dim);
  }
}

TEST(EstimateThreshold, MidpointOfFirstHalf) {
  dsp::Trace t;
  for (int i = 0; i < 50; ++i) t.push_back(100.0);
  for (int i = 0; i < 50; ++i) t.push_back(300.0);
  // Second half should be ignored (ACK-level deviations live there).
  for (int i = 0; i < 100; ++i) t.push_back(900.0);
  EXPECT_DOUBLE_EQ(vprofile::estimate_bit_threshold(t), 200.0);
}

TEST(EstimateThreshold, EmptyTraceThrows) {
  EXPECT_THROW(vprofile::estimate_bit_threshold({}), std::invalid_argument);
}

TEST(EstimateThreshold, PerClusterThresholdTracksLevels) {
  // A hotter dominant level shifts the estimated threshold up (Section
  // 5.1's motivation).
  Pipeline p;
  stats::Rng rng(11);
  DataFrame frame;
  frame.id = J1939Id{3, 0xF004, 0x10};
  frame.payload = {1, 2, 3, 4};
  EcuSignature low = test_signature();
  low.dominant = units::Volts{1.8};
  EcuSignature high = test_signature();
  high.dominant = units::Volts{2.3};
  const auto t_low = p.capture(frame, low, rng);
  const auto t_high = p.capture(frame, high, rng);
  EXPECT_LT(vprofile::estimate_bit_threshold(t_low),
            vprofile::estimate_bit_threshold(t_high));
}

}  // namespace
