// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across the whole configuration space the
// paper explores — sampling rates, resolutions, metrics and vehicles.
#include <gtest/gtest.h>

#include "analog/synth.hpp"
#include "canbus/frame.hpp"
#include "canbus/stuffing.hpp"
#include "core/extractor.hpp"
#include "dsp/adc.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/covariance.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "stats/rng.hpp"

namespace {

// ---------------------------------------------------------------------
// Extraction invariants across digitizer operating points.
// ---------------------------------------------------------------------

struct FrontEndPoint {
  double sample_rate_hz;
  int resolution_bits;
};

class ExtractionSweep : public ::testing::TestWithParam<FrontEndPoint> {};

TEST_P(ExtractionSweep, SaDecodingAndDimensionInvariant) {
  const auto [rate, bits] = GetParam();
  const dsp::AdcModel adc(units::SampleRateHz{rate}, bits);
  analog::SynthOptions synth;
  synth.bitrate = units::BitRateBps{250e3};
  synth.sample_rate = units::SampleRateHz{rate};
  synth.max_bits = 70;
  const auto cfg =
      vprofile::make_extraction_config(units::SampleRateHz{rate},
                                       units::BitRateBps{250e3},
                                       adc.quantize(1.25));

  analog::EcuSignature sig;
  sig.dominant = units::Volts{2.0};
  sig.drive = {2.0e6, 0.7};
  sig.release = {1.0e6, 0.85};
  sig.noise_sigma = units::Volts{0.003};

  stats::Rng rng(static_cast<std::uint64_t>(rate) + bits);
  for (int trial = 0; trial < 40; ++trial) {
    canbus::DataFrame frame;
    frame.id = canbus::J1939Id{
        static_cast<std::uint8_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(0x40000)),
        static_cast<std::uint8_t>(rng.below(256))};
    frame.payload.resize(1 + rng.below(8));
    for (auto& b : frame.payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto wire = canbus::build_wire_bits(frame);
    const auto volts = analog::synthesize_frame_voltage(
        wire, sig, analog::Environment::reference(), synth, rng);
    const auto es =
        vprofile::extract_edge_set(adc.quantize_trace(volts), cfg);
    ASSERT_TRUE(es.has_value())
        << "rate " << rate << " bits " << bits << " trial " << trial;
    // Property 1: the decoded SA always matches the transmitted SA.
    EXPECT_EQ(es->sa, frame.id.source_address);
    // Property 2: the dimension is the configured one.
    EXPECT_EQ(es->samples.size(), cfg.dimension());
    // Property 3: every sample is a representable ADC code.
    for (double v : es->samples) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, static_cast<double>(adc.max_code()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndResolutions, ExtractionSweep,
    ::testing::Values(FrontEndPoint{20e6, 16}, FrontEndPoint{20e6, 12},
                      FrontEndPoint{10e6, 16}, FrontEndPoint{10e6, 12},
                      FrontEndPoint{10e6, 10}, FrontEndPoint{5e6, 12},
                      FrontEndPoint{2.5e6, 12}, FrontEndPoint{2.5e6, 10}),
    [](const ::testing::TestParamInfo<FrontEndPoint>& info) {
      return std::to_string(
                 static_cast<int>(info.param.sample_rate_hz / 1e5)) +
             "x100kSps_" + std::to_string(info.param.resolution_bits) + "bit";
    });

// ---------------------------------------------------------------------
// Bit-stuffing round trip across run-length structures.
// ---------------------------------------------------------------------

class StuffingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StuffingSweep, RoundTripsAllRunLengths) {
  const std::size_t run_len = GetParam();
  // Alternating runs of the parameterized length exercise every stuffing
  // boundary (runs of 5 trigger, shorter runs do not, longer runs split).
  for (bool start : {false, true}) {
    canbus::BitVector in;
    bool v = start;
    for (int block = 0; block < 12; ++block) {
      for (std::size_t i = 0; i < run_len; ++i) in.push_back(v);
      v = !v;
    }
    const auto stuffed = canbus::stuff(in);
    const auto out = canbus::destuff(stuffed);
    ASSERT_TRUE(out.has_value()) << "run length " << run_len;
    EXPECT_EQ(*out, in);
    // Property: stuffed output never contains six equal consecutive bits.
    std::size_t run = 1;
    for (std::size_t i = 1; i < stuffed.size(); ++i) {
      run = (stuffed[i] == stuffed[i - 1]) ? run + 1 : 1;
      EXPECT_LT(run, 6u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RunLengths, StuffingSweep,
                         ::testing::Range<std::size_t>(1, 12));

// ---------------------------------------------------------------------
// Incremental covariance equals batch covariance for any dimension.
// ---------------------------------------------------------------------

class CovarianceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CovarianceSweep, IncrementalMatchesBatch) {
  const std::size_t dim = GetParam();
  stats::Rng rng(dim);
  auto draw = [&] {
    linalg::Vector x(dim);
    for (auto& v : x) v = rng.gaussian(0.0, 2.0);
    // Introduce correlation so covariances are not near-diagonal.
    for (std::size_t i = 1; i < dim; ++i) x[i] += 0.5 * x[i - 1];
    return x;
  };

  linalg::CovarianceAccumulator seed(dim);
  const std::size_t seed_n = std::max<std::size_t>(2 * dim, 16);
  std::vector<linalg::Vector> history;
  for (std::size_t i = 0; i < seed_n; ++i) {
    history.push_back(draw());
    seed.add(history.back());
  }
  const auto chol = linalg::Cholesky::factorize(seed.covariance());
  ASSERT_TRUE(chol.has_value());
  linalg::IncrementalCovariance inc(seed.mean(), seed.covariance(),
                                    chol->inverse(), seed.count());

  linalg::CovarianceAccumulator batch(dim);
  for (const auto& x : history) batch.add(x);
  for (int i = 0; i < 30; ++i) {
    const auto x = draw();
    inc.update(x);
    batch.add(x);
  }
  EXPECT_LT(inc.covariance().max_abs_diff(batch.covariance()), 1e-8);
  const auto prod = inc.covariance() * inc.inverse();
  EXPECT_LT(prod.max_abs_diff(linalg::Matrix::identity(dim)), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, CovarianceSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13,
                                                        21, 34));

// ---------------------------------------------------------------------
// Detection quality invariants per (vehicle, metric).
// ---------------------------------------------------------------------

struct DetectionPoint {
  char vehicle;
  vprofile::DistanceMetric metric;
};

class DetectionSweep : public ::testing::TestWithParam<DetectionPoint> {};

TEST_P(DetectionSweep, HijackRecallAlwaysHigh) {
  // Property: whatever the metric, the *hijack* test (cluster mismatch
  // between distinct ECUs) keeps recall high; the metrics differ in
  // precision and in the foreign test, not in gross misdetection.
  const auto [vehicle, metric] = GetParam();
  sim::Experiment exp(vehicle == 'a' ? sim::vehicle_a() : sim::vehicle_b(),
                      0xD00 + vehicle);
  sim::ExperimentParams p;
  p.metric = metric;
  p.train_count = 1200;
  p.test_count = 1800;
  const auto result = exp.hijack_test(p);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.confusion.recall(), 0.95)
      << "vehicle " << vehicle << " metric " << to_string(metric);
}

INSTANTIATE_TEST_SUITE_P(
    VehiclesAndMetrics, DetectionSweep,
    ::testing::Values(
        DetectionPoint{'a', vprofile::DistanceMetric::kMahalanobis},
        DetectionPoint{'a', vprofile::DistanceMetric::kEuclidean},
        DetectionPoint{'b', vprofile::DistanceMetric::kMahalanobis},
        DetectionPoint{'b', vprofile::DistanceMetric::kEuclidean}),
    [](const ::testing::TestParamInfo<DetectionPoint>& info) {
      return std::string(1, info.param.vehicle) + "_" +
             to_string(info.param.metric);
    });

// ---------------------------------------------------------------------
// Frame round trip across payload lengths.
// ---------------------------------------------------------------------

class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, FrameRoundTripsEveryLength) {
  const std::size_t len = GetParam();
  stats::Rng rng(len);
  for (int trial = 0; trial < 50; ++trial) {
    canbus::DataFrame f;
    f.id = canbus::J1939Id{
        static_cast<std::uint8_t>(rng.below(8)),
        static_cast<std::uint32_t>(rng.below(0x40000)),
        static_cast<std::uint8_t>(rng.below(256))};
    f.payload.resize(len);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.below(256));
    const auto parsed = canbus::parse_wire_bits(canbus::build_wire_bits(f));
    ASSERT_TRUE(parsed.has_value()) << "len " << len << " trial " << trial;
    EXPECT_EQ(*parsed, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PayloadSweep,
                         ::testing::Range<std::size_t>(0, 9));

}  // namespace
