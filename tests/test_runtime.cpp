// Unit tests for the runtime supervision layer: watchdog stall/backoff
// discipline, Page–Hinkley drift sentinel, crash-safe checkpoint store
// (commit/rotate/corrupt/recover), and the Supervisor's clean-path
// equivalence, governor decimation, and lifecycle bookkeeping.  The
// deterministic end-to-end recovery scenarios live in test_runtime_soak.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <optional>
#include <vector>

#include "core/extractor.hpp"
#include "core/online_update.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "faults/runtime_fault.hpp"
#include "fleet/fleet_service.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/drift_sentinel.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/watchdog.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using runtime::DriftConfig;
using runtime::DriftSentinel;
using runtime::HealthState;
using runtime::Watchdog;
using runtime::WatchdogConfig;

// ---------------------------------------------------------------- Watchdog

TEST(WatchdogTest, ProgressNeverStalls) {
  WatchdogConfig wc;
  wc.stall_timeout_ns = 100;
  Watchdog dog(wc);
  for (std::uint64_t t = 0; t < 10; ++t) {
    EXPECT_EQ(dog.poll(t * 1000, t, true), Watchdog::Action::kNone);
  }
  EXPECT_EQ(dog.stalls_detected(), 0u);
}

TEST(WatchdogTest, IdleQueueIsNotAStall) {
  WatchdogConfig wc;
  wc.stall_timeout_ns = 100;
  Watchdog dog(wc);
  // No completed frames, but no work pending either — forever.
  for (std::uint64_t t = 0; t < 50; ++t) {
    EXPECT_EQ(dog.poll(t * 1'000'000, 0, false), Watchdog::Action::kNone);
  }
  EXPECT_EQ(dog.stalls_detected(), 0u);
}

TEST(WatchdogTest, StallRestartBackoffThenGiveUp) {
  WatchdogConfig wc;
  wc.stall_timeout_ns = 100;
  wc.initial_backoff_ns = 50;
  wc.max_backoff_ns = 400;
  wc.max_restarts = 2;
  Watchdog dog(wc);

  EXPECT_EQ(dog.poll(0, 0, true), Watchdog::Action::kNone);  // primes
  EXPECT_EQ(dog.poll(99, 0, true), Watchdog::Action::kNone);
  EXPECT_EQ(dog.poll(101, 0, true), Watchdog::Action::kRestart);
  EXPECT_EQ(dog.stalls_detected(), 1u);
  dog.notify_restarted(101);
  EXPECT_EQ(dog.restart_streak(), 1u);
  EXPECT_EQ(dog.current_backoff_ns(), 50u);

  // Inside the backoff window nothing fires, even though no progress.
  EXPECT_EQ(dog.poll(140, 0, true), Watchdog::Action::kNone);
  // Past backoff and past the stall timeout: second restart of the streak.
  EXPECT_EQ(dog.poll(210, 0, true), Watchdog::Action::kRestart);
  dog.notify_restarted(210);
  EXPECT_EQ(dog.restart_streak(), 2u);
  EXPECT_EQ(dog.current_backoff_ns(), 100u);  // doubled

  // Streak hit max_restarts: the next stall is a give-up, then silence.
  EXPECT_EQ(dog.poll(420, 0, true), Watchdog::Action::kGiveUp);
  EXPECT_EQ(dog.poll(10'000, 0, true), Watchdog::Action::kNone);
  EXPECT_EQ(dog.restarts(), 2u);
  EXPECT_EQ(dog.stalls_detected(), 3u);
}

TEST(WatchdogTest, ProgressResetsTheStreak) {
  WatchdogConfig wc;
  wc.stall_timeout_ns = 100;
  wc.initial_backoff_ns = 10;
  wc.max_restarts = 1;
  Watchdog dog(wc);
  EXPECT_EQ(dog.poll(0, 0, true), Watchdog::Action::kNone);
  EXPECT_EQ(dog.poll(150, 0, true), Watchdog::Action::kRestart);
  dog.notify_restarted(150);
  EXPECT_EQ(dog.restart_streak(), 1u);
  // A completed frame proves the stage alive; the streak ends.
  EXPECT_EQ(dog.poll(200, 1, true), Watchdog::Action::kNone);
  EXPECT_EQ(dog.restart_streak(), 0u);
  // The budget is available again: a fresh stall restarts, not gives up.
  EXPECT_EQ(dog.poll(400, 1, true), Watchdog::Action::kRestart);
}

TEST(WatchdogTest, BackoffClampsAtTheConfiguredMaximum) {
  WatchdogConfig wc;
  wc.initial_backoff_ns = 50;
  wc.max_backoff_ns = 300;
  Watchdog dog(wc);
  std::uint64_t t = 0;
  const std::uint64_t expected[] = {50, 100, 200, 300, 300};
  for (const std::uint64_t want : expected) {
    dog.notify_restarted(t);
    EXPECT_EQ(dog.current_backoff_ns(), want);
    t += 1'000'000;
  }
}

// ----------------------------------------------------------- DriftSentinel

TEST(DriftSentinelTest, StationaryStreamNeverAlarms) {
  DriftConfig dc;
  dc.delta = 0.05;
  dc.lambda = 5.0;
  dc.min_samples = 16;
  DriftSentinel sentinel(2, dc);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_FALSE(sentinel.observe(0, 1.0));
  }
  EXPECT_FALSE(sentinel.alarmed(0));
  EXPECT_LT(sentinel.statistic(0), dc.lambda);
  EXPECT_EQ(sentinel.alarms_total(), 0u);
}

TEST(DriftSentinelTest, SustainedUpwardShiftAlarmsAndLatches) {
  DriftConfig dc;
  dc.delta = 0.05;
  dc.lambda = 5.0;
  dc.min_samples = 16;
  DriftSentinel sentinel(2, dc);
  for (int i = 0; i < 200; ++i) sentinel.observe(0, 1.0);
  ASSERT_FALSE(sentinel.alarmed(0));

  bool fired = false;
  int fired_at = -1;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = sentinel.observe(0, 2.0);
    fired_at = i;
  }
  EXPECT_TRUE(fired);
  // The running mean starts near 1.0, so each 2.0 sample contributes close
  // to (1 - delta); the alarm lands within a small multiple of lambda.
  EXPECT_LT(fired_at, 30);
  EXPECT_TRUE(sentinel.alarmed(0));
  EXPECT_EQ(sentinel.alarms_total(), 1u);
  // Latched: further samples never re-fire until reset.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sentinel.observe(0, 10.0));
  EXPECT_EQ(sentinel.alarms_total(), 1u);
  // The sibling cluster saw nothing.
  EXPECT_FALSE(sentinel.alarmed(1));
}

TEST(DriftSentinelTest, WarmupSuppressesEarlyAlarms) {
  DriftConfig dc;
  dc.delta = 0.0;
  dc.lambda = 0.5;
  dc.min_samples = 64;
  DriftSentinel sentinel(1, dc);
  // Wild swings inside the warmup window must not alarm: the running mean
  // is not yet meaningful.
  for (int i = 0; i < 63; ++i) {
    EXPECT_FALSE(sentinel.observe(0, i % 2 == 0 ? 0.0 : 100.0));
  }
  EXPECT_FALSE(sentinel.alarmed(0));
}

TEST(DriftSentinelTest, ResetRestoresAFreshRegime) {
  DriftConfig dc;
  dc.delta = 0.01;
  dc.lambda = 2.0;
  dc.min_samples = 8;
  DriftSentinel sentinel(1, dc);
  for (int i = 0; i < 50; ++i) sentinel.observe(0, 1.0);
  for (int i = 0; i < 100; ++i) sentinel.observe(0, 3.0);
  ASSERT_TRUE(sentinel.alarmed(0));
  sentinel.reset(0);
  EXPECT_FALSE(sentinel.alarmed(0));
  EXPECT_EQ(sentinel.statistic(0), 0.0);
  // The new regime (3.0 flat) is stationary: no alarm after reset.
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(sentinel.observe(0, 3.0));
}

TEST(DriftSentinelTest, HealthStateNamesAreStable) {
  EXPECT_STREQ(to_string(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(HealthState::kDrifting), "drifting");
  EXPECT_STREQ(to_string(HealthState::kRetraining), "retraining");
  EXPECT_STREQ(to_string(HealthState::kDegraded), "degraded");
}

// ----------------------------------------------------- shared model fixture

struct Fixture {
  std::optional<sim::Vehicle> vehicle;
  std::optional<vprofile::Model> model;
  vprofile::ExtractionConfig extraction;
  std::vector<dsp::Trace> traces;            // benign stream
  std::vector<vprofile::EdgeSet> edge_sets;  // extracted from the stream
};

const Fixture& fixture() {
  static const Fixture f = [] {
    Fixture fx;
    fx.vehicle.emplace(sim::vehicle_a(), 11);
    const analog::Environment env = analog::Environment::reference();
    fx.extraction = sim::default_extraction(fx.vehicle->config());

    std::vector<vprofile::EdgeSet> training;
    for (const sim::Capture& cap : fx.vehicle->capture(900, env)) {
      if (auto es = vprofile::extract_edge_set(cap.codes, fx.extraction)) {
        training.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.extraction = fx.extraction;
    auto out = vprofile::train_with_database(training, fx.vehicle->database(),
                                             tc);
    EXPECT_TRUE(out.ok()) << out.error;
    if (!out.ok()) return fx;
    fx.model = std::move(*out.model);

    for (sim::LabeledCapture& lc :
         sim::make_normal_stream(*fx.vehicle, 160, env)) {
      if (auto es =
              vprofile::extract_edge_set(lc.capture.codes, fx.extraction)) {
        fx.edge_sets.push_back(std::move(*es));
      }
      fx.traces.push_back(std::move(lc.capture.codes));
    }
    return fx;
  }();
  return f;
}

/// A model observably different from the fixture's: one trusted edge set
/// folded in moves the cluster mean.
vprofile::Model variant_model() {
  vprofile::Model m = *fixture().model;
  vprofile::OnlineUpdater updater(&m, 100000);
  std::size_t folded = 0;
  for (const vprofile::EdgeSet& es : fixture().edge_sets) {
    if (updater.update(es) == vprofile::UpdateStatus::kUpdated &&
        ++folded == 4) {
      break;
    }
  }
  EXPECT_GE(folded, 1u);
  return m;
}

void corrupt_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const std::size_t size = static_cast<std::size_t>(f.tellg());
  ASSERT_GT(size, 0u);
  const std::size_t at = offset % size;
  f.seekg(static_cast<std::streamoff>(at));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x08);
  f.seekp(static_cast<std::streamoff>(at));
  f.write(&byte, 1);
}

// --------------------------------------------------------- CheckpointStore

TEST(CheckpointStoreTest, FreshDirectoryHasNothingToLoad) {
  runtime::CheckpointStore store(::testing::TempDir() + "/ckpt_fresh");
  EXPECT_FALSE(store.has_checkpoint());
  const auto loaded = store.load();
  EXPECT_FALSE(loaded.model.has_value());
  EXPECT_FALSE(loaded.recovered_last_good);
}

TEST(CheckpointStoreTest, CommitRotateAndLoadNewest) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  runtime::CheckpointStore store(::testing::TempDir() + "/ckpt_rotate");
  const vprofile::Model b = variant_model();

  ASSERT_TRUE(store.commit(*fx.model));
  EXPECT_TRUE(store.has_checkpoint());
  auto first = store.load();
  ASSERT_TRUE(first.model.has_value());
  EXPECT_FALSE(first.recovered_last_good);
  EXPECT_EQ(first.model->clusters()[0].mean, fx.model->clusters()[0].mean);

  ASSERT_TRUE(store.commit(b));
  EXPECT_EQ(store.commits(), 2u);
  auto second = store.load();
  ASSERT_TRUE(second.model.has_value());
  EXPECT_FALSE(second.recovered_last_good);
  EXPECT_EQ(second.model->clusters()[0].mean, b.clusters()[0].mean);
}

TEST(CheckpointStoreTest, CorruptCurrentRecoversLastGood) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  runtime::CheckpointStore store(::testing::TempDir() + "/ckpt_corrupt");
  ASSERT_TRUE(store.commit(*fx.model));
  ASSERT_TRUE(store.commit(variant_model()));

  corrupt_byte(store.current_path(), 64);
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.model.has_value());
  EXPECT_TRUE(loaded.recovered_last_good);
  EXPECT_FALSE(loaded.error.empty());
  // Last-good is the *first* committed model.
  EXPECT_EQ(loaded.model->clusters()[0].mean, fx.model->clusters()[0].mean);
}

TEST(CheckpointStoreTest, CorruptCurrentIsNeverPromotedToLastGood) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  runtime::CheckpointStore store(::testing::TempDir() + "/ckpt_gate");
  const vprofile::Model b = variant_model();

  ASSERT_TRUE(store.commit(*fx.model));  // current = A
  ASSERT_TRUE(store.commit(b));          // prev = A, current = B
  corrupt_byte(store.current_path(), 128);
  // Committing C must not rotate the corrupt B into last-good.
  ASSERT_TRUE(store.commit(*fx.model));  // current = C (== A's bytes)
  corrupt_byte(store.current_path(), 128);
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.model.has_value());
  EXPECT_TRUE(loaded.recovered_last_good);
  // Recovery lands on intact A, never on the corrupt B.
  EXPECT_EQ(loaded.model->clusters()[0].mean, fx.model->clusters()[0].mean);
}

// Two tenants checkpointing into sibling directories under one fleet
// root (the directory-per-tenant layout) must never interfere: commits
// and rotations in one directory leave the other byte-stable, and a
// corruption in one tenant's newest checkpoint recovers from *that
// tenant's* last-good file only.
TEST(CheckpointStoreTest, SiblingTenantDirectoriesDoNotInterfere) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  const std::string root = ::testing::TempDir() + "/ckpt_tenants";
  runtime::CheckpointStore a(fleet::tenant_checkpoint_dir(root, "truck-1"));
  runtime::CheckpointStore b(fleet::tenant_checkpoint_dir(root, "truck-2"));
  ASSERT_NE(a.directory(), b.directory());

  const vprofile::Model vb = variant_model();
  ASSERT_TRUE(a.commit(*fx.model));  // tenant a: one commit, no previous
  ASSERT_TRUE(b.commit(vb));         // tenant b: rotate vb -> last-good
  ASSERT_TRUE(b.commit(*fx.model));

  // b's rotation did not touch a.
  auto la = a.load();
  ASSERT_TRUE(la.model.has_value());
  EXPECT_FALSE(la.recovered_last_good);
  EXPECT_EQ(la.model->clusters()[0].mean, fx.model->clusters()[0].mean);

  // Rot b's newest: b falls back to its own last-good (vb), while a's
  // files are untouched by the neighbour's corruption or recovery.
  corrupt_byte(b.current_path(), 96);
  auto lb = b.load();
  ASSERT_TRUE(lb.model.has_value());
  EXPECT_TRUE(lb.recovered_last_good);
  EXPECT_EQ(lb.model->clusters()[0].mean, vb.clusters()[0].mean);
  auto la2 = a.load();
  ASSERT_TRUE(la2.model.has_value());
  EXPECT_FALSE(la2.recovered_last_good);
}

// Tenant ids that sanitize to the same filesystem-safe leaf ("a/0" and
// "a_0" both become "a_0") must still land in distinct directories — the
// CRC suffix is what disambiguates them.
TEST(CheckpointStoreTest, SanitizedSiblingIdsNeverCollide) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  const std::string root = ::testing::TempDir() + "/ckpt_sanitize";
  const std::string dir_slash = fleet::tenant_checkpoint_dir(root, "a/0");
  const std::string dir_under = fleet::tenant_checkpoint_dir(root, "a_0");
  ASSERT_NE(dir_slash, dir_under);

  runtime::CheckpointStore slash(dir_slash);
  runtime::CheckpointStore under(dir_under);
  const vprofile::Model vb = variant_model();
  ASSERT_TRUE(slash.commit(*fx.model));
  ASSERT_TRUE(under.commit(vb));

  auto ls = slash.load();
  auto lu = under.load();
  ASSERT_TRUE(ls.model.has_value());
  ASSERT_TRUE(lu.model.has_value());
  EXPECT_EQ(ls.model->clusters()[0].mean, fx.model->clusters()[0].mean);
  EXPECT_EQ(lu.model->clusters()[0].mean, vb.clusters()[0].mean);
}

TEST(CheckpointStoreTest, BothCorruptReportsTheFailure) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());
  runtime::CheckpointStore store(::testing::TempDir() + "/ckpt_both");
  ASSERT_TRUE(store.commit(*fx.model));
  ASSERT_TRUE(store.commit(*fx.model));
  corrupt_byte(store.current_path(), 32);
  corrupt_byte(store.previous_path(), 32);
  const auto loaded = store.load();
  EXPECT_FALSE(loaded.model.has_value());
  EXPECT_FALSE(loaded.error.empty());
}

// -------------------------------------------------------------- Supervisor

struct CollectedResult {
  std::uint64_t seq = 0;
  bool dropped = false;
  bool worker_error = false;
  vprofile::ExtractError extract_error = vprofile::ExtractError::kNone;
  std::optional<vprofile::Detection> detection;
};

std::vector<CollectedResult> run_supervised(
    const runtime::SupervisorConfig& config) {
  const Fixture& fx = fixture();
  std::vector<CollectedResult> results;
  runtime::Supervisor sup(*fx.model, config,
                          [&](const pipeline::FrameResult& r) {
                            results.push_back({r.seq, r.dropped,
                                               r.worker_error, r.extract_error,
                                               r.detection});
                          });
  for (const dsp::Trace& t : fx.traces) sup.submit(t);
  sup.finish();
  return results;
}

TEST(SupervisorTest, CleanRunMatchesThePlainPipeline) {
  const Fixture& fx = fixture();
  ASSERT_TRUE(fx.model.has_value());

  pipeline::PipelineConfig pc;
  pc.num_workers = 3;
  pc.queue_capacity = 32;
  std::vector<CollectedResult> reference;
  pipeline::DetectionPipeline pipe(*fx.model, pc,
                                   [&](pipeline::FrameResult&& r) {
                                     reference.push_back(
                                         {r.seq, r.dropped, r.worker_error,
                                          r.extract_error, r.detection});
                                   });
  for (const dsp::Trace& t : fx.traces) pipe.submit(t);
  pipe.finish();

  runtime::SupervisorConfig sc;
  sc.pipeline = pc;
  sc.online_update = false;
  const auto supervised = run_supervised(sc);

  ASSERT_EQ(supervised.size(), reference.size());
  for (std::size_t i = 0; i < supervised.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(supervised[i].seq, reference[i].seq);
    EXPECT_EQ(supervised[i].worker_error, reference[i].worker_error);
    EXPECT_EQ(supervised[i].extract_error, reference[i].extract_error);
    ASSERT_EQ(supervised[i].detection.has_value(),
              reference[i].detection.has_value());
    if (supervised[i].detection) {
      EXPECT_EQ(supervised[i].detection->verdict,
                reference[i].detection->verdict);
      // Bit-identical: supervision must not perturb the scoring path.
      EXPECT_EQ(supervised[i].detection->min_distance,
                reference[i].detection->min_distance);
    }
  }
}

TEST(SupervisorTest, CleanRunIsHealthyAndConserved) {
  runtime::SupervisorConfig sc;
  sc.pipeline.num_workers = 2;
  const Fixture& fx = fixture();
  runtime::Supervisor sup(*fx.model, sc, nullptr);
  for (const dsp::Trace& t : fx.traces) {
    EXPECT_TRUE(sup.submit(t).has_value());
  }
  sup.poll(1'000'000);
  sup.finish();
  EXPECT_EQ(sup.health(), HealthState::kHealthy);
  const runtime::SupervisorStats s = sup.stats();
  EXPECT_EQ(s.frames_offered, fx.traces.size());
  EXPECT_EQ(s.frames_submitted, fx.traces.size());
  EXPECT_EQ(s.frames_handled, fx.traces.size());
  EXPECT_EQ(s.frames_decimated, 0u);
  EXPECT_EQ(s.restarts, 0u);
  EXPECT_EQ(s.rollbacks, 0u);
  const pipeline::CountersSnapshot c = sup.pipeline_counters();
  EXPECT_TRUE(c.consistent());
  EXPECT_EQ(c.submitted.value(), fx.traces.size());
}

TEST(SupervisorTest, SubmitAfterFinishIsRefused) {
  runtime::SupervisorConfig sc;
  const Fixture& fx = fixture();
  runtime::Supervisor sup(*fx.model, sc, nullptr);
  EXPECT_TRUE(sup.submit(fx.traces.front()).has_value());
  sup.finish();
  EXPECT_FALSE(sup.submit(fx.traces.front()).has_value());
  EXPECT_EQ(sup.stats().frames_submitted, 1u);
}

TEST(SupervisorTest, GovernorShedsDeterministicallyUnderAWedgedWorker) {
  // One worker, wedged on frame 0 by a planned stall: every further submit
  // grows the queue, so the governor's hysteresis and stride are exercised
  // on a fully deterministic depth sequence (lockstep hands control back
  // as soon as the worker is visibly wedged).
  const Fixture& fx = fixture();
  ASSERT_GE(fx.traces.size(), 12u);

  runtime::SupervisorConfig sc;
  sc.pipeline.num_workers = 1;
  sc.pipeline.queue_capacity = 32;
  sc.online_update = false;
  sc.lockstep = true;
  sc.governor_high_water = 4;
  sc.governor_low_water = 1;
  sc.decimation_stride = 2;
  sc.watchdog.stall_timeout_ns = 1'000'000;
  sc.fault_plan.stalls.push_back({0});

  std::uint64_t handled = 0;
  std::uint64_t worker_errors = 0;
  runtime::Supervisor sup(*fx.model, sc,
                          [&](const pipeline::FrameResult& r) {
                            ++handled;
                            worker_errors += r.worker_error ? 1 : 0;
                          });
  // Frames 0..9: 0 wedges its worker; 1..4 queue up (depth 0..3 at submit
  // time); 5 sees depth 4 and trips the governor; from there every other
  // offered frame is shed (ticks 1 and 3 -> offers 6 and 8).
  for (std::size_t i = 0; i < 10; ++i) sup.submit(fx.traces[i]);
  EXPECT_EQ(sup.stats().frames_decimated, 2u);
  EXPECT_EQ(sup.stats().frames_submitted, 8u);

  // Virtual time: prime the watchdog, then jump past the stall timeout.
  sup.poll(1'000);
  sup.poll(2'002'000);
  const runtime::SupervisorStats mid = sup.stats();
  EXPECT_EQ(mid.stalls_detected, 1u);
  EXPECT_EQ(mid.restarts, 1u);

  // Drained: the wedged frame came back as a worker_error, the rest
  // scored.  The queue is empty again, so the governor deactivates.
  EXPECT_TRUE(sup.submit(fx.traces[10]).has_value());
  sup.finish();
  EXPECT_EQ(worker_errors, 1u);
  EXPECT_EQ(handled, 9u);  // 8 wedge-phase frames + 1 after restart
  const pipeline::CountersSnapshot c = sup.pipeline_counters();
  EXPECT_TRUE(c.consistent());
  EXPECT_EQ(c.submitted.value(), 9u);
  EXPECT_EQ(c.worker_errors, 1u);
  EXPECT_EQ(sup.health(), HealthState::kHealthy);
}

TEST(SupervisorTest, ResultSeqIsGlobalAcrossRestarts) {
  const Fixture& fx = fixture();
  runtime::SupervisorConfig sc;
  sc.pipeline.num_workers = 1;
  sc.online_update = false;
  sc.lockstep = true;
  sc.watchdog.stall_timeout_ns = 1'000'000;
  sc.fault_plan.stalls.push_back({3});

  std::vector<std::uint64_t> seqs;
  runtime::Supervisor sup(*fx.model, sc,
                          [&](const pipeline::FrameResult& r) {
                            seqs.push_back(r.seq);
                          });
  for (std::size_t i = 0; i < 8; ++i) {
    sup.submit(fx.traces[i]);
    sup.poll(i * 10'000);
  }
  sup.poll(20'000'000);  // release the wedge
  for (std::size_t i = 8; i < 12; ++i) sup.submit(fx.traces[i]);
  sup.finish();
  ASSERT_EQ(seqs.size(), 12u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i) << "global numbering must survive the restart";
  }
  EXPECT_EQ(sup.stats().restarts, 1u);
}

}  // namespace
