#include <random>

#include <gtest/gtest.h>

#include "analog/synth.hpp"
#include "canbus/standard_frame.hpp"
#include "core/detector.hpp"
#include "core/standard_extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/adc.hpp"
#include "stats/rng.hpp"

namespace {

using canbus::StandardDataFrame;

TEST(StandardFrame, LayoutMatchesSpec) {
  StandardDataFrame f;
  f.id = 0x7FF;
  f.payload = {};
  const auto bits = canbus::build_unstuffed_bits(f);
  namespace fb = canbus::standard_frame_bits;
  EXPECT_FALSE(bits[fb::kSof.value()]);
  // All-ones identifier.
  for (std::size_t i = fb::kIdFirst.value(); i <= fb::kIdLast.value(); ++i) {
    EXPECT_TRUE(bits[i]);
  }
  EXPECT_FALSE(bits[fb::kRtr.value()]);
  EXPECT_FALSE(bits[fb::kFirstPostArbitration.value()]);  // IDE dominant
  // Empty payload: 19 header bits + 15 CRC + 10 tail.
  EXPECT_EQ(bits.size(), 19u + 15u + 10u);
}

TEST(StandardFrame, RejectsOversizedFields) {
  StandardDataFrame f;
  f.id = 0x800;
  EXPECT_THROW(canbus::build_wire_bits(f), std::invalid_argument);
  f.id = 1;
  f.payload.resize(9);
  EXPECT_THROW(canbus::build_wire_bits(f), std::invalid_argument);
}

TEST(StandardFrame, WireRoundTripsRandomFrames) {
  std::mt19937 gen(11);
  for (int trial = 0; trial < 300; ++trial) {
    StandardDataFrame f;
    f.id = static_cast<std::uint16_t>(gen() % 0x800);
    f.payload.resize(gen() % 9);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(gen() % 256);
    const auto parsed =
        canbus::parse_standard_wire_bits(canbus::build_wire_bits(f));
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(*parsed, f);
  }
}

TEST(StandardFrame, ParseRejectsCorruption) {
  StandardDataFrame f;
  f.id = 0x123;
  f.payload = {0xAB, 0xCD};
  auto wire = canbus::build_wire_bits(f);
  wire[20] = !wire[20];
  EXPECT_FALSE(canbus::parse_standard_wire_bits(wire).has_value());
  wire = canbus::build_wire_bits(f);
  wire.resize(wire.size() / 3);
  EXPECT_FALSE(canbus::parse_standard_wire_bits(wire).has_value());
}

TEST(StandardIdMap, AssignsStableAliases) {
  vprofile::StandardIdMap map;
  const auto a = map.alias_of(0x100);
  const auto b = map.alias_of(0x200);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(map.alias_of(0x100), a);  // stable
  EXPECT_EQ(map.find(0x200), b);
  EXPECT_FALSE(map.find(0x300).has_value());  // lookup never allocates
  EXPECT_EQ(map.size(), 2u);
}

TEST(StandardIdMap, ExhaustsAt256Ids) {
  vprofile::StandardIdMap map;
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(map.alias_of(static_cast<std::uint16_t>(i)).has_value());
  }
  EXPECT_FALSE(map.alias_of(0x300).has_value());
  // Already-mapped ids still resolve.
  EXPECT_TRUE(map.alias_of(0).has_value());
}

TEST(StandardIdMap, RejectsOversizedId) {
  vprofile::StandardIdMap map;
  EXPECT_THROW(map.alias_of(0x800), std::invalid_argument);
}

/// Full standard-frame pipeline: synthesize, extract, verify the decoded
/// 11-bit identifier.
class StandardExtraction : public ::testing::Test {
 protected:
  analog::EcuSignature signature(double dominant_v = 2.0) const {
    analog::EcuSignature s;
    s.dominant = units::Volts{dominant_v};
    s.drive = {2.0e6, 0.7};
    s.release = {1.0e6, 0.85};
    s.noise_sigma = units::Volts{0.003};
    return s;
  }

  dsp::Trace capture(const StandardDataFrame& frame,
                     const analog::EcuSignature& sig, stats::Rng& rng) const {
    analog::SynthOptions opts;
    opts.bitrate = units::BitRateBps{250e3};
    opts.sample_rate = units::SampleRateHz{20e6};
    opts.max_bits = 60;
    const auto wire = canbus::build_wire_bits(frame);
    const auto volts = analog::synthesize_frame_voltage(
        wire, sig, analog::Environment::reference(), opts, rng);
    return adc_.quantize_trace(volts);
  }

  dsp::AdcModel adc_{units::SampleRateHz{20e6}, 16};
  vprofile::ExtractionConfig extraction_ =
      vprofile::make_extraction_config(units::SampleRateHz{20e6},
                                       units::BitRateBps{250e3},
                                       adc_.quantize(1.25));
};

TEST_F(StandardExtraction, DecodesIdentifierFromTrace) {
  stats::Rng rng(1);
  StandardDataFrame f;
  f.id = 0x5A5;
  f.payload = {1, 2, 3};
  const auto es = vprofile::extract_standard_edge_set(
      capture(f, signature(), rng), extraction_);
  ASSERT_TRUE(es.has_value());
  EXPECT_EQ(es->can_id, 0x5A5);
  EXPECT_EQ(es->samples.size(), extraction_.dimension());
}

TEST_F(StandardExtraction, SurvivesRandomIdentifiers) {
  stats::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    StandardDataFrame f;
    f.id = static_cast<std::uint16_t>(rng.below(0x800));
    f.payload.resize(rng.below(9));
    for (auto& b : f.payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto es = vprofile::extract_standard_edge_set(
        capture(f, signature(), rng), extraction_);
    ASSERT_TRUE(es.has_value()) << "trial " << trial << " id " << f.id;
    EXPECT_EQ(es->can_id, f.id) << "trial " << trial;
  }
}

TEST_F(StandardExtraction, ReportsErrorsLikeExtendedPath) {
  vprofile::ExtractError err;
  EXPECT_FALSE(vprofile::extract_standard_edge_set(dsp::Trace(500, 0.0),
                                                   extraction_, &err));
  EXPECT_EQ(err, vprofile::ExtractError::kNoSof);
}

TEST_F(StandardExtraction, EndToEndDetectionOnStandardFrames) {
  // The future-work scenario: train and detect on a standard-frame bus
  // using the IdMap bridge into the byte-keyed model.
  stats::Rng rng(3);
  vprofile::StandardIdMap id_map;

  // Two senders, two IDs each.
  const analog::EcuSignature sig_a = signature(2.0);
  const analog::EcuSignature sig_b = signature(2.25);
  const std::uint16_t ids_a[2] = {0x101, 0x102};
  const std::uint16_t ids_b[2] = {0x301, 0x302};

  std::vector<vprofile::EdgeSet> training;
  vprofile::SaDatabase db;
  auto add_training = [&](const analog::EcuSignature& sig,
                          const std::uint16_t* ids, const char* name) {
    for (int i = 0; i < 120; ++i) {
      StandardDataFrame f;
      f.id = ids[i % 2];
      f.payload = {static_cast<std::uint8_t>(i)};
      auto raw = vprofile::extract_standard_edge_set(capture(f, sig, rng),
                                                     extraction_);
      ASSERT_TRUE(raw.has_value());
      auto es = id_map.to_edge_set(std::move(*raw));
      ASSERT_TRUE(es.has_value());
      db[es->sa] = name;
      training.push_back(std::move(*es));
    }
  };
  add_training(sig_a, ids_a, "sender A");
  add_training(sig_b, ids_b, "sender B");

  vprofile::TrainingConfig cfg;
  cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  cfg.extraction = extraction_;
  const auto outcome = vprofile::train_with_database(training, db, cfg);
  ASSERT_TRUE(outcome.ok()) << outcome.error;

  const vprofile::DetectionConfig dc{4.0};
  // Legitimate message from sender A.
  {
    StandardDataFrame f;
    f.id = ids_a[0];
    f.payload = {42};
    auto raw = vprofile::extract_standard_edge_set(capture(f, sig_a, rng),
                                                   extraction_);
    ASSERT_TRUE(raw.has_value());
    auto es = id_map.to_edge_set(std::move(*raw));
    ASSERT_TRUE(es.has_value());
    EXPECT_EQ(vprofile::detect(*outcome.model, *es, dc).verdict,
              vprofile::Verdict::kOk);
  }
  // Sender B hijacking one of A's identifiers.
  {
    StandardDataFrame f;
    f.id = ids_a[1];
    f.payload = {42};
    auto raw = vprofile::extract_standard_edge_set(capture(f, sig_b, rng),
                                                   extraction_);
    ASSERT_TRUE(raw.has_value());
    auto es = id_map.to_edge_set(std::move(*raw));
    ASSERT_TRUE(es.has_value());
    EXPECT_TRUE(vprofile::detect(*outcome.model, *es, dc).is_anomaly());
  }
  // An identifier never seen in training.
  {
    StandardDataFrame f;
    f.id = 0x7AA;
    f.payload = {42};
    auto raw = vprofile::extract_standard_edge_set(capture(f, sig_a, rng),
                                                   extraction_);
    ASSERT_TRUE(raw.has_value());
    // Detection-time lookup must not allocate a fresh alias.
    EXPECT_FALSE(id_map.find(raw->can_id).has_value());
  }
}

}  // namespace
