// Deterministic scenario regression harness.
//
// A ScenarioCase couples one cell of the evaluation grid (sim::Scenario)
// with golden expectations expressed as tolerant bounds: minimum recall,
// maximum false-positive rate, degraded-verdict range, whether the fault
// layer must actually have fired.  Bounds instead of exact counts keep
// the goldens meaningful — they encode "the detector catches masquerade
// even through EMI" rather than a brittle bit pattern — while the
// separate fingerprint test (test_scenarios.cpp) pins bit-exact
// determinism: same seed -> identical metrics, in any execution order.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace harness {

/// Runner seed shared by the whole regression matrix.  Changing it is a
/// deliberate golden-regeneration event, not a knob.
inline constexpr std::uint64_t kMatrixSeed = 0x5eed0cafe;

/// One grid cell plus its golden bounds.
struct ScenarioCase {
  sim::Scenario scenario;

  /// Recall over confidently classified messages must be >= this.
  /// Negative disables the check (e.g. clean traffic has no positives).
  double min_recall = -1.0;
  /// FP / (FP + TN) must be <= this.  > 1 disables the check.
  double max_fpr = 1.1;
  /// Degraded-verdict count must fall in [min_degraded, max_degraded].
  std::size_t min_degraded = 0;
  std::size_t max_degraded = std::numeric_limits<std::size_t>::max();
  /// When true, the fault layer must have injected at least one fault.
  bool expect_faults = false;
};

/// The committed regression matrix: >= 24 cells spanning
/// {vehicle preset} x {attack} x {fault profile} x {environment}.
std::vector<ScenarioCase> default_scenario_matrix();

/// Human-readable one-line summary of a scenario's metrics (logged on
/// failure so regressions are diagnosable from CI output alone).
std::string describe(const sim::ScenarioMetrics& metrics);

}  // namespace harness
