// vprofile_frontier — adaptive-adversary detection-frontier driver.
//
// Runs sim::AdversarySearch over the Sagong-style attack families
// (overcurrent shaping, voltage-corruption bursts, drift-exploiting slow
// masquerades), hill-climbing each family's parameters toward the plain
// detector's weakest cell and scoring every candidate against the full
// defense stack (plain / gated / fixed-point / drift sentinel / supervised
// runtime).  Prints the frontier table, records a BENCH_frontier.json via
// the bench reporter, and writes the byte-stable machine-readable report
// (FrontierReport::to_json — no timestamps, no git state) to --out so two
// same-seed runs produce identical files.
//
// Usage:
//   vprofile_frontier [--preset a|b] [--margin M] [--train N]
//                     [--stream-count M] [--generations G] [--workers W]
//                     [--harm-shift CODES] [--evasion-floor F]
//                     [--out FILE] [--quick]
//
// --quick shrinks the workload (the reduced scale the `frontier` ctest
// label and the ASan job run); the full reference workload is the
// default.  The base seed always comes from the bench seed catalog
// (bench_seed("frontier")) — there is deliberately no --seed flag, so the
// published frontier artifacts stay tied to the audited catalog entry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "sim/adversary.hpp"
#include "sim/scenario.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vprofile_frontier [--preset a|b] [--margin M] [--train N]\n"
      "                         [--stream-count M] [--generations G]\n"
      "                         [--workers W] [--harm-shift CODES]\n"
      "                         [--evasion-floor F] [--out FILE] [--quick]\n");
}

double parse_double(const char* arg) { return std::atof(arg); }

std::size_t parse_size(const char* arg) {
  const long v = std::atol(arg);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  sim::AdversaryConfig config;
  std::string out_path = "FRONTIER_report.json";
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--preset") {
      config.preset = next();
    } else if (arg == "--margin") {
      config.margin = parse_double(next());
    } else if (arg == "--train") {
      config.train_count = parse_size(next());
    } else if (arg == "--stream-count") {
      config.stream_count = parse_size(next());
    } else if (arg == "--generations") {
      config.generations = parse_size(next());
    } else if (arg == "--workers") {
      config.num_workers = parse_size(next());
    } else if (arg == "--harm-shift") {
      config.harm_shift_frac = parse_double(next());
    } else if (arg == "--evasion-floor") {
      config.evasion_floor = parse_double(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (quick) {
    // train_count stays at the default: fewer training captures risk a
    // singular per-cluster covariance, and the trained model is cached
    // once per preset anyway — the candidate evaluations dominate.
    config.stream_count = 64;
    config.generations = 1;
  }

  bench::open_report("frontier");
  const units::Seed64 seed = bench::bench_seed("frontier");

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  sim::ScenarioRunner runner(seed);
  runner.set_observability(&metrics, &tracer);

  sim::AdversarySearch search(runner, config);
  search.set_observability(&metrics, &tracer);

  sim::FrontierReport report;
  try {
    report = search.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vprofile_frontier: %s\n", e.what());
    return 1;
  }

  std::printf("detection frontier (preset %s, margin %g, %zu frames/eval, "
              "evasion floor %g)\n",
              config.preset.c_str(), config.margin, config.stream_count,
              config.evasion_floor);
  std::printf("%-18s %-12s %10s %10s %8s %12s\n", "family", "arm", "rate",
              "margin", "alarm", "closed-by");
  for (const sim::FamilyFrontier& f : report.families) {
    const char* closer = f.closing_defense.has_value()
                             ? sim::to_string(*f.closing_defense)
                             : "(open)";
    for (std::size_t a = 0; a < sim::kNumDefenseArms; ++a) {
      const sim::ArmOutcome& arm = f.weakest.arms[a];
      std::printf("%-18s %-12s %10.3f %10.3f %8s %12s\n",
                  a == 0 ? sim::to_string(f.family) : "",
                  sim::to_string(static_cast<sim::DefenseArm>(a)),
                  arm.detection_rate, arm.margin,
                  arm.stream_alarm ? "yes" : "no", a == 0 ? closer : "");
    }
    const auto specs = sim::AdversarySearch::param_specs(f.family);
    std::printf("  weakest cell:");
    for (std::size_t d = 0; d < sim::kNumAttackParams; ++d) {
      if (std::strcmp(specs[d].name, "unused") == 0) continue;
      std::printf(" %s=%g", specs[d].name, f.weakest.params[d]);
    }
    std::printf("  (%llu evaluations, %llu generations)\n",
                static_cast<unsigned long long>(f.evaluations),
                static_cast<unsigned long long>(f.generations));

    bench::report_mark(std::string("frontier/") + sim::to_string(f.family),
                       {{"plain_margin", f.weakest.plain_margin()},
                        {"evaluations", static_cast<double>(f.evaluations)},
                        {"closing_defense",
                         f.closing_defense.has_value()
                             ? static_cast<double>(*f.closing_defense)
                             : -1.0}});
  }
  bench::report_scalar("families", static_cast<double>(report.families.size()));
  bench::report_scalar("fingerprint_low32",
                       static_cast<double>(report.fingerprint() & 0xffffffff));

  std::string error;
  if (!obs::write_text_file(out_path, report.to_json(), &error)) {
    std::fprintf(stderr, "vprofile_frontier: write %s: %s\n", out_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("frontier report: %s (fingerprint %016llx)\n", out_path.c_str(),
              static_cast<unsigned long long>(report.fingerprint()));
  return 0;
}
