// vprofile_monitor — online intrusion monitor: streams live traffic from a
// simulated vehicle through the parallel capture -> extract -> detect
// pipeline and reports verdicts in capture order plus pipeline telemetry.
//
// Usage:
//   vprofile_monitor --vehicle a|b [--seed S] [--train N] [--count M]
//                    [--workers W] [--queue CAP] [--margin M]
//                    [--hijack P] [--fault PROFILE] [--no-gate]
//                    [--no-block] [--verbose] [--stats-every N]
//                    [--metrics-out FILE] [--jsonl-out FILE]
//                    [--trace-out FILE]
//
// --margin defaults to 0.0, matching DetectionConfig{} (the trained
// per-cluster maximum distance alone); --fault replays the stream through
// a named analog fault profile (see faults::canned_profiles());
// --no-block switches submit() from backpressure to drop-and-count, the
// mode a real bus tap needs.  --stats-every N prints a telemetry line
// every N scored frames; --metrics-out / --jsonl-out dump the metrics
// registry (Prometheus exposition / JSONL) and --trace-out writes a
// Chrome trace_event JSON — all stamped with the RunManifest.
//
// --service wraps the pipeline in the runtime::Supervisor: stall watchdog
// with restart + backoff, Page–Hinkley drift sentinel with guarded online
// retraining, periodic crash-safe model checkpoints (--checkpoint-dir /
// --checkpoint-every) and the overload governor.  SIGINT/SIGTERM stop
// intake cleanly in every mode: the pipeline drains, the final checkpoint
// commits, and the telemetry artifacts are still written.
//
// Service-mode introspection: the supervisor always carries a flight
// recorder (evidence ring + freeze-on-trigger incident bundles; bundles
// land in --incident-dir as INCIDENT_<id>.json).  --status-port N serves
// a live HTTP endpoint on 127.0.0.1 with /metrics (Prometheus), /healthz,
// /statusz (supervisor state + recent incidents) and /incident/<id>
// (bundle JSON; GET /incident/trigger arms an operator incident).  Port 0
// picks an ephemeral port; the bound port is printed on stdout.
// --pace-us sleeps between frames so a scrape can observe a live run;
// --trigger-at N arms a deterministic operator incident after the N-th
// submitted frame (soak/CI bundles without relying on attack timing).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "faults/fault.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/status_server.hpp"
#include "obs/trace_span.hpp"
#include "pipeline/pipeline.hpp"
#include "runtime/supervisor.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/scenario.hpp"
#include "sim/vehicle.hpp"
#include "stats/confusion.hpp"

namespace {

/// Set by SIGINT/SIGTERM; the submit loops poll it.  Async-signal-safe by
/// construction (a single flag write).  A second signal skips the
/// graceful drain and exits immediately — the escape hatch while a long
/// training or stream-synthesis phase is still running.
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) {
  if (g_stop_requested != 0) std::_Exit(130);
  g_stop_requested = 1;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void usage() {
  std::fprintf(
      stderr,
      "usage: vprofile_monitor --vehicle a|b [--seed S] [--train N]\n"
      "                        [--count M] [--workers W] [--queue CAP]\n"
      "                        [--margin M] [--hijack P] [--fault PROFILE]\n"
      "                        [--no-gate] [--no-block] [--verbose]\n"
      "                        [--stats-every N] [--metrics-out FILE]\n"
      "                        [--jsonl-out FILE] [--trace-out FILE]\n"
      "                        [--service] [--checkpoint-dir DIR]\n"
      "                        [--checkpoint-every N] [--status-port N]\n"
      "                        [--incident-dir DIR] [--pace-us N]\n"
      "                        [--trigger-at N]\n"
      "  --margin defaults to 0.0 (same as the library's DetectionConfig)\n"
      "  --fault corrupts captures with a named analog fault profile:\n");
  for (const faults::FaultProfile& p : faults::canned_profiles()) {
    std::fprintf(stderr, "      %s\n", p.name.c_str());
  }
  std::fprintf(
      stderr,
      "  --no-gate disables input-quality gating (no degraded verdicts)\n"
      "  --no-block drops frames when the queue is full instead of\n"
      "  stalling the capture (live-tap mode)\n"
      "  --stats-every N prints pipeline telemetry every N scored frames\n"
      "  --metrics-out writes Prometheus text exposition at exit\n"
      "  --jsonl-out writes the metrics as a JSONL event stream\n"
      "  --trace-out writes Chrome trace_event JSON (chrome://tracing)\n"
      "  --service runs under the runtime supervisor (watchdog, drift\n"
      "  sentinel with guarded online retraining, overload governor)\n"
      "  --checkpoint-dir enables crash-safe model checkpoints there\n"
      "  --checkpoint-every N commits a checkpoint every N scored frames\n"
      "  --status-port N serves /metrics /healthz /statusz /incident/<id>\n"
      "  on 127.0.0.1 (0 = ephemeral; requires --service)\n"
      "  --incident-dir writes flight-recorder bundles there (--service)\n"
      "  --pace-us sleeps N microseconds per frame (live-scrape pacing)\n"
      "  --trigger-at N arms an operator incident after N submitted frames\n"
      "  SIGINT/SIGTERM drain the pipeline and still write all artifacts\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string vehicle_name = "a";
  std::uint64_t seed = 1;
  std::size_t train_count = 4000;
  std::size_t stream_count = 10000;
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  double margin = vprofile::DetectionConfig{}.margin;
  double hijack_prob = 0.1;
  faults::FaultProfile fault_profile = faults::clean_profile();
  bool quality_gate = true;
  bool block_when_full = true;
  bool verbose = false;
  std::size_t stats_every = 0;
  std::string metrics_out;
  std::string jsonl_out;
  std::string trace_out;
  bool service = false;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 0;
  int status_port = -1;  // -1 = no status server
  std::string incident_dir;
  std::uint64_t pace_us = 0;
  std::uint64_t trigger_at = 0;  // 0 = no operator trigger

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--vehicle") {
      vehicle_name = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--train") {
      train_count = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--count") {
      stream_count =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--queue") {
      queue_capacity =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--margin") {
      margin = std::atof(next());
    } else if (arg == "--hijack") {
      hijack_prob = std::atof(next());
    } else if (arg == "--fault") {
      const std::string name = next();
      const auto profile = faults::profile_by_name(name);
      if (!profile) {
        std::fprintf(stderr, "unknown fault profile '%s'\n", name.c_str());
        usage();
        return 2;
      }
      fault_profile = *profile;
    } else if (arg == "--no-gate") {
      quality_gate = false;
    } else if (arg == "--no-block") {
      block_when_full = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--stats-every") {
      stats_every =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--jsonl-out") {
      jsonl_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--service") {
      service = true;
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--status-port") {
      status_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--incident-dir") {
      incident_dir = next();
    } else if (arg == "--pace-us") {
      pace_us = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trigger-at") {
      trigger_at = std::strtoull(next(), nullptr, 10);
    } else {
      usage();
      return 2;
    }
  }
  if ((vehicle_name != "a" && vehicle_name != "b") || workers == 0 ||
      queue_capacity == 0 || train_count == 0 ||
      (status_port >= 0 && status_port > 65535)) {
    usage();
    return 2;
  }
  if (!service && (status_port >= 0 || !incident_dir.empty() ||
                   trigger_at != 0)) {
    std::fprintf(stderr,
                 "--status-port / --incident-dir / --trigger-at require "
                 "--service\n");
    return 2;
  }

  // A stop signal anywhere past this point ends intake cleanly: the
  // stream loop breaks, the pipeline drains, and the report + telemetry
  // artifacts are written as usual.
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // One registry + tracer for the whole run; pointers stay null (and the
  // hot paths stay instrument-free) unless something will consume them —
  // a status server consumes the registry live, so it counts too.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  const bool want_metrics =
      !metrics_out.empty() || !jsonl_out.empty() || status_port >= 0;
  obs::MetricsRegistry* metrics = want_metrics ? &registry : nullptr;
  obs::Tracer* trace = !trace_out.empty() ? &tracer : nullptr;
  if (trace != nullptr) tracer.bind_metrics(metrics);

  // Stamped into exported artifacts and every incident bundle; created
  // up-front so the status server and the flight recorder share one.
  obs::RunManifest manifest = obs::RunManifest::create("vprofile_monitor");
  manifest.seeds.emplace_back("seed", seed);
  manifest.config = {
      {"vehicle", vehicle_name},
      {"train", std::to_string(train_count)},
      {"count", std::to_string(stream_count)},
      {"workers", std::to_string(workers)},
      {"queue", std::to_string(queue_capacity)},
      {"fault", fault_profile.name},
      {"mode", block_when_full ? "backpressure" : "drop"},
      {"gate", quality_gate ? "on" : "off"},
      {"service", service ? "on" : "off"},
  };

  const sim::VehicleConfig config =
      (vehicle_name == "a") ? sim::vehicle_a() : sim::vehicle_b();
  sim::Vehicle vehicle(config, seed);
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction = sim::default_extraction(config);

  // Train on clean traffic; cluster statistics build on `workers` threads.
  std::printf("training on %zu clean messages from %s...\n", train_count,
              config.name.c_str());
  std::vector<vprofile::EdgeSet> edge_sets;
  edge_sets.reserve(train_count);
  for (const sim::Capture& cap : vehicle.capture(train_count, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      edge_sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  tc.num_threads = workers;
  tc.metrics = metrics;
  tc.tracer = trace;
  const vprofile::TrainOutcome trained =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }
  std::printf("model: %zu clusters, dim %zu\n",
              trained.model->clusters().size(), trained.model->dimension());

  // Live stream with hijack attacks mixed in.  Synthesis is the
  // expensive phase; skip it when a stop signal already arrived.
  const std::vector<sim::LabeledCapture> stream =
      g_stop_requested ? std::vector<sim::LabeledCapture>{}
                       : sim::make_hijack_stream(vehicle, stream_count,
                                                 hijack_prob, env);

  pipeline::PipelineConfig pc;
  pc.num_workers = workers;
  pc.queue_capacity = queue_capacity;
  pc.block_when_full = block_when_full;
  pc.metrics = metrics;
  pc.tracer = trace;
  if (quality_gate) {
    pc.detection = sim::scenario_detection_config(config, margin);
  } else {
    pc.detection.margin = margin;
  }

  stats::BinaryConfusion confusion;
  std::size_t extraction_failures = 0;
  std::size_t degraded = 0;
  std::size_t sink_seen = 0;
  const vprofile::Model& model = *trained.model;

  // Verdict accounting shared by both modes.  The sinks run in capture
  // order; `actual` is the submitted frame's attack label.
  auto classify = [&](const pipeline::FrameResult& r, bool actual) {
    if (r.dropped) return;  // counted by the pipeline
    if (!r.ok()) {
      ++extraction_failures;
      return;
    }
    if (r.detection->is_degraded()) {
      // The capture was too mangled to classify; a deployed monitor
      // escalates these on a separate channel instead of guessing.
      ++degraded;
      if (verbose) {
        std::printf("msg %6llu  sa=0x%02X  %-18s confidence=%.2f%s\n",
                    static_cast<unsigned long long>(r.seq), r.sa,
                    to_string(r.detection->verdict), r.detection->confidence,
                    actual ? "  [ATTACK FRAME]" : "");
      }
      return;
    }
    const bool flagged = r.detection->is_anomaly();
    confusion.add(actual, flagged);
    if (verbose && flagged) {
      std::printf("msg %6llu  sa=0x%02X  %-18s dist=%.2f",
                  static_cast<unsigned long long>(r.seq), r.sa,
                  to_string(r.detection->verdict), r.detection->min_distance);
      if (r.detection->predicted_cluster) {
        std::printf(
            "  origin=%s",
            model.clusters()[*r.detection->predicted_cluster].name.c_str());
      }
      std::printf("%s\n", actual ? "" : "  [FALSE ALARM]");
    }
  };
  auto print_stats_line = [&](const pipeline::CountersSnapshot& s) {
    std::printf(
        "[stats] frames=%llu dropped=%llu anomalies=%llu "
        "degraded=%llu extract_fail=%llu mean_extract=%.1fus "
        "mean_detect=%.1fus queue_hwm=%zu\n",
        static_cast<unsigned long long>(s.completed.value()),
        static_cast<unsigned long long>(s.dropped.value()),
        static_cast<unsigned long long>(s.anomalies()),
        static_cast<unsigned long long>(s.degraded()),
        static_cast<unsigned long long>(s.extract_failures()),
        s.mean_extract_us(), s.mean_detect_us(), s.queue_high_watermark);
  };

  faults::FaultInjector injector(fault_profile, config.adc.max_code(),
                                 seed ^ 0xfa0175eedull);
  injector.bind_metrics(metrics);
  auto faulted = [&](const sim::LabeledCapture& lc) {
    return fault_profile.empty() ? lc.capture.codes
                                 : injector.apply(lc.capture.codes);
  };

  pipeline::CountersSnapshot c;
  double elapsed_s = 0.0;
  bool stopped_early = false;
  std::optional<runtime::SupervisorStats> sup_stats;
  runtime::HealthState sup_health = runtime::HealthState::kHealthy;

  if (service) {
    // Attack labels by the supervisor's global frame index.  The slot is
    // written before submit() (the queue handoff orders it ahead of the
    // sink's read); a governor-shed frame's slot is simply rewritten by
    // the next offered frame.
    std::vector<char> labels(stream.size(), 0);
    std::uint64_t next_global = 0;

    runtime::SupervisorConfig sc;
    sc.pipeline = pc;
    sc.checkpoint_dir = checkpoint_dir;
    sc.checkpoint_every = checkpoint_every;
    sc.governor_high_water = queue_capacity * 3 / 4;
    sc.governor_low_water = queue_capacity / 4;
    sc.flight_recorder = true;
    sc.recorder.bus = "vehicle_" + vehicle_name;
    sc.recorder.incident_dir = incident_dir;
    sc.recorder.manifest = manifest;
    sc.recorder.metrics = metrics;
    sc.recorder.tracer = trace;
    runtime::Supervisor sup(
        model, sc, [&](const pipeline::FrameResult& r) {
          ++sink_seen;
          if (stats_every != 0 && sink_seen % stats_every == 0) {
            print_stats_line(sup.pipeline_counters());
          }
          classify(r, labels[r.seq] != 0);
        });

    obs::StatusServer server;
    if (status_port >= 0) {
      server.bind_metrics(metrics);
      server.route("/healthz", [&](const std::string&) {
        obs::StatusResponse resp;
        const bool down = sup.health() == runtime::HealthState::kDegraded;
        resp.status = down ? 503 : 200;
        resp.body = down ? "degraded\n" : "ok\n";
        return resp;
      });
      server.route("/metrics", [&](const std::string&) {
        obs::StatusResponse resp;
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = obs::to_prometheus(registry.samples(), &manifest);
        return resp;
      });
      server.route("/statusz", [&](const std::string&) {
        const runtime::SupervisorStats ss = sup.stats();
        const pipeline::CountersSnapshot cs = sup.pipeline_counters();
        const obs::FlightRecorder* rec = sup.flight_recorder();
        auto u64 = [](std::uint64_t v) { return std::to_string(v); };
        std::string body = "{\"health\":";
        body += obs::json_quote(runtime::to_string(sup.health()));
        body += ",\"frames\":{\"offered\":" + u64(ss.frames_offered);
        body += ",\"submitted\":" + u64(ss.frames_submitted);
        body += ",\"handled\":" + u64(ss.frames_handled);
        body += ",\"decimated\":" + u64(ss.frames_decimated);
        body += ",\"completed\":" + u64(cs.completed.value());
        body += ",\"dropped\":" + u64(cs.dropped.value());
        body += "},\"lifecycle\":{\"restarts\":" + u64(ss.restarts);
        body += ",\"stalls\":" + u64(ss.stalls_detected);
        body += ",\"drift_alarms\":" + u64(ss.drift_alarms);
        body += ",\"candidates\":" + u64(ss.candidates_started);
        body += ",\"promotions\":" + u64(ss.promotions);
        body += ",\"rollbacks\":" + u64(ss.rollbacks);
        body += ",\"checkpoints\":" + u64(ss.checkpoints_committed);
        body += "},\"recorder\":{\"records_seen\":" + u64(rec->records_seen());
        body += ",\"incidents_emitted\":" + u64(rec->incidents_emitted());
        body += ",\"triggers_coalesced\":" + u64(rec->triggers_coalesced());
        body += ",\"incidents_suppressed\":" +
                u64(rec->incidents_suppressed());
        body += ",\"incident_open\":";
        body += rec->incident_open() ? "true" : "false";
        body += "},\"incidents\":[";
        const std::vector<obs::IncidentSummary> incidents = rec->incidents();
        for (std::size_t i = 0; i < incidents.size(); ++i) {
          const obs::IncidentSummary& inc = incidents[i];
          if (i != 0) body += ',';
          body += "{\"id\":" + u64(inc.id);
          body += ",\"cause\":";
          body += obs::json_quote(obs::to_string(inc.cause));
          body += ",\"trigger_seq\":" + u64(inc.trigger_seq);
          body += ",\"detail\":" + obs::json_quote(inc.detail);
          body += ",\"coalesced\":" + u64(inc.coalesced);
          body += ",\"pre_records\":" + u64(inc.pre_records);
          body += ",\"post_records\":" + u64(inc.post_records);
          body += ",\"path\":" + obs::json_quote(inc.path) + "}";
        }
        body += "]}\n";
        obs::StatusResponse resp;
        resp.content_type = "application/json";
        resp.body = std::move(body);
        return resp;
      });
      server.route("/incident/trigger", [&](const std::string&) {
        sup.trigger_incident("status endpoint trigger");
        obs::StatusResponse resp;
        resp.content_type = "application/json";
        resp.body = "{\"armed\":true}\n";
        return resp;
      });
      server.route_prefix("/incident/", [&](const std::string& path) {
        obs::StatusResponse resp;
        resp.content_type = "application/json";
        const std::uint64_t id =
            std::strtoull(path.c_str() + sizeof("/incident/") - 1, nullptr,
                          10);
        std::string bundle = sup.flight_recorder()->bundle_json(id);
        if (id == 0 || bundle.empty()) {
          resp.status = 404;
          resp.content_type = "text/plain; charset=utf-8";
          resp.body = "unknown or evicted incident\n";
        } else {
          resp.body = std::move(bundle);
        }
        return resp;
      });
      std::string err;
      if (!server.start(static_cast<std::uint16_t>(status_port), &err)) {
        std::fprintf(stderr, "status server: %s\n", err.c_str());
        return 1;
      }
      // Scripts poll stdout for this exact line to learn ephemeral ports.
      std::printf("status server listening on http://127.0.0.1:%u\n",
                  static_cast<unsigned>(server.port()));
      std::fflush(stdout);
    }

    const auto t0 = std::chrono::steady_clock::now();
    bool operator_fired = false;
    for (const sim::LabeledCapture& lc : stream) {
      if (g_stop_requested) break;
      labels[next_global] = lc.is_attack ? 1 : 0;
      if (sup.submit(faulted(lc))) ++next_global;
      if (!operator_fired && trigger_at != 0 && next_global >= trigger_at) {
        sup.trigger_incident("--trigger-at");
        operator_fired = true;
      }
      if (next_global % 64 == 0) sup.poll(steady_now_ns());
      if (pace_us != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
      }
    }
    // Graceful shutdown: drain in-flight frames, apply pending control
    // actions, commit the final checkpoint and flush the flight recorder.
    sup.finish();
    server.stop();
    elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    c = sup.pipeline_counters();
    sup_stats = sup.stats();
    sup_health = sup.health();
    if (const obs::FlightRecorder* rec = sup.flight_recorder()) {
      std::printf(
          "\nflight recorder: %llu incidents (%llu coalesced, %llu "
          "suppressed)%s%s\n",
          static_cast<unsigned long long>(rec->incidents_emitted()),
          static_cast<unsigned long long>(rec->triggers_coalesced()),
          static_cast<unsigned long long>(rec->incidents_suppressed()),
          incident_dir.empty() ? "" : " -> ",
          incident_dir.empty() ? "" : incident_dir.c_str());
    }
  } else {
    pipeline::DetectionPipeline* pipe_ptr = nullptr;
    pipeline::DetectionPipeline pipe(
        model, pc, [&](pipeline::FrameResult&& r) {
          ++sink_seen;
          if (stats_every != 0 && sink_seen % stats_every == 0 &&
              pipe_ptr != nullptr) {
            print_stats_line(pipe_ptr->counters());
          }
          classify(r, stream[r.seq].is_attack);
        });
    pipe_ptr = &pipe;

    const auto t0 = std::chrono::steady_clock::now();
    for (const sim::LabeledCapture& lc : stream) {
      if (g_stop_requested) break;
      pipe.submit(faulted(lc));
    }
    pipe.finish();
    elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    c = pipe.counters();
  }

  stopped_early = g_stop_requested != 0;
  if (stopped_early) {
    std::printf("\nstop signal received: drained after %llu frames\n",
                static_cast<unsigned long long>(c.submitted.value()));
  }
  std::printf("\n%s\n", confusion.to_table("monitor verdicts").c_str());
  std::printf("precision %.4f  recall %.4f  f-score %.4f  accuracy %.4f\n",
              confusion.precision(), confusion.recall(), confusion.f_score(),
              confusion.accuracy());
  std::printf("\npipeline: %zu workers, queue %zu (%s)\n", workers,
              queue_capacity, block_when_full ? "backpressure" : "drop");
  std::printf("  frames      %llu submitted, %llu scored, %llu dropped, "
              "%zu extraction failures, %zu degraded\n",
              static_cast<unsigned long long>(c.submitted.value()),
              static_cast<unsigned long long>(c.completed.value()),
              static_cast<unsigned long long>(c.dropped.value()),
              extraction_failures, degraded);
  std::printf("  verdicts   ");
  for (std::size_t v = 0; v < vprofile::kNumVerdicts; ++v) {
    std::printf(" %s=%llu",
                vprofile::to_string(static_cast<vprofile::Verdict>(v)),
                static_cast<unsigned long long>(c.verdicts[v]));
  }
  std::printf("\n");
  if (c.extract_failures() > 0) {
    std::printf("  extract err");
    for (std::size_t e = 0; e < pipeline::kNumExtractErrors; ++e) {
      if (c.extract_errors[e] == 0) continue;
      std::printf(" %s=%llu",
                  vprofile::to_string(static_cast<vprofile::ExtractError>(e)),
                  static_cast<unsigned long long>(c.extract_errors[e]));
    }
    std::printf("\n");
  }
  if (!fault_profile.empty()) {
    const faults::FaultStats& fs = injector.stats();
    std::printf("  faults      profile '%s': %llu/%llu traces hit;",
                fault_profile.name.c_str(),
                static_cast<unsigned long long>(fs.faulted_traces),
                static_cast<unsigned long long>(fs.total_traces));
    for (std::size_t k = 0; k < faults::kNumFaultKinds; ++k) {
      std::printf(" %s=%llu",
                  faults::to_string(static_cast<faults::FaultKind>(k)),
                  static_cast<unsigned long long>(fs.applied[k]));
    }
    std::printf("\n");
  }
  std::printf("  throughput  %.0f frames/s (%.2f s wall)\n",
              c.frames_per_second(elapsed_s), elapsed_s);
  std::printf("  latency     extract %.1f us/frame, detect %.1f us/frame\n",
              c.mean_extract_us(), c.mean_detect_us());
  std::printf("  queue depth high watermark %zu\n", c.queue_high_watermark);
  if (sup_stats) {
    const runtime::SupervisorStats& ss = *sup_stats;
    std::printf("\nsupervisor: health=%s\n", runtime::to_string(sup_health));
    std::printf(
        "  lifecycle   restarts=%llu stalls=%llu drift_alarms=%llu "
        "candidates=%llu promotions=%llu rollbacks=%llu checkpoints=%llu\n",
        static_cast<unsigned long long>(ss.restarts),
        static_cast<unsigned long long>(ss.stalls_detected),
        static_cast<unsigned long long>(ss.drift_alarms),
        static_cast<unsigned long long>(ss.candidates_started),
        static_cast<unsigned long long>(ss.promotions),
        static_cast<unsigned long long>(ss.rollbacks),
        static_cast<unsigned long long>(ss.checkpoints_committed));
    std::printf(
        "  intake      offered=%llu submitted=%llu shed=%llu "
        "worker_errors=%llu\n",
        static_cast<unsigned long long>(ss.frames_offered),
        static_cast<unsigned long long>(ss.frames_submitted),
        static_cast<unsigned long long>(ss.frames_decimated),
        static_cast<unsigned long long>(ss.worker_errors));
    std::printf(
        "  update gate accepted=%llu rejected_verdict=%llu "
        "rejected_margin=%llu refused=%llu\n",
        static_cast<unsigned long long>(ss.gate.accepted),
        static_cast<unsigned long long>(ss.gate.rejected_verdict),
        static_cast<unsigned long long>(ss.gate.rejected_margin),
        static_cast<unsigned long long>(ss.gate.refused_by_updater));
    if (!checkpoint_dir.empty()) {
      std::printf("  checkpoints -> %s\n", checkpoint_dir.c_str());
    }
  }

  if (want_metrics || trace != nullptr) {
    const std::vector<obs::MetricSample> samples = registry.samples();
    std::string err;
    if (!metrics_out.empty()) {
      if (!obs::write_text_file(metrics_out,
                                obs::to_prometheus(samples, &manifest),
                                &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      std::printf("  metrics     -> %s\n", metrics_out.c_str());
    }
    if (!jsonl_out.empty()) {
      if (!obs::write_text_file(jsonl_out, obs::to_jsonl(samples, &manifest),
                                &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      std::printf("  jsonl       -> %s\n", jsonl_out.c_str());
    }
    if (trace != nullptr) {
      if (!obs::write_text_file(trace_out, trace->chrome_trace_json(&manifest),
                                &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
      std::printf("  trace       -> %s (%llu spans recorded)\n",
                  trace_out.c_str(),
                  static_cast<unsigned long long>(trace->total_recorded()));
    }
  }

  return (confusion.false_positives() + confusion.false_negatives()) > 0 ? 3
                                                                         : 0;
}
