// vprofile_capture — records CAN voltage traces from a simulated vehicle
// into a trace file, standing in for a digitizer capture session.
//
// Usage:
//   vprofile_capture --vehicle a|b --count N --out FILE
//                    [--seed S] [--temperature C] [--battery V]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/trace_store.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vprofile_capture --vehicle a|b --count N --out FILE\n"
      "                        [--seed S] [--temperature C] [--battery V]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string vehicle_name = "a";
  std::size_t count = 2000;
  std::string out_path;
  std::uint64_t seed = 1;
  analog::Environment env = analog::Environment::reference();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--vehicle") {
      vehicle_name = next();
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--temperature") {
      env.temperature = units::Celsius{std::atof(next())};
    } else if (arg == "--battery") {
      env.battery = units::Volts{std::atof(next())};
    } else {
      usage();
      return 2;
    }
  }
  if (out_path.empty() || count == 0 ||
      (vehicle_name != "a" && vehicle_name != "b")) {
    usage();
    return 2;
  }

  const sim::VehicleConfig config =
      (vehicle_name == "a") ? sim::vehicle_a() : sim::vehicle_b();
  sim::Vehicle vehicle(config, seed);

  io::TraceSet set;
  set.sample_rate_hz = config.adc.sample_rate().value();
  set.resolution_bits = config.adc.resolution_bits();
  for (sim::Capture& cap : vehicle.capture(count, env)) {
    set.traces.push_back(std::move(cap.codes));
  }
  if (!io::save_traces_file(set, out_path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("captured %zu messages from %s (%.0f MS/s, %d bit, "
              "%.1f C, %.2f V) -> %s\n",
              set.traces.size(), config.name.c_str(),
              set.sample_rate_hz / 1e6, set.resolution_bits,
              env.temperature.value(), env.battery.value(), out_path.c_str());
  return 0;
}
