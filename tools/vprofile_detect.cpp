// vprofile_detect — classifies recorded traces against a trained model.
//
// Usage:
//   vprofile_detect --model MODEL --traces FILE [--margin M] [--verbose]
//                   [--metrics-out FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "io/model_store.hpp"
#include "io/trace_store.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: vprofile_detect --model MODEL --traces FILE "
               "[--margin M] [--verbose]\n"
               "                       [--metrics-out FILE]\n"
               "  --margin  extra distance beyond each cluster's maximum\n"
               "            training distance before flagging; defaults to\n"
               "            0.0, the library's DetectionConfig default\n"
               "  --metrics-out  write per-stage latency histograms and\n"
               "            outcome counters (Prometheus exposition)\n");
}

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::string traces_path;
  // Same default as DetectionConfig{}: the trained threshold alone.  The
  // tool used to widen it to 4.0 silently, diverging from the library.
  double margin = vprofile::DetectionConfig{}.margin;
  bool verbose = false;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model_path = next();
    } else if (arg == "--traces") {
      traces_path = next();
    } else if (arg == "--margin") {
      margin = std::atof(next());
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else {
      usage();
      return 2;
    }
  }
  if (model_path.empty() || traces_path.empty()) {
    usage();
    return 2;
  }

  std::string error;
  const auto model = io::load_model_file(model_path, &error);
  if (!model) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto traces = io::load_traces_file(traces_path, &error);
  if (!traces) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Instruments are cheap even here on the sequential path; resolving
  // them unconditionally keeps the loop below branch-light.
  obs::MetricsRegistry registry;
  obs::Histogram* extract_hist = registry.histogram("extract_latency_ns");
  obs::Histogram* detect_hist = registry.histogram("detect_latency_ns");
  obs::Counter* anomalies_total = registry.counter("verdict_anomalies_total");
  obs::Counter* ok_total = registry.counter("verdict_ok_total");
  obs::Counter* extract_fail_total =
      registry.counter("extract_failures_total");

  const vprofile::DetectionConfig dc{margin};
  std::size_t ok = 0;
  std::size_t anomalies = 0;
  std::size_t failures = 0;
  std::size_t index = 0;
  for (const dsp::Trace& trace : traces->traces) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto es = vprofile::extract_edge_set(trace, model->extraction());
    extract_hist->observe(ns_since(t0));
    if (!es) {
      extract_fail_total->add();
      ++failures;
      ++index;
      continue;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const auto d = vprofile::detect(*model, *es, dc);
    detect_hist->observe(ns_since(t1));
    (d.is_anomaly() ? anomalies_total : ok_total)->add();
    if (d.is_anomaly()) {
      ++anomalies;
      if (verbose) {
        std::printf("msg %6zu  sa=0x%02X  %-18s dist=%.2f", index, es->sa,
                    to_string(d.verdict), d.min_distance);
        if (d.predicted_cluster) {
          std::printf("  origin=%s",
                      model->clusters()[*d.predicted_cluster].name.c_str());
        }
        std::printf("\n");
      }
    } else {
      ++ok;
    }
    ++index;
  }

  std::printf("%zu messages: %zu ok, %zu anomalies, %zu extraction "
              "failures (margin %.2f)\n",
              traces->traces.size(), ok, anomalies, failures, margin);

  if (!metrics_out.empty()) {
    obs::RunManifest manifest = obs::RunManifest::create("vprofile_detect");
    manifest.config = {{"model", model_path},
                       {"traces", traces_path},
                       {"margin", std::to_string(margin)}};
    if (!obs::write_text_file(metrics_out,
                              obs::to_prometheus(registry.samples(), &manifest),
                              &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return anomalies > 0 ? 3 : 0;
}
