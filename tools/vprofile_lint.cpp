// vprofile_lint CLI: runs the project invariant checker over explicit
// paths and/or the translation units listed in compile_commands.json.
//
// Usage:
//   vprofile_lint [--compile-commands FILE] [--filter SUBSTR]... [PATH...]
//
//   --compile-commands FILE  lint every "file" entry in the database
//   --filter SUBSTR          keep only database entries whose path contains
//                            SUBSTR (repeatable; explicit PATHs are always
//                            linted). Typical: --filter /src/
//   PATH                     a file, or a directory recursed for
//                            .hpp/.h/.cpp/.cc/.cxx sources
//
// Exit status: 0 clean, 1 findings reported, 2 usage or I/O error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

void collect_path(const std::string& arg, std::set<std::string>& files) {
  const fs::path p(arg);
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file() && is_cpp_source(entry.path())) {
        files.insert(entry.path().lexically_normal().string());
      }
    }
  } else {
    files.insert(p.lexically_normal().string());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--compile-commands FILE] [--filter SUBSTR]... "
               "[PATH...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compile_commands;
  std::vector<std::string> filters;
  std::set<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compile-commands") {
      if (++i >= argc) return usage(argv[0]);
      compile_commands = argv[i];
    } else if (arg == "--filter") {
      if (++i >= argc) return usage(argv[0]);
      filters.push_back(argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      collect_path(arg, files);
    }
  }

  if (!compile_commands.empty()) {
    std::string json;
    if (!read_file(compile_commands, json)) {
      std::fprintf(stderr, "vprofile_lint: cannot read %s\n",
                   compile_commands.c_str());
      return 2;
    }
    for (const auto& file : vplint::files_from_compile_commands(json)) {
      bool keep = filters.empty();
      for (const auto& f : filters) {
        keep = keep || file.find(f) != std::string::npos;
      }
      if (keep) files.insert(fs::path(file).lexically_normal().string());
    }
  }

  if (files.empty()) {
    std::fprintf(stderr, "vprofile_lint: no input files\n");
    return usage(argv[0]);
  }

  std::size_t total = 0;
  for (const auto& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      std::fprintf(stderr, "vprofile_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    for (const auto& finding : vplint::lint_source(file, source)) {
      std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
      ++total;
    }
  }

  if (total != 0) {
    std::printf("vprofile_lint: %zu finding%s in %zu file%s\n", total,
                total == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("vprofile_lint: %zu files clean\n", files.size());
  return 0;
}
