// vprofile_lint CLI: runs the project invariant checker over explicit
// paths and/or the translation units listed in compile_commands.json.
//
// Usage:
//   vprofile_lint [--compile-commands FILE] [--filter SUBSTR]... [PATH...]
//   vprofile_lint --project [--root DIR] [--baseline FILE] [--report FILE]
//                 [--layers FILE] [--metrics-spec FILE] [--update-baseline]
//
// Per-file mode:
//   --compile-commands FILE  lint every "file" entry in the database
//   --filter SUBSTR          keep only database entries whose path contains
//                            SUBSTR (repeatable; explicit PATHs are always
//                            linted). Typical: --filter /src/
//   PATH                     a file, or a directory recursed for
//                            .hpp/.h/.cpp/.cc/.cxx sources
//
// Project mode (--project) loads every source under <root>/{src,tools,bench}
// and runs the whole-tree passes (architecture layering, hot-path purity,
// cross-file consistency; tools/lint/project.hpp) plus the per-file rules,
// then diffs the findings against the checked-in baseline ratchet:
//   --root DIR            repository root (default ".")
//   --baseline FILE       ratchet file   (default <root>/tools/lint/lint_baseline.json)
//   --report FILE         write the byte-stable vprofile-lint-v1 JSON here
//   --layers FILE         layer spec     (default <root>/tools/lint/layers.spec)
//   --metrics-spec FILE   export contract(default <root>/tools/lint/metrics.spec)
//   --update-baseline     rewrite the baseline to the current findings
//
// Exit status: 0 clean (project mode: ratchet delta empty), 1 findings
// (project mode: fresh or stale ratchet keys), 2 usage or I/O error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/project.hpp"

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

void collect_path(const std::string& arg, std::set<std::string>& files) {
  const fs::path p(arg);
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file() && is_cpp_source(entry.path())) {
        files.insert(entry.path().lexically_normal().string());
      }
    }
  } else {
    files.insert(p.lexically_normal().string());
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--compile-commands FILE] [--filter SUBSTR]... "
               "[PATH...]\n"
               "       %s --project [--root DIR] [--baseline FILE] "
               "[--report FILE]\n"
               "                 [--layers FILE] [--metrics-spec FILE] "
               "[--update-baseline]\n",
               argv0, argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

/// Repo-relative forward-slash path of `p` under `root`.
std::string relative_path(const fs::path& p, const fs::path& root) {
  return p.lexically_relative(root).generic_string();
}

int run_project_mode(const std::string& root_arg, std::string baseline_path,
                     std::string report_path, std::string layers_path,
                     std::string metrics_path, bool update_baseline) {
  const fs::path root = fs::path(root_arg).lexically_normal();
  if (baseline_path.empty()) {
    baseline_path = (root / "tools/lint/lint_baseline.json").string();
  }
  if (layers_path.empty()) {
    layers_path = (root / "tools/lint/layers.spec").string();
  }
  if (metrics_path.empty()) {
    metrics_path = (root / "tools/lint/metrics.spec").string();
  }

  vplint::ProjectOptions opts;
  if (!read_file(layers_path, opts.layer_spec)) {
    std::fprintf(stderr, "vprofile_lint: cannot read %s\n",
                 layers_path.c_str());
    return 2;
  }
  if (!read_file(metrics_path, opts.metrics_spec)) {
    std::fprintf(stderr, "vprofile_lint: cannot read %s\n",
                 metrics_path.c_str());
    return 2;
  }

  // tests/ are deliberately out of scope: fixture strings there seed
  // violations on purpose (tests/test_lint.cpp).
  std::map<std::string, std::string> sources;
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    const fs::path base = root / dir;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() || !is_cpp_source(it->path())) continue;
      std::string text;
      if (!read_file(it->path().string(), text)) {
        std::fprintf(stderr, "vprofile_lint: cannot read %s\n",
                     it->path().string().c_str());
        return 2;
      }
      sources.emplace(relative_path(it->path(), root), std::move(text));
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "vprofile_lint: no sources under %s\n",
                 root.string().c_str());
    return 2;
  }

  std::string error;
  const std::vector<vplint::ProjectFinding> findings =
      vplint::run_project(sources, opts, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "vprofile_lint: %s\n", error.c_str());
    return 2;
  }

  if (update_baseline) {
    const std::string json = vplint::baseline_json(findings);
    if (!write_file(baseline_path, json)) {
      std::fprintf(stderr, "vprofile_lint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("vprofile_lint: baseline updated (%zu keys) -> %s\n",
                vplint::parse_baseline(json).size(), baseline_path.c_str());
  }

  std::string baseline_text;  // a missing baseline means an empty one
  read_file(baseline_path, baseline_text);
  const std::set<std::string> baseline =
      vplint::parse_baseline(baseline_text);

  if (!report_path.empty()) {
    std::error_code ec;
    const fs::path parent = fs::path(report_path).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
    if (!write_file(report_path, vplint::report_json(findings, baseline))) {
      std::fprintf(stderr, "vprofile_lint: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
  }

  const vplint::RatchetDelta delta = vplint::ratchet(findings, baseline);
  std::size_t baselined = 0;
  for (const vplint::ProjectFinding& f : findings) {
    if (baseline.count(f.key) != 0) {
      ++baselined;
      continue;
    }
    std::printf("%s:%zu: [%s/%s] %s\n", f.file.c_str(), f.line,
                f.pass.c_str(), f.rule.c_str(), f.message.c_str());
  }
  for (const std::string& key : delta.stale) {
    std::printf("baseline: stale key %s (fixed — run --update-baseline to "
                "shrink the baseline)\n",
                key.c_str());
  }
  std::printf(
      "vprofile_lint: %zu findings (%zu baselined), %zu fresh keys, "
      "%zu stale keys\n",
      findings.size(), baselined, delta.fresh.size(), delta.stale.size());
  return delta.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compile_commands;
  std::vector<std::string> filters;
  std::set<std::string> files;
  bool project = false;
  bool update_baseline = false;
  std::string root = ".";
  std::string baseline_path;
  std::string report_path;
  std::string layers_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compile-commands") {
      if (++i >= argc) return usage(argv[0]);
      compile_commands = argv[i];
    } else if (arg == "--filter") {
      if (++i >= argc) return usage(argv[0]);
      filters.push_back(argv[i]);
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--report") {
      if (++i >= argc) return usage(argv[0]);
      report_path = argv[i];
    } else if (arg == "--layers") {
      if (++i >= argc) return usage(argv[0]);
      layers_path = argv[i];
    } else if (arg == "--metrics-spec") {
      if (++i >= argc) return usage(argv[0]);
      metrics_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      collect_path(arg, files);
    }
  }

  if (project) {
    if (!files.empty() || !compile_commands.empty()) return usage(argv[0]);
    return run_project_mode(root, baseline_path, report_path, layers_path,
                            metrics_path, update_baseline);
  }

  if (!compile_commands.empty()) {
    std::string json;
    if (!read_file(compile_commands, json)) {
      std::fprintf(stderr, "vprofile_lint: cannot read %s\n",
                   compile_commands.c_str());
      return 2;
    }
    for (const auto& file : vplint::files_from_compile_commands(json)) {
      bool keep = filters.empty();
      for (const auto& f : filters) {
        keep = keep || file.find(f) != std::string::npos;
      }
      if (keep) files.insert(fs::path(file).lexically_normal().string());
    }
  }

  if (files.empty()) {
    std::fprintf(stderr, "vprofile_lint: no input files\n");
    return usage(argv[0]);
  }

  std::size_t total = 0;
  for (const auto& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      std::fprintf(stderr, "vprofile_lint: cannot read %s\n", file.c_str());
      return 2;
    }
    for (const auto& finding : vplint::lint_source(file, source)) {
      std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
      ++total;
    }
  }

  if (total != 0) {
    std::printf("vprofile_lint: %zu finding%s in %zu file%s\n", total,
                total == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s");
    return 1;
  }
  std::printf("vprofile_lint: %zu files clean\n", files.size());
  return 0;
}
