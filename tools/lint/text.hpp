// Token-level text helpers shared by the project passes
// (passes_purity.cpp, passes_consistency.cpp).  All operate on scrubbed
// source (lint.hpp), where offsets still map 1:1 onto the original text.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vplint::text {

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Offset of the first whole-word occurrence of `word` in
/// text[from, until), or npos.
inline std::size_t find_word(const std::string& text, std::string_view word,
                             std::size_t from, std::size_t until) {
  std::size_t pos = from;
  while (pos < until &&
         (pos = text.find(word.data(), pos, word.size())) != std::string::npos) {
    if (pos >= until) break;
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !ident_char(text[after]);
    if (left_ok && right_ok) return pos;
    pos = after;
  }
  return std::string::npos;
}

inline char prev_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
  }
  return '\0';
}

inline char next_nonspace(const std::string& text, std::size_t pos) {
  while (pos < text.size()) {
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
    ++pos;
  }
  return '\0';
}

/// The identifier ending at the last non-space before `pos` ("" if the
/// preceding token is not an identifier).
inline std::string prev_token(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  std::size_t end = pos;
  while (pos > 0 && ident_char(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

/// Byte offset of the start of each line (index 0 = line 1).
inline std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

/// 1-based line containing byte `offset`.
inline std::size_t line_of(const std::vector<std::size_t>& starts,
                           std::size_t offset) {
  std::size_t lo = 0;
  std::size_t hi = starts.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (starts[mid] <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace vplint::text
