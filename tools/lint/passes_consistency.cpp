// Cross-file consistency passes: facts no single translation unit can
// witness.
//
//   metric-export      every metric name registered on the
//                      obs::MetricsRegistry must appear in the export
//                      contract (tools/lint/metrics.spec), and every
//                      contract entry must still be registered somewhere.
//                      Exporters walk the registry dynamically, so a
//                      missing contract line is the only place a renamed
//                      or dropped series becomes visible before a
//                      dashboard goes dark.
//   seed-catalog       every entry in the bench seed catalog
//                      (bench/bench_common.cpp kSeeds) must be drawn by
//                      some `bench_seed("...")` call site, and every call
//                      site must name a catalog entry — dead entries are
//                      unreproducible-artifact bait, missing ones abort
//                      at run time.
//   stale-suppression  every `vprofile-lint: allow(rule)` comment must
//                      still mask a live finding; once the underlying
//                      code is fixed, the suppression is dead weight that
//                      would silently swallow the next real violation on
//                      that line.
//
// Metric and seed names live inside string literals, which the scrubber
// blanks, so both passes use the same two-step read as the per-file
// metric-name rule: locate the call in scrubbed code (comments and
// strings cannot fake a hit), then read the literal out of the original
// text at that offset.
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/project.hpp"
#include "lint/text.hpp"

namespace vplint {
namespace {

using text::find_word;
using text::line_of;
using text::line_starts;
using text::next_nonspace;
using text::prev_nonspace;

/// Reads the string literal opening at or after `from` in the original
/// text (skipping whitespace); returns false when the next
/// non-whitespace character is not a quote (dynamic name).
bool read_literal(const std::string& original, std::size_t from,
                  std::string* out) {
  std::size_t cursor = from;
  while (cursor < original.size() &&
         std::isspace(static_cast<unsigned char>(original[cursor]))) {
    ++cursor;
  }
  if (cursor >= original.size() || original[cursor] != '"') return false;
  out->clear();
  for (std::size_t i = cursor + 1; i < original.size() && original[i] != '"';
       ++i) {
    out->push_back(original[i]);
  }
  return true;
}

/// Parses a spec of one name per line with '#' comments:
/// name -> 1-based line.
std::map<std::string, std::size_t> parse_name_spec(const std::string& text) {
  std::map<std::string, std::size_t> names;
  std::size_t line = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string entry = text.substr(pos, eol - pos);
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry.resize(hash);
    std::size_t b = 0;
    std::size_t e = entry.size();
    while (b < e && std::isspace(static_cast<unsigned char>(entry[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(entry[e - 1]))) {
      --e;
    }
    if (e > b) names.emplace(entry.substr(b, e - b), line);
    pos = eol + 1;
  }
  return names;
}

struct Site {
  std::size_t file = 0;
  std::size_t line = 0;
};

/// First site wins (files are sorted by path, scans run front to back),
/// so messages and report bytes are stable.
void record(std::map<std::string, Site>* sites, const std::string& name,
            std::size_t file, std::size_t line) {
  sites->emplace(name, Site{file, line});
}

}  // namespace

void pass_export_consistency(const ProjectGraph& graph,
                             const ProjectOptions& opts,
                             std::vector<ProjectFinding>* out) {
  // --- metric names: registry factory calls vs. the export contract ---
  static constexpr std::string_view kFactories[] = {"counter", "gauge",
                                                    "histogram"};
  std::map<std::string, Site> registered;
  for (std::size_t fi = 0; fi < graph.files.size(); ++fi) {
    const ProjectFile& file = graph.files[fi];
    const std::string& code = file.scrubbed.code;
    const std::vector<std::size_t> starts = line_starts(code);
    for (const std::string_view word : kFactories) {
      std::size_t pos = 0;
      while ((pos = find_word(code, word, pos, code.size())) !=
             std::string::npos) {
        const std::size_t after = pos + word.size();
        const char prev = prev_nonspace(code, pos);
        const bool member = prev == '.' || prev == '>';
        std::string name;
        if (member && next_nonspace(code, after) == '(' &&
            read_literal(file.source, code.find('(', after) + 1, &name)) {
          record(&registered, name, fi, line_of(starts, pos));
        }
        pos = after;
      }
    }
  }
  const std::map<std::string, std::size_t> contract =
      parse_name_spec(opts.metrics_spec);
  for (const auto& [name, site] : registered) {
    if (contract.count(name) != 0) continue;
    ProjectFinding f;
    f.pass = "consistency";
    f.rule = "metric-export";
    f.file = graph.files[site.file].path;
    f.line = site.line;
    f.key = "consistency:metric-unexported:" + name;
    f.message = "metric \"" + name +
                "\" is registered here but missing from the export "
                "contract (tools/lint/metrics.spec); add it to the spec "
                "or drop the registration";
    out->push_back(std::move(f));
  }
  for (const auto& [name, line] : contract) {
    if (registered.count(name) != 0) continue;
    ProjectFinding f;
    f.pass = "consistency";
    f.rule = "metric-export";
    f.file = "tools/lint/metrics.spec";
    f.line = line;
    f.key = "consistency:metric-orphan:" + name;
    f.message = "metric \"" + name +
                "\" is promised by the export contract but no code "
                "registers it; the exported series would never appear — "
                "remove the spec line or restore the registration";
    out->push_back(std::move(f));
  }

  // --- bench seeds: catalog entries vs. bench_seed("...") draws ---
  const std::size_t catalog = graph.file_index(opts.seed_catalog_path);
  if (catalog == IncludeEdge::npos) return;  // no catalog, nothing to check
  std::map<std::string, Site> entries;
  {
    const ProjectFile& file = graph.files[catalog];
    const std::string& code = file.scrubbed.code;
    const std::vector<std::size_t> starts = line_starts(code);
    // Catalog entries are the `{"name", seed}` pairs inside the kSeeds
    // initializer; scanning is clamped to that brace span so other
    // string-keyed aggregates in the file (report rows, counters) do not
    // masquerade as seeds.
    std::size_t begin = find_word(code, "kSeeds", 0, code.size());
    std::size_t end = 0;
    if (begin != std::string::npos) {
      begin = code.find('{', begin);
    }
    if (begin != std::string::npos) {
      std::size_t depth = 0;
      for (end = begin; end < code.size(); ++end) {
        if (code[end] == '{') ++depth;
        if (code[end] == '}' && --depth == 0) break;
      }
    }
    if (begin != std::string::npos) {
      for (std::size_t i = begin + 1; i < end; ++i) {
        if (code[i] != '{') continue;
        std::string name;
        if (read_literal(file.source, i + 1, &name) && !name.empty()) {
          record(&entries, name, catalog, line_of(starts, i));
        }
      }
    }
  }
  std::map<std::string, Site> draws;
  for (std::size_t fi = 0; fi < graph.files.size(); ++fi) {
    if (fi == catalog) continue;  // the lookup loop itself is not a draw
    const ProjectFile& file = graph.files[fi];
    const std::string& code = file.scrubbed.code;
    const std::vector<std::size_t> starts = line_starts(code);
    std::size_t pos = 0;
    while ((pos = find_word(code, "bench_seed", pos, code.size())) !=
           std::string::npos) {
      const std::size_t after = pos + std::string_view("bench_seed").size();
      std::string name;
      if (next_nonspace(code, after) == '(' &&
          read_literal(file.source, code.find('(', after) + 1, &name)) {
        record(&draws, name, fi, line_of(starts, pos));
      }
      pos = after;
    }
  }
  for (const auto& [name, site] : entries) {
    if (draws.count(name) != 0) continue;
    ProjectFinding f;
    f.pass = "consistency";
    f.rule = "seed-catalog";
    f.file = graph.files[site.file].path;
    f.line = site.line;
    f.key = "consistency:seed-unused:" + name;
    f.message = "seed catalog entry \"" + name +
                "\" is never drawn by any bench_seed(\"...\") call site; "
                "dead entries drift out of audit — delete it or wire up "
                "the bench that should use it";
    out->push_back(std::move(f));
  }
  for (const auto& [name, site] : draws) {
    if (entries.count(name) != 0) continue;
    ProjectFinding f;
    f.pass = "consistency";
    f.rule = "seed-catalog";
    f.file = graph.files[site.file].path;
    f.line = site.line;
    f.key = "consistency:seed-undefined:" + name;
    f.message = "bench_seed(\"" + name +
                "\") names no entry in the seed catalog (" +
                opts.seed_catalog_path + ") and would abort at run time";
    out->push_back(std::move(f));
  }
}

void pass_stale_suppressions(
    const ProjectGraph& graph, const ProjectOptions& opts,
    const std::map<std::string,
                   std::set<std::pair<std::size_t, std::string>>>& used,
    std::vector<ProjectFinding>* out) {
  static const std::set<std::pair<std::size_t, std::string>> kNone;
  for (const ProjectFile& file : graph.files) {
    bool exempt = false;
    for (const std::string& sub : opts.stale_suppression_exempt) {
      exempt = exempt || file.path.find(sub) != std::string::npos;
    }
    if (exempt) continue;  // the linter documents allow() in comments
    const auto it = used.find(file.path);
    const auto& live = it == used.end() ? kNone : it->second;
    for (const auto& [line, rules] : file.scrubbed.allowed) {
      for (const std::string& rule : rules) {
        if (live.count({line, rule}) != 0) continue;
        ProjectFinding f;
        f.pass = "consistency";
        f.rule = "stale-suppression";
        f.file = file.path;
        f.line = line;
        f.key = "consistency:stale-allow:" + file.path + ":" + rule;
        f.message = "suppression allow(" + rule +
                    ") no longer masks any finding; delete the comment so "
                    "it cannot silently swallow the next real violation";
        out->push_back(std::move(f));
      }
    }
  }
}

}  // namespace vplint
