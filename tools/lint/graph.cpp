#include "lint/graph.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <string_view>

namespace vplint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const std::vector<std::size_t>& starts,
                    std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<std::size_t>(it - starts.begin());
}

/// Control-flow and expression keywords: a brace whose head starts with
/// one of these is a statement, never a function definition.
bool is_control_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",        "switch",   "catch",
      "return", "sizeof", "alignof",      "decltype", "static_assert",
      "assert", "defined"};
  return kKeywords.count(name) != 0;
}

/// Names never followed as call edges: ubiquitous std:: member/utility
/// names that would conflate every container with any project function
/// that happens to share the name (RingQueue::size vs. vector::size).
/// The purity pass still scans the *project* functions of these names if
/// something else reaches them by a unique name.
bool is_generic_call_name(const std::string& name) {
  static const std::set<std::string> kGeneric = {
      "size",    "empty",   "clear",     "begin",    "end",     "cbegin",
      "cend",    "rbegin",  "rend",      "data",     "at",      "front",
      "back",    "reserve", "resize",    "push",     "pop",     "push_back",
      "pop_back", "emplace", "emplace_back", "insert", "erase",  "find",
      "count",   "contains", "value",    "value_or", "has_value", "get",
      "reset",   "release", "swap",      "str",      "c_str",   "substr",
      "append",  "compare", "length",    "first",    "second",  "now",
      "min",     "max",     "abs",       "move",     "forward", "to_string",
      "load",    "store",   "exchange",  "fetch_add", "fetch_sub", "add",
      "set",     "observe", "duration_cast", "time_since_epoch", "submit"};
  return kGeneric.count(name) != 0;
}

/// Matches a balanced paren run starting at the opener `text[pos]`;
/// returns the offset one past the closer, or npos when unbalanced.
std::size_t skip_parens(const std::string& text, std::size_t pos) {
  int depth = 0;
  for (; pos < text.size(); ++pos) {
    if (text[pos] == '(') {
      ++depth;
    } else if (text[pos] == ')') {
      if (--depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

/// What the extractor learned about one candidate `name(...)` in a brace
/// head.
struct SignatureMatch {
  std::string qualified;
  std::string last;
  std::size_t name_offset = 0;  // into the segment
};

/// Function-name candidates in a brace head: optionally qualified
/// identifier (destructors and operator tokens included) directly
/// followed by '('.
const std::regex& signature_regex() {
  static const std::regex kSig(
      R"(((?:[A-Za-z_]\w*\s*::\s*)*(?:operator\s*[^\s\w(]+|~?[A-Za-z_]\w*))\s*\()");
  return kSig;
}

/// Everything legal between a function's parameter list and its opening
/// brace: cv/ref qualifiers, noexcept (with or without a condition),
/// override/final, a trailing return type, a constructor init list.
bool valid_signature_tail(const std::string& tail) {
  static const std::regex kTail(
      R"(^\s*(?:(?:const|noexcept|override|final|mutable|try|&&?)\b\s*|noexcept\s*\([^{}]*\)\s*)*(?:->\s*[^;={}]+?)?\s*(?::[^;{}]*)?$)");
  return std::regex_match(tail, kTail);
}

/// Tries to read a function definition out of the text between the last
/// statement boundary and an opening brace.  Returns true and fills
/// `*out` when the head parses as a signature; a head opening with a
/// control keyword is definitively not a function.
bool match_function(const std::string& segment, SignatureMatch* out) {
  auto begin = std::sregex_iterator(segment.begin(), segment.end(),
                                    signature_regex());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1].str();
    // Normalize whitespace around :: and operator tokens.
    name.erase(std::remove_if(name.begin(), name.end(),
                              [](char c) {
                                return std::isspace(
                                           static_cast<unsigned char>(c)) != 0;
                              }),
               name.end());
    const std::size_t name_pos = static_cast<std::size_t>(it->position(1));
    std::string last = name;
    const std::size_t sep = last.rfind("::");
    if (sep != std::string::npos) last = last.substr(sep + 2);
    if (is_control_keyword(last)) return false;
    // The '(' the regex anchored on.
    const std::size_t paren =
        static_cast<std::size_t>(it->position(0) + it->length(0)) - 1;
    const std::size_t after = skip_parens(segment, paren);
    if (after == std::string::npos) continue;  // spans past the brace head
    if (!valid_signature_tail(segment.substr(after))) continue;
    out->qualified = name;
    out->last = last;
    out->name_offset = name_pos;
    return true;
  }
  return false;
}

}  // namespace

std::string component_of(const std::string& path) {
  const std::size_t first = path.find('/');
  if (first == std::string::npos) return path;
  const std::string head = path.substr(0, first);
  if (head != "src") return head;
  const std::size_t second = path.find('/', first + 1);
  if (second == std::string::npos) return path;
  return path.substr(0, second);
}

std::size_t ProjectGraph::file_index(const std::string& path) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), path,
      [](const ProjectFile& f, const std::string& p) { return f.path < p; });
  if (it != files.end() && it->path == path) {
    return static_cast<std::size_t>(it - files.begin());
  }
  return IncludeEdge::npos;
}

ProjectGraph ProjectGraph::build(
    const std::map<std::string, std::string>& sources) {
  ProjectGraph g;
  g.files.reserve(sources.size());
  for (const auto& [path, text] : sources) {  // std::map: sorted by path
    ProjectFile f;
    f.path = path;
    f.source = text;
    f.scrubbed = scrub(text);
    g.files.push_back(std::move(f));
  }

  // --- include graph (from original text: the scrubber blanks the
  // quoted path) ---
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  static constexpr std::array<std::string_view, 5> kPrefixes = {
      "", "src/", "tools/", "bench/", "tests/"};
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    const std::string& text = g.files[fi].source;
    std::size_t pos = 0;
    std::size_t line = 1;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string line_text = text.substr(pos, eol - pos);
      std::smatch m;
      if (std::regex_search(line_text, m, kInclude)) {
        IncludeEdge edge;
        edge.file = fi;
        edge.line = line;
        edge.target = m[1].str();
        for (const auto prefix : kPrefixes) {
          const std::size_t hit =
              g.file_index(std::string(prefix) + edge.target);
          if (hit != IncludeEdge::npos) {
            edge.resolved = hit;
            break;
          }
        }
        g.includes.push_back(std::move(edge));
      }
      pos = eol + 1;
      ++line;
    }
  }

  // --- function extraction, file by file ---
  for (std::size_t fi = 0; fi < g.files.size(); ++fi) {
    const std::string& code = g.files[fi].scrubbed.code;
    const std::vector<std::size_t> starts = line_starts(code);

    struct Frame {
      bool is_function = false;
      std::size_t fn = 0;
    };
    std::vector<Frame> stack;
    std::size_t boundary = 0;  // one past the last ';', '{' or '}'
    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == ';') {
        boundary = i + 1;
      } else if (c == '{') {
        const std::string segment = code.substr(boundary, i - boundary);
        SignatureMatch m;
        Frame frame;
        if (match_function(segment, &m)) {
          FunctionDef fn;
          fn.file = fi;
          fn.qualified = m.qualified;
          fn.name = m.last;
          fn.line = line_of(starts, boundary + m.name_offset);
          fn.body_begin = i;
          frame.is_function = true;
          frame.fn = g.functions.size();
          g.functions.push_back(std::move(fn));
        }
        stack.push_back(frame);
        boundary = i + 1;
      } else if (c == '}') {
        if (!stack.empty()) {
          const Frame frame = stack.back();
          stack.pop_back();
          if (frame.is_function) g.functions[frame.fn].body_end = i + 1;
        }
        boundary = i + 1;
      }
    }
    // Unterminated bodies (truncated input): close at end of file so the
    // passes still see the text.
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      if (frame.is_function && g.functions[frame.fn].body_end == 0) {
        g.functions[frame.fn].body_end = code.size();
      }
    }

    // --- hot/cold markers: a marker line L claims the function whose
    // signature starts at L or L+1 (standalone comment above), or whose
    // opening-brace line carries the trailing marker. ---
    const ScrubbedSource& scrubbed = g.files[fi].scrubbed;
    if (!scrubbed.hot_lines.empty() || !scrubbed.cold_lines.empty()) {
      for (FunctionDef& fn : g.functions) {
        if (fn.file != fi) continue;
        const std::size_t open_line = line_of(starts, fn.body_begin);
        for (std::size_t l = fn.line == 0 ? 0 : fn.line - 1; l <= open_line;
             ++l) {
          if (scrubbed.hot_lines.count(l) != 0) fn.hot = true;
          if (scrubbed.cold_lines.count(l) != 0) fn.cold = true;
        }
      }
    }
  }

  // --- name index ---
  for (std::size_t i = 0; i < g.functions.size(); ++i) {
    g.functions_by_name[g.functions[i].name].push_back(i);
  }

  // --- call edges: every `name(` token in a body that matches a known
  // project function, minus keywords and the generic-name stoplist ---
  static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < g.functions.size(); ++i) {
    FunctionDef& fn = g.functions[i];
    const std::string& code = g.files[fn.file].scrubbed.code;
    if (fn.body_end <= fn.body_begin) continue;
    const std::string body =
        code.substr(fn.body_begin + 1, fn.body_end - fn.body_begin - 2);
    std::set<std::size_t> callees;
    auto begin = std::sregex_iterator(body.begin(), body.end(), kCall);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      const std::size_t pos = static_cast<std::size_t>(it->position(1));
      // `::name(` and `.name(` stay edges (qualified and member calls);
      // a preceding identifier character means mid-token.
      if (pos > 0 && ident_char(body[pos - 1])) continue;
      if (is_control_keyword(name) || is_generic_call_name(name)) continue;
      const auto hit = g.functions_by_name.find(name);
      if (hit == g.functions_by_name.end()) continue;
      for (const std::size_t target : hit->second) {
        if (target != i) callees.insert(target);
      }
    }
    fn.callees.assign(callees.begin(), callees.end());
  }

  return g;
}

bool LayerSpec::parse(const std::string& text, std::string* error) {
  layers.clear();
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    const auto is_space = [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    };
    while (!line.empty() && is_space(line.back())) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && is_space(line[start])) ++start;
    line = line.substr(start);
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    static const std::regex kLayer(R"(^layer\s+([\w-]+)\s*:\s*(.+)$)");
    std::smatch m;
    if (!std::regex_match(line, m, kLayer)) {
      if (error != nullptr) {
        *error = "layers.spec line " + std::to_string(line_no) +
                 ": expected `layer <name>: <dir> <dir>...`";
      }
      return false;
    }
    Layer layer;
    layer.name = m[1].str();
    const std::string dirs = m[2].str();
    std::size_t d = 0;
    while (d < dirs.size()) {
      while (d < dirs.size() && is_space(dirs[d])) ++d;
      std::size_t e = d;
      while (e < dirs.size() && !is_space(dirs[e])) ++e;
      if (e > d) layer.dirs.push_back(dirs.substr(d, e - d));
      d = e;
    }
    if (layer.dirs.empty()) {
      if (error != nullptr) {
        *error = "layers.spec line " + std::to_string(line_no) +
                 ": layer `" + layer.name + "` lists no directories";
      }
      return false;
    }
    layers.push_back(std::move(layer));
    if (pos > text.size()) break;
  }
  if (layers.empty()) {
    if (error != nullptr) *error = "layers.spec: no layers defined";
    return false;
  }
  return true;
}

int LayerSpec::layer_of(const std::string& path) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const std::string& dir : layers[li].dirs) {
      const bool match =
          path == dir ||
          (path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/');
      if (match && dir.size() >= best_len) {
        best = static_cast<int>(li);
        best_len = dir.size();
      }
    }
  }
  return best;
}

const std::string& LayerSpec::layer_name(std::size_t index) const {
  static const std::string kUnknown = "?";
  if (index >= layers.size()) return kUnknown;
  return layers[index].name;
}

}  // namespace vplint
