#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <regex>
#include <string_view>

namespace vplint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses `vprofile-lint: allow(rule, rule2)` plus the `hot`/`cold`
/// function markers out of one comment body and records them against
/// `line`.
void parse_allow(const std::string& comment, std::size_t line,
                 ScrubbedSource& out) {
  static const std::regex kAllow(
      R"(vprofile-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
  std::smatch m;
  if (std::regex_search(comment, m, kAllow)) {
    const std::string rules = m[1].str();
    std::size_t start = 0;
    while (start < rules.size()) {
      std::size_t end = rules.find(',', start);
      if (end == std::string::npos) end = rules.size();
      std::string rule = rules.substr(start, end - start);
      rule.erase(std::remove(rule.begin(), rule.end(), ' '), rule.end());
      if (!rule.empty()) out.allowed[line].insert(rule);
      start = end + 1;
    }
  }
  static const std::regex kMarker(R"(vprofile-lint:\s*(hot|cold)\b)");
  if (std::regex_search(comment, m, kMarker)) {
    if (m[1].str() == "hot") {
      out.hot_lines.insert(line);
    } else {
      out.cold_lines.insert(line);
    }
  }
}

/// Builds a prefix table of line-start offsets for offset->line lookups.
std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const std::vector<std::size_t>& starts,
                    std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<std::size_t>(it - starts.begin());
}

/// Last non-space character before `pos`, or '\0' at start of file.
char prev_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
  }
  return '\0';
}

/// First non-space character at or after `pos`, or '\0' at end of file.
char next_nonspace(const std::string& text, std::size_t pos) {
  while (pos < text.size()) {
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
    ++pos;
  }
  return '\0';
}

/// Reads the identifier token ending immediately before `pos` (skipping
/// trailing spaces), e.g. to recognize `operator` before `new`.
std::string prev_token(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  std::size_t end = pos;
  while (pos > 0 && ident_char(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

/// Finds the next occurrence of `word` as a whole identifier at or after
/// `from`; returns npos when absent.
std::size_t find_word(const std::string& text, std::string_view word,
                      std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(word.data(), pos, word.size())) !=
         std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !ident_char(text[after]);
    if (left_ok && right_ok) return pos;
    pos = after;
  }
  return std::string::npos;
}

/// True when the text ending at `end` (exclusive, spaces skipped) is a
/// floating-point literal such as 1.5, .5, 2., 1e-9 or 2.5e3f.
bool float_literal_before(const std::string& text, std::size_t end) {
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  const std::size_t window = std::min<std::size_t>(end, 40);
  const std::string tail = text.substr(end - window, window);
  static const std::regex kFloatTail(
      R"((^|[^\w.])([0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)([eE][+-]?[0-9]+)?[fFlL]?$)");
  std::smatch m;
  if (!std::regex_search(tail, m, kFloatTail)) return false;
  // Integer mantissa with no exponent is an integer literal, not a float.
  const std::string mantissa = m[2].str();
  const bool has_dot = mantissa.find('.') != std::string::npos;
  const bool has_exp = m[3].matched && !m[3].str().empty();
  return has_dot || has_exp;
}

/// True when the text starting at `begin` (spaces skipped) opens with a
/// floating-point literal, allowing a unary sign.
bool float_literal_after(const std::string& text, std::size_t begin) {
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  const std::string head = text.substr(begin, 40);
  static const std::regex kFloatHead(
      R"(^[+-]?([0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)([eE][+-]?[0-9]+)?[fFlL]?([^\w.]|$))");
  std::smatch m;
  if (!std::regex_search(head, m, kFloatHead)) return false;
  const std::string mantissa = m[1].str();
  const bool has_dot = mantissa.find('.') != std::string::npos;
  const bool has_exp = m[2].matched && !m[2].str().empty();
  return has_dot || has_exp;
}

/// Matches a balanced bracket run starting at the opener `text[pos]`;
/// returns the offset one past the closer, or npos when unbalanced.
std::size_t skip_balanced(const std::string& text, std::size_t pos,
                          char open, char close) {
  int depth = 0;
  for (; pos < text.size(); ++pos) {
    if (text[pos] == open) {
      ++depth;
    } else if (text[pos] == close) {
      if (--depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

struct RuleContext {
  const std::string& path;
  const std::string& code;
  const std::vector<std::size_t>& starts;
  std::vector<Finding>& findings;

  void add(std::size_t offset, std::string rule, std::string message) const {
    findings.push_back(Finding{path, line_of(starts, offset),
                               std::move(rule), std::move(message)});
  }
};

// ---------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------

void check_determinism(const RuleContext& ctx) {
  // Call-like uses of the wall-clock / process-global randomness API.
  static constexpr std::array<std::string_view, 5> kCalls = {
      "rand", "srand", "time", "clock", "getpid"};
  for (const auto word : kCalls) {
    std::size_t pos = 0;
    while ((pos = find_word(ctx.code, word, pos)) != std::string::npos) {
      const std::size_t after = pos + word.size();
      const char prev = prev_nonspace(ctx.code, pos);
      // Member calls (`frame.time()`, `p->clock()`) are unrelated APIs.
      const bool member = prev == '.' || prev == '>';
      if (!member && next_nonspace(ctx.code, after) == '(') {
        ctx.add(pos, "determinism",
                std::string(word) +
                    "() draws entropy outside the seeded stream; route "
                    "randomness through stats::Rng with an explicit seed");
      }
      pos = after;
    }
  }
  // Any mention of std::random_device seeds from the environment.
  std::size_t pos = 0;
  while ((pos = find_word(ctx.code, "random_device", pos)) !=
         std::string::npos) {
    ctx.add(pos, "determinism",
            "std::random_device seeds from the environment; use "
            "stats::Rng with an explicit seed");
    pos += 13;
  }
}

// ---------------------------------------------------------------------
// Rule: raw-new-delete
// ---------------------------------------------------------------------

void check_raw_new_delete(const RuleContext& ctx) {
  std::size_t pos = 0;
  while ((pos = find_word(ctx.code, "new", pos)) != std::string::npos) {
    // Allocator shims (`operator new`) are the sanctioned escape hatch.
    if (prev_token(ctx.code, pos) != "operator") {
      ctx.add(pos, "raw-new-delete",
              "raw new; own memory with containers or std::unique_ptr");
    }
    pos += 3;
  }
  pos = 0;
  while ((pos = find_word(ctx.code, "delete", pos)) != std::string::npos) {
    const char prev = prev_nonspace(ctx.code, pos);
    // `= delete` declarations and `operator delete` shims are fine.
    if (prev != '=' && prev_token(ctx.code, pos) != "operator") {
      ctx.add(pos, "raw-new-delete",
              "raw delete; own memory with containers or std::unique_ptr");
    }
    pos += 6;
  }
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------

void check_unordered_iteration(const RuleContext& ctx) {
  static constexpr std::array<std::string_view, 4> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};

  // Pass 1: collect the names of variables declared with an unordered
  // container type (template argument lists may span lines).
  std::set<std::string> vars;
  for (const auto type : kTypes) {
    std::size_t pos = 0;
    while ((pos = find_word(ctx.code, type, pos)) != std::string::npos) {
      std::size_t cursor = pos + type.size();
      while (cursor < ctx.code.size() &&
             std::isspace(static_cast<unsigned char>(ctx.code[cursor]))) {
        ++cursor;
      }
      if (cursor < ctx.code.size() && ctx.code[cursor] == '<') {
        cursor = skip_balanced(ctx.code, cursor, '<', '>');
        if (cursor == std::string::npos) break;
        while (cursor < ctx.code.size() &&
               (std::isspace(static_cast<unsigned char>(ctx.code[cursor])) ||
                ctx.code[cursor] == '&' || ctx.code[cursor] == '*')) {
          ++cursor;
        }
        std::size_t end = cursor;
        while (end < ctx.code.size() && ident_char(ctx.code[end])) ++end;
        if (end > cursor) vars.insert(ctx.code.substr(cursor, end - cursor));
      }
      pos += type.size();
    }
  }

  // Pass 2: flag any for-loop whose control clause touches an unordered
  // container (declared variable by name, or the type spelled inline).
  std::size_t pos = 0;
  while ((pos = find_word(ctx.code, "for", pos)) != std::string::npos) {
    std::size_t open = pos + 3;
    while (open < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[open]))) {
      ++open;
    }
    if (open >= ctx.code.size() || ctx.code[open] != '(') {
      pos += 3;
      continue;
    }
    const std::size_t close = skip_balanced(ctx.code, open, '(', ')');
    if (close == std::string::npos) break;
    const std::string clause = ctx.code.substr(open, close - open);
    bool hit = clause.find("unordered_") != std::string::npos;
    for (auto it = vars.begin(); !hit && it != vars.end(); ++it) {
      hit = find_word(clause, *it, 0) != std::string::npos;
    }
    if (hit) {
      ctx.add(pos, "unordered-iteration",
              "iteration over an unordered container has "
              "implementation-defined order; sort first or use std::map");
    }
    pos = close;
  }
}

// ---------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------

void check_float_eq(const RuleContext& ctx) {
  for (std::size_t i = 0; i + 1 < ctx.code.size(); ++i) {
    const char a = ctx.code[i];
    const char b = ctx.code[i + 1];
    const bool is_eq = a == '=' && b == '=';
    const bool is_ne = a == '!' && b == '=';
    if (!is_eq && !is_ne) continue;
    // Skip <=, >=, ===-like runs and compound operators.
    const char before = i > 0 ? ctx.code[i - 1] : '\0';
    const char after2 = i + 2 < ctx.code.size() ? ctx.code[i + 2] : '\0';
    if (before == '=' || before == '<' || before == '>' || before == '!' ||
        after2 == '=') {
      continue;
    }
    if (float_literal_before(ctx.code, i) ||
        float_literal_after(ctx.code, i + 2)) {
      ctx.add(i, "float-eq",
              "floating-point equality comparison; compare against an "
              "epsilon or restructure around integers");
    }
    ++i;
  }
}

// ---------------------------------------------------------------------
// Rule: unit-cast
// ---------------------------------------------------------------------

void check_unit_cast(const RuleContext& ctx) {
  // Form 1: static_cast<units::X>(...).
  std::size_t pos = 0;
  while ((pos = find_word(ctx.code, "static_cast", pos)) !=
         std::string::npos) {
    std::size_t cursor = pos + 11;
    while (cursor < ctx.code.size() &&
           std::isspace(static_cast<unsigned char>(ctx.code[cursor]))) {
      ++cursor;
    }
    if (ctx.code.compare(cursor, 1, "<") == 0) {
      std::size_t inner = cursor + 1;
      while (inner < ctx.code.size() &&
             std::isspace(static_cast<unsigned char>(ctx.code[inner]))) {
        ++inner;
      }
      if (ctx.code.compare(inner, 7, "units::") == 0) {
        ctx.add(pos, "unit-cast",
                "static_cast to a unit type hides the dimension change; "
                "use the named conversion helpers in core/units.hpp");
      }
    }
    pos = cursor;
  }

  // Form 2: re-wrapping one unit's raw value as another unit,
  // units::A{units::B{...}.value()}.
  // Matches both temporaries (units::X{...}) and brace-initialized
  // declarations (units::X name{...}).
  static const std::regex kWrap(R"(units::(\w+)(?:\s+\w+)?\s*\{)");
  auto begin = std::sregex_iterator(ctx.code.begin(), ctx.code.end(), kWrap);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string outer = (*it)[1].str();
    const std::size_t offset = static_cast<std::size_t>(it->position(0));
    const std::size_t open =
        offset + static_cast<std::size_t>(it->length(0)) - 1;
    const std::size_t close = skip_balanced(ctx.code, open, '{', '}');
    if (close == std::string::npos) continue;
    const std::string arg = ctx.code.substr(open + 1, close - open - 2);
    if (arg.find(".value()") == std::string::npos) continue;
    static const std::regex kInner(R"(units::(\w+))");
    auto inner_begin = std::sregex_iterator(arg.begin(), arg.end(), kInner);
    for (auto jt = inner_begin; jt != std::sregex_iterator(); ++jt) {
      if ((*jt)[1].str() != outer) {
        ctx.add(offset, "unit-cast",
                "re-wrapping units::" + (*jt)[1].str() + " as units::" +
                    outer +
                    " through .value() bypasses the dimension check; use "
                    "the named conversion helpers in core/units.hpp");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: metric-name
// ---------------------------------------------------------------------

/// Checks literal metric names passed to the obs::MetricsRegistry
/// factories (`.counter("...")`, `.gauge(...)`, `.histogram(...)`):
/// snake_case plus one of the project's unit suffixes.  Needs the
/// unscrubbed source because the scrubber blanks string literals: the
/// factory call is located in scrubbed code (so matches inside comments
/// or strings cannot fire), then the name is read from the original text
/// at the same offset.  Dynamic (non-literal) names are skipped — the
/// token scanner cannot evaluate them.
void check_metric_name(const RuleContext& ctx, const std::string& original) {
  static constexpr std::array<std::string_view, 3> kFactories = {
      "counter", "gauge", "histogram"};
  static constexpr std::array<std::string_view, 3> kSuffixes = {
      "_ns", "_bytes", "_total"};
  for (const auto word : kFactories) {
    std::size_t pos = 0;
    while ((pos = find_word(ctx.code, word, pos)) != std::string::npos) {
      const std::size_t after = pos + word.size();
      const char prev = prev_nonspace(ctx.code, pos);
      // Only member calls on a registry; free functions named `counter`
      // or type names like obs::Counter are unrelated.
      const bool member = prev == '.' || prev == '>';
      if (!member || next_nonspace(ctx.code, after) != '(') {
        pos = after;
        continue;
      }
      std::size_t cursor = ctx.code.find('(', after) + 1;
      while (cursor < original.size() &&
             std::isspace(static_cast<unsigned char>(original[cursor]))) {
        ++cursor;
      }
      if (cursor >= original.size() || original[cursor] != '"') {
        pos = after;  // dynamic name; not checkable at token level
        continue;
      }
      std::size_t end = cursor + 1;
      std::string name;
      while (end < original.size() && original[end] != '"') {
        name.push_back(original[end]);
        ++end;
      }
      bool snake = !name.empty() &&
                   std::islower(static_cast<unsigned char>(name[0])) != 0;
      for (const char c : name) {
        snake = snake && (std::islower(static_cast<unsigned char>(c)) != 0 ||
                          std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                          c == '_');
      }
      bool suffixed = false;
      for (const auto suffix : kSuffixes) {
        suffixed = suffixed ||
                   (name.size() > suffix.size() &&
                    name.compare(name.size() - suffix.size(), suffix.size(),
                                 suffix) == 0);
      }
      if (!snake || !suffixed) {
        ctx.add(pos, "metric-name",
                "metric name \"" + name +
                    "\" must be snake_case with a unit suffix "
                    "(_ns, _bytes, _total) so exported series stay "
                    "machine-sortable; see src/obs/metrics.hpp");
      }
      pos = after;
    }
  }
}

// ---------------------------------------------------------------------
// Rule: seed-literal
// ---------------------------------------------------------------------

/// Flags seeded entry points constructed straight from an integer
/// literal: `units::Seed64{1234}`, `stats::Rng rng(42)`,
/// `ScenarioRunner runner(7)`.  A literal there detaches the stream from
/// the audited bench seed catalog; seeds must come from
/// bench::bench_seed or be derived from an upstream seed
/// (sim::derive_stream_seed).  Only the single-argument pure-literal
/// form is matched — expressions and named values pass, because they
/// trace back to something reviewable.
void check_seed_literal(const RuleContext& ctx) {
  static const std::regex kSeedLiteral(
      R"(\b(Seed64|Rng|ScenarioRunner)(?:\s+\w+)?\s*[({]\s*)"
      R"((0[xX][0-9a-fA-F']+|[0-9][0-9']*)[uUlL]*\s*[})])");
  for (auto it = std::sregex_iterator(ctx.code.begin(), ctx.code.end(),
                                      kSeedLiteral);
       it != std::sregex_iterator(); ++it) {
    const std::size_t offset = static_cast<std::size_t>(it->position(0));
    if (offset > 0 && ident_char(ctx.code[offset - 1])) continue;
    ctx.add(offset, "seed-literal",
            "literal seed " + (*it)[2].str() + " handed to " +
                (*it)[1].str() +
                "; draw seeds from the bench catalog (bench::bench_seed) "
                "or derive them from an upstream seed "
                "(sim::derive_stream_seed) so published artifacts trace "
                "to one audited entry");
  }
}

// ---------------------------------------------------------------------
// Rule: simd-boundary
// ---------------------------------------------------------------------

void check_simd_boundary(const RuleContext& ctx) {
  // Intrinsic calls (_mm_*, _mm256_*, _mm512_*) and vector register types
  // (__m128/__m256/__m512 with their d/i suffixes).  Word boundaries on
  // the left keep identifiers like `my_mm256_helper` out.
  static const std::regex kSimdToken(
      R"((_mm(?:256|512)?_\w+|__m(?:128|256|512)[a-z]?))");
  for (auto it = std::sregex_iterator(ctx.code.begin(), ctx.code.end(),
                                      kSimdToken);
       it != std::sregex_iterator(); ++it) {
    const std::size_t offset = static_cast<std::size_t>(it->position(0));
    if (offset > 0 && ident_char(ctx.code[offset - 1])) continue;
    ctx.add(offset, "simd-boundary",
            "raw SIMD token " + (*it)[1].str() +
                " outside src/linalg/simd_*; vector code must live behind "
                "the runtime dispatch boundary (linalg/simd_dispatch.hpp) "
                "so unsupported ISAs can never execute");
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------

ScrubbedSource scrub(const std::string& source) {
  ScrubbedSource out;
  out.code.assign(source.size(), ' ');
  std::size_t line = 1;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string comment;          // accumulating comment body for allow-parse
  std::size_t comment_line = 0; // line the comment started on
  std::string raw_delim;        // closing delimiter of a raw string

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      if (state == State::kLineComment) {
        parse_allow(comment, comment_line, out);
        comment.clear();
        state = State::kCode;
      }
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          comment_line = line;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(source[i - 1]))) {
          // Raw string literal: R"delim( ... )delim".
          std::size_t d = i + 2;
          while (d < source.size() && source[d] != '(') ++d;
          // Built up in pieces: GCC 12's -Wrestrict false-positives on the
          // `const char* + std::string&&` chain under heavy inlining.
          raw_delim = ")";
          raw_delim += source.substr(i + 2, d - (i + 2));
          raw_delim += '"';
          state = State::kRawString;
          i = d;  // everything from R through ( is stripped
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          // A quote directly after a digit is a C++14 digit separator
          // (1'000'000), not a character literal.
          const bool separator =
              i > 0 && std::isdigit(static_cast<unsigned char>(source[i - 1]));
          if (separator) {
            out.code[i] = c;
          } else {
            state = State::kChar;
          }
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          parse_allow(comment, comment_line, out);
          comment.clear();
          state = State::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < source.size() && source[i] == '\n') ++line;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    parse_allow(comment, comment_line, out);
  }
  return out;
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

std::vector<Finding> lint_source_raw(const std::string& path,
                                     const std::string& source,
                                     const Options& opts) {
  const ScrubbedSource scrubbed = scrub(source);
  const std::vector<std::size_t> starts = line_starts(scrubbed.code);

  std::vector<Finding> findings;
  const RuleContext ctx{path, scrubbed.code, starts, findings};

  bool determinism_exempt = false;
  for (const auto& allow : opts.determinism_allowlist) {
    if (path.find(allow) != std::string::npos) determinism_exempt = true;
  }
  if (!determinism_exempt) check_determinism(ctx);
  bool simd_exempt = false;
  for (const auto& allow : opts.simd_allowlist) {
    if (path.find(allow) != std::string::npos) simd_exempt = true;
  }
  if (!simd_exempt) check_simd_boundary(ctx);
  bool seed_literal_exempt = false;
  for (const auto& allow : opts.seed_literal_allowlist) {
    if (path.find(allow) != std::string::npos) seed_literal_exempt = true;
  }
  if (!seed_literal_exempt) check_seed_literal(ctx);
  check_raw_new_delete(ctx);
  check_unordered_iteration(ctx);
  check_float_eq(ctx);
  check_unit_cast(ctx);
  check_metric_name(ctx, source);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

void apply_suppressions(
    std::vector<Finding>& findings, const ScrubbedSource& scrubbed,
    std::set<std::pair<std::size_t, std::string>>* used) {
  const std::vector<std::size_t> starts = line_starts(scrubbed.code);
  // A suppression covers its own line, or the next line when the comment
  // stands alone (a trailing comment covers only its own statement).
  auto line_has_code = [&](std::size_t line) {
    if (line == 0 || line > starts.size()) return false;
    const std::size_t begin = starts[line - 1];
    const std::size_t end =
        line < starts.size() ? starts[line] : scrubbed.code.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (!std::isspace(static_cast<unsigned char>(scrubbed.code[i]))) {
        return true;
      }
    }
    return false;
  };
  auto allows = [&](std::size_t line, const std::string& rule,
                    std::string* matched) {
    const auto it = scrubbed.allowed.find(line);
    if (it == scrubbed.allowed.end()) return false;
    if (it->second.count(rule) != 0) {
      *matched = rule;
      return true;
    }
    if (it->second.count("all") != 0) {
      *matched = "all";
      return true;
    }
    return false;
  };
  auto suppressed = [&](const Finding& f) {
    std::string matched;
    if (allows(f.line, f.rule, &matched)) {
      if (used != nullptr) used->insert({f.line, matched});
      return true;
    }
    if (f.line > 1 && !line_has_code(f.line - 1) &&
        allows(f.line - 1, f.rule, &matched)) {
      if (used != nullptr) used->insert({f.line - 1, matched});
      return true;
    }
    return false;
  };
  findings.erase(
      std::remove_if(findings.begin(), findings.end(), suppressed),
      findings.end());
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Options& opts) {
  std::vector<Finding> findings = lint_source_raw(path, source, opts);
  apply_suppressions(findings, scrub(source));
  return findings;
}

std::vector<std::string> files_from_compile_commands(
    const std::string& json_text) {
  std::vector<std::string> files;
  std::size_t pos = 0;
  while ((pos = json_text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    while (pos < json_text.size() &&
           (std::isspace(static_cast<unsigned char>(json_text[pos])) ||
            json_text[pos] == ':')) {
      ++pos;
    }
    if (pos >= json_text.size() || json_text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < json_text.size() && json_text[pos] != '"') {
      if (json_text[pos] == '\\' && pos + 1 < json_text.size()) {
        ++pos;  // CMake only escapes backslash and quote in paths
      }
      value.push_back(json_text[pos]);
      ++pos;
    }
    files.push_back(std::move(value));
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace vplint
