// run_project orchestration, the baseline ratchet and the byte-stable
// JSON report for `vprofile_lint --project`.  See project.hpp for the
// contract; the one ordering rule that matters here is that the
// stale-suppression pass runs after every other finding has been through
// apply_suppressions, because "stale" is defined as "masked nothing".
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/project.hpp"

namespace vplint {
namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
/// UTF-8 passes through untouched — the report is byte-stable, not
/// ASCII-clean.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool finding_order(const ProjectFinding& a, const ProjectFinding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  if (a.key != b.key) return a.key < b.key;
  return a.message < b.message;
}

std::set<std::string> finding_keys(
    const std::vector<ProjectFinding>& findings) {
  std::set<std::string> keys;
  for (const ProjectFinding& f : findings) keys.insert(f.key);
  return keys;
}

void append_key_array(std::string* out, const std::string& label,
                      const std::vector<std::string>& keys,
                      const std::string& indent) {
  *out += indent + "\"" + label + "\": [";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += indent + "  \"" + json_escape(keys[i]) + "\"";
  }
  if (!keys.empty()) *out += "\n" + indent;
  *out += "]";
}

}  // namespace

std::vector<ProjectFinding> run_project(
    const std::map<std::string, std::string>& sources,
    const ProjectOptions& opts, std::string* error) {
  LayerSpec spec;
  if (!spec.parse(opts.layer_spec, error)) return {};
  const ProjectGraph graph = ProjectGraph::build(sources);

  std::vector<ProjectFinding> all;
  for (const ProjectFile& file : graph.files) {
    for (const Finding& f :
         lint_source_raw(file.path, file.source, opts.file_options)) {
      ProjectFinding pf;
      pf.pass = "file";
      pf.rule = f.rule;
      pf.file = f.file;
      pf.line = f.line;
      pf.message = f.message;
      all.push_back(std::move(pf));  // ratchet key assigned post-filter
    }
  }
  pass_layering(graph, spec, &all);
  pass_purity(graph, &all);
  pass_export_consistency(graph, opts, &all);

  // Uniform suppression: any finding located in a project file can be
  // allow()ed there; what each suppression actually masked feeds the
  // stale check.
  std::map<std::string, std::set<std::pair<std::size_t, std::string>>> used;
  std::vector<ProjectFinding> kept;
  for (ProjectFinding& f : all) {
    const std::size_t fi = graph.file_index(f.file);
    if (fi != IncludeEdge::npos) {
      std::vector<Finding> probe{{f.file, f.line, f.rule, std::string{}}};
      apply_suppressions(probe, graph.files[fi].scrubbed, &used[f.file]);
      if (probe.empty()) continue;
    }
    kept.push_back(std::move(f));
  }
  pass_stale_suppressions(graph, opts, used, &kept);

  std::sort(kept.begin(), kept.end(), finding_order);
  // Per-file rule keys, assigned in final order so they are stable
  // across unrelated edits: file:<path>:<rule>, with #2, #3... only when
  // one file trips the same rule more than once.
  std::map<std::string, std::size_t> seen;
  for (ProjectFinding& f : kept) {
    if (f.pass != "file") continue;
    f.key = "file:" + f.file + ":" + f.rule;
    const std::size_t n = ++seen[f.key];
    if (n > 1) f.key += "#" + std::to_string(n);
  }
  return kept;
}

RatchetDelta ratchet(const std::vector<ProjectFinding>& findings,
                     const std::set<std::string>& baseline) {
  RatchetDelta delta;
  const std::set<std::string> keys = finding_keys(findings);
  for (const std::string& key : keys) {
    if (baseline.count(key) == 0) delta.fresh.push_back(key);
  }
  for (const std::string& key : baseline) {
    if (keys.count(key) == 0) delta.stale.push_back(key);
  }
  return delta;
}

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> keys;
  std::size_t pos = text.find("\"keys\"");
  if (pos == std::string::npos) return keys;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return keys;
  const std::size_t close = text.find(']', pos);
  while (pos < text.size()) {
    const std::size_t open = text.find('"', pos);
    if (open == std::string::npos || open > close) break;
    const std::size_t end = text.find('"', open + 1);
    if (end == std::string::npos) break;
    keys.insert(text.substr(open + 1, end - open - 1));
    pos = end + 1;
  }
  return keys;
}

std::string baseline_json(const std::vector<ProjectFinding>& findings) {
  const std::set<std::string> keys = finding_keys(findings);
  std::string out = "{\n  \"schema\": \"vprofile-lint-baseline-v1\",\n";
  append_key_array(&out, "keys",
                   std::vector<std::string>(keys.begin(), keys.end()), "  ");
  out += "\n}\n";
  return out;
}

std::string report_json(const std::vector<ProjectFinding>& findings,
                        const std::set<std::string>& baseline) {
  const RatchetDelta delta = ratchet(findings, baseline);
  std::size_t baselined = 0;
  for (const ProjectFinding& f : findings) {
    if (baseline.count(f.key) != 0) ++baselined;
  }
  std::string out = "{\n  \"schema\": \"vprofile-lint-v1\",\n";
  out += "  \"summary\": {\n";
  out += "    \"findings\": " + std::to_string(findings.size()) + ",\n";
  out += "    \"baselined\": " + std::to_string(baselined) + ",\n";
  out += "    \"fresh\": " + std::to_string(delta.fresh.size()) + ",\n";
  out += "    \"stale\": " + std::to_string(delta.stale.size()) + "\n";
  out += "  },\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const ProjectFinding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"pass\": \"" + json_escape(f.pass) + "\",\n";
    out += "      \"rule\": \"" + json_escape(f.rule) + "\",\n";
    out += "      \"file\": \"" + json_escape(f.file) + "\",\n";
    out += "      \"line\": " + std::to_string(f.line) + ",\n";
    out += "      \"key\": \"" + json_escape(f.key) + "\",\n";
    out += "      \"baselined\": " +
           std::string(baseline.count(f.key) != 0 ? "true" : "false") + ",\n";
    out += "      \"message\": \"" + json_escape(f.message) + "\"\n";
    out += "    }";
  }
  if (!findings.empty()) out += "\n  ";
  out += "],\n";
  out += "  \"ratchet\": {\n";
  append_key_array(&out, "fresh", delta.fresh, "    ");
  out += ",\n";
  append_key_array(&out, "stale", delta.stale, "    ");
  out += "\n  }\n}\n";
  return out;
}

}  // namespace vplint
