// Whole-project passes for `vprofile_lint --project`.
//
// Three pass families run over the ProjectGraph (lint/graph.hpp), next
// to the per-file token rules of lint/lint.hpp:
//
//   architecture-layering   every resolved project include must point at
//                           the including file's own layer or a lower
//                           one, per the declarative spec in
//                           tools/lint/layers.spec;
//   hot-path-purity         from every `// vprofile-lint: hot` entry
//                           point, the reachable call graph must be free
//                           of heap allocation, locking, I/O and
//                           non-deterministic calls.  A function marked
//                           `// vprofile-lint: cold` is a sanctioned
//                           boundary the traversal stops at;
//   consistency             cross-file facts that no single file can
//                           witness: stale `allow(...)` suppressions
//                           that no longer mask a finding, metric names
//                           registered in code but missing from the
//                           export contract (tools/lint/metrics.spec) or
//                           vice versa, and bench-seed catalog entries
//                           defined in bench/bench_common.cpp but never
//                           drawn (or drawn but undefined).
//
// Output discipline: every finding carries a line-independent ratchet
// `key`.  The checked-in baseline (tools/lint/lint_baseline.json) is the
// set of keys the tree is allowed to keep for now; anything new gates,
// anything fixed must leave the baseline (run --update-baseline), so the
// legacy debt only burns down.  The JSON report (schema vprofile-lint-v1)
// is byte-stable: no timestamps, fully sorted, same tree -> same bytes.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/lint.hpp"

namespace vplint {

/// One finding from any pass (the per-file rules are folded in with
/// pass = "file").
struct ProjectFinding {
  std::string pass;   // "file" | "layering" | "purity" | "consistency"
  std::string rule;   // e.g. "architecture-layering", "hot-path-purity"
  std::string file;
  std::size_t line = 0;
  /// Line-independent identity for the baseline ratchet.
  std::string key;
  std::string message;
};

/// Everything the project passes need besides the sources.
struct ProjectOptions {
  /// Text of tools/lint/layers.spec.
  std::string layer_spec;
  /// Text of tools/lint/metrics.spec (export contract, one name per
  /// line, '#' comments).
  std::string metrics_spec;
  /// File that owns the bench seed catalog.
  std::string seed_catalog_path = "bench/bench_common.cpp";
  /// Path substrings exempt from the stale-suppression check: the
  /// linter's own sources document `allow(...)` in comments.
  std::vector<std::string> stale_suppression_exempt = {"tools/lint/"};
  /// Per-file rule knobs, forwarded to lint_source_raw.
  Options file_options;
};

/// Runs the per-file rules plus every project pass over the given
/// repo-relative path -> source map.  Returns findings sorted by
/// (file, line, rule, key); on a malformed spec returns empty and fills
/// *error.
std::vector<ProjectFinding> run_project(
    const std::map<std::string, std::string>& sources,
    const ProjectOptions& opts, std::string* error);

/// The ratchet comparison: which finding keys are new relative to the
/// baseline, and which baseline keys no longer fire (stale — the debt
/// was paid, the baseline must shrink).
struct RatchetDelta {
  std::vector<std::string> fresh;  // finding keys not in the baseline
  std::vector<std::string> stale;  // baseline keys with no finding
  bool empty() const { return fresh.empty() && stale.empty(); }
};

RatchetDelta ratchet(const std::vector<ProjectFinding>& findings,
                     const std::set<std::string>& baseline);

/// Parses a baseline file: JSON of the form {"schema":...,"keys":[...]}
/// written by baseline_json (tolerates the exact subset it emits).
std::set<std::string> parse_baseline(const std::string& text);

/// Serializes the current findings as a baseline (sorted unique keys).
std::string baseline_json(const std::vector<ProjectFinding>& findings);

/// The byte-stable report: schema vprofile-lint-v1, findings plus the
/// ratchet split against `baseline`.  No timestamps, no absolute paths.
std::string report_json(const std::vector<ProjectFinding>& findings,
                        const std::set<std::string>& baseline);

// --- individual passes (exposed for tests; run_project calls all) ---

void pass_layering(const ProjectGraph& graph, const LayerSpec& spec,
                   std::vector<ProjectFinding>* out);

void pass_purity(const ProjectGraph& graph,
                 std::vector<ProjectFinding>* out);

/// Metric-name export contract + bench-seed catalog cross-checks.
void pass_export_consistency(const ProjectGraph& graph,
                             const ProjectOptions& opts,
                             std::vector<ProjectFinding>* out);

/// Stale `allow(...)` detection.  Runs after every other finding has
/// been through apply_suppressions: `used` maps file path -> (line,
/// rule) suppression entries some finding consumed; any other allow()
/// entry is dead weight masking nothing.  These findings are themselves
/// never suppressible — the fix is deleting the comment.
void pass_stale_suppressions(
    const ProjectGraph& graph, const ProjectOptions& opts,
    const std::map<std::string,
                   std::set<std::pair<std::size_t, std::string>>>& used,
    std::vector<ProjectFinding>* out);

}  // namespace vplint
