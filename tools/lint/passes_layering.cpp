// Architecture-layering pass: every resolved project include must stay
// within the including file's layer or point below it.  The layer order
// comes from the declarative spec (tools/lint/layers.spec); the pass
// itself knows nothing about vProfile's directories.
//
// Ratchet keys are file -> component (not line numbers), so a legacy
// upward edge stays one baseline entry however often the file includes
// headers from that component, and moving code around inside the file
// never churns the baseline.
#include <string>
#include <vector>

#include "lint/project.hpp"

namespace vplint {

void pass_layering(const ProjectGraph& graph, const LayerSpec& spec,
                   std::vector<ProjectFinding>* out) {
  for (const IncludeEdge& edge : graph.includes) {
    if (edge.resolved == IncludeEdge::npos) continue;  // system header
    const std::string& from_path = graph.files[edge.file].path;
    const std::string& to_path = graph.files[edge.resolved].path;
    const int from_layer = spec.layer_of(from_path);
    const int to_layer = spec.layer_of(to_path);
    // Files no layer claims are outside the architecture contract
    // (generated code, stray fixtures); the spec is the source of truth.
    if (from_layer < 0 || to_layer < 0) continue;
    if (to_layer <= from_layer) continue;
    const std::string from_component = component_of(from_path);
    const std::string to_component = component_of(to_path);
    ProjectFinding f;
    f.pass = "layering";
    f.rule = "architecture-layering";
    f.file = from_path;
    f.line = edge.line;
    f.key = "layering:" + from_path + "->" + to_component;
    f.message = "#include \"" + edge.target + "\" reaches up from layer `" +
                spec.layer_name(static_cast<std::size_t>(from_layer)) +
                "` (" + from_component + ") into layer `" +
                spec.layer_name(static_cast<std::size_t>(to_layer)) + "` (" +
                to_component +
                "); dependencies must point down the layer spec "
                "(tools/lint/layers.spec)";
    out->push_back(std::move(f));
  }
}

}  // namespace vplint
