// Hot-path purity pass: from every function annotated
// `// vprofile-lint: hot` (the BatchScorer batch kernels, the pipeline
// worker loop, the SIMD dispatch decision), walk the approximate call
// graph and forbid heap allocation, locking, I/O and non-deterministic
// calls anywhere reachable.  The zero-allocation SoA scoring contract
// and the bit-identical scenario fingerprints both die quietly the day
// a `new`, a mutex or a getenv() creeps into that cone — this pass makes
// the creep loud.
//
// Two escape hatches, both spelled in the source where a reviewer sees
// them:
//   // vprofile-lint: cold      on a function definition: a sanctioned
//                               boundary (queue handoff, once-per-key
//                               registry resolution); traversal stops,
//                               the body is not scanned;
//   // vprofile-lint: allow(hot-path-purity)  on the offending line,
//                               for a single judged-safe token.
#include <algorithm>
#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "lint/project.hpp"
#include "lint/text.hpp"

namespace vplint {
namespace {

using text::find_word;
using text::line_of;
using text::line_starts;
using text::next_nonspace;
using text::prev_nonspace;
using text::prev_token;

struct ForbiddenToken {
  std::string_view word;
  std::string_view category;
  /// Skip `x.word(` / `p->word(` member calls (unrelated APIs sharing
  /// the name, e.g. Trace::time()).
  bool member_exempt = false;
  /// Only flag call-like uses (`word` followed by '(').
  bool call_only = false;
};

constexpr std::array<ForbiddenToken, 36> kForbidden = {{
    // Heap allocation: the hot cone runs on pre-reserved scratch.
    {"new", "allocation", false, false},
    {"malloc", "allocation", true, true},
    {"calloc", "allocation", true, true},
    {"realloc", "allocation", true, true},
    {"free", "allocation", true, true},
    {"strdup", "allocation", true, true},
    {"make_unique", "allocation", false, false},
    {"make_shared", "allocation", false, false},
    // Locking / blocking: handoffs live behind `cold` boundaries.
    {"mutex", "locking", false, false},
    {"lock_guard", "locking", false, false},
    {"unique_lock", "locking", false, false},
    {"scoped_lock", "locking", false, false},
    {"shared_lock", "locking", false, false},
    {"condition_variable", "locking", false, false},
    {"sleep_for", "locking", false, false},
    {"sleep_until", "locking", false, false},
    // I/O: a scoring kernel has no business touching a stream.
    {"printf", "io", true, true},
    {"fprintf", "io", true, true},
    {"puts", "io", true, true},
    {"fputs", "io", true, true},
    {"fopen", "io", true, true},
    {"fclose", "io", true, true},
    {"fread", "io", true, true},
    {"fwrite", "io", true, true},
    {"fflush", "io", true, true},
    {"cout", "io", false, false},
    {"cerr", "io", false, false},
    {"clog", "io", false, false},
    {"ofstream", "io", false, false},
    {"ifstream", "io", false, false},
    {"getline", "io", true, true},
    {"system", "io", true, true},
    // Non-determinism: verdicts are pure functions of inputs.
    {"rand", "non-determinism", true, true},
    {"getenv", "non-determinism", true, true},
    {"time", "non-determinism", true, true},
    {"random_device", "non-determinism", false, false},
}};

}  // namespace

void pass_purity(const ProjectGraph& graph,
                 std::vector<ProjectFinding>* out) {
  const std::size_t n = graph.functions.size();
  if (n == 0) return;

  // Deterministic root attribution: roots in (qualified, file, line)
  // order; the first root to reach a function owns it in messages.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.functions[i].hot && !graph.functions[i].cold) roots.push_back(i);
  }
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    const FunctionDef& fa = graph.functions[a];
    const FunctionDef& fb = graph.functions[b];
    if (fa.qualified != fb.qualified) return fa.qualified < fb.qualified;
    if (fa.file != fb.file) return fa.file < fb.file;
    return fa.line < fb.line;
  });

  std::vector<std::size_t> owner(n, IncludeEdge::npos);
  for (const std::size_t root : roots) {
    std::vector<std::size_t> stack{root};
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      if (owner[cur] != IncludeEdge::npos) continue;
      if (graph.functions[cur].cold) continue;  // sanctioned boundary
      owner[cur] = root;
      for (const std::size_t callee : graph.functions[cur].callees) {
        if (owner[callee] == IncludeEdge::npos) stack.push_back(callee);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (owner[i] == IncludeEdge::npos) continue;
    const FunctionDef& fn = graph.functions[i];
    const FunctionDef& root = graph.functions[owner[i]];
    const ProjectFile& file = graph.files[fn.file];
    const std::string& code = file.scrubbed.code;
    const std::vector<std::size_t> starts = line_starts(code);
    const std::size_t begin = fn.body_begin;
    const std::size_t end = fn.body_end;
    for (const ForbiddenToken& t : kForbidden) {
      std::size_t pos = begin;
      while ((pos = find_word(code, t.word, pos, end)) != std::string::npos &&
             pos < end) {
        const std::size_t after = pos + t.word.size();
        const char prev = prev_nonspace(code, pos);
        const bool member = prev == '.' || prev == '>';
        const bool call = next_nonspace(code, after) == '(';
        const bool op_shim =
            t.word == "new" && prev_token(code, pos) == "operator";
        if (!(t.member_exempt && member) && !(t.call_only && !call) &&
            !op_shim) {
          ProjectFinding f;
          f.pass = "purity";
          f.rule = "hot-path-purity";
          f.file = file.path;
          f.line = line_of(starts, pos);
          f.key = "purity:" + file.path + ":" + fn.qualified + ":" +
                  std::string(t.word);
          f.message = "`" + std::string(t.word) + "` (" +
                      std::string(t.category) + ") in `" + fn.qualified +
                      "`, reachable from hot entry `" + root.qualified +
                      "`; the hot cone may not allocate, lock, do I/O or "
                      "draw entropy — mark a sanctioned boundary with "
                      "`// vprofile-lint: cold` or suppress the line with "
                      "allow(hot-path-purity)";
          out->push_back(std::move(f));
        }
        pos = after;
      }
    }
  }
}

}  // namespace vplint
