// Project-graph construction for the vprofile_lint `--project` analyzer.
//
// The single-file rules in lint.hpp catch what one translation unit can
// show; the invariants this repository actually sells — a layered
// architecture, a zero-allocation scoring hot path, one audited seed
// catalog — are properties of the *whole tree*.  This header builds the
// two graphs the project passes need from nothing but source text:
//
//   include graph    every `#include "..."` edge, resolved against the
//                    project file set and mapped onto the declarative
//                    layer spec (tools/lint/layers.spec);
//   call graph       an approximate, token-level function/call graph
//                    seeded from `// vprofile-lint: hot` annotations,
//                    over which passes_purity.cpp forbids allocation,
//                    locking, I/O and non-determinism.
//
// Both are deliberately approximate: no libclang, no compiler.  The
// function extractor recognizes the project's house style (one
// definition per brace pair, signatures on adjacent lines); calls are
// matched by name, so same-named functions conflate.  Over-approximation
// is the safe direction for an invariant checker — a spurious edge can
// be silenced with a `cold` boundary or an allow(), a missing edge is a
// hole — and every heuristic here errs that way.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace vplint {

/// One project source file, scrubbed once and shared by every pass.
struct ProjectFile {
  std::string path;    // repo-relative, forward slashes
  std::string source;  // original text (string literals intact)
  ScrubbedSource scrubbed;
};

/// One `#include "..."` directive.
struct IncludeEdge {
  std::size_t file = 0;  // index into ProjectGraph::files
  std::size_t line = 0;  // 1-based
  std::string target;    // include path as written, e.g. "core/units.hpp"
  /// Index of the project file the include resolves to, or npos for
  /// system/external headers (which no pass constrains).
  std::size_t resolved = npos;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// One function definition found by the token-level extractor.
struct FunctionDef {
  std::size_t file = 0;
  std::string qualified;  // as written, e.g. "BatchScorer::detect"
  std::string name;       // last component, e.g. "detect"
  std::size_t line = 0;   // 1-based line of the signature's identifier
  std::size_t body_begin = 0;  // offset of the opening '{'
  std::size_t body_end = 0;    // offset one past the closing '}'
  bool hot = false;   // purity root (`// vprofile-lint: hot`)
  bool cold = false;  // traversal boundary (`// vprofile-lint: cold`)
  /// Indices of every function a call token in this body may refer to.
  std::vector<std::size_t> callees;
};

/// The whole-project view shared by the passes.
struct ProjectGraph {
  std::vector<ProjectFile> files;          // sorted by path
  std::vector<IncludeEdge> includes;       // in (file, line) order
  std::vector<FunctionDef> functions;      // in (file, body_begin) order
  /// name -> indices into `functions`; multi-target by design.
  std::map<std::string, std::vector<std::size_t>> functions_by_name;

  /// Index of the file with exactly this path, or IncludeEdge::npos.
  std::size_t file_index(const std::string& path) const;

  /// Builds every graph layer from repo-relative path -> source text.
  static ProjectGraph build(const std::map<std::string, std::string>& sources);
};

/// The declarative architecture spec (tools/lint/layers.spec): one layer
/// per line, bottom first, `layer <name>: <dir> <dir>...`.  A file may
/// include project headers only from its own or a lower layer.
struct LayerSpec {
  struct Layer {
    std::string name;
    std::vector<std::string> dirs;  // e.g. "src/core", "tools"
  };
  std::vector<Layer> layers;  // index 0 = bottom

  /// Parses the spec text; returns false and fills *error on a malformed
  /// line (everything after '#' is a comment).
  bool parse(const std::string& text, std::string* error);

  /// Layer index owning `path`, or -1 when no layer claims it.  The
  /// longest matching dir prefix wins, so "src/core" beats "src".
  int layer_of(const std::string& path) const;

  /// Name of layer `index` ("?" when out of range).
  const std::string& layer_name(std::size_t index) const;
};

/// Directory component used in layering messages and ratchet keys:
/// "src/core/model.hpp" -> "src/core", "tools/lint/graph.cpp" -> "tools",
/// "bench/bench_common.cpp" -> "bench".
std::string component_of(const std::string& path);

}  // namespace vplint
