// vprofile_lint: token-level invariant checker for the vProfile codebase.
//
// The linter enforces project rules that the compiler cannot:
//
//   determinism          no rand()/srand()/time()/clock()/getpid() and no
//                        std::random_device — every stochastic quantity must
//                        flow from an explicitly seeded stats::Rng stream,
//                        or the golden tables stop being reproducible.
//   raw-new-delete       no raw new/delete outside allocator shims
//                        (`operator new`/`operator delete` definitions);
//                        containers and values own memory here.
//   unordered-iteration  no iteration over std::unordered_map/_set — the
//                        traversal order is implementation-defined and any
//                        scored or golden-file output fed from it would
//                        differ across standard libraries.
//   float-eq             no ==/!= against floating-point literals; exact
//                        comparisons belong on integers or via an epsilon.
//   unit-cast            no casts between the strong unit types from
//                        core/units.hpp (static_cast<units::X>(...) or
//                        re-wrapping units::A{units::B{...}.value()}) —
//                        dimension changes go through the named conversion
//                        helpers so they are visible and checked.
//   metric-name          literal names handed to the obs::MetricsRegistry
//                        factories (.counter/.gauge/.histogram) must be
//                        snake_case with a unit suffix (_ns, _bytes,
//                        _total), keeping the exported series greppable
//                        and unit-unambiguous.
//   simd-boundary        no raw SIMD intrinsics (_mm_*/_mm256_*/_mm512_*)
//                        or vector register types (__m128/__m256/__m512)
//                        outside src/linalg/simd_* — all vector code goes
//                        through the runtime dispatch boundary
//                        (linalg/simd_dispatch.hpp) so a binary never
//                        executes an ISA the CPU check did not approve and
//                        the scalar oracle stays the single reference.
//   seed-literal         no integer-literal seeds at the seeded entry
//                        points (units::Seed64{1234}, stats::Rng(42),
//                        ScenarioRunner(7)) — seeds must come from the
//                        bench seed catalog (bench::bench_seed) or be
//                        derived from an upstream seed
//                        (sim::derive_stream_seed), so every random
//                        stream in a published artifact traces back to
//                        one audited catalog entry.
//
// Scanning is token-level over comment- and string-stripped source: no
// libclang, no compiler dependency. A finding can be suppressed where a
// human has judged it safe with a trailing or preceding comment:
//
//     if (p + r == 0.0) return 0.0;  // vprofile-lint: allow(float-eq)
//
// The suppression names the rule explicitly so grep can audit every
// exemption in the tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace vplint {

/// One rule violation at a source location.
struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Knobs for lint_source. Defaults match the repository layout.
struct Options {
  /// Files whose path contains one of these substrings are exempt from the
  /// determinism rule: the seeded-stream helper legitimately names the
  /// engine machinery it wraps.
  std::vector<std::string> determinism_allowlist = {"src/stats/rng.hpp"};
  /// Files whose path contains one of these substrings may use raw SIMD
  /// intrinsics: the dispatched kernel implementations themselves.
  std::vector<std::string> simd_allowlist = {"src/linalg/simd_"};
  /// Files whose path contains one of these substrings may construct
  /// seeds from integer literals: the bench seed catalog is the one
  /// sanctioned home for them.
  std::vector<std::string> seed_literal_allowlist = {"bench/bench_common.cpp"};
};

/// Source text with comments and string/char-literal bodies blanked out.
struct ScrubbedSource {
  /// Same length as the input; every stripped character becomes a space,
  /// newlines are preserved so offsets map to the original lines.
  std::string code;
  /// line (1-based) -> rule names suppressed there via
  /// `vprofile-lint: allow(rule, ...)`. A suppression covers the comment's
  /// own line and the line after it (for standalone suppression lines).
  std::map<std::size_t, std::set<std::string>> allowed;
  /// Lines carrying a `vprofile-lint: hot` marker: the next function
  /// definition is a hot-path purity root (see passes_purity.cpp).
  std::set<std::size_t> hot_lines;
  /// Lines carrying a `vprofile-lint: cold` marker: the next function
  /// definition is a sanctioned boundary — the purity traversal neither
  /// descends into it nor scans its body.
  std::set<std::size_t> cold_lines;
};

/// Strips comments, string literals (including raw strings) and character
/// literals, collecting suppression annotations along the way.
ScrubbedSource scrub(const std::string& source);

/// Runs every rule over one in-memory source file.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const Options& opts = Options{});

/// Like lint_source, but before `allow(...)` suppressions are applied.
/// The project analyzer uses this to tell live suppressions from stale
/// ones (tools/lint/passes_consistency.cpp).
std::vector<Finding> lint_source_raw(const std::string& path,
                                     const std::string& source,
                                     const Options& opts = Options{});

/// Erases findings covered by an `allow(...)` on their own line or on a
/// preceding standalone comment line.  When `used` is non-null, every
/// (line, rule) suppression entry that actually fired is recorded there —
/// an entry of `scrubbed.allowed` absent from `used` afterwards is stale.
void apply_suppressions(
    std::vector<Finding>& findings, const ScrubbedSource& scrubbed,
    std::set<std::pair<std::size_t, std::string>>* used = nullptr);

/// Extracts the "file" entries from a compile_commands.json document
/// (sorted, deduplicated). Tolerates the subset of JSON CMake emits.
std::vector<std::string> files_from_compile_commands(
    const std::string& json_text);

}  // namespace vplint
