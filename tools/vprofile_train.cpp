// vprofile_train — trains a vProfile model from a recorded trace file.
//
// No SA database is required: SAs are decoded from the traces themselves
// and clustered by distance (the "unfortunate" path of Algorithm 2).
//
// Usage:
//   vprofile_train --traces FILE --out MODEL
//                  [--bitrate BPS] [--metric euclidean|mahalanobis]
//                  [--threshold CODE] [--ridge R] [--metrics-out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "io/model_store.hpp"
#include "io/trace_store.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: vprofile_train --traces FILE --out MODEL\n"
               "                      [--bitrate BPS] [--metric "
               "euclidean|mahalanobis]\n"
               "                      [--threshold CODE] [--ridge R]\n"
               "                      [--metrics-out FILE]\n"
               "  --metrics-out writes per-cluster fit latency and counts\n"
               "                (Prometheus exposition)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string traces_path;
  std::string out_path;
  double bitrate = 250e3;
  double threshold = 0.0;  // 0 = estimate from the first trace
  double ridge = 0.0;
  std::string metrics_out;
  vprofile::DistanceMetric metric = vprofile::DistanceMetric::kMahalanobis;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--traces") {
      traces_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--bitrate") {
      bitrate = std::atof(next());
    } else if (arg == "--threshold") {
      threshold = std::atof(next());
    } else if (arg == "--ridge") {
      ridge = std::atof(next());
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--metric") {
      const std::string m = next();
      if (m == "euclidean") {
        metric = vprofile::DistanceMetric::kEuclidean;
      } else if (m == "mahalanobis") {
        metric = vprofile::DistanceMetric::kMahalanobis;
      } else {
        usage();
        return 2;
      }
    } else {
      usage();
      return 2;
    }
  }
  if (traces_path.empty() || out_path.empty()) {
    usage();
    return 2;
  }

  std::string error;
  const auto traces = io::load_traces_file(traces_path, &error);
  if (!traces) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (traces->traces.empty()) {
    std::fprintf(stderr, "error: trace file is empty\n");
    return 1;
  }
  if (threshold <= 0.0) {
    threshold = vprofile::estimate_bit_threshold(traces->traces.front());
    std::printf("estimated bit threshold: %.0f codes\n", threshold);
  }

  const vprofile::ExtractionConfig extraction =
      vprofile::make_extraction_config(
          units::SampleRateHz{traces->sample_rate_hz},
          units::BitRateBps{bitrate}, threshold);

  std::vector<vprofile::EdgeSet> edge_sets;
  std::size_t failures = 0;
  for (const dsp::Trace& trace : traces->traces) {
    if (auto es = vprofile::extract_edge_set(trace, extraction)) {
      edge_sets.push_back(std::move(*es));
    } else {
      ++failures;
    }
  }
  std::printf("extracted %zu edge sets (%zu failures)\n", edge_sets.size(),
              failures);

  obs::MetricsRegistry registry;
  vprofile::TrainingConfig cfg;
  cfg.metric = metric;
  cfg.extraction = extraction;
  cfg.ridge = ridge;
  cfg.metrics = metrics_out.empty() ? nullptr : &registry;
  const auto outcome = vprofile::train_by_distance(edge_sets, cfg);
  if (!outcome.ok()) {
    std::fprintf(stderr, "training failed: %s\n", outcome.error.c_str());
    return 1;
  }
  if (outcome.ridge_used > 0.0) {
    std::printf("note: covariance needed ridge %.3g\n", outcome.ridge_used);
  }

  if (!io::save_model_file(*outcome.model, out_path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  if (!metrics_out.empty()) {
    obs::RunManifest manifest = obs::RunManifest::create("vprofile_train");
    manifest.config = {{"traces", traces_path},
                       {"out", out_path},
                       {"metric", to_string(metric)},
                       {"threshold", std::to_string(threshold)},
                       {"ridge", std::to_string(ridge)}};
    std::string werr;
    if (!obs::write_text_file(metrics_out,
                              obs::to_prometheus(registry.samples(), &manifest),
                              &werr)) {
      std::fprintf(stderr, "error: %s\n", werr.c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  std::printf("trained %zu clusters (%s) -> %s\n",
              outcome.model->clusters().size(), to_string(metric),
              out_path.c_str());
  for (const auto& cl : outcome.model->clusters()) {
    std::printf("  %-10s sas=[", cl.name.c_str());
    for (std::size_t i = 0; i < cl.sas.size(); ++i) {
      std::printf("%s0x%02X", i ? " " : "", cl.sas[i]);
    }
    std::printf("]  n=%zu  max_dist=%.3f\n", cl.edge_set_count,
                cl.max_distance);
  }
  return 0;
}
