// vprofile_replay — re-runs detection from a flight-recorder incident
// bundle and verifies the recorded verdicts bit-identically.
//
// Usage:
//   vprofile_replay BUNDLE.json [--verbose]
//
// The bundle is self-describing: the manifest pins the run (vehicle,
// seed, training count, worker count), the context carries the exact
// DetectionConfig, and every evidence record keeps its extracted feature
// vector as exact doubles (%.17g round-trips bit-for-bit through
// strtod).  Replay retrains the same model from the same seed, rebuilds
// the detection config, re-scores every generation-0 record that
// retained its features, and compares the verdict code, the cluster
// attribution, and the min_distance / confidence doubles *by bit
// pattern* — an incident bundle is a reproducible test case, not a log.
//
// Records from promoted model generations (> 0) are skipped: online
// retraining folds live traffic the bundle does not carry, so only the
// trained-from-seed generation is reproducible offline.
//
// Exit codes: 0 = every verifiable record reproduced bit-identically;
// 1 = at least one mismatch; 2 = unusable bundle / usage error.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/edge_set.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "io/json.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

void usage() {
  std::fprintf(stderr, "usage: vprofile_replay BUNDLE.json [--verbose]\n");
}

/// Required string lookup; exits 2 with a diagnostic when absent.
std::string need_string(const io::json::Value* obj, const char* key,
                        const char* where) {
  const io::json::Value* v = io::json::get(obj, key);
  if (v == nullptr || !v->is_string()) {
    std::fprintf(stderr, "bundle: missing %s.%s\n", where, key);
    std::exit(2);
  }
  return v->string;
}

/// Manifest config values are strings ("workers": "2"); parse the digits.
std::uint64_t need_config_u64(const io::json::Value* obj, const char* key,
                              const char* where) {
  const std::string s = need_string(obj, key, where);
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::uint64_t need_u64(const io::json::Value* obj, const char* key,
                       const char* where) {
  const io::json::Value* v = io::json::get(obj, key);
  double num = 0.0;
  if (v == nullptr || !io::json::flexible_number(*v, &num) || num < 0) {
    std::fprintf(stderr, "bundle: missing %s.%s\n", where, key);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(num);
}

double need_double(const io::json::Value* obj, const char* key,
                   const char* where) {
  const io::json::Value* v = io::json::get(obj, key);
  double num = 0.0;
  if (v == nullptr || !io::json::flexible_number(*v, &num)) {
    std::fprintf(stderr, "bundle: missing %s.%s\n", where, key);
    std::exit(2);
  }
  return num;
}

/// One evidence record's recorded outcome, as far as replay verifies it.
struct Recorded {
  std::uint64_t seq = 0;
  std::uint8_t sa = 0;
  unsigned verdict_code = 0;
  std::int64_t expected_cluster = -1;
  std::int64_t predicted_cluster = -1;
  double min_distance = 0.0;
  double confidence = 0.0;
  std::vector<double> features;
};

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (bundle_path.empty()) {
      bundle_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (bundle_path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(bundle_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", bundle_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  io::json::Value root;
  std::string parse_error;
  if (!io::json::parse(text, &root, &parse_error)) {
    std::fprintf(stderr, "%s: %s\n", bundle_path.c_str(),
                 parse_error.c_str());
    return 2;
  }
  const io::json::Value* schema = io::json::get(&root, "schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "vprofile-incident-v1") {
    std::fprintf(stderr, "%s: not a vprofile-incident-v1 bundle\n",
                 bundle_path.c_str());
    return 2;
  }

  // The manifest pins the reproducible half of the run; the context pins
  // the detection config the verdicts were produced under.
  const io::json::Value* manifest = io::json::get(&root, "manifest");
  const io::json::Value* config = io::json::get(manifest, "config");
  const io::json::Value* seeds = io::json::get(manifest, "seeds");
  const std::string vehicle_name =
      need_string(config, "vehicle", "manifest.config");
  const std::size_t train_count = static_cast<std::size_t>(
      need_config_u64(config, "train", "manifest.config"));
  const std::size_t workers = static_cast<std::size_t>(
      need_config_u64(config, "workers", "manifest.config"));
  const std::uint64_t seed = need_u64(seeds, "seed", "manifest.seeds");
  if ((vehicle_name != "a" && vehicle_name != "b") || train_count == 0 ||
      workers == 0) {
    std::fprintf(stderr, "bundle: unreplayable manifest config\n");
    return 2;
  }

  const io::json::Value* detection =
      io::json::get(io::json::get(&root, "context"), "detection");
  if (detection == nullptr) {
    std::fprintf(stderr, "bundle: missing context.detection\n");
    return 2;
  }
  vprofile::DetectionConfig dc;
  dc.margin = need_double(detection, "margin", "context.detection");
  dc.saturation_code =
      need_double(detection, "saturation_code", "context.detection");
  dc.dead_code = need_double(detection, "dead_code", "context.detection");
  dc.degraded_fraction =
      need_double(detection, "degraded_fraction", "context.detection");
  dc.flat_run_min = static_cast<std::size_t>(
      need_u64(detection, "flat_run_min", "context.detection"));

  // Rebuild the generation-0 model exactly as vprofile_monitor did:
  // same vehicle preset, same seed, same clean-capture training stream,
  // same thread count (training is thread-count invariant, but match it
  // anyway so any future regression shows up here too).
  std::printf("retraining: vehicle %s, seed %llu, %zu messages...\n",
              vehicle_name.c_str(), static_cast<unsigned long long>(seed),
              train_count);
  const sim::VehicleConfig vc =
      (vehicle_name == "a") ? sim::vehicle_a() : sim::vehicle_b();
  sim::Vehicle vehicle(vc, seed);
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction = sim::default_extraction(vc);
  std::vector<vprofile::EdgeSet> edge_sets;
  edge_sets.reserve(train_count);
  for (const sim::Capture& cap : vehicle.capture(train_count, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      edge_sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  tc.num_threads = workers;
  const vprofile::TrainOutcome trained =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  if (!trained.ok()) {
    std::fprintf(stderr, "retraining failed: %s\n", trained.error.c_str());
    return 2;
  }
  const vprofile::Model& model = *trained.model;

  // Collect every verifiable record: scored (verdict present), features
  // retained, produced by the generation-0 model.
  std::vector<Recorded> records;
  std::size_t skipped = 0;
  const io::json::Value* evidence = io::json::get(&root, "evidence");
  for (const char* part : {"pre", "post"}) {
    const io::json::Value* window = io::json::get(evidence, part);
    if (window == nullptr || !window->is_array()) continue;
    for (const io::json::Value& rec : window->array) {
      const io::json::Value* verdict_code = io::json::get(&rec, "verdict_code");
      const io::json::Value* generation =
          io::json::get(&rec, "model_generation");
      const io::json::Value* features = io::json::get(&rec, "features");
      // A record at the recorder's feature cap may have been truncated —
      // skipping it is honest; "verifying" a prefix is not.
      if (verdict_code == nullptr || !verdict_code->is_number() ||
          features == nullptr || !features->is_array() ||
          features->array.empty() ||
          features->array.size() >= obs::kMaxEvidenceDim ||
          generation == nullptr || !generation->is_number() ||
          static_cast<std::int64_t>(generation->number) != 0) {
        ++skipped;
        continue;
      }
      Recorded r;
      r.seq = need_u64(&rec, "seq", "evidence record");
      r.sa = static_cast<std::uint8_t>(need_u64(&rec, "sa", "record"));
      r.verdict_code = static_cast<unsigned>(verdict_code->number);
      r.expected_cluster = static_cast<std::int64_t>(
          need_double(&rec, "expected_cluster", "record"));
      r.predicted_cluster = static_cast<std::int64_t>(
          need_double(&rec, "predicted_cluster", "record"));
      r.min_distance = need_double(&rec, "min_distance", "record");
      r.confidence = need_double(&rec, "confidence", "record");
      r.features.reserve(features->array.size());
      for (const io::json::Value& f : features->array) {
        double num = 0.0;
        if (!io::json::flexible_number(f, &num)) {
          std::fprintf(stderr, "record %llu: bad feature value\n",
                       static_cast<unsigned long long>(r.seq));
          return 2;
        }
        r.features.push_back(num);
      }
      records.push_back(std::move(r));
    }
  }
  if (records.empty()) {
    std::printf("no verifiable generation-0 records in %s (%zu skipped)\n",
                bundle_path.c_str(), skipped);
    return 0;
  }

  std::size_t mismatches = 0;
  for (const Recorded& r : records) {
    vprofile::EdgeSet es;
    es.sa = r.sa;
    es.samples = r.features;
    const vprofile::Detection det = vprofile::detect(model, es, dc);
    const std::int64_t expected =
        det.expected_cluster
            ? static_cast<std::int64_t>(*det.expected_cluster)
            : -1;
    const std::int64_t predicted =
        det.predicted_cluster
            ? static_cast<std::int64_t>(*det.predicted_cluster)
            : -1;
    const bool ok = static_cast<unsigned>(det.verdict) == r.verdict_code &&
                    expected == r.expected_cluster &&
                    predicted == r.predicted_cluster &&
                    bits_equal(det.min_distance, r.min_distance) &&
                    bits_equal(det.confidence, r.confidence);
    if (!ok) {
      ++mismatches;
      std::fprintf(
          stderr,
          "MISMATCH seq=%llu: recorded verdict=%u dist=%.17g conf=%.17g "
          "exp=%lld pred=%lld; replayed verdict=%u dist=%.17g conf=%.17g "
          "exp=%lld pred=%lld\n",
          static_cast<unsigned long long>(r.seq), r.verdict_code,
          r.min_distance, r.confidence, static_cast<long long>(r.expected_cluster),
          static_cast<long long>(r.predicted_cluster),
          static_cast<unsigned>(det.verdict), det.min_distance,
          det.confidence, static_cast<long long>(expected),
          static_cast<long long>(predicted));
    } else if (verbose) {
      std::printf("ok seq=%llu verdict=%u dist=%.17g\n",
                  static_cast<unsigned long long>(r.seq), r.verdict_code,
                  r.min_distance);
    }
  }

  std::printf("%s: %zu/%zu records reproduced bit-identically (%zu skipped)\n",
              bundle_path.c_str(), records.size() - mismatches,
              records.size(), skipped);
  return mismatches != 0 ? 1 : 0;
}
