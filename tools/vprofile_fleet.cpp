// vprofile_fleet — multi-tenant fleet service over the hardened binary
// wire protocol, plus the matching ingest client.
//
// Server mode (default): trains one model per tenant, starts the sharded
// FleetService (threaded shards, per-tenant checkpoint directories under
// --checkpoint-root), the loopback wire acceptor, and a status endpoint
// with fleet-wide /statusz plus per-tenant /statusz/tenant/<id>.
//
//   vprofile_fleet [--tenants N] [--tenant ID]... [--vehicle a|b]
//                  [--seed S] [--train N] [--shards K] [--ingest-port P]
//                  [--status-port P] [--checkpoint-root DIR]
//                  [--governor-window W --governor-quota Q]
//                  [--admission-window W --admission-quota Q]
//                  [--expect-drain]
//
// Tenant ids default to truck-1..truck-N.  Each tenant's model is trained
// on clean traffic from a vehicle seeded by derive_stream_seed(seed, id),
// so a client using the same --seed and --tenant produces traffic the
// tenant's own profile recognises.  --expect-drain exits once every
// tenant reaches a terminal state (drained or evicted) — the CI smoke
// uses it for a deterministic shutdown; without it the server runs until
// SIGINT/SIGTERM.
//
// Client mode: synthesizes a labeled stream for one tenant and ships it
// over the wire, optionally torn into --chunk-byte writes to exercise
// reassembly, ending with a drain frame unless --no-drain.
//
//   vprofile_fleet --send --port P --tenant ID [--count N] [--seed S]
//                  [--vehicle a|b] [--hijack P] [--chunk BYTES]
//                  [--no-drain]
//
// Both halves print the exact "listening on" lines scripts poll for,
// mirroring vprofile_monitor.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "core/units.hpp"
#include "fleet/fleet_service.hpp"
#include "fleet/ingest_server.hpp"
#include "fleet/wire.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/status_server.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/scenario.hpp"
#include "sim/vehicle.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) {
  if (g_stop_requested != 0) std::_Exit(130);
  g_stop_requested = 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: vprofile_fleet [--tenants N] [--tenant ID]... [--vehicle a|b]\n"
      "                      [--seed S] [--train N] [--shards K]\n"
      "                      [--ingest-port P] [--status-port P]\n"
      "                      [--checkpoint-root DIR] [--expect-drain]\n"
      "                      [--governor-window W --governor-quota Q]\n"
      "                      [--admission-window W --admission-quota Q]\n"
      "       vprofile_fleet --send --port P --tenant ID [--count N]\n"
      "                      [--seed S] [--vehicle a|b] [--hijack P]\n"
      "                      [--chunk BYTES] [--no-drain]\n"
      "  server: one supervised pipeline per tenant behind the wire\n"
      "  acceptor; --expect-drain exits when every tenant is terminal\n"
      "  client: streams one tenant's synthetic traffic over the wire\n");
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Trains one tenant's profile on clean traffic from its own vehicle.
std::optional<vprofile::Model> train_tenant_model(
    const sim::VehicleConfig& config, units::Seed64 seed,
    std::size_t train_count, std::string* error) {
  sim::Vehicle vehicle(config, seed);
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction =
      sim::default_extraction(config);
  std::vector<vprofile::EdgeSet> edge_sets;
  edge_sets.reserve(train_count);
  for (const sim::Capture& cap : vehicle.capture(train_count, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      edge_sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  const vprofile::TrainOutcome trained =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  if (!trained.ok()) {
    if (error != nullptr) *error = trained.error;
    return std::nullopt;
  }
  return trained.model;
}

int run_client(std::uint16_t port, const std::string& tenant,
               const std::string& vehicle_name, std::uint64_t seed,
               std::size_t count, double hijack_prob,
               std::size_t chunk_bytes, bool drain) {
  const sim::VehicleConfig config =
      vehicle_name == "a" ? sim::vehicle_a() : sim::vehicle_b();
  sim::Vehicle vehicle(config,
                       sim::derive_stream_seed(units::Seed64{seed}, tenant));
  const analog::Environment env = analog::Environment::reference();
  const std::vector<sim::LabeledCapture> stream =
      sim::make_hijack_stream(vehicle, count, hijack_prob, env);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "connect 127.0.0.1:%u: %s\n",
                 static_cast<unsigned>(port), std::strerror(errno));
    ::close(fd);
    return 1;
  }

  std::string bytes;
  std::uint64_t seq = 0;
  for (const sim::LabeledCapture& lc : stream) {
    fleet::wire::Frame frame;
    frame.tenant = tenant;
    frame.seq = seq++;
    frame.samples = lc.capture.codes;
    bytes += fleet::wire::encode(frame);
  }
  if (drain) {
    fleet::wire::Frame frame;
    frame.kind = fleet::wire::FrameKind::kDrain;
    frame.tenant = tenant;
    frame.seq = seq;
    bytes += fleet::wire::encode(frame);
  }

  const std::size_t chunk = chunk_bytes == 0 ? bytes.size() : chunk_bytes;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n =
        off + chunk > bytes.size() ? bytes.size() - off : chunk;
    if (!send_all(fd, bytes.data() + off, n)) {
      std::fprintf(stderr, "send failed: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
  }
  ::shutdown(fd, SHUT_WR);
  ::close(fd);
  std::printf("sent %llu frames (%zu bytes) for tenant %s%s\n",
              static_cast<unsigned long long>(seq), bytes.size(),
              tenant.c_str(), drain ? " + drain" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool send_mode = false;
  std::size_t tenant_count = 2;
  std::vector<std::string> tenant_ids;
  std::string vehicle_name = "a";
  std::uint64_t seed = 1;
  std::size_t train_count = 1500;
  std::size_t shards = 4;
  int ingest_port = 0;
  int status_port = -1;
  std::string checkpoint_root;
  bool expect_drain = false;
  std::size_t governor_window = 0;
  std::size_t governor_quota = 0;
  std::size_t admission_window = 0;
  std::size_t admission_quota = 0;
  // client
  int port = -1;
  std::size_t count = 400;
  double hijack_prob = 0.05;
  std::size_t chunk_bytes = 0;
  bool drain = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--send") {
      send_mode = true;
    } else if (arg == "--tenants") {
      tenant_count = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--tenant") {
      tenant_ids.emplace_back(next());
    } else if (arg == "--vehicle") {
      vehicle_name = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--train") {
      train_count = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--ingest-port") {
      ingest_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--status-port") {
      status_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--checkpoint-root") {
      checkpoint_root = next();
    } else if (arg == "--expect-drain") {
      expect_drain = true;
    } else if (arg == "--governor-window") {
      governor_window =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--governor-quota") {
      governor_quota =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--admission-window") {
      admission_window =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--admission-quota") {
      admission_quota =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--port") {
      port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--hijack") {
      hijack_prob = std::atof(next());
    } else if (arg == "--chunk") {
      chunk_bytes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--no-drain") {
      drain = false;
    } else {
      usage();
      return 2;
    }
  }
  if (vehicle_name != "a" && vehicle_name != "b") {
    usage();
    return 2;
  }

  if (send_mode) {
    if (port <= 0 || port > 65535 || tenant_ids.size() != 1) {
      std::fprintf(stderr, "--send requires --port and exactly one --tenant\n");
      return 2;
    }
    return run_client(static_cast<std::uint16_t>(port), tenant_ids[0],
                      vehicle_name, seed, count, hijack_prob, chunk_bytes,
                      drain);
  }

  if (tenant_ids.empty()) {
    for (std::size_t i = 1; i <= tenant_count; ++i) {
      tenant_ids.push_back("truck-" + std::to_string(i));
    }
  }
  if (tenant_ids.empty() || shards == 0 || ingest_port < 0 ||
      ingest_port > 65535 || status_port > 65535) {
    usage();
    return 2;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  obs::MetricsRegistry registry;
  obs::RunManifest manifest = obs::RunManifest::create("vprofile_fleet");
  manifest.seeds.emplace_back("seed", seed);
  manifest.config = {
      {"vehicle", vehicle_name},
      {"tenants", std::to_string(tenant_ids.size())},
      {"shards", std::to_string(shards)},
      {"train", std::to_string(train_count)},
  };

  const sim::VehicleConfig config =
      vehicle_name == "a" ? sim::vehicle_a() : sim::vehicle_b();

  fleet::FleetConfig fc;
  fc.num_shards = shards;
  fc.threaded = true;
  fc.checkpoint_root = checkpoint_root;
  fc.admission_window = admission_window;
  fc.admission_quota = admission_quota;
  fc.metrics = &registry;
  fc.tenant.governor_window = governor_window;
  fc.tenant.governor_quota = governor_quota;
  fc.tenant.supervisor.lockstep = true;
  fc.tenant.supervisor.pipeline.num_workers = 1;
  fc.tenant.supervisor.pipeline.queue_capacity = 64;
  fc.tenant.supervisor.pipeline.detection =
      sim::scenario_detection_config(config, 0.0);
  fc.tenant.supervisor.checkpoint_every = 256;
  fleet::FleetService service(fc);

  std::printf("training %zu tenant profiles (%zu clean messages each)...\n",
              tenant_ids.size(), train_count);
  for (const std::string& id : tenant_ids) {
    std::string err;
    auto model = train_tenant_model(
        config, sim::derive_stream_seed(units::Seed64{seed}, id), train_count,
        &err);
    if (!model) {
      std::fprintf(stderr, "tenant %s: training failed: %s\n", id.c_str(),
                   err.c_str());
      return 1;
    }
    if (!service.register_tenant(id, std::move(*model), &err)) {
      std::fprintf(stderr, "tenant %s: %s\n", id.c_str(), err.c_str());
      return 1;
    }
    std::printf("  tenant %s -> shard %zu\n", id.c_str(),
                fleet::shard_of(id, shards));
  }

  fleet::IngestServerConfig ic;
  ic.port = static_cast<std::uint16_t>(ingest_port);
  fleet::IngestServer ingest(&service, ic);
  std::string err;
  if (!ingest.start(&err)) {
    std::fprintf(stderr, "ingest server: %s\n", err.c_str());
    return 1;
  }
  // Scripts poll stdout for this exact line to learn ephemeral ports.
  std::printf("fleet ingest listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(ingest.port()));
  std::fflush(stdout);

  obs::StatusServer server;
  if (status_port >= 0) {
    server.bind_metrics(&registry);
    server.route("/healthz", [&](const std::string&) {
      obs::StatusResponse resp;
      resp.body = "ok\n";
      return resp;
    });
    server.route("/metrics", [&](const std::string&) {
      obs::StatusResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::to_prometheus(registry.samples(), &manifest);
      return resp;
    });
    server.route("/statusz", [&](const std::string&) {
      obs::StatusResponse resp;
      resp.content_type = "application/json";
      resp.body = service.statusz_json() + "\n";
      return resp;
    });
    server.route_prefix("/statusz/tenant/", [&](const std::string& path) {
      obs::StatusResponse resp;
      const std::string id =
          path.substr(sizeof("/statusz/tenant/") - 1);
      const auto snap = service.tenant(id);
      if (!snap) {
        resp.status = 404;
        resp.body = "unknown tenant\n";
        return resp;
      }
      resp.content_type = "application/json";
      std::string body = "{\"id\":" + obs::json_quote(snap->id);
      body += ",\"state\":" +
              obs::json_quote(fleet::to_string(snap->state));
      body += ",\"reason\":" + obs::json_quote(snap->reason);
      body += ",\"shard\":" + std::to_string(snap->shard);
      body += ",\"frames_accepted\":" +
              std::to_string(snap->frames_accepted);
      body += ",\"frames_handled\":" +
              std::to_string(snap->supervisor.frames_handled);
      body += ",\"wire_frames\":" + std::to_string(snap->transport.frames);
      body += ",\"decode_errors\":" +
              std::to_string(snap->transport.decode_errors);
      body += ",\"generations\":" + std::to_string(snap->generations) + "}\n";
      resp.body = std::move(body);
      return resp;
    });
    if (!server.start(static_cast<std::uint16_t>(status_port), &err)) {
      std::fprintf(stderr, "status server: %s\n", err.c_str());
      return 1;
    }
    std::printf("status server listening on http://127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
  }

  // Serve until every tenant is terminal (--expect-drain) or a stop
  // signal arrives.
  for (;;) {
    if (g_stop_requested != 0) break;
    if (expect_drain) {
      bool all_terminal = true;
      for (const fleet::TenantSnapshot& snap : service.tenants()) {
        if (snap.state != fleet::TenantState::kDrained &&
            snap.state != fleet::TenantState::kEvicted) {
          all_terminal = false;
          break;
        }
      }
      if (all_terminal) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ingest.stop();
  service.finish();
  server.stop();

  const fleet::FleetStats fs = service.stats();
  const fleet::IngestServerStats is = ingest.stats();
  std::printf("\nfleet: %llu offered, %llu accepted, %llu shed, "
              "%llu admission-rejected\n",
              static_cast<unsigned long long>(fs.frames_offered),
              static_cast<unsigned long long>(fs.frames_accepted),
              static_cast<unsigned long long>(fs.frames_shed),
              static_cast<unsigned long long>(fs.admission_rejected));
  std::printf("wire:  %llu frames, %llu errors (%llu unattributed), "
              "%llu dup, %llu gaps; %llu conns, %llu bytes, %llu resyncs\n",
              static_cast<unsigned long long>(fs.wire_frames),
              static_cast<unsigned long long>(fs.wire_errors),
              static_cast<unsigned long long>(fs.wire_unattributed_errors),
              static_cast<unsigned long long>(fs.wire_duplicates),
              static_cast<unsigned long long>(fs.wire_gaps),
              static_cast<unsigned long long>(is.connections_accepted),
              static_cast<unsigned long long>(is.bytes_received),
              static_cast<unsigned long long>(is.resyncs));
  std::printf("lifecycle: %llu quarantines, %llu revivals, %llu evictions\n",
              static_cast<unsigned long long>(fs.quarantines),
              static_cast<unsigned long long>(fs.revivals),
              static_cast<unsigned long long>(fs.evictions));
  for (const fleet::TenantSnapshot& snap : service.tenants()) {
    std::printf(
        "  tenant %-12s shard=%zu state=%-11s handled=%llu wire=%llu "
        "gaps=%llu fingerprint=0x%016llx\n",
        snap.id.c_str(), snap.shard, fleet::to_string(snap.state),
        static_cast<unsigned long long>(snap.supervisor.frames_handled),
        static_cast<unsigned long long>(snap.transport.frames),
        static_cast<unsigned long long>(snap.transport.gaps_detected),
        static_cast<unsigned long long>(snap.fingerprint));
  }
  std::printf("fleet fingerprint 0x%016llx\n",
              static_cast<unsigned long long>(service.fingerprint()));
  return 0;
}
