#include "bench_common.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bench {

units::Seed64 bench_seed(std::string_view bench_name) {
  // One entry per bench binary (plus one per table where a binary prints
  // several).  Change a value here and the corresponding printed artifact
  // legitimately changes; nothing else may reseed.
  static constexpr std::array<std::pair<std::string_view, std::uint64_t>,
                              19>
      kSeeds{{
          {"fig2_5_4_2_profiles", 2500},
          {"fig3_1_sampling_effects", 3100},
          {"fig4_4_stddev", 4400},
          {"table4_1", 4100},
          {"table4_2", 4200},
          {"table4_3", 4300},
          {"table4_4", 4400},
          {"table4_5_distance_quotient", 4500},
          {"table4_6_4_7_sampling_sweep", 4600},
          {"table4_8_temperature", 4800},
          {"table4_9_voltage", 4900},
          {"table5_1_cluster_thresholds", 5100},
          {"table5_2_edge_sets", 5200},
          {"baselines", 6100},
          {"fault_matrix", 0xbe7cafe},
          {"fusion", 7700},
          {"latency", 777},
          {"online_update", 6400},
          {"pipeline", 2024},
      }};
  for (const auto& [name, seed] : kSeeds) {
    if (name == bench_name) return units::Seed64{seed};
  }
  std::fprintf(stderr, "bench_seed: unknown bench name\n");
  std::abort();
}

double bench_scale() {
  const char* env = std::getenv("VPROFILE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 1000.0);
}

std::size_t scaled(std::size_t nominal) {
  const double v = static_cast<double>(nominal) * bench_scale();
  return std::max<std::size_t>(200, static_cast<std::size_t>(v));
}

sim::ExperimentParams default_params(vprofile::DistanceMetric metric) {
  sim::ExperimentParams p;
  p.metric = metric;
  p.train_count = scaled(3000);
  p.test_count = scaled(12000);
  p.hijack_prob = 0.2;
  return p;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  (bench scale %.2fx; set VPROFILE_BENCH_SCALE to change)\n",
              bench_scale());
  std::printf("================================================================\n");
}

void print_result(const std::string& label, const sim::ExperimentResult& r,
                  const std::string& paper_reference) {
  if (!r.ok()) {
    std::printf("%s\n  TRAINING FAILED: %s\n  paper: %s\n", label.c_str(),
                r.error.c_str(), paper_reference.c_str());
    return;
  }
  std::printf("%s", r.confusion.to_table(label).c_str());
  std::printf("  margin=%.3f  extraction_failures=%zu\n", r.margin,
              r.extraction_failures);
  std::printf("  paper: %s\n", paper_reference.c_str());
}

void run_three_tests(const std::string& table_name,
                     const sim::VehicleConfig& config, units::Seed64 seed,
                     vprofile::DistanceMetric metric,
                     const std::string& paper_fp,
                     const std::string& paper_hijack,
                     const std::string& paper_foreign) {
  print_header(table_name + " — " + config.name + ", " +
               to_string(metric) + " distance");

  {
    sim::Experiment exp(config, seed);
    print_result("(a) False positive test",
                 exp.false_positive_test(default_params(metric)), paper_fp);
  }
  {
    sim::Experiment exp(config, seed + 1);
    print_result("(b) Hijack imitation test",
                 exp.hijack_test(default_params(metric)), paper_hijack);
  }
  {
    sim::Experiment exp(config, seed + 2);
    print_result("(c) Foreign device imitation test",
                 exp.foreign_test(default_params(metric)), paper_foreign);
  }
}

}  // namespace bench
