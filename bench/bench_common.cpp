#include "bench_common.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace bench {

namespace {

struct ReportSection {
  std::string name;
  std::uint64_t wall_ns = 0;
  ReportMetrics metrics;
};

/// Process-wide report state.  Benches are single-threaded mains, so no
/// locking; static storage keeps the linter's raw-new rule happy.
struct Report {
  bool open = false;
  bool written = false;
  std::string name;
  obs::RunManifest manifest;
  std::vector<ReportSection> sections;
  ReportMetrics scalars;
  std::chrono::steady_clock::time_point mark;
};

Report& report() {
  static Report r;
  return r;
}

void note_seed(std::string_view name, units::Seed64 seed) {
  Report& r = report();
  if (!r.open || r.written) return;
  for (const auto& [existing, _] : r.manifest.seeds) {
    if (existing == name) return;
  }
  r.manifest.seeds.emplace_back(std::string(name), seed.value());
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void write_report_at_exit() { write_report(); }

}  // namespace

units::Seed64 bench_seed(std::string_view bench_name) {
  // One entry per bench binary (plus one per table where a binary prints
  // several).  Change a value here and the corresponding printed artifact
  // legitimately changes; nothing else may reseed.
  static constexpr std::array<std::pair<std::string_view, std::uint64_t>,
                              21>
      kSeeds{{
          {"fig2_5_4_2_profiles", 2500},
          {"fleet", 0xf1ee7},
          {"fig3_1_sampling_effects", 3100},
          {"fig4_4_stddev", 4400},
          {"frontier", 0xf407e2},
          {"table4_1", 4100},
          {"table4_2", 4200},
          {"table4_3", 4300},
          {"table4_4", 4400},
          {"table4_5_distance_quotient", 4500},
          {"table4_6_4_7_sampling_sweep", 4600},
          {"table4_8_temperature", 4800},
          {"table4_9_voltage", 4900},
          {"table5_1_cluster_thresholds", 5100},
          {"table5_2_edge_sets", 5200},
          {"baselines", 6100},
          {"fault_matrix", 0xbe7cafe},
          {"fusion", 7700},
          {"latency", 777},
          {"online_update", 6400},
          {"pipeline", 2024},
      }};
  for (const auto& [name, seed] : kSeeds) {
    if (name == bench_name) {
      // Every catalog lookup lands in the open report's manifest, so the
      // JSON records exactly the seeds the run actually drew from.
      note_seed(name, units::Seed64{seed});
      return units::Seed64{seed};
    }
  }
  std::fprintf(stderr, "bench_seed: unknown bench name\n");
  std::abort();
}

double bench_scale() {
  const char* env = std::getenv("VPROFILE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 1000.0);
}

std::size_t scaled(std::size_t nominal) {
  const double v = static_cast<double>(nominal) * bench_scale();
  return std::max<std::size_t>(200, static_cast<std::size_t>(v));
}

sim::ExperimentParams default_params(vprofile::DistanceMetric metric) {
  sim::ExperimentParams p;
  p.metric = metric;
  p.train_count = scaled(3000);
  p.test_count = scaled(12000);
  p.hijack_prob = 0.2;
  return p;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  (bench scale %.2fx; set VPROFILE_BENCH_SCALE to change)\n",
              bench_scale());
  std::printf("================================================================\n");
  // A header opens a new phase: reset the mark so setup between phases is
  // not attributed to the next result's section.
  Report& r = report();
  if (r.open && !r.written) r.mark = std::chrono::steady_clock::now();
}

void print_result(const std::string& label, const sim::ExperimentResult& r,
                  const std::string& paper_reference) {
  if (!r.ok()) {
    std::printf("%s\n  TRAINING FAILED: %s\n  paper: %s\n", label.c_str(),
                r.error.c_str(), paper_reference.c_str());
    report_mark(label, {{"trained", 0.0}});
    return;
  }
  std::printf("%s", r.confusion.to_table(label).c_str());
  std::printf("  margin=%.3f  extraction_failures=%zu\n", r.margin,
              r.extraction_failures);
  std::printf("  paper: %s\n", paper_reference.c_str());
  report_mark(
      label,
      {{"trained", 1.0},
       {"tp", static_cast<double>(r.confusion.true_positives())},
       {"tn", static_cast<double>(r.confusion.true_negatives())},
       {"fp", static_cast<double>(r.confusion.false_positives())},
       {"fn", static_cast<double>(r.confusion.false_negatives())},
       {"precision", r.confusion.precision()},
       {"recall", r.confusion.recall()},
       {"f_score", r.confusion.f_score()},
       {"accuracy", r.confusion.accuracy()},
       {"margin", r.margin},
       {"extraction_failures", static_cast<double>(r.extraction_failures)}});
}

void run_three_tests(const std::string& table_name,
                     const sim::VehicleConfig& config, units::Seed64 seed,
                     vprofile::DistanceMetric metric,
                     const std::string& paper_fp,
                     const std::string& paper_hijack,
                     const std::string& paper_foreign) {
  print_header(table_name + " — " + config.name + ", " +
               to_string(metric) + " distance");

  {
    sim::Experiment exp(config, seed);
    print_result("(a) False positive test",
                 exp.false_positive_test(default_params(metric)), paper_fp);
  }
  {
    sim::Experiment exp(config, seed + 1);
    print_result("(b) Hijack imitation test",
                 exp.hijack_test(default_params(metric)), paper_hijack);
  }
  {
    sim::Experiment exp(config, seed + 2);
    print_result("(c) Foreign device imitation test",
                 exp.foreign_test(default_params(metric)), paper_foreign);
  }
}

void open_report(std::string_view name) {
  Report& r = report();
  if (r.open) return;
  r.open = true;
  r.name = std::string(name);
  r.manifest = obs::RunManifest::create("bench_" + r.name);
  r.manifest.config.emplace_back("scale", json_number(bench_scale()));
  r.mark = std::chrono::steady_clock::now();
  std::atexit(write_report_at_exit);
}

void report_section_ns(const std::string& section, std::uint64_t wall_ns,
                       const ReportMetrics& metrics) {
  Report& r = report();
  if (!r.open || r.written) return;
  r.sections.push_back(ReportSection{section, wall_ns, metrics});
  r.mark = std::chrono::steady_clock::now();
}

void report_mark(const std::string& section, const ReportMetrics& metrics) {
  Report& r = report();
  if (!r.open || r.written) return;
  const auto now = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - r.mark)
          .count());
  r.sections.push_back(ReportSection{section, ns, metrics});
  r.mark = now;
}

void report_scalar(const std::string& key, double value) {
  Report& r = report();
  if (!r.open || r.written) return;
  r.scalars.emplace_back(key, value);
}

bool write_report() {
  Report& r = report();
  if (!r.open || r.written) return false;
  r.written = true;

  // Latency distribution over the section wall times: power-of-two
  // buckets from 1 us up past half an hour, so full-scale table benches
  // never land in the overflow bucket.
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1024; bounds.size() < 32; b *= 2) bounds.push_back(b);
  obs::Histogram hist(std::move(bounds));
  for (const ReportSection& s : r.sections) hist.observe(s.wall_ns);
  const obs::HistogramSnapshot h = hist.snapshot();

  std::string out = "{\"bench\":" + obs::json_quote(r.name);
  out += ",\"manifest\":" + r.manifest.to_json();
  out += ",\"sections\":[";
  for (std::size_t i = 0; i < r.sections.size(); ++i) {
    const ReportSection& s = r.sections[i];
    if (i != 0) out += ',';
    out += "{\"name\":" + obs::json_quote(s.name);
    out += ",\"wall_ns\":" + std::to_string(s.wall_ns);
    out += ",\"metrics\":{";
    for (std::size_t m = 0; m < s.metrics.size(); ++m) {
      if (m != 0) out += ',';
      out += obs::json_quote(s.metrics[m].first) + ":" +
             json_number(s.metrics[m].second);
    }
    out += "}}";
  }
  out += "],\"scalars\":{";
  for (std::size_t i = 0; i < r.scalars.size(); ++i) {
    if (i != 0) out += ',';
    out += obs::json_quote(r.scalars[i].first) + ":" +
           json_number(r.scalars[i].second);
  }
  out += "},\"latency_ns\":{";
  out += "\"count\":" + std::to_string(h.count);
  out += ",\"mean\":" + json_number(h.mean());
  out += ",\"p50\":" + std::to_string(h.p50());
  out += ",\"p90\":" + std::to_string(h.p90());
  out += ",\"p99\":" + std::to_string(h.p99());
  out += ",\"max\":" + std::to_string(h.max);
  out += "}}\n";

  std::string path = "BENCH_" + r.name + ".json";
  if (const char* dir = std::getenv("VPROFILE_BENCH_JSON_DIR")) {
    if (dir[0] != '\0') path = std::string(dir) + "/" + path;
  }
  std::string error;
  if (!obs::write_text_file(path, out, &error)) {
    std::fprintf(stderr, "bench report: %s\n", error.c_str());
    return false;
  }
  std::printf("\nbench report -> %s\n", path.c_str());
  return true;
}

}  // namespace bench
