// Reproduces Table 5.1: the per-cluster extraction threshold enhancement
// (Section 5.1).
//
// Two models are trained from the same Vehicle A traffic: one extracting
// every edge set with the fixed global bit threshold, one re-extracting
// each ECU's traces with that ECU's own threshold (midpoint of min/max of
// the first half of the message, ACK excluded).
//
// Paper shape to reproduce: per-ECU standard deviation and maximum
// Mahalanobis distance change only marginally — improving for some ECUs
// and degrading for others — without affecting detection on these
// vehicles.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"
#include "stats/welford.hpp"

int main() {
  bench::open_report("table5_1_cluster_thresholds");
  bench::print_header(
      "Table 5.1 — fixed vs per-cluster extraction thresholds, Vehicle A");

  sim::Vehicle vehicle(sim::vehicle_a(),
                       bench::bench_seed("table5_1_cluster_thresholds"));
  const auto base = sim::default_extraction(vehicle.config());
  const std::size_t num_ecus = vehicle.config().ecus.size();
  const auto caps =
      vehicle.capture(bench::scaled(4000), analog::Environment::reference());

  // Pass 1: per-ECU thresholds from each ECU's own traces (Section 5.1's
  // "mean of the maximum and minimum values from the first half").
  std::vector<double> cluster_threshold(num_ecus, 0.0);
  std::vector<std::size_t> counts(num_ecus, 0);
  for (const auto& cap : caps) {
    cluster_threshold[cap.true_ecu] +=
        vprofile::estimate_bit_threshold(cap.codes);
    ++counts[cap.true_ecu];
  }
  for (std::size_t e = 0; e < num_ecus; ++e) {
    cluster_threshold[e] /= static_cast<double>(counts[e]);
  }

  // Extract with both threshold policies and train a model per policy.
  auto train_with = [&](bool per_cluster) {
    std::vector<vprofile::EdgeSet> sets;
    for (const auto& cap : caps) {
      vprofile::ExtractionConfig cfg = base;
      if (per_cluster) cfg.bit_threshold = cluster_threshold[cap.true_ecu];
      if (auto es = vprofile::extract_edge_set(cap.codes, cfg)) {
        sets.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = vprofile::DistanceMetric::kMahalanobis;
    cfg.extraction = base;
    return vprofile::train_with_database(sets, vehicle.database(), cfg);
  };

  const auto fixed = train_with(false);
  const auto clustered = train_with(true);
  if (!fixed.ok() || !clustered.ok()) {
    std::printf("training failed: %s %s\n", fixed.error.c_str(),
                clustered.error.c_str());
    return 1;
  }

  // Per-ECU statistics: std-dev of edge-set samples around the cluster
  // mean (in ADC codes) and maximum Mahalanobis distance.
  auto stats_of = [&](const vprofile::Model& model, bool per_cluster) {
    std::vector<stats::Welford> spread(num_ecus);
    std::vector<double> max_dist(num_ecus, 0.0);
    for (const auto& cap : caps) {
      vprofile::ExtractionConfig cfg = base;
      if (per_cluster) cfg.bit_threshold = cluster_threshold[cap.true_ecu];
      const auto es = vprofile::extract_edge_set(cap.codes, cfg);
      if (!es) continue;
      const auto cluster = model.cluster_of(es->sa);
      if (!cluster) continue;
      const auto& mean = model.clusters()[*cluster].mean;
      for (std::size_t i = 0; i < mean.size(); ++i) {
        spread[*cluster].add(es->samples[i] - mean[i]);
      }
      max_dist[*cluster] = std::max(
          max_dist[*cluster], model.distance(*cluster, es->samples));
    }
    return std::make_pair(std::move(spread), std::move(max_dist));
  };

  auto [fixed_spread, fixed_max] = stats_of(*fixed.model, false);
  auto [clust_spread, clust_max] = stats_of(*clustered.model, true);

  std::printf("\n%-6s %18s %18s %14s %14s\n", "ECU", "stddev (fixed)",
              "stddev (cluster)", "maxD (fixed)", "maxD (cluster)");
  for (std::size_t e = 0; e < num_ecus; ++e) {
    std::printf("%-6zu %18.3f %18.3f %14.3f %14.3f\n", e,
                fixed_spread[e].stddev(), clust_spread[e].stddev(),
                fixed_max[e], clust_max[e]);
  }
  std::printf(
      "\npaper (Table 5.1): stddev 152.9..190.6 codes, max distance "
      "10.5..21.1; cluster thresholds improve some ECUs (2, 4) and degrade "
      "others slightly, without changing detection\n");
  return 0;
}
