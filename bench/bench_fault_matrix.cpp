// Fault-injection matrix: every attack kind replayed through every canned
// analog fault profile on Vehicle A, scored end-to-end through the
// streaming pipeline via the scenario layer.
//
// Paper argument to support: a voltage IDS deployed on a real tap must
// degrade gracefully — Sagong et al. (2019) show that analog corruption
// (overcurrent, signal tampering) can otherwise silently blind or flood a
// fingerprinting monitor.  The table shows, per cell, how many captures
// were confidently classified (confusion + recall/FPR), how many the
// quality gate turned into degraded verdicts, and how many failed
// extraction outright — never a crash, never a silent pass.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "faults/fault.hpp"
#include "sim/scenario.hpp"

namespace {

constexpr double kMargin = 12.0;

const char* attack_label(sim::AttackKind kind) { return sim::to_string(kind); }

}  // namespace

int main() {
  bench::open_report("fault_matrix");
  bench::print_header(
      "Fault-injection matrix — Vehicle A, margin 12, quality gating on");

  const std::vector<sim::AttackKind> attacks = {
      sim::AttackKind::kNone, sim::AttackKind::kHijack,
      sim::AttackKind::kForeign, sim::AttackKind::kMasquerade,
      sim::AttackKind::kImitationSweep};
  const std::vector<faults::FaultProfile> profiles =
      faults::canned_profiles();

  std::printf("%-16s %-12s %5s %5s %5s %5s  %6s %6s  %5s %5s\n", "attack",
              "fault", "tp", "tn", "fp", "fn", "recall", "fpr", "degr",
              "xfail");

  sim::ScenarioRunner runner(bench::bench_seed("fault_matrix"));
  for (sim::AttackKind attack : attacks) {
    for (const faults::FaultProfile& profile : profiles) {
      sim::Scenario s;
      s.attack = attack;
      s.faults = profile;
      s.margin = kMargin;
      s.test_count = bench::scaled(400);
      const sim::ScenarioResult r = runner.run(s);
      if (!r.ok()) {
        std::printf("%-16s %-12s training failed: %s\n", attack_label(attack),
                    profile.name.c_str(), r.error.c_str());
        continue;
      }
      const auto& m = r.metrics;
      const double negatives = static_cast<double>(
          m.confusion.true_negatives() + m.confusion.false_positives());
      const double fpr =
          negatives > 0.0
              ? static_cast<double>(m.confusion.false_positives()) /
                    negatives
              : 0.0;
      std::printf(
          "%-16s %-12s %5llu %5llu %5llu %5llu  %6.3f %6.3f  %5zu %5zu\n",
          attack_label(attack), profile.name.c_str(),
          static_cast<unsigned long long>(m.confusion.true_positives()),
          static_cast<unsigned long long>(m.confusion.true_negatives()),
          static_cast<unsigned long long>(m.confusion.false_positives()),
          static_cast<unsigned long long>(m.confusion.false_negatives()),
          m.confusion.recall(), fpr, m.degraded, m.extraction_failures);
    }
  }
  std::printf(
      "\nEvery capture lands in exactly one bucket: confusion matrix\n"
      "(confident verdicts), degraded (quality gate refused to guess) or\n"
      "extraction failures (no decodable message in the trace).\n");
  return 0;
}
