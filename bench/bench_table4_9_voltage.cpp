// Reproduces Table 4.9 and Figs 4.7 / 4.8: the battery-voltage / electrical
// load experiment.
//
// Procedure (Section 4.4.2): with the vehicle in accessory mode (battery
// only, ~12.61 V, sagging to ~12.54 V under load), train on quiet
// accessory-mode data, then replay high-power events: lights, A/C, both
// together, plus an engine-start (13.60 V) comparison.
//
// Paper shape to reproduce: a perfect detection rate (Table 4.9 shows 0
// FP in 840k messages); the distance percent-deltas are minimal, with the
// largest increase during/after the heaviest load (Fig 4.7); across
// repeated trials the distance creeps upward (Fig 4.8, attributed to
// slow temperature rise).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"
#include "stats/interval.hpp"

namespace {

constexpr double kAmbientC = 28.4;

struct Event {
  const char* name;
  analog::Environment env;
};

}  // namespace

int main() {
  bench::open_report("table4_9_voltage");
  bench::print_header(
      "Table 4.9 / Figs 4.7, 4.8 — high-power vehicle functions, Vehicle A");

  sim::Experiment exp(sim::vehicle_a(),
                      bench::bench_seed("table4_9_voltage"));
  sim::ExperimentParams params =
      bench::default_params(vprofile::DistanceMetric::kMahalanobis);
  // Quiet accessory mode.
  params.env = analog::accessory_mode(units::Celsius{kAmbientC});

  auto trained = exp.train(params);
  if (!trained.ok()) {
    std::printf("training failed: %s\n", trained.error.c_str());
    return 1;
  }
  const vprofile::Model& model = *trained.model;
  const double margin = 3.0;

  // The confusion matrix covers the accessory-mode load events; the
  // engine-start row is reported for the Fig 4.7 delta only (the paper's
  // Table 4.9 likewise scores the high-power accessory functions, with
  // the 13.60 V alternator level noted separately).
  const std::vector<Event> events = {
      {"lights", analog::accessory_under_load(units::Volts{0.03},
                                              units::Celsius{kAmbientC})},
      {"A/C", analog::accessory_under_load(units::Volts{0.05},
                                           units::Celsius{kAmbientC})},
      {"lights+A/C",
       analog::accessory_under_load(units::Volts{0.07},
                                    units::Celsius{kAmbientC})},
  };
  const Event engine{"engine start",
                     analog::engine_running(units::Celsius{kAmbientC})};

  auto distances_under = [&](const analog::Environment& env) {
    std::vector<double> dists;
    for (const auto& cap :
         exp.vehicle().capture(bench::scaled(3000), env)) {
      const auto es =
          vprofile::extract_edge_set(cap.codes, model.extraction());
      if (!es) continue;
      const auto cluster = model.cluster_of(es->sa);
      if (!cluster) continue;
      dists.push_back(model.distance(*cluster, es->samples));
    }
    return dists;
  };

  const auto baseline = distances_under(params.env);
  const auto base_ci = stats::mean_confidence_interval(baseline, 0.99);

  stats::BinaryConfusion table;
  std::printf("\nFig 4.7 — distance %%-delta vs quiet accessory mode "
              "(99%% CI)\n");
  std::printf("%-14s %14s %18s %12s\n", "event", "battery (V)",
              "%-delta (CI)", "FPs");
  for (const Event& ev : events) {
    const auto dists = distances_under(ev.env);
    const auto ci = stats::mean_confidence_interval(dists, 0.99);
    const double delta = (ci.mean - base_ci.mean) / base_ci.mean * 100.0;
    const double half = ci.half_width / base_ci.mean * 100.0;

    // Score a fresh replay of this event against the per-cluster
    // thresholds.
    std::uint64_t fps = 0;
    for (const auto& cap :
         exp.vehicle().capture(bench::scaled(1500), ev.env)) {
      const auto es =
          vprofile::extract_edge_set(cap.codes, model.extraction());
      if (!es) continue;
      const auto cluster = model.cluster_of(es->sa);
      if (!cluster) continue;
      const double d = model.distance(*cluster, es->samples);
      const bool flagged =
          d > model.clusters()[*cluster].max_distance + margin;
      table.add(false, flagged);
      fps += flagged;
    }
    std::printf("%-14s %14.2f %+11.1f%%+-%4.1f %12llu\n", ev.name,
                ev.env.battery.value(), delta, half,
                static_cast<unsigned long long>(fps));
  }

  {
    // Engine start shifts the supply by ~1 V; report its delta without
    // scoring it against the accessory-mode model.
    const auto dists = distances_under(engine.env);
    const auto ci = stats::mean_confidence_interval(dists, 0.99);
    std::printf("%-14s %14.2f %+11.1f%%+-%4.1f %12s\n", engine.name,
                engine.env.battery.value(),
                (ci.mean - base_ci.mean) / base_ci.mean * 100.0,
                ci.half_width / base_ci.mean * 100.0, "(not scored)");
  }

  std::printf("\n%s",
              table.to_table("Table 4.9 — high-power functions confusion "
                             "matrix").c_str());
  std::printf("  paper: 0 FP / 840,625 msgs; largest distance increase "
              "during/after lights+A/C\n");

  // Fig 4.8: trial-to-trial creep. The paper attributes the upward drift
  // across trials to slow bus warming; we replay accessory mode with a
  // slowly rising temperature.
  std::printf("\nFig 4.8 — accessory-mode trials vs trial 1 (%%-delta)\n");
  for (int trial = 2; trial <= 5; ++trial) {
    const double temp = kAmbientC + 2.5 * (trial - 1);  // slow bus warming
    const auto dists =
        distances_under(
            analog::Environment{units::Celsius{temp}, units::Volts{12.61}});
    const auto ci = stats::mean_confidence_interval(dists, 0.99);
    const double delta = (ci.mean - base_ci.mean) / base_ci.mean * 100.0;
    std::printf("  trial %d: %+6.1f%% +- %4.1f%%\n", trial, delta,
                ci.half_width / base_ci.mean * 100.0);
  }
  std::printf("  paper: overall increase in distance over successive "
              "trials\n");
  return 0;
}
