// Reproduces Tables 4.1 and 4.2: confusion matrices for the false
// positive, hijack imitation, and foreign device imitation tests on
// Vehicles A and B using Euclidean distance.
//
// Paper shape to reproduce: Euclidean is near-perfect on Vehicle A's
// distinct profiles for the FP and hijack tests, collapses on the foreign
// device test (F = 0.00065), and degrades across the board on Vehicle B's
// close profiles (FP accuracy 0.886).
#include "bench_common.hpp"
#include "sim/presets.hpp"

int main() {
  bench::open_report("table4_1_4_2_euclidean");
  bench::run_three_tests(
      "Table 4.1", sim::vehicle_a(), bench::bench_seed("table4_1"),
      vprofile::DistanceMetric::kEuclidean,
      "accuracy 0.99994 (50 FP / 841,241 msgs)",
      "F-score 0.99989",
      "F-score 0.00065 (foreign device slips inside the Euclidean radius)");

  bench::run_three_tests(
      "Table 4.2", sim::vehicle_b(), bench::bench_seed("table4_2"),
      vprofile::DistanceMetric::kEuclidean,
      "accuracy 0.88606",
      "F-score 0.80637",
      "F-score 0.42205");
  return 0;
}
