// Reproduces Table 4.8 and Fig 4.6: the temperature-variance experiment.
//
// Procedure (Section 4.4.1): idle the vehicle with the engine running
// (battery pinned at 13.60 V by the alternator), train on data captured in
// the -5..0 C band, then replay data from 0..25 C in 5-degree bins.
//
// Paper shape to reproduce: a handful of false positives, all in the
// hottest (20-25 C) bin, which disappear when 20 C data is added to the
// training set; the Mahalanobis distance percent-delta grows with
// temperature — drastically for the engine-mounted ECUs (0 and 2), subtly
// for the rest (Fig 4.6).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"
#include "stats/interval.hpp"

namespace {

constexpr double kBatteryV = 13.60;

}  // namespace

int main() {
  bench::open_report("table4_8_temperature");
  bench::print_header("Table 4.8 / Fig 4.6 — temperature variance, Vehicle A");

  sim::Experiment exp(sim::vehicle_a(),
                      bench::bench_seed("table4_8_temperature"));
  sim::ExperimentParams params =
      bench::default_params(vprofile::DistanceMetric::kMahalanobis);
  // The -5..0 C band.
  params.env =
      analog::Environment{units::Celsius{-2.5}, units::Volts{kBatteryV}};

  auto trained = exp.train(params);
  if (!trained.ok()) {
    std::printf("training failed: %s\n", trained.error.c_str());
    return 1;
  }
  const vprofile::Model& model = *trained.model;
  const std::size_t num_ecus = model.clusters().size();

  // Fixed margin chosen once from the training band, as a deployment
  // would; the paper held its margin while sweeping temperature.
  const double margin = 4.0;

  // Baseline per-ECU mean distance in the training band (for Fig 4.6's
  // percent delta).
  const auto mean_distances = [&](double temp) {
    std::vector<std::vector<double>> dists(num_ecus);
    const auto caps = exp.vehicle().capture(
        bench::scaled(3000),
        analog::Environment{units::Celsius{temp}, units::Volts{kBatteryV}});
    for (const auto& cap : caps) {
      const auto es =
          vprofile::extract_edge_set(cap.codes, model.extraction());
      if (!es) continue;
      const auto cluster = model.cluster_of(es->sa);
      if (!cluster) continue;
      dists[*cluster].push_back(model.distance(*cluster, es->samples));
    }
    return dists;
  };
  const auto baseline = mean_distances(-2.5);

  // Table 4.8: confusion matrix over the full 0..25 C replay.
  stats::BinaryConfusion table;
  std::map<int, std::uint64_t> fp_by_bin;
  std::printf("\nFig 4.6 — Mahalanobis distance %%-delta vs -5..0 C training"
              " (99%% CI)\n");
  std::printf("%-12s", "bin");
  for (std::size_t e = 0; e < num_ecus; ++e) std::printf("   ECU %zu        ", e);
  std::printf("\n");

  for (int bin = 0; bin < 5; ++bin) {
    const double temp = 2.5 + 5.0 * bin;  // bin midpoints 2.5..22.5
    const auto dists = mean_distances(temp);
    std::printf("%2d-%2d C     ", bin * 5, bin * 5 + 5);
    for (std::size_t e = 0; e < num_ecus; ++e) {
      const auto base_ci =
          stats::mean_confidence_interval(baseline[e], 0.99);
      const auto ci = stats::mean_confidence_interval(dists[e], 0.99);
      const double delta =
          (ci.mean - base_ci.mean) / base_ci.mean * 100.0;
      const double half = ci.half_width / base_ci.mean * 100.0;
      std::printf(" %+7.1f%%+-%4.1f", delta, half);
    }
    std::printf("\n");

    // Score this bin for the confusion matrix.
    for (std::size_t e = 0; e < num_ecus; ++e) {
      for (double d : dists[e]) {
        const bool fp = d > model.clusters()[e].max_distance + margin;
        table.add(false, fp);
        if (fp) ++fp_by_bin[bin];
      }
    }
  }

  std::printf("\n%s", table.to_table("Table 4.8 — temperature confusion "
                                     "matrix (0..25 C replay)").c_str());
  std::printf("  false positives by bin:");
  for (int bin = 0; bin < 5; ++bin) {
    std::printf(" [%d-%d C]=%llu", bin * 5, bin * 5 + 5,
                static_cast<unsigned long long>(fp_by_bin[bin]));
  }
  std::printf("\n  paper: 4 FP / 5,775,557 msgs, all between 20 and 25 C\n");
  std::printf(
      "  paper Fig 4.6: distance increases with temperature for all ECUs; "
      "drastic for ECUs 0 and 2, subtle for the others\n");

  // The paper's fix: fold hot data into the training set.
  {
    sim::Experiment retrain(sim::vehicle_a(),
                            bench::bench_seed("table4_8_temperature"));
    std::vector<vprofile::EdgeSet> sets;
    for (double temp : {-2.5, 22.5}) {
      for (const auto& cap : retrain.vehicle().capture(
               bench::scaled(2000),
               analog::Environment{units::Celsius{temp},
                                   units::Volts{kBatteryV}})) {
        if (auto es =
                vprofile::extract_edge_set(cap.codes, model.extraction())) {
          sets.push_back(std::move(*es));
        }
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = vprofile::DistanceMetric::kMahalanobis;
    cfg.extraction = model.extraction();
    const auto wide = vprofile::train_with_database(
        sets, retrain.vehicle().database(), cfg);
    if (wide.ok()) {
      stats::BinaryConfusion fixed;
      const auto caps = retrain.vehicle().capture(
          bench::scaled(4000),
          analog::Environment{units::Celsius{22.5},
                              units::Volts{kBatteryV}});
      for (const auto& cap : caps) {
        const auto es =
            vprofile::extract_edge_set(cap.codes, wide.model->extraction());
        if (!es) continue;
        const auto cluster = wide.model->cluster_of(es->sa);
        if (!cluster) continue;
        const double d = wide.model->distance(*cluster, es->samples);
        fixed.add(false,
                  d > wide.model->clusters()[*cluster].max_distance + margin);
      }
      std::printf(
          "\nAfter adding 20-25 C data to training: %llu FP / %llu msgs "
          "(paper: all false positives disappear)\n",
          static_cast<unsigned long long>(fixed.false_positives()),
          static_cast<unsigned long long>(fixed.total()));
    }
  }
  return 0;
}
