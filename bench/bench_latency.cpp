// Microbenchmarks (google-benchmark) backing the paper's latency claims
// (Section 1.3): vProfile "minimizes latency since it requires analyzing
// only a section at the beginning of messages" and uses a single-feature
// detection step cheap enough for embedded hardware.
//
// Benchmarked stages: waveform synthesis (simulator cost, not part of a
// deployment), edge-set extraction, Euclidean and Mahalanobis distances,
// full detection, online update, and training.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/batch_scorer.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/online_update.hpp"
#include "core/trainer.hpp"
#include "linalg/mahalanobis.hpp"
#include "linalg/simd_dispatch.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

/// Lazily built shared state so every benchmark reuses one capture set.
struct Shared {
  sim::Vehicle vehicle{sim::vehicle_a(), bench::bench_seed("latency")};
  vprofile::ExtractionConfig extraction =
      sim::default_extraction(vehicle.config());
  std::vector<sim::Capture> captures;
  std::vector<vprofile::EdgeSet> edge_sets;
  vprofile::Model model;

  static Shared& get() {
    static Shared s;
    return s;
  }

 private:
  Shared()
      : captures(vehicle.capture(1200, analog::Environment::reference())),
        model(make_model()) {
    for (const auto& cap : captures) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        edge_sets.push_back(std::move(*es));
      }
    }
  }

  vprofile::Model make_model() {
    std::vector<vprofile::EdgeSet> sets;
    for (const auto& cap :
         vehicle.capture(1500, analog::Environment::reference())) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        sets.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = vprofile::DistanceMetric::kMahalanobis;
    cfg.extraction = extraction;
    auto outcome =
        vprofile::train_with_database(sets, vehicle.database(), cfg);
    if (!outcome.ok()) throw std::runtime_error(outcome.error);
    return std::move(*outcome.model);
  }
};

void BM_WaveformSynthesis(benchmark::State& state) {
  Shared& s = Shared::get();
  canbus::DataFrame frame;
  frame.id = s.vehicle.config().ecus[0].messages[0].id;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.vehicle.synthesize_message(
        frame, 0, analog::Environment::reference()));
  }
}
BENCHMARK(BM_WaveformSynthesis);

void BM_EdgeSetExtraction(benchmark::State& state) {
  Shared& s = Shared::get();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vprofile::extract_edge_set(
        s.captures[i % s.captures.size()].codes, s.extraction));
    ++i;
  }
}
BENCHMARK(BM_EdgeSetExtraction);

void BM_EuclideanDistance(benchmark::State& state) {
  Shared& s = Shared::get();
  const auto& x = s.edge_sets.front().samples;
  const auto& mu = s.model.clusters().front().mean;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::euclidean_distance(x, mu));
  }
}
BENCHMARK(BM_EuclideanDistance);

void BM_MahalanobisDistance(benchmark::State& state) {
  Shared& s = Shared::get();
  const auto& x = s.edge_sets.front().samples;
  const auto& cl = s.model.clusters().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        linalg::mahalanobis_distance_inv(x, cl.mean, cl.inv_covariance));
  }
}
BENCHMARK(BM_MahalanobisDistance);

void BM_Detection(benchmark::State& state) {
  Shared& s = Shared::get();
  const vprofile::DetectionConfig dc{4.0};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vprofile::detect(s.model, s.edge_sets[i % s.edge_sets.size()], dc));
    ++i;
  }
}
BENCHMARK(BM_Detection);

/// SoA batch scoring over the whole capture set, one backend per arm.
/// The benchmark name carries the backend label and the batch-size Arg,
/// so BENCH_latency.json sections read e.g. BM_BatchDetect/avx2/batch:32.
/// Compare against BM_Detection (the per-frame path) at batch:1-era cost.
void BM_BatchDetect(benchmark::State& state,
                    linalg::simd::Backend requested) {
  Shared& s = Shared::get();
  const vprofile::ScoringPlan plan(s.model, requested);
  if (plan.backend() != requested) {
    state.SkipWithError("requested backend unavailable on this host");
    return;
  }
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  vprofile::BatchScorer scorer(plan);
  std::vector<const vprofile::EdgeSet*> ptrs;
  ptrs.reserve(s.edge_sets.size());
  for (const vprofile::EdgeSet& es : s.edge_sets) ptrs.push_back(&es);
  std::vector<vprofile::Detection> out(ptrs.size());
  const vprofile::DetectionConfig dc{4.0};
  for (auto _ : state) {
    for (std::size_t i = 0; i < ptrs.size(); i += batch) {
      const std::size_t chunk = std::min(batch, ptrs.size() - i);
      scorer.detect(ptrs.data() + i, chunk, dc, out.data() + i);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(ptrs.size())));
}
BENCHMARK_CAPTURE(BM_BatchDetect, scalar, linalg::simd::Backend::kScalar)
    ->ArgName("batch")
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_BatchDetect, avx2, linalg::simd::Backend::kAvx2)
    ->ArgName("batch")
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_BatchDetect, fixed, linalg::simd::Backend::kFixed)
    ->ArgName("batch")
    ->Arg(32);

void BM_DetectionEndToEnd(benchmark::State& state) {
  // Extraction + detection: the full per-message cost a deployment pays.
  Shared& s = Shared::get();
  const vprofile::DetectionConfig dc{4.0};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& cap = s.captures[i % s.captures.size()];
    auto es = vprofile::extract_edge_set(cap.codes, s.extraction);
    if (es) {
      benchmark::DoNotOptimize(vprofile::detect(s.model, *es, dc));
    }
    ++i;
  }
}
BENCHMARK(BM_DetectionEndToEnd);

void BM_OnlineUpdate(benchmark::State& state) {
  Shared& s = Shared::get();
  vprofile::Model model = s.model;
  vprofile::OnlineUpdater updater(&model, 1u << 30);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        updater.update(s.edge_sets[i % s.edge_sets.size()]));
    ++i;
  }
}
BENCHMARK(BM_OnlineUpdate);

void BM_Training(benchmark::State& state) {
  Shared& s = Shared::get();
  const std::vector<vprofile::EdgeSet> sets(
      s.edge_sets.begin(),
      s.edge_sets.begin() +
          std::min<std::size_t>(s.edge_sets.size(), 800));
  vprofile::TrainingConfig cfg;
  cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  cfg.extraction = s.extraction;
  const auto db = s.vehicle.database();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vprofile::train_with_database(sets, db, cfg));
  }
}
BENCHMARK(BM_Training)->Unit(benchmark::kMillisecond);

/// ConsoleReporter that additionally lands every run in the bench JSON
/// report: one section per benchmark, wall_ns = adjusted real time per
/// iteration, so the BENCH_latency.json percentiles summarize the
/// distribution across the benchmarked stages.
class ReportingConsole : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // GetAdjustedRealTime() is per-iteration time in run.time_unit.
      const double to_ns =
          1e9 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      bench::report_section_ns(
          run.benchmark_name(),
          static_cast<std::uint64_t>(run.GetAdjustedRealTime() * to_ns),
          {{"iterations", static_cast<double>(run.iterations)},
           {"cpu_ns", run.GetAdjustedCPUTime() * to_ns}});
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::open_report("latency");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ReportingConsole display;
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return 0;
}
