// Reproduces Fig 4.4: the per-sample-index standard deviation of an ECU's
// edge sets.
//
// Paper shape to reproduce: the rising and falling edge samples have
// dramatically higher standard deviation than the overshoot and
// steady-state samples (asynchronous sampling phase makes steep-slope
// samples jittery), despite contributing little to the profile's
// identity.  This is the observation that motivated switching from
// Euclidean to Mahalanobis distance.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "io/csv.hpp"
#include "sim/presets.hpp"
#include "stats/welford.hpp"

int main() {
  bench::open_report("fig4_4_stddev");
  bench::print_header("Fig 4.4 — per-sample-index standard deviation, "
                      "Vehicle A ECU 0");

  sim::Vehicle vehicle(sim::vehicle_a(), bench::bench_seed("fig4_4_stddev"));
  const auto extraction = sim::default_extraction(vehicle.config());
  const std::size_t dim = extraction.dimension();

  stats::VectorWelford acc(dim);
  for (const auto& cap : vehicle.capture(bench::scaled(4000),
                                         analog::Environment::reference())) {
    if (cap.true_ecu != 0) continue;
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      acc.add(es->samples);
    }
  }

  bench::report_mark("capture_and_accumulate",
                     {{"edge_sets", static_cast<double>(acc.count())}});
  const auto mean = acc.mean();
  const auto sd = acc.stddev();
  std::printf("\n%8s %12s %12s\n", "index", "mean (cd)", "stddev (cd)");
  for (std::size_t i = 0; i < dim; ++i) {
    // Compact bar rendering of the stddev profile.
    const double max_sd = *std::max_element(sd.begin(), sd.end());
    const int bar = static_cast<int>(40.0 * sd[i] / max_sd);
    std::printf("%8zu %12.0f %12.1f  %s\n", i, mean[i], sd[i],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  // Quantify the edge-vs-steady contrast.
  const std::size_t half = dim / 2;
  double edge_sd = 0.0;
  double steady_sd = 0.0;
  std::size_t edge_n = 0;
  std::size_t steady_n = 0;
  for (std::size_t i = 0; i < dim; ++i) {
    // Edge samples: around the two threshold crossings (prefix boundary).
    const std::size_t crossing =
        (i < half) ? extraction.prefix_len : half + extraction.prefix_len;
    if (i + 2 >= crossing && i <= crossing + 2) {
      edge_sd += sd[i];
      ++edge_n;
    } else if ((i < half && i + 4 < half && i > crossing + 4) ||
               (i >= half && i + 4 < dim && i > crossing + 4)) {
      steady_sd += sd[i];
      ++steady_n;
    }
  }
  edge_sd /= static_cast<double>(std::max<std::size_t>(1, edge_n));
  steady_sd /= static_cast<double>(std::max<std::size_t>(1, steady_n));
  std::printf("\nmean stddev near edges: %.1f codes; in steady regions: "
              "%.1f codes (ratio %.1fx)\n",
              edge_sd, steady_sd, edge_sd / steady_sd);
  bench::report_scalar("edge_to_steady_stddev_ratio", edge_sd / steady_sd);
  std::printf("paper: edges show significantly higher standard deviation "
              "than overshoot/steady state despite contributing little to "
              "the profile\n");

  std::ofstream csv("fig4_4_stddev.csv");
  io::CsvWriter writer(csv);
  writer.write_row(std::vector<std::string>{"index", "mean", "stddev"});
  for (std::size_t i = 0; i < dim; ++i) {
    writer.write_row(std::vector<double>{static_cast<double>(i), mean[i],
                                         sd[i]});
  }
  std::printf("series written to fig4_4_stddev.csv\n");
  return 0;
}
