// Reproduces Tables 4.3 and 4.4: the same three tests on both vehicles
// using Mahalanobis distance — the paper's headline result.
//
// Paper shape to reproduce: essentially perfect scores on both vehicles
// (accuracy 1.00000 FP, F-scores 0.99999/1.00000), including Vehicle B
// where Euclidean failed.
#include "bench_common.hpp"
#include "sim/presets.hpp"

int main() {
  bench::open_report("table4_3_4_4_mahalanobis");
  bench::run_three_tests(
      "Table 4.3", sim::vehicle_a(), bench::bench_seed("table4_3"),
      vprofile::DistanceMetric::kMahalanobis,
      "accuracy 1.00000 (2 FP / 841,241 msgs)",
      "F-score 0.99999",
      "F-score 1.00000");

  bench::run_three_tests(
      "Table 4.4", sim::vehicle_b(), bench::bench_seed("table4_4"),
      vprofile::DistanceMetric::kMahalanobis,
      "accuracy 1.00000",
      "F-score 0.99999",
      "F-score 1.00000");
  return 0;
}
