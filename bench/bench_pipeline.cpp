// bench_pipeline — sequential vs parallel streaming-detection throughput,
// plus the scoring stage in isolation across backends.
//
// Scores one pre-captured hijack stream (Vehicle A) several ways: the
// single-threaded reference (pipeline::score_sequential), the pipeline at
// 1 worker (queue + reorder overhead in isolation), and the pipeline at
// 2/4/8 workers.  Verifies that every parallel verdict stream is
// bit-identical to the sequential one before reporting throughput, and
// also times the parallel trainer.  A second experiment pre-extracts the
// stream's edge sets and times only the scoring stage: the per-frame
// vprofile::detect() loop (the pre-batching baseline) against the SoA
// BatchScorer on each backend (scalar / AVX2 / fixed point), asserting
// bit-identity for the float backends.  Counts scale with
// VPROFILE_BENCH_SCALE like the other benches.  Note: pipeline speedup is
// bounded by the machine's core count — on a single-core container every
// worker arm measures the same work; the scoring-stage arms are
// single-threaded by construction and compare algorithms, not cores.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/batch_scorer.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "linalg/simd_dispatch.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool streams_identical(const std::vector<pipeline::FrameResult>& a,
                       const std::vector<pipeline::FrameResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].dropped != b[i].dropped ||
        a[i].extract_error != b[i].extract_error || a[i].sa != b[i].sa ||
        a[i].detection.has_value() != b[i].detection.has_value()) {
      return false;
    }
    if (a[i].detection &&
        (a[i].detection->verdict != b[i].detection->verdict ||
         a[i].detection->min_distance != b[i].detection->min_distance)) {
      return false;
    }
  }
  return true;
}

bool detections_identical(const std::vector<vprofile::Detection>& a,
                          const std::vector<vprofile::Detection>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool dist_same =
        a[i].min_distance == b[i].min_distance ||
        (std::isnan(a[i].min_distance) && std::isnan(b[i].min_distance));
    if (a[i].verdict != b[i].verdict || !dist_same ||
        a[i].predicted_cluster != b[i].predicted_cluster) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::open_report("pipeline");
  const std::size_t train_count = bench::scaled(2000);
  const std::size_t stream_count = bench::scaled(6000);
  const unsigned hw = std::thread::hardware_concurrency();

  bench::print_header("pipeline throughput: sequential vs parallel");
  std::printf("hardware threads: %u   train %zu msgs, stream %zu msgs\n\n",
              hw, train_count, stream_count);

  const sim::VehicleConfig config = sim::vehicle_a();
  sim::Vehicle vehicle(config, bench::bench_seed("pipeline"));
  const analog::Environment env = analog::Environment::reference();
  const vprofile::ExtractionConfig extraction = sim::default_extraction(config);

  // --- Training: single-threaded vs per-cluster parallel. ---
  std::vector<vprofile::EdgeSet> edge_sets;
  edge_sets.reserve(train_count);
  for (const sim::Capture& cap : vehicle.capture(train_count, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      edge_sets.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  tc.num_threads = 1;
  auto t0 = Clock::now();
  vprofile::TrainOutcome trained =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  const double train_seq_s = seconds_since(t0);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }
  tc.num_threads = 4;
  t0 = Clock::now();
  const vprofile::TrainOutcome trained4 =
      vprofile::train_with_database(edge_sets, vehicle.database(), tc);
  const double train_par_s = seconds_since(t0);
  std::printf("train (%zu edge sets, %zu clusters):\n", edge_sets.size(),
              trained.model->clusters().size());
  std::printf("  1 thread   %7.3f s\n", train_seq_s);
  std::printf("  4 threads  %7.3f s   speedup %.2fx\n\n", train_par_s,
              train_par_s > 0.0 ? train_seq_s / train_par_s : 0.0);
  bench::report_section_ns("train/1-thread",
                           static_cast<std::uint64_t>(train_seq_s * 1e9));
  bench::report_section_ns("train/4-threads",
                           static_cast<std::uint64_t>(train_par_s * 1e9));
  if (!trained4.ok()) {
    std::fprintf(stderr, "parallel training failed: %s\n",
                 trained4.error.c_str());
    return 1;
  }
  const vprofile::Model& model = *trained.model;

  // --- Streaming detection. ---
  std::vector<dsp::Trace> traces;
  traces.reserve(stream_count);
  for (sim::LabeledCapture& lc :
       sim::make_hijack_stream(vehicle, stream_count, 0.2, env)) {
    traces.push_back(std::move(lc.capture.codes));
  }
  const vprofile::DetectionConfig dc{0.5};

  // Pre-extract the stream's edge sets for the scoring-stage arms below.
  // Done before any detection arm runs so the sample vectors get a clean,
  // dense heap layout — extracting after the pipeline arms measurably
  // scatters them across pages churned by per-frame scratch allocations,
  // and the scoring arms would then time the allocator's history instead
  // of the kernels.
  std::vector<vprofile::EdgeSet> stream_sets;
  stream_sets.reserve(traces.size());
  for (const dsp::Trace& trace : traces) {
    if (auto es = vprofile::extract_edge_set(trace, extraction)) {
      stream_sets.push_back(std::move(*es));
    }
  }

  t0 = Clock::now();
  const std::vector<pipeline::FrameResult> reference =
      pipeline::score_sequential(model, traces, dc);
  const double seq_s = seconds_since(t0);
  const double seq_fps = static_cast<double>(traces.size()) / seq_s;
  std::printf("detect (%zu msgs):\n", traces.size());
  std::printf("  sequential  %7.3f s  %9.0f msg/s  (baseline)\n", seq_s,
              seq_fps);
  bench::report_section_ns("detect/sequential",
                           static_cast<std::uint64_t>(seq_s * 1e9),
                           {{"msg_per_s", seq_fps}});

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    pipeline::PipelineConfig pc;
    pc.num_workers = workers;
    pc.queue_capacity = 512;
    pc.detection = dc;
    std::vector<pipeline::FrameResult> results;
    results.reserve(traces.size());
    t0 = Clock::now();
    {
      pipeline::DetectionPipeline pipe(
          model, pc, [&](pipeline::FrameResult&& r) {
            results.push_back(std::move(r));
          });
      for (const dsp::Trace& trace : traces) pipe.submit(trace);
      pipe.finish();
    }
    const double par_s = seconds_since(t0);
    const bool identical = streams_identical(reference, results);
    // Label each arm with the backend its workers actually ran (kAuto
    // resolved against this host) and the configured scoring batch size.
    bench::report_section_ns(
        "detect/" + std::to_string(workers) + "-workers/" +
            linalg::simd::to_string(linalg::simd::resolve(pc.backend)),
        static_cast<std::uint64_t>(par_s * 1e9),
        {{"msg_per_s", static_cast<double>(traces.size()) / par_s},
         {"speedup", seq_s / par_s},
         {"identical", identical ? 1.0 : 0.0},
         {"batch_size", static_cast<double>(pc.batch_size)}});
    std::printf("  %zu worker%s   %7.3f s  %9.0f msg/s  speedup %.2fx  "
                "verdicts %s\n",
                workers, workers == 1 ? " " : "s", par_s,
                static_cast<double>(traces.size()) / par_s, seq_s / par_s,
                identical ? "identical" : "MISMATCH");
    if (!identical) return 1;
  }

  // --- Scoring stage in isolation: per-frame oracle vs SoA batches. ---
  // Extraction was hoisted out (above) so the arms time only feature
  // scoring: the per-frame vprofile::detect() loop is exactly the
  // pre-batching hot path, and every batch arm scores the same edge sets
  // in the same order.  Float backends must reproduce the oracle
  // bit-for-bit; the fixed-point arm is reported but only bound-checked
  // (by the tests).
  std::vector<const vprofile::EdgeSet*> set_ptrs;
  set_ptrs.reserve(stream_sets.size());
  for (const vprofile::EdgeSet& es : stream_sets) set_ptrs.push_back(&es);

  const std::size_t score_reps = 5;
  const double scored_total =
      static_cast<double>(stream_sets.size() * score_reps);

  std::vector<vprofile::Detection> oracle(stream_sets.size());
  t0 = Clock::now();
  for (std::size_t rep = 0; rep < score_reps; ++rep) {
    for (std::size_t i = 0; i < stream_sets.size(); ++i) {
      oracle[i] = vprofile::detect(model, stream_sets[i], dc);
    }
  }
  const double base_s = seconds_since(t0);
  const double base_fps = scored_total / base_s;
  std::printf("\nscoring stage (%zu edge sets x %zu reps):\n",
              stream_sets.size(), score_reps);
  std::printf("  per-frame        %7.3f s  %9.0f msg/s  (baseline)\n",
              base_s, base_fps);
  bench::report_section_ns("score/per-frame",
                           static_cast<std::uint64_t>(base_s * 1e9),
                           {{"batch_size", 1.0}, {"msg_per_s", base_fps}});

  const std::size_t batch = 32;
  struct ScoreArm {
    const char* label;
    linalg::simd::Backend requested;
  };
  const ScoreArm score_arms[] = {
      {"scalar", linalg::simd::Backend::kScalar},
      {"avx2", linalg::simd::Backend::kAvx2},
      {"fixed", linalg::simd::Backend::kFixed},
  };
  for (const ScoreArm& arm : score_arms) {
    const vprofile::ScoringPlan plan(model, arm.requested);
    if (plan.backend() != arm.requested) {
      std::printf("  batch%zu/%-7s %s resolved to %s; skipped\n", batch,
                  arm.label, arm.label,
                  linalg::simd::to_string(plan.backend()));
      continue;
    }
    vprofile::BatchScorer scorer(plan);
    std::vector<vprofile::Detection> got(stream_sets.size());
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < score_reps; ++rep) {
      for (std::size_t i = 0; i < set_ptrs.size(); i += batch) {
        const std::size_t chunk = std::min(batch, set_ptrs.size() - i);
        scorer.detect(set_ptrs.data() + i, chunk, dc, got.data() + i);
      }
    }
    const double arm_s = seconds_since(t0);
    const bool must_match = arm.requested != linalg::simd::Backend::kFixed;
    const bool identical = detections_identical(oracle, got);
    bench::report_section_ns(
        "score/batch" + std::to_string(batch) + "/" + arm.label,
        static_cast<std::uint64_t>(arm_s * 1e9),
        {{"batch_size", static_cast<double>(batch)},
         {"msg_per_s", scored_total / arm_s},
         {"speedup_vs_per_frame", base_s / arm_s},
         {"identical", identical ? 1.0 : 0.0}});
    std::printf("  batch%zu/%-7s  %7.3f s  %9.0f msg/s  speedup %.2fx  "
                "verdicts %s\n",
                batch, arm.label, arm_s, scored_total / arm_s,
                base_s / arm_s,
                identical ? "identical"
                          : (must_match ? "MISMATCH" : "within bound"));
    if (must_match && !identical) return 1;
  }

  std::printf("\nnote: expect ~linear scaling up to the physical core "
              "count; this host reports %u.\n", hw);
  return 0;
}
