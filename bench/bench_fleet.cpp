// bench_fleet — multi-tenant serving throughput through the fleet layer.
//
// Measures the two costs the fleet service adds on top of a bare
// supervised pipeline: the binary wire codec (encode + decode of
// length-prefixed CRC-framed chunks) and the sharded ingest path
// (admission bookkeeping, per-tenant dedup, supervisor dispatch).  Eight
// tenants stream pre-captured benign frames; the same workload runs
// synchronously on 1 and 4 shards and threaded on 4 shards, and every
// arm's per-tenant fingerprints are checked bit-identical before any
// throughput is reported — a fast arm that diverges is a bug, not a win.
// Counts scale with VPROFILE_BENCH_SCALE like the other benches.  On a
// single-core container the threaded arm measures dispatch overhead, not
// parallel speedup.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "dsp/trace.hpp"
#include "fleet/fleet_service.hpp"
#include "fleet/wire.hpp"
#include "sim/attack.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<std::string> tenant_ids(std::size_t count) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back("truck-" + std::to_string(i));
  }
  return ids;
}

fleet::FleetConfig fleet_config(std::size_t shards, bool threaded) {
  fleet::FleetConfig cfg;
  cfg.num_shards = shards;
  cfg.threaded = threaded;
  cfg.tenant.supervisor.lockstep = true;
  cfg.tenant.supervisor.pipeline.num_workers = 1;
  cfg.tenant.supervisor.online_update = false;
  return cfg;
}

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t frames_accepted = 0;
  std::map<std::string, std::uint64_t> fingerprints;
};

/// One full fleet run: register every tenant, interleave the slices
/// round-robin (fixed arrival order), drain, snapshot fingerprints.
RunOutcome run_fleet(const fleet::FleetConfig& cfg,
                     const vprofile::Model& model,
                     const std::vector<std::string>& ids,
                     const std::vector<std::vector<dsp::Trace>>& slices) {
  fleet::FleetService service(cfg);
  for (const std::string& id : ids) {
    if (!service.register_tenant(id, model)) {
      std::fprintf(stderr, "register_tenant(%s) failed\n", id.c_str());
      std::abort();
    }
  }
  const std::size_t frames_per_tenant = slices.front().size();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < frames_per_tenant; ++i) {
    for (std::size_t t = 0; t < ids.size(); ++t) {
      service.ingest(ids[t], slices[t][i]);
    }
  }
  service.finish();
  RunOutcome out;
  out.seconds = seconds_since(t0);
  out.frames_accepted = service.stats().frames_accepted;
  for (const fleet::TenantSnapshot& snap : service.tenants()) {
    out.fingerprints[snap.id] = snap.fingerprint;
  }
  return out;
}

}  // namespace

int main() {
  bench::open_report("fleet");
  const std::size_t train_count = bench::scaled(2000);
  const std::size_t tenant_count = 8;
  const std::size_t frames_per_tenant = bench::scaled(300);

  bench::print_header("fleet service: wire codec + sharded ingest");
  std::printf("%zu tenants, %zu frames/tenant, train %zu msgs\n\n",
              tenant_count, frames_per_tenant, train_count);

  sim::Vehicle vehicle(sim::vehicle_a(), bench::bench_seed("fleet"));
  const analog::Environment env = analog::Environment::reference();
  const auto extraction = sim::default_extraction(vehicle.config());

  std::vector<vprofile::EdgeSet> training;
  training.reserve(train_count);
  for (const sim::Capture& cap : vehicle.capture(train_count, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      training.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig tc;
  tc.extraction = extraction;
  auto trained = vprofile::train_with_database(training, vehicle.database(), tc);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }
  const vprofile::Model model = std::move(*trained.model);

  const std::vector<std::string> ids = tenant_ids(tenant_count);
  const std::size_t total_frames = tenant_count * frames_per_tenant;
  auto stream = sim::make_normal_stream(vehicle, total_frames, env);
  std::vector<std::vector<dsp::Trace>> slices(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    for (std::size_t i = 0; i < frames_per_tenant; ++i) {
      slices[t].push_back(
          std::move(stream[t * frames_per_tenant + i].capture.codes));
    }
  }

  // --- Wire codec: encode then decode the whole fleet's uplink. ---------
  auto t0 = Clock::now();
  std::vector<std::string> chunks;
  chunks.reserve(total_frames);
  std::uint64_t wire_bytes = 0;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    for (std::size_t i = 0; i < frames_per_tenant; ++i) {
      fleet::wire::Frame f;
      f.tenant = ids[t];
      f.seq = i;
      f.samples = slices[t][i];
      chunks.push_back(fleet::wire::encode(f));
      wire_bytes += chunks.back().size();
    }
  }
  const double encode_s = seconds_since(t0);

  t0 = Clock::now();
  fleet::wire::Decoder decoder;
  std::uint64_t decoded = 0;
  for (const std::string& chunk : chunks) {
    decoder.feed(chunk.data(), chunk.size());
    while (const auto ev = decoder.next()) {
      if (ev->frame.has_value()) ++decoded;
    }
  }
  const double decode_s = seconds_since(t0);
  if (decoded != total_frames) {
    std::fprintf(stderr, "wire decode lost frames: %llu of %zu\n",
                 static_cast<unsigned long long>(decoded), total_frames);
    return 1;
  }
  const double mb = static_cast<double>(wire_bytes) / (1024.0 * 1024.0);
  std::printf("wire encode : %7.0f frames/s  (%.1f MiB/s)\n",
              static_cast<double>(total_frames) / encode_s, mb / encode_s);
  std::printf("wire decode : %7.0f frames/s  (%.1f MiB/s)\n\n",
              static_cast<double>(total_frames) / decode_s, mb / decode_s);
  bench::report_section_ns(
      "wire_encode", static_cast<std::uint64_t>(encode_s * 1e9),
      {{"frames_per_s", static_cast<double>(total_frames) / encode_s},
       {"mib_per_s", mb / encode_s}});
  bench::report_section_ns(
      "wire_decode", static_cast<std::uint64_t>(decode_s * 1e9),
      {{"frames_per_s", static_cast<double>(total_frames) / decode_s},
       {"mib_per_s", mb / decode_s}});

  // --- Sharded ingest: sync 1/4 shards, threaded 4 shards. --------------
  struct Arm {
    const char* label;
    std::size_t shards;
    bool threaded;
  };
  const std::vector<Arm> arms = {{"sync    1 shard ", 1, false},
                                 {"sync    4 shards", 4, false},
                                 {"threaded 4 shards", 4, true}};
  std::vector<RunOutcome> outcomes;
  for (const Arm& arm : arms) {
    outcomes.push_back(
        run_fleet(fleet_config(arm.shards, arm.threaded), model, ids, slices));
  }
  // Equivalence gate: every arm must score bit-identically before any
  // throughput number is believed.
  for (std::size_t a = 1; a < outcomes.size(); ++a) {
    if (outcomes[a].fingerprints != outcomes[0].fingerprints) {
      std::fprintf(stderr, "arm '%s' diverged from the reference arm\n",
                   arms[a].label);
      return 1;
    }
  }
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const double fps =
        static_cast<double>(outcomes[a].frames_accepted) / outcomes[a].seconds;
    std::printf("ingest %s : %7.0f frames/s  (%llu accepted, %.2fs)\n",
                arms[a].label, fps,
                static_cast<unsigned long long>(outcomes[a].frames_accepted),
                outcomes[a].seconds);
    std::string key = "ingest_" + std::to_string(arms[a].shards) +
                      (arms[a].threaded ? "_threaded" : "_sync");
    bench::report_section_ns(
        key, static_cast<std::uint64_t>(outcomes[a].seconds * 1e9),
        {{"frames_per_s", fps},
         {"frames_accepted",
          static_cast<double>(outcomes[a].frames_accepted)}});
  }
  std::printf("\nall arms bit-identical per tenant: yes\n");
  bench::report_scalar("tenants", static_cast<double>(tenant_count));
  bench::report_scalar("frames_per_tenant",
                       static_cast<double>(frames_per_tenant));
  return 0;
}
