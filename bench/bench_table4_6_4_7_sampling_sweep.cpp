// Reproduces Tables 4.6 and 4.7: the sampling-rate / resolution sweep.
//
// Vehicle A (native 20 MS/s, 16 bit): rates {20, 10, 5, 2.5} MS/s crossed
// with resolutions {16, 14, 12, 10} bit, three scores per cell (FP
// accuracy, hijack F, foreign F).  Vehicle B (native 10 MS/s, 12 bit):
// rates {10, 5, 2.5} MS/s at native resolution.
//
// Paper shape to reproduce: scores stay >= 0.999 everywhere, with slight
// degradation at the lowest rates; resolutions below 10 bits produce
// singular covariance matrices (reported per cell as "singular").
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sim/presets.hpp"

namespace {

struct Cell {
  std::string fp;
  std::string hijack;
  std::string foreign;
};

std::string fmt(double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.5f", v);
  return buf;
}

Cell run_cell(const sim::VehicleConfig& config, std::uint64_t seed,
              std::size_t factor, int bits) {
  sim::ExperimentParams p =
      bench::default_params(vprofile::DistanceMetric::kMahalanobis);
  // The sweep has 16+3 cells; use lighter counts per cell.
  p.train_count = bench::scaled(2000);
  p.test_count = bench::scaled(5000);
  p.front_end.downsample_factor = factor;
  p.front_end.resolution_bits = bits;

  Cell cell;
  {
    sim::Experiment exp(config, seed);
    const auto r = exp.false_positive_test(p);
    cell.fp = r.ok() ? fmt(r.confusion.accuracy()) : "singular";
  }
  {
    sim::Experiment exp(config, seed + 1);
    const auto r = exp.hijack_test(p);
    cell.hijack = r.ok() ? fmt(r.confusion.f_score()) : "singular";
  }
  {
    sim::Experiment exp(config, seed + 2);
    const auto r = exp.foreign_test(p);
    cell.foreign = r.ok() ? fmt(r.confusion.f_score()) : "singular";
  }
  return cell;
}

}  // namespace

int main() {
  bench::open_report("table4_6_4_7_sampling_sweep");
  bench::print_header(
      "Tables 4.6 / 4.7 — sampling rate and resolution sweep (Mahalanobis)");

  // Vehicle A: 20 MS/s native; factors 1,2,4,8 => 20,10,5,2.5 MS/s.
  const std::vector<std::pair<std::size_t, const char*>> rates_a = {
      {1, "20 MS/s"}, {2, "10 MS/s"}, {4, "5 MS/s"}, {8, "2.5 MS/s"}};
  const std::vector<int> bits_a = {16, 14, 12, 10};

  std::printf("\nTable 4.6 — Vehicle A (FP accuracy / hijack F / foreign F)\n");
  std::printf("%-10s", "bits\\rate");
  for (const auto& [f, name] : rates_a) std::printf(" %28s", name);
  std::printf("\n");
  std::uint64_t seed =
      bench::bench_seed("table4_6_4_7_sampling_sweep").value();
  for (int bits : bits_a) {
    std::printf("%-10d", bits);
    for (const auto& [factor, name] : rates_a) {
      const Cell c = run_cell(sim::vehicle_a(), seed, factor, bits);
      seed += 3;
      std::printf(" %8s/%8s/%8s", c.fp.c_str(), c.hijack.c_str(),
                  c.foreign.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "paper: all cells >= 0.99996, slight drop at 2.5 MS/s; "
      "below 10 bits -> singular covariance matrices\n");

  // The singular-covariance boundary the paper reports.
  {
    const Cell c = run_cell(sim::vehicle_a(), seed, 1, 8);
    seed += 3;
    std::printf("8-bit check (expected singular): FP=%s\n", c.fp.c_str());
  }

  // Vehicle B: 10 MS/s native; factors 1,2,4 => 10,5,2.5 MS/s.
  std::printf("\nTable 4.7 — Vehicle B (12-bit native)\n");
  std::printf("%-10s %12s %12s %12s\n", "rate", "FP acc", "hijack F",
              "foreign F");
  const std::vector<std::pair<std::size_t, const char*>> rates_b = {
      {1, "10 MS/s"}, {2, "5 MS/s"}, {4, "2.5 MS/s"}};
  for (const auto& [factor, name] : rates_b) {
    const Cell c = run_cell(sim::vehicle_b(), seed, factor, 0);
    seed += 3;
    std::printf("%-10s %12s %12s %12s\n", name, c.fp.c_str(),
                c.hijack.c_str(), c.foreign.c_str());
  }
  std::printf(
      "paper: 1.00000 at 10 MS/s; >= 0.999 at 2.5 MS/s "
      "(more pronounced drop than Vehicle A)\n");
  return 0;
}
