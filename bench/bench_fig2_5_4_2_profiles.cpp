// Reproduces Figs 2.5 / 4.2 / 4.5: ECU voltage profiles.
//
// Emits, per ECU, the mean edge-set waveform over 200 traces (the cluster
// means plotted in Fig 4.5) plus an envelope showing trace-to-trace
// spread, and writes the full series to fig2_5_profiles.csv next to the
// binary for plotting.
//
// Paper shape to reproduce: visibly distinct waveforms per ECU (distinct
// dominant levels, overshoot and edge shapes), with traces from the same
// ECU lying almost on top of each other.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "io/csv.hpp"
#include "sim/presets.hpp"
#include "stats/welford.hpp"

int main() {
  bench::open_report("fig2_5_4_2_profiles");
  bench::print_header("Figs 2.5 / 4.2 / 4.5 — ECU voltage profiles, "
                      "Vehicle A (200 traces per ECU)");

  sim::Vehicle vehicle(sim::vehicle_a(),
                       bench::bench_seed("fig2_5_4_2_profiles"));
  const auto extraction = sim::default_extraction(vehicle.config());
  const std::size_t num_ecus = vehicle.config().ecus.size();
  const std::size_t dim = extraction.dimension();

  std::vector<stats::VectorWelford> profiles(num_ecus,
                                             stats::VectorWelford(dim));
  std::size_t captured = 0;
  while (true) {
    bool done = true;
    for (const auto& p : profiles) done &= (p.count() >= 200);
    if (done) break;
    for (const auto& cap :
         vehicle.capture(500, analog::Environment::reference())) {
      const auto es = vprofile::extract_edge_set(cap.codes, extraction);
      if (!es) continue;
      profiles[cap.true_ecu].add(es->samples);
      ++captured;
    }
    if (captured > 20000) break;  // safety net
  }
  bench::report_mark("capture_and_extract",
                     {{"edge_sets", static_cast<double>(captured)}});

  // Terminal rendering: per-ECU summary of the distinguishing features.
  std::printf("\n%-8s %10s %12s %12s %12s %12s\n", "ECU", "traces",
              "steady (cd)", "peak (cd)", "overshoot%", "spread (cd)");
  for (std::size_t e = 0; e < num_ecus; ++e) {
    const auto mean = profiles[e].mean();
    const auto sd = profiles[e].stddev();
    const std::size_t half = dim / 2;
    // Steady level: last rising-window sample; peak: max of the window.
    const double steady = mean[half - 1];
    double peak = 0.0;
    for (std::size_t i = 0; i < half; ++i) peak = std::max(peak, mean[i]);
    double mean_sd = 0.0;
    for (double s : sd) mean_sd += s;
    mean_sd /= static_cast<double>(dim);
    std::printf("%-8zu %10zu %12.0f %12.0f %12.2f %12.1f\n", e,
                profiles[e].count(), steady, peak,
                (peak / steady - 1.0) * 100.0, mean_sd);
  }

  // CSV export for plotting.
  std::ofstream csv("fig2_5_profiles.csv");
  io::CsvWriter writer(csv);
  std::vector<std::string> header = {"sample_index"};
  for (std::size_t e = 0; e < num_ecus; ++e) {
    header.push_back("ecu" + std::to_string(e) + "_mean");
    header.push_back("ecu" + std::to_string(e) + "_stddev");
  }
  writer.write_row(header);
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> row = {static_cast<double>(i)};
    for (std::size_t e = 0; e < num_ecus; ++e) {
      row.push_back(profiles[e].mean()[i]);
      row.push_back(profiles[e].stddev()[i]);
    }
    writer.write_row(row);
  }
  std::printf("\nfull per-sample series written to fig2_5_profiles.csv\n");
  std::printf("paper: two (Fig 2.5) / five (Fig 4.2) clearly distinct "
              "waveforms; same-ECU traces nearly identical\n");

  // Fig 4.5's separation check: the most-similar pair should still have
  // distinct mean profiles.
  double min_mean_gap = 1e300;
  std::size_t a = 0;
  std::size_t b = 1;
  for (std::size_t i = 0; i < num_ecus; ++i) {
    for (std::size_t j = i + 1; j < num_ecus; ++j) {
      const double d = linalg::euclidean_distance(profiles[i].mean(),
                                                  profiles[j].mean());
      if (d < min_mean_gap) {
        min_mean_gap = d;
        a = i;
        b = j;
      }
    }
  }
  std::printf("closest mean profiles: ECU %zu and ECU %zu "
              "(Euclidean gap %.1f codes) — the Fig 4.5 pair\n",
              a, b, min_mean_gap);
  bench::report_scalar("closest_pair_gap_codes", min_mean_gap);
  return 0;
}
