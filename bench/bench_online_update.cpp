// Ablation for the online model update (Algorithm 4 / Section 5.3, E14):
// under slow temperature drift, compare
//   (1) a stale model trained once,
//   (2) the same model kept current with the online updater, and
//   (3) periodic full retraining (the expensive gold standard).
//
// Paper argument to support: the online update tracks drift nearly as
// well as retraining at a fraction of the cost, and the updater's
// retrain bound M flags when updates stop being effective.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "core/online_update.hpp"
#include "core/trainer.hpp"
#include "sim/presets.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kBatteryV = 13.60;

struct PhaseStats {
  double mean_excess = 0.0;
  std::uint64_t fps = 0;
  std::uint64_t total = 0;
};

PhaseStats score_phase(const vprofile::Model& model,
                       const std::vector<vprofile::EdgeSet>& sets,
                       double margin) {
  PhaseStats ps;
  double sum = 0.0;
  for (const auto& es : sets) {
    const auto cluster = model.cluster_of(es.sa);
    if (!cluster) continue;
    const double excess = model.distance(*cluster, es.samples) -
                          model.clusters()[*cluster].max_distance;
    sum += excess;
    ++ps.total;
    if (excess > margin) ++ps.fps;
  }
  ps.mean_excess = (ps.total != 0) ? sum / static_cast<double>(ps.total) : 0;
  return ps;
}

}  // namespace

int main() {
  bench::open_report("online_update");
  bench::print_header("Online model update ablation — drifting "
                      "temperature, Vehicle A");

  sim::Experiment exp(sim::vehicle_a(), bench::bench_seed("online_update"));
  sim::ExperimentParams params =
      bench::default_params(vprofile::DistanceMetric::kMahalanobis);
  params.env =
      analog::Environment{units::Celsius{0.0}, units::Volts{kBatteryV}};
  params.train_count = bench::scaled(2500);

  auto trained = exp.train(params);
  if (!trained.ok()) {
    std::printf("training failed: %s\n", trained.error.c_str());
    return 1;
  }
  const auto extraction = trained.model->extraction();
  vprofile::Model stale = *trained.model;
  vprofile::Model adaptive = *trained.model;
  vprofile::OnlineUpdater updater(&adaptive, 1u << 24);

  const double margin = 3.0;
  vprofile::TrainingConfig retrain_cfg;
  retrain_cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  retrain_cfg.extraction = extraction;

  std::printf("\n%-8s | %-22s | %-22s | %-22s\n", "temp", "stale model",
              "online update", "periodic retrain");
  std::printf("%-8s | %10s %11s | %10s %11s | %10s %11s\n", "(C)",
              "mean exc", "FP rate", "mean exc", "FP rate", "mean exc",
              "FP rate");

  for (double temp : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0}) {
    // Capture this phase once; all three strategies see the same data.
    std::vector<vprofile::EdgeSet> sets;
    for (const auto& cap : exp.vehicle().capture(
             bench::scaled(2500),
             analog::Environment{units::Celsius{temp},
                                 units::Volts{kBatteryV}})) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        sets.push_back(std::move(*es));
      }
    }

    const PhaseStats s_stale = score_phase(stale, sets, margin);
    const PhaseStats s_adaptive = score_phase(adaptive, sets, margin);

    // Periodic retrain: model rebuilt from this phase's data alone.
    const auto retrained = vprofile::train_with_database(
        sets, exp.vehicle().database(), retrain_cfg);
    PhaseStats s_retrain;
    if (retrained.ok()) {
      s_retrain = score_phase(*retrained.model, sets, margin);
    }

    std::printf("%-8.1f | %10.2f %10.4f%% | %10.2f %10.4f%% | %10.2f "
                "%10.4f%%\n",
                temp, s_stale.mean_excess,
                100.0 * static_cast<double>(s_stale.fps) /
                        static_cast<double>(
                            std::max<std::uint64_t>(1, s_stale.total)),
                s_adaptive.mean_excess,
                100.0 * static_cast<double>(s_adaptive.fps) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1, s_adaptive.total)),
                s_retrain.mean_excess,
                100.0 * static_cast<double>(s_retrain.fps) /
                    static_cast<double>(
                        std::max<std::uint64_t>(1, s_retrain.total)));

    // Feed the phase into the online updater (trusted data, as §5.3
    // assumes).
    updater.update_all(sets);
  }

  std::printf(
      "\nexpected shape: the stale model's mean excess climbs with "
      "temperature and eventually produces false positives; the online "
      "update keeps the excess near the retrain baseline\n");
  std::printf("clusters flagged for retrain (bound M reached): %zu\n",
              updater.clusters_needing_retrain().size());
  return 0;
}
