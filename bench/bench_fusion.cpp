// Multi-fingerprint coverage matrix (capstone for §6.1's recommendation
// to pair vProfile with IDSs over other message properties).
//
// Four attack scenarios are thrown at three independent fingerprints —
// voltage (vProfile), timing (CIDS-style clock skew) and position
// (two-tap propagation delay) — plus their OR-fusion:
//   S1  cross-SA hijack: ECU transmits under another ECU's SA
//   S2  own-SA flood: hijacked ECU doubles the rate of its own message
//   S3  foreign device at the OBD port imitating an ECU, right period
//   S4  clean traffic (false-alarm floor)
//
// Expected shape: no single fingerprint covers S1-S3; the fusion does.
#include <cstdio>
#include <vector>

#include "analog/two_tap.hpp"
#include "baseline/delay_locator.hpp"
#include "baseline/timing_ids.hpp"
#include "bench_common.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "sim/presets.hpp"

namespace {

struct Rates {
  double voltage = 0.0;
  double timing = 0.0;
  double position = 0.0;
  double fused = 0.0;
};

void print_row(const char* scenario, const Rates& r, const char* expect) {
  std::printf("%-34s %9.1f%% %9.1f%% %9.1f%% %9.1f%%   %s\n", scenario,
              100 * r.voltage, 100 * r.timing, 100 * r.position,
              100 * r.fused, expect);
}

}  // namespace

int main() {
  bench::open_report("fusion");
  bench::print_header(
      "Multi-fingerprint coverage: voltage vs timing vs position vs fused");

  sim::Vehicle vehicle(sim::vehicle_a(), bench::bench_seed("fusion"));
  const auto extraction = sim::default_extraction(vehicle.config());
  const analog::Environment env = analog::Environment::reference();
  const auto synth_opts = [&] {
    analog::SynthOptions o;
    o.bitrate = units::BitRateBps{vehicle.config().bitrate.value()};
    o.sample_rate = vehicle.config().adc.sample_rate();
    o.max_bits = vehicle.config().synth_max_bits;
    return o;
  }();

  // Harness geometry: ECU n sits at 1 + 2n metres; the OBD port at 9.8 m.
  analog::TwoTapBus bus;
  bus.length_m = 10.0;
  auto position_of = [](std::size_t ecu) {
    return 1.0 + 2.0 * static_cast<double>(ecu);
  };
  constexpr double kObdPosition = 9.8;

  // Watched stream for timing/position: ECU 2's 50 ms brake message.
  const std::uint8_t kWatchedSa = 0x0B;
  const std::size_t kWatchedEcu = 2;
  const double kPeriod = vehicle.config().ecus[kWatchedEcu].messages[0].period_s;

  // ---- Train all three fingerprints on the same clean session ----------
  auto two_tap = [&](const canbus::DataFrame& frame,
                     const analog::EcuSignature& sig, double pos) {
    auto [a, b] = analog::synthesize_two_tap_voltage(
        canbus::build_wire_bits(frame), sig, env, synth_opts, bus, pos,
        vehicle.rng());
    // Digitize both taps: vProfile and the locator consume ADC codes.
    return std::pair{vehicle.config().adc.quantize_trace(a),
                     vehicle.config().adc.quantize_trace(b)};
  };

  // One scheduled session feeds all three detectors; the voltage model
  // trains on tap A's view so per-position attenuation is part of each
  // cluster's fingerprint.
  std::vector<vprofile::EdgeSet> v_train;
  std::vector<baseline::TimedMessage> t_train;
  std::vector<baseline::DelayLocatorIds::TapPair> d_train;
  for (const auto& tx : vehicle.schedule(bench::scaled(3000))) {
    if (tx.frame.id.source_address == kWatchedSa) {
      t_train.push_back({tx.start_s, kWatchedSa});
    }
    auto [a, b] = two_tap(tx.frame, vehicle.config().ecus[tx.node].signature,
                          position_of(tx.node));
    if (auto es = vprofile::extract_edge_set(a, extraction)) {
      v_train.push_back(std::move(*es));
    }
    d_train.push_back(
        {std::move(a), std::move(b), tx.frame.id.source_address});
  }

  vprofile::TrainingConfig tc;
  tc.metric = vprofile::DistanceMetric::kMahalanobis;
  tc.extraction = extraction;
  auto voltage = vprofile::train_with_database(v_train, vehicle.database(), tc);
  if (!voltage.ok()) {
    std::printf("voltage training failed: %s\n", voltage.error.c_str());
    return 1;
  }

  baseline::ClockSkewIds timing({});
  baseline::DelayLocatorIds::Options dl_opts;
  dl_opts.sample_rate_hz = vehicle.config().adc.sample_rate().value();
  baseline::DelayLocatorIds position(dl_opts);
  {
    std::string error;
    if (!timing.train(t_train, &error)) {
      std::printf("timing training failed: %s\n", error.c_str());
      return 1;
    }
    if (!position.train(d_train, &error)) {
      std::printf("position training failed: %s\n", error.c_str());
      return 1;
    }
  }

  const vprofile::DetectionConfig dc{4.0};
  auto voltage_flags = [&](const dsp::Trace& trace) {
    const auto es = vprofile::extract_edge_set(trace, extraction);
    if (!es) return false;
    return vprofile::detect(*voltage.model, *es, dc).is_anomaly();
  };

  std::printf("\n%-34s %10s %10s %10s %10s\n", "scenario (detection rate)",
              "voltage", "timing", "position", "fused");

  // ---- S1: cross-SA hijack (ECU 0 claims ECU 2's SA, right timing) -----
  {
    Rates r;
    timing.reset_online_state();
    const std::size_t n = bench::scaled(400);
    std::size_t v = 0;
    std::size_t t = 0;
    std::size_t p = 0;
    std::size_t f = 0;
    canbus::DataFrame frame;
    frame.id = vehicle.config().ecus[kWatchedEcu].messages[0].id;
    frame.payload = {1, 2, 3, 4};
    for (std::size_t k = 0; k < n; ++k) {
      const double tstamp = 0.011 + static_cast<double>(k) * kPeriod;
      const bool tm = timing.observe({tstamp, kWatchedSa}) ==
                      baseline::ClockSkewIds::Verdict::kAnomaly;
      auto [a, b] =
          two_tap(frame, vehicle.config().ecus[0].signature, position_of(0));
      const bool vm = voltage_flags(a);
      const auto pc = position.classify(a, b, kWatchedSa);
      const bool pm = pc && pc->anomaly;
      v += vm;
      t += tm;
      p += pm;
      f += (vm || tm || pm);
    }
    r = {double(v) / double(n), double(t) / double(n),
         double(p) / double(n), double(f) / double(n)};
    print_row("S1 cross-SA hijack", r, "voltage + position see it");
  }

  // ---- S2: own-SA flood (hijacked ECU 2 doubles its rate) --------------
  {
    timing.reset_online_state();
    const std::size_t n = bench::scaled(400);
    std::size_t v = 0;
    std::size_t t = 0;
    std::size_t p = 0;
    std::size_t f = 0;
    canbus::DataFrame frame;
    frame.id = vehicle.config().ecus[kWatchedEcu].messages[0].id;
    frame.payload = {9, 9};
    for (std::size_t k = 0; k < n; ++k) {
      const double tstamp = 0.011 + static_cast<double>(k) * kPeriod / 2.0;
      const bool tm = timing.observe({tstamp, kWatchedSa}) ==
                      baseline::ClockSkewIds::Verdict::kAnomaly;
      auto [a, b] = two_tap(frame, vehicle.config().ecus[kWatchedEcu].signature,
                            position_of(kWatchedEcu));
      const bool vm = voltage_flags(a);
      const auto pc = position.classify(a, b, kWatchedSa);
      const bool pm = pc && pc->anomaly;
      v += vm;
      t += tm;
      p += pm;
      f += (vm || tm || pm);
    }
    print_row("S2 own-SA flood",
              {double(v) / double(n), double(t) / double(n),
         double(p) / double(n), double(f) / double(n)},
              "only timing sees it");
  }

  // ---- S3: foreign device at the OBD port, perfect period --------------
  {
    timing.reset_online_state();
    const std::size_t n = bench::scaled(400);
    std::size_t v = 0;
    std::size_t t = 0;
    std::size_t p = 0;
    std::size_t f = 0;
    analog::EcuSignature foreign = vehicle.config().ecus[kWatchedEcu].signature;
    foreign.dominant -= units::Volts{0.04};
    foreign.drive.natural_freq_hz *= 0.94;
    canbus::DataFrame frame;
    frame.id = vehicle.config().ecus[kWatchedEcu].messages[0].id;
    frame.payload = {7};
    for (std::size_t k = 0; k < n; ++k) {
      const double tstamp = 0.011 + static_cast<double>(k) * kPeriod;
      const bool tm = timing.observe({tstamp, kWatchedSa}) ==
                      baseline::ClockSkewIds::Verdict::kAnomaly;
      auto [a, b] = two_tap(frame, foreign, kObdPosition);
      const bool vm = voltage_flags(a);
      const auto pc = position.classify(a, b, kWatchedSa);
      const bool pm = pc && pc->anomaly;
      v += vm;
      t += tm;
      p += pm;
      f += (vm || tm || pm);
    }
    print_row("S3 foreign device at OBD",
              {double(v) / double(n), double(t) / double(n),
         double(p) / double(n), double(f) / double(n)},
              "voltage + position see it");
  }

  // ---- S4: clean traffic (false-alarm floor) ----------------------------
  {
    timing.reset_online_state();
    const std::size_t n = bench::scaled(400);
    std::size_t v = 0;
    std::size_t t = 0;
    std::size_t p = 0;
    std::size_t f = 0;
    canbus::DataFrame frame;
    frame.id = vehicle.config().ecus[kWatchedEcu].messages[0].id;
    frame.payload = {3, 3, 3};
    for (std::size_t k = 0; k < n; ++k) {
      const double tstamp = 0.011 + static_cast<double>(k) * kPeriod;
      const bool tm = timing.observe({tstamp, kWatchedSa}) ==
                      baseline::ClockSkewIds::Verdict::kAnomaly;
      auto [a, b] = two_tap(frame, vehicle.config().ecus[kWatchedEcu].signature,
                            position_of(kWatchedEcu));
      const bool vm = voltage_flags(a);
      const auto pc = position.classify(a, b, kWatchedSa);
      const bool pm = pc && pc->anomaly;
      v += vm;
      t += tm;
      p += pm;
      f += (vm || tm || pm);
    }
    print_row("S4 clean traffic (false alarms)",
              {double(v) / double(n), double(t) / double(n),
         double(p) / double(n), double(f) / double(n)},
              "everything should stay quiet");
  }

  std::printf(
      "\nexpected shape: every attack row has at least one fingerprint at "
      "~100%%, no single column covers all three attacks, and the fused "
      "column is ~100%% on S1-S3 with a low S4 floor\n");
  return 0;
}
