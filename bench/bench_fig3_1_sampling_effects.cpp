// Reproduces Fig 3.1: the visual effect of reducing the sampling rate
// (3.1a) and the resolution (3.1b) on a single edge set.
//
// Paper shape to reproduce: around 10 MS/s and 8 bits the edge set still
// resembles the original; below that the waveform visibly deviates
// (quantified here by the RMS deviation from the full-rate reference
// after lateral rescaling, which the paper does by eye).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "dsp/resample.hpp"
#include "io/csv.hpp"
#include "sim/presets.hpp"

namespace {

/// Linear resample of `xs` to `n` points (the paper's lateral scaling for
/// comparison).
std::vector<double> stretch(const std::vector<double>& xs, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) *
                       static_cast<double>(xs.size() - 1) /
                       static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = xs[lo] + (xs[hi] - xs[lo]) * frac;
  }
  return out;
}

double rms_delta(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

}  // namespace

int main() {
  bench::open_report("fig3_1_sampling_effects");
  bench::print_header("Fig 3.1 — sampling rate and resolution effects on "
                      "one edge set");

  // One clean capture from Vehicle A's ECU 0 at the full 20 MS/s, 16 bit.
  sim::Vehicle vehicle(sim::vehicle_a(),
                       bench::bench_seed("fig3_1_sampling_effects"));
  canbus::DataFrame frame;
  frame.id = vehicle.config().ecus[0].messages[0].id;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto cap = vehicle.synthesize_message(
      frame, 0, analog::Environment::reference());

  const auto base_cfg = sim::default_extraction(vehicle.config());
  const auto reference = vprofile::extract_edge_set(cap.codes, base_cfg);
  if (!reference) {
    std::printf("extraction failed\n");
    return 1;
  }
  const std::size_t n = reference->samples.size();
  bench::report_mark("reference_extraction",
                     {{"dimension", static_cast<double>(n)}});

  std::ofstream csv("fig3_1_edge_sets.csv");
  io::CsvWriter writer(csv);
  writer.write_row(std::vector<std::string>{"variant", "sample", "code"});
  auto dump = [&](const std::string& name, const std::vector<double>& xs) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      writer.write_row(std::vector<std::string>{
          name, std::to_string(i), std::to_string(xs[i])});
    }
  };
  dump("20MSps_16bit", reference->samples);

  // (a) Sampling-rate reduction, laterally rescaled for comparison.
  std::printf("\n(a) sampling-rate reduction (RMS deviation from 20 MS/s, "
              "codes)\n");
  for (const auto& [factor, name] :
       std::vector<std::pair<std::size_t, const char*>>{
           {2, "10 MS/s"}, {4, "5 MS/s"}, {8, "2.5 MS/s"}, {16, "1.25 MS/s"}}) {
    const auto down = dsp::downsample(cap.codes, factor);
    const auto cfg = vprofile::make_extraction_config(
        units::SampleRateHz{20e6 / static_cast<double>(factor)},
        units::BitRateBps{250e3}, base_cfg.bit_threshold);
    const auto es = vprofile::extract_edge_set(down, cfg);
    if (!es) {
      std::printf("  %-10s extraction failed (edge lost)\n", name);
      continue;
    }
    const auto stretched = stretch(es->samples, n);
    dump(name, stretched);
    std::printf("  %-10s rms=%8.1f  (dims %zu -> %zu)\n", name,
                rms_delta(stretched, reference->samples), es->samples.size(),
                n);
  }

  bench::report_mark("sampling_rate_sweep");

  // (b) Resolution reduction (LSB dropping).
  std::printf("\n(b) resolution reduction (RMS deviation from 16 bit, "
              "codes)\n");
  for (int bits : {14, 12, 10, 8, 6, 4}) {
    const auto reduced = dsp::requantize_codes(cap.codes, 16, bits);
    const auto es = vprofile::extract_edge_set(reduced, base_cfg);
    if (!es) {
      std::printf("  %2d bit     extraction failed\n", bits);
      continue;
    }
    dump(std::to_string(bits) + "bit", es->samples);
    std::printf("  %2d bit     rms=%8.1f\n", bits,
                rms_delta(es->samples, reference->samples));
  }

  bench::report_mark("resolution_sweep");
  std::printf(
      "\nfull series written to fig3_1_edge_sets.csv\n"
      "paper: ~10 MS/s and 8 bits are the limit before the waveform "
      "deviates significantly from the original shape\n");
  return 0;
}
