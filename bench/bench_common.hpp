// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints the paper's artifact (table or figure series) next to
// the paper-reported reference values.  Message counts are laptop-scale by
// default; set VPROFILE_BENCH_SCALE=<float> to multiply them (the paper
// used runs of 10^5..10^6 messages).
// Besides the human-readable tables, every bench also records a
// machine-readable report: call open_report() first thing in main() and a
// BENCH_<name>.json lands in $VPROFILE_BENCH_JSON_DIR (or the CWD) at
// exit, stamped with the RunManifest (git describe, timestamp, every
// bench_seed the run looked up, the scale factor) plus per-section wall
// times and p50/p90/p99/max latency over the sections.  print_header /
// print_result / run_three_tests feed the report automatically, so a
// table bench needs no further changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/units.hpp"
#include "sim/experiment.hpp"
#include "stats/confusion.hpp"

namespace bench {

/// Returns the fixed base seed for one bench, looked up by name.
///
/// Every bench draws its RNG stream from this single catalog instead of
/// scattering seed literals: the values are load-bearing (the printed
/// tables and figures are reproducible only while they stay put), and
/// keeping them in one audited place is what lets the determinism lint
/// rule hold over bench/. Aborts on an unknown name — a typo here must
/// not silently reseed a bench.
units::Seed64 bench_seed(std::string_view bench_name);

/// Scale factor from VPROFILE_BENCH_SCALE (default 1.0, clamped to
/// [0.05, 1000]).
double bench_scale();

/// Applies the scale to a nominal count, keeping a sane floor.
std::size_t scaled(std::size_t nominal);

/// Default experiment sizes for table benches.
sim::ExperimentParams default_params(vprofile::DistanceMetric metric);

/// Prints a section header.
void print_header(const std::string& title);

/// Prints one experiment result (confusion matrix + scores) with the
/// paper's reference value alongside.
void print_result(const std::string& label, const sim::ExperimentResult& r,
                  const std::string& paper_reference);

/// Runs the paper's three tests (false positive, hijack, foreign) on a
/// vehicle with one metric and prints the three confusion matrices in the
/// layout of Tables 4.1-4.4.
void run_three_tests(const std::string& table_name,
                     const sim::VehicleConfig& config, units::Seed64 seed,
                     vprofile::DistanceMetric metric,
                     const std::string& paper_fp,
                     const std::string& paper_hijack,
                     const std::string& paper_foreign);

// ---------------------------------------------------------------------------
// Machine-readable bench report (BENCH_<name>.json).

/// Named values attached to a report section or the report itself.
using ReportMetrics = std::vector<std::pair<std::string, double>>;

/// Opens the JSON report for this process; `name` becomes
/// BENCH_<name>.json.  Registers an atexit writer, so a bench that calls
/// nothing else still emits its manifest.  Idempotent.
void open_report(std::string_view name);

/// Records a section with an explicit duration.
void report_section_ns(const std::string& section, std::uint64_t wall_ns,
                       const ReportMetrics& metrics = {});

/// Records a section whose duration is the time since the previous report
/// event (open/mark/header) — how print_result attributes each
/// experiment's wall time without instrumenting the experiment itself.
void report_mark(const std::string& section, const ReportMetrics& metrics = {});

/// Adds one top-level scalar (throughputs, counts, derived stats).
void report_scalar(const std::string& key, double value);

/// Writes the report file now instead of at exit (idempotent; subsequent
/// report_* calls are dropped).  Returns false if nothing was open or the
/// write failed.
bool write_report();

}  // namespace bench
