// Reproduces Table 4.5 (and the Fig 4.5 scenario): distances from a test
// edge set belonging to one ECU to the cluster means of that ECU and its
// most-similar peer, under both metrics.
//
// Paper shape to reproduce: both metrics point at the right ECU, but the
// Mahalanobis quotient (distance-to-other / distance-to-own) is an order
// of magnitude larger than the Euclidean quotient (18.48 vs 2.21) — the
// covariance matrix is what makes the separation decisive.
#include <cstdio>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "linalg/mahalanobis.hpp"
#include "sim/presets.hpp"

int main() {
  bench::open_report("table4_5_distance_quotient");
  bench::print_header(
      "Table 4.5 — distance quotients between the most-similar pair");

  sim::Experiment exp(sim::vehicle_a(),
                      bench::bench_seed("table4_5_distance_quotient"));
  sim::ExperimentParams params =
      bench::default_params(vprofile::DistanceMetric::kMahalanobis);

  // Train both metrics on the same traffic seed so means agree.
  auto mahal = exp.train(params);
  bench::report_mark("train/mahalanobis");
  if (!mahal.ok()) {
    std::printf("training failed: %s\n", mahal.error.c_str());
    return 1;
  }
  sim::Experiment exp_e(
      sim::vehicle_a(), bench::bench_seed("table4_5_distance_quotient"));
  params.metric = vprofile::DistanceMetric::kEuclidean;
  auto euclid = exp_e.train(params);
  bench::report_mark("train/euclidean");
  if (!euclid.ok()) {
    std::printf("training failed: %s\n", euclid.error.c_str());
    return 1;
  }

  const auto [own, other] = sim::Experiment::most_similar_pair(*mahal.model);
  std::printf("most similar pair: %s (test source) vs %s\n",
              mahal.model->clusters()[own].name.c_str(),
              mahal.model->clusters()[other].name.c_str());

  // A fresh test edge set from the "own" ECU.
  canbus::DataFrame frame;
  frame.id = exp.vehicle().config().ecus[own].messages[0].id;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto cap = exp.vehicle().synthesize_message(
      frame, own, analog::Environment::reference());
  const auto es =
      vprofile::extract_edge_set(cap.codes, mahal.model->extraction());
  if (!es) {
    std::printf("extraction failed\n");
    return 1;
  }

  const double e_own = euclid.model->distance(own, es->samples);
  const double e_other = euclid.model->distance(other, es->samples);
  const double m_own = mahal.model->distance(own, es->samples);
  const double m_other = mahal.model->distance(other, es->samples);

  std::printf("\n%-14s %16s %16s %10s\n", "Metric", "dist to own",
              "dist to other", "quotient");
  std::printf("%-14s %16.2f %16.2f %10.2f\n", "Euclidean", e_own, e_other,
              e_other / e_own);
  std::printf("%-14s %16.2f %16.2f %10.2f\n", "Mahalanobis", m_own, m_other,
              m_other / m_own);
  bench::report_scalar("euclidean_quotient", e_other / e_own);
  bench::report_scalar("mahalanobis_quotient", m_other / m_own);
  std::printf(
      "\npaper: Euclidean 2327.10 / 5142.84 (quotient 2.21); "
      "Mahalanobis 9.90 / 182.94 (quotient 18.48)\n");
  std::printf(
      "shape check: Mahalanobis quotient should exceed the Euclidean one "
      "by roughly an order of magnitude -> %s\n",
      (m_other / m_own) > 3.0 * (e_other / e_own) ? "PASS" : "CHECK");
  return 0;
}
