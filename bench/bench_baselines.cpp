// Baseline comparison (Section 1.2.1 / E12): vProfile vs SIMPLE vs a
// Scission-style logistic classifier vs a Murvay-Groza-style MSE
// fingerprint, on identical Vehicle A traffic and attacks.
//
// Paper argument to support: vProfile reaches the same near-perfect
// detection with a single feature and no feature-engineering pipeline,
// while the baselines need FDA/ML machinery (and the MSE method is
// markedly worse — Murvay-Groza report ~3% FP / 6% FN).
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/logistic_ids.hpp"
#include "baseline/mse_ids.hpp"
#include "baseline/simple_ids.hpp"
#include "bench_common.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"

namespace {

struct Scores {
  double clean_accuracy = 0.0;
  double hijack_f = 0.0;
};

Scores score_baseline(const baseline::SenderIds& ids,
                      const std::vector<sim::LabeledCapture>& clean,
                      const std::vector<sim::LabeledCapture>& hijack) {
  stats::BinaryConfusion clean_cm;
  for (const auto& lc : clean) {
    const auto c = ids.classify(lc.capture.codes,
                                lc.capture.frame.id.source_address);
    if (!c) continue;
    clean_cm.add(false, c->anomaly);
  }
  stats::BinaryConfusion hijack_cm;
  for (const auto& lc : hijack) {
    const auto c = ids.classify(lc.capture.codes,
                                lc.capture.frame.id.source_address);
    if (!c) continue;
    hijack_cm.add(lc.is_attack, c->anomaly);
  }
  return {clean_cm.accuracy(), hijack_cm.f_score()};
}

}  // namespace

int main() {
  bench::open_report("baselines");
  bench::print_header("Baseline comparison — Vehicle A, identical traffic");

  sim::Vehicle vehicle(sim::vehicle_a(), bench::bench_seed("baselines"));
  const auto db = vehicle.database();
  const auto extraction = sim::default_extraction(vehicle.config());

  // Shared training captures and test streams.
  const std::size_t train_n = bench::scaled(2500);
  const std::size_t test_n = bench::scaled(5000);
  const auto train_caps =
      vehicle.capture(train_n, analog::Environment::reference());
  const auto clean = sim::make_normal_stream(
      vehicle, test_n, analog::Environment::reference());
  const auto hijack = sim::make_hijack_stream(
      vehicle, test_n, 0.2, analog::Environment::reference());

  std::vector<baseline::TrainExample> examples;
  examples.reserve(train_caps.size());
  for (const auto& cap : train_caps) {
    examples.push_back({cap.codes, cap.frame.id.source_address});
  }

  std::printf("\n%-12s %16s %12s   %s\n", "method", "clean accuracy",
              "hijack F", "notes");

  // vProfile (Mahalanobis).
  {
    std::vector<vprofile::EdgeSet> sets;
    for (const auto& cap : train_caps) {
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        sets.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig cfg;
    cfg.metric = vprofile::DistanceMetric::kMahalanobis;
    cfg.extraction = extraction;
    const auto outcome = vprofile::train_with_database(sets, db, cfg);
    if (outcome.ok()) {
      const vprofile::DetectionConfig dc{4.0};
      stats::BinaryConfusion clean_cm;
      for (const auto& lc : clean) {
        const auto es =
            vprofile::extract_edge_set(lc.capture.codes, extraction);
        if (!es) continue;
        clean_cm.add(false,
                     vprofile::detect(*outcome.model, *es, dc).is_anomaly());
      }
      stats::BinaryConfusion hijack_cm;
      for (const auto& lc : hijack) {
        const auto es =
            vprofile::extract_edge_set(lc.capture.codes, extraction);
        if (!es) continue;
        hijack_cm.add(lc.is_attack,
                      vprofile::detect(*outcome.model, *es, dc).is_anomaly());
      }
      std::printf("%-12s %16.5f %12.5f   single feature, one distance\n",
                  "vProfile", clean_cm.accuracy(), hijack_cm.f_score());
    } else {
      std::printf("%-12s training failed: %s\n", "vProfile",
                  outcome.error.c_str());
    }
  }

  baseline::BaselineConfig base_cfg;
  base_cfg.bit_threshold = sim::default_bit_threshold(vehicle.config());
  base_cfg.bit_width_samples = extraction.bit_width_samples;

  // SIMPLE.
  {
    baseline::SimpleIds ids(base_cfg);
    std::string error;
    if (ids.train(examples, db, &error)) {
      const Scores s = score_baseline(ids, clean, hijack);
      std::printf("%-12s %16.5f %12.5f   16 features + FDA + EER "
                  "threshold\n",
                  "SIMPLE", s.clean_accuracy, s.hijack_f);
    } else {
      std::printf("%-12s training failed: %s\n", "SIMPLE", error.c_str());
    }
  }

  // Scission-style logistic regression.
  {
    baseline::LogisticIds::Options opts;
    opts.extraction = extraction;
    opts.epochs = 100;
    baseline::LogisticIds ids(opts);
    std::string error;
    if (ids.train(examples, db, &error)) {
      const Scores s = score_baseline(ids, clean, hijack);
      std::printf("%-12s %16.5f %12.5f   softmax over standardized edge "
                  "sets\n",
                  "logistic", s.clean_accuracy, s.hijack_f);
    } else {
      std::printf("%-12s training failed: %s\n", "logistic", error.c_str());
    }
  }

  // Murvay-Groza-style MSE fingerprint.
  {
    baseline::MseIds::Options opts;
    opts.base = base_cfg;
    opts.sample_rate_hz = vehicle.config().adc.sample_rate().value();
    baseline::MseIds ids(opts);
    std::string error;
    if (ids.train(examples, db, &error)) {
      const Scores s = score_baseline(ids, clean, hijack);
      std::printf("%-12s %16.5f %12.5f   low-pass + MSE fingerprint "
                  "(paper reports ~3%% FP / 6%% FN for this family)\n",
                  "MSE", s.clean_accuracy, s.hijack_f);
    } else {
      std::printf("%-12s training failed: %s\n", "MSE", error.c_str());
    }
  }

  std::printf(
      "\nexpected shape: vProfile and the feature-engineered baselines all "
      "detect hijacks nearly perfectly on distinct profiles; the MSE "
      "fingerprint trails; vProfile does it with the simplest pipeline\n");
  return 0;
}
