// Reproduces Table 5.2: the multi-edge-set enhancement (Section 5.2).
//
// Extracting three edge sets per message (spaced 250 samples apart) and
// averaging them reduces per-message noise at the cost of latency.
//
// Paper shape to reproduce: lower intra-cluster standard deviation for
// every ECU and lower maximum distances for most, without changing
// detection on these vehicles.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "sim/presets.hpp"
#include "stats/welford.hpp"

int main() {
  bench::open_report("table5_2_edge_sets");
  bench::print_header("Table 5.2 — one vs three extracted edge sets, "
                      "Vehicle A");

  sim::VehicleConfig config = sim::vehicle_a();
  config.synth_max_bits = 110;  // deeper synthesis for the later edge sets
  sim::Vehicle vehicle(config, bench::bench_seed("table5_2_edge_sets"));
  const std::size_t num_ecus = config.ecus.size();
  const auto caps =
      vehicle.capture(bench::scaled(4000), analog::Environment::reference());

  auto run_variant = [&](std::size_t num_edge_sets) {
    vprofile::ExtractionConfig cfg = sim::default_extraction(config);
    cfg.num_edge_sets = num_edge_sets;
    cfg.edge_set_spacing = 250;

    std::vector<vprofile::EdgeSet> sets;
    for (const auto& cap : caps) {
      if (auto es = vprofile::extract_edge_set(cap.codes, cfg)) {
        sets.push_back(std::move(*es));
      }
    }
    vprofile::TrainingConfig tc;
    tc.metric = vprofile::DistanceMetric::kMahalanobis;
    tc.extraction = cfg;
    auto outcome =
        vprofile::train_with_database(sets, vehicle.database(), tc);

    std::vector<stats::Welford> spread(num_ecus);
    std::vector<double> max_dist(num_ecus, 0.0);
    if (outcome.ok()) {
      for (const auto& es : sets) {
        const auto cluster = outcome.model->cluster_of(es.sa);
        if (!cluster) continue;
        const auto& mean = outcome.model->clusters()[*cluster].mean;
        for (std::size_t i = 0; i < mean.size(); ++i) {
          spread[*cluster].add(es.samples[i] - mean[i]);
        }
        max_dist[*cluster] =
            std::max(max_dist[*cluster],
                     outcome.model->distance(*cluster, es.samples));
      }
    } else {
      std::printf("training failed (%zu edge sets): %s\n", num_edge_sets,
                  outcome.error.c_str());
    }
    return std::make_pair(std::move(spread), std::move(max_dist));
  };

  bench::report_mark("capture", {{"traces", static_cast<double>(caps.size())}});
  auto [one_spread, one_max] = run_variant(1);
  bench::report_mark("variant/1-edge-set");
  auto [three_spread, three_max] = run_variant(3);
  bench::report_mark("variant/3-edge-sets");

  std::printf("\n%-6s %16s %16s %14s %14s\n", "ECU", "stddev (1 set)",
              "stddev (3 sets)", "maxD (1 set)", "maxD (3 sets)");
  std::size_t improved = 0;
  for (std::size_t e = 0; e < num_ecus; ++e) {
    std::printf("%-6zu %16.3f %16.3f %14.3f %14.3f\n", e,
                one_spread[e].stddev(), three_spread[e].stddev(), one_max[e],
                three_max[e]);
    if (three_spread[e].stddev() < one_spread[e].stddev()) ++improved;
  }
  bench::report_scalar("stddev_improved_ecus", static_cast<double>(improved));
  std::printf(
      "\nstddev improved for %zu/%zu ECUs "
      "(paper: lower standard deviations for every cluster and lower "
      "maximum distances for all but ECU 1)\n",
      improved, num_ecus);
  return 0;
}
