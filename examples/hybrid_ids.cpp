// Hybrid IDS: vProfile (voltage fingerprint) + a CIDS-style clock-skew
// detector (timing fingerprint), the combination the paper recommends in
// its future work ("we recommend using vProfile in an IDS that can detect
// anomalies based on other message properties, such as the period",
// Section 6.1).
//
// The demo stages two attacks that showcase why the fingerprints are
// complementary:
//  1. A hijacked ECU floods one of its *own* SAs at double rate.  The
//     waveform is genuine, so vProfile is blind — but the timing
//     fingerprint breaks immediately.
//  2. A foreign device imitates another ECU's SA at the correct period.
//     The timing looks right — but the waveform gives it away.
#include <cstdio>

#include "baseline/timing_ids.hpp"
#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"

int main() {
  sim::Vehicle vehicle(sim::vehicle_a(), 97531);
  const auto extraction = sim::default_extraction(vehicle.config());
  const analog::Environment env = analog::Environment::reference();

  // --- Train both detectors on the same clean session -------------------
  std::vector<vprofile::EdgeSet> voltage_training;
  std::vector<baseline::TimedMessage> timing_training;
  for (const auto& tx : vehicle.schedule(4000)) {
    // Timing fingerprints are per periodic message; use ECU 2's brake
    // message (SA 0x0B, one message, 50 ms period) as the watched stream.
    if (tx.frame.id.source_address == 0x0B) {
      timing_training.push_back({tx.start_s, tx.frame.id.source_address});
    }
  }
  for (const auto& cap : vehicle.capture(3000, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      voltage_training.push_back(std::move(*es));
    }
  }

  vprofile::TrainingConfig cfg;
  cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  cfg.extraction = extraction;
  auto trained = vprofile::train_with_database(voltage_training,
                                               vehicle.database(), cfg);
  if (!trained.ok()) {
    std::fprintf(stderr, "voltage training failed: %s\n",
                 trained.error.c_str());
    return 1;
  }
  baseline::ClockSkewIds timing({});
  std::string error;
  if (!timing.train(timing_training, &error)) {
    std::fprintf(stderr, "timing training failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("trained: vProfile (%zu clusters) + clock-skew IDS\n\n",
              trained.model->clusters().size());

  const vprofile::DetectionConfig dc{4.0};

  // --- Attack 1: hijacked ECU floods its own SA -------------------------
  // ECU 2 compromised, sending its own message at double rate.  vProfile
  // sees its own waveform under its own SA: blind by design (Section 6.1
  // limitation).  The timing IDS catches the rate change.
  {
    std::printf("attack 1: hijacked ECU 2 floods its own SA 0x0B at 2x "
                "rate\n");
    sim::VehicleConfig flooded = vehicle.config();
    for (auto& m : flooded.ecus[2].messages) m.period_s /= 2.0;
    sim::Vehicle compromised(flooded, 97532);

    std::size_t voltage_alarms = 0;
    std::size_t timing_alarms = 0;
    std::size_t watched = 0;
    timing.reset_online_state();
    for (const auto& tx : compromised.schedule(1500)) {
      if (tx.frame.id.source_address != 0x0B) continue;
      ++watched;
      if (timing.observe({tx.start_s, 0x0B}) ==
          baseline::ClockSkewIds::Verdict::kAnomaly) {
        ++timing_alarms;
      }
      const auto cap = compromised.synthesize_message(tx.frame, 2, env);
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        voltage_alarms +=
            vprofile::detect(*trained.model, *es, dc).is_anomaly();
      }
    }
    std::printf("  %zu flooded messages: vProfile alarms %zu (blind, as "
                "expected), timing alarms %zu\n\n",
                watched, voltage_alarms, timing_alarms);
  }

  // --- Attack 2: foreign device imitates at the correct period ----------
  // A foreign device replays ECU 2's message at exactly the right period
  // (it can read the bus schedule), so the timing IDS sees nothing — but
  // its transmitter physics betray it to vProfile.
  {
    std::printf("attack 2: foreign device imitates SA 0x0B at the correct "
                "period\n");
    analog::EcuSignature foreign = vehicle.config().ecus[2].signature;
    foreign.dominant -= units::Volts{0.05};
    foreign.drive.natural_freq_hz *= 0.93;

    std::size_t voltage_alarms = 0;
    std::size_t timing_alarms = 0;
    timing.reset_online_state();
    canbus::DataFrame frame;
    frame.id = vehicle.config().ecus[2].messages[0].id;
    frame.payload = {0xDE, 0xAD, 0xBE, 0xEF};
    const double period =
        vehicle.config().ecus[2].messages[0].period_s;
    for (int k = 0; k < 400; ++k) {
      const double t = 0.013 + k * period;
      if (timing.observe({t, 0x0B}) ==
          baseline::ClockSkewIds::Verdict::kAnomaly) {
        ++timing_alarms;
      }
      const auto cap = vehicle.synthesize_foreign(frame, foreign, env, t);
      if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
        voltage_alarms +=
            vprofile::detect(*trained.model, *es, dc).is_anomaly();
      }
    }
    std::printf("  400 imitation messages: vProfile alarms %zu, timing "
                "alarms %zu (blind, as expected)\n\n",
                voltage_alarms, timing_alarms);
  }

  std::printf("conclusion: the fingerprints are complementary — deploy "
              "both, as the paper recommends.\n");
  return 0;
}
