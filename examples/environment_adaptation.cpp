// Environment adaptation demo (Sections 4.4 and 5.3).
//
// A model trained on a cold morning drifts out of calibration as the
// engine bay warms up.  This example tracks the per-cluster distance
// excess over a temperature ramp twice: once with a frozen model, once
// with the online updater folding in trusted traffic — showing when the
// frozen model starts raising false alarms and how the updater prevents
// it, and when the retrain bound M says to retrain instead.
#include <cstdio>

#include "core/extractor.hpp"
#include "core/online_update.hpp"
#include "core/trainer.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

int main() {
  sim::Vehicle vehicle(sim::vehicle_a(), 1357);
  const auto extraction = sim::default_extraction(vehicle.config());
  constexpr double kBatteryV = 13.60;  // alternator running

  // Train at -2.5 C (a cold morning, engine idling).
  std::vector<vprofile::EdgeSet> training;
  for (const auto& cap :
       vehicle.capture(2500,
                       analog::Environment{units::Celsius{-2.5},
                                           units::Volts{kBatteryV}})) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      training.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  cfg.extraction = extraction;
  auto trained =
      vprofile::train_with_database(training, vehicle.database(), cfg);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }

  vprofile::Model frozen = *trained.model;
  vprofile::Model adaptive = *trained.model;
  // Retrain bound: tolerate roughly doubling the training set via updates.
  vprofile::OnlineUpdater updater(&adaptive, 2 * training.size());

  const double margin = 3.0;
  std::printf("engine bay warming from -2.5 C to 32.5 C "
              "(margin %.1f, battery %.2f V)\n\n",
              margin, kBatteryV);
  std::printf("%8s | %-24s | %-24s\n", "temp", "frozen model",
              "online-updated model");
  std::printf("%8s | %12s %11s | %12s %11s\n", "(C)", "mean excess",
              "alarms", "mean excess", "alarms");

  for (double temp = 2.5; temp <= 32.5; temp += 5.0) {
    const auto caps =
        vehicle.capture(1200,
                        analog::Environment{units::Celsius{temp},
                                            units::Volts{kBatteryV}});
    double frozen_sum = 0.0;
    double adaptive_sum = 0.0;
    std::size_t frozen_alarms = 0;
    std::size_t adaptive_alarms = 0;
    std::size_t n = 0;
    for (const auto& cap : caps) {
      const auto es = vprofile::extract_edge_set(cap.codes, extraction);
      if (!es) continue;
      const auto cluster = frozen.cluster_of(es->sa);
      if (!cluster) continue;
      const double fe = frozen.distance(*cluster, es->samples) -
                        frozen.clusters()[*cluster].max_distance;
      const double ae = adaptive.distance(*cluster, es->samples) -
                        adaptive.clusters()[*cluster].max_distance;
      frozen_sum += fe;
      adaptive_sum += ae;
      frozen_alarms += (fe > margin);
      adaptive_alarms += (ae > margin);
      ++n;
      updater.update(*es);  // trusted traffic keeps the model current
    }
    std::printf("%8.1f | %12.2f %11zu | %12.2f %11zu\n", temp,
                frozen_sum / static_cast<double>(n), frozen_alarms,
                adaptive_sum / static_cast<double>(n),
                adaptive_alarms);
  }

  const auto stale = updater.clusters_needing_retrain();
  if (stale.empty()) {
    std::printf("\nno cluster reached the retrain bound; online updates "
                "remain effective\n");
  } else {
    std::printf("\n%zu cluster(s) reached the retrain bound M — schedule a "
                "full retrain (Section 5.3's guidance)\n",
                stale.size());
  }
  return 0;
}
