// Digitizer-selection helper (Section 4.3): explores the sampling-rate /
// resolution trade-off for a target vehicle and reports, per operating
// point, the detection scores and the relative compute/memory cost — the
// analysis an integrator runs before picking capture hardware.
#include <cstdio>

#include "sim/experiment.hpp"
#include "sim/presets.hpp"

int main() {
  std::printf("sampling-rate / resolution trade-off on Vehicle A "
              "(Mahalanobis)\n\n");
  std::printf("%-10s %6s %12s %12s %12s %14s\n", "rate", "bits", "FP acc",
              "hijack F", "dim", "rel. cost");

  const double native_rate = sim::vehicle_a().adc.sample_rate().value();
  for (const auto& [factor, rate_name] :
       std::initializer_list<std::pair<std::size_t, const char*>>{
           {1, "20 MS/s"}, {2, "10 MS/s"}, {4, "5 MS/s"}, {8, "2.5 MS/s"}}) {
    for (int bits : {16, 12, 10}) {
      sim::ExperimentParams p;
      p.metric = vprofile::DistanceMetric::kMahalanobis;
      p.train_count = 1500;
      p.test_count = 2500;
      p.front_end.downsample_factor = factor;
      p.front_end.resolution_bits = bits;

      sim::Experiment fp_exp(sim::vehicle_a(), 9000 + factor * 10 + bits);
      const auto fp = fp_exp.false_positive_test(p);
      sim::Experiment hj_exp(sim::vehicle_a(), 9100 + factor * 10 + bits);
      const auto hj = hj_exp.hijack_test(p);

      const auto extraction =
          sim::front_end_extraction(sim::vehicle_a(), p.front_end);
      // Cost model: samples/second to move * dimension^2 for the
      // Mahalanobis solve, normalized to the native point.
      const double rate = native_rate / static_cast<double>(factor);
      const double dim = static_cast<double>(extraction.dimension());
      const double cost =
          (rate * bits + 250e3 / 8.0 * dim * dim) /
          (native_rate * 16 + 250e3 / 8.0 * 66.0 * 66.0);

      char fp_s[16];
      char hj_s[16];
      if (fp.ok()) {
        std::snprintf(fp_s, sizeof fp_s, "%.5f", fp.confusion.accuracy());
      } else {
        std::snprintf(fp_s, sizeof fp_s, "singular");
      }
      if (hj.ok()) {
        std::snprintf(hj_s, sizeof hj_s, "%.5f", hj.confusion.f_score());
      } else {
        std::snprintf(hj_s, sizeof hj_s, "singular");
      }
      std::printf("%-10s %6d %12s %12s %12zu %13.2f%%\n", rate_name, bits,
                  fp_s, hj_s, extraction.dimension(), cost * 100.0);
    }
  }

  std::printf(
      "\nthe paper picked 10 MS/s at 12 bits: scores hold while the "
      "front-end cost drops by roughly half\n");
  return 0;
}
