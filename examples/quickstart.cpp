// Quickstart: train vProfile on a simulated vehicle, then detect a hijack
// and a foreign device.
//
// Walks the full pipeline in ~60 lines of API use:
//   1. bring up a simulated vehicle (5 ECUs, 250 kb/s J1939, 20 MS/s ADC)
//   2. capture clean traffic and train a Mahalanobis model
//   3. classify a legitimate message, a hijacked message, and a foreign
//      device imitation
#include <cstdio>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "sim/presets.hpp"
#include "sim/vehicle.hpp"

int main() {
  // 1. Simulated vehicle standing in for the paper's Peterbilt 579.
  sim::Vehicle vehicle(sim::vehicle_a(), /*seed=*/42);
  const vprofile::ExtractionConfig extraction =
      sim::default_extraction(vehicle.config());

  // 2. Capture clean traffic and extract edge sets.
  std::vector<vprofile::EdgeSet> training;
  for (const sim::Capture& cap :
       vehicle.capture(2000, analog::Environment::reference())) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      training.push_back(std::move(*es));
    }
  }

  vprofile::TrainingConfig train_cfg;
  train_cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  train_cfg.extraction = extraction;
  vprofile::TrainOutcome trained =
      vprofile::train_with_database(training, vehicle.database(), train_cfg);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }
  const vprofile::Model& model = *trained.model;
  std::printf("trained %zu clusters from %zu edge sets\n",
              model.clusters().size(), training.size());

  const vprofile::DetectionConfig detect_cfg{/*margin=*/5.0};
  auto classify = [&](const char* label, const sim::Capture& cap) {
    auto es = vprofile::extract_edge_set(cap.codes, extraction);
    if (!es) {
      std::printf("%-22s extraction failed\n", label);
      return;
    }
    const vprofile::Detection d = vprofile::detect(model, *es, detect_cfg);
    std::printf("%-22s verdict=%-18s dist=%7.2f", label,
                vprofile::to_string(d.verdict), d.min_distance);
    if (d.is_anomaly() && d.predicted_cluster) {
      std::printf("  (waveform looks like %s)",
                  model.clusters()[*d.predicted_cluster].name.c_str());
    }
    std::printf("\n");
  };

  const analog::Environment env = analog::Environment::reference();

  // 3a. A legitimate message from ECU 2.
  canbus::DataFrame legit;
  legit.id = vehicle.config().ecus[2].messages[0].id;
  legit.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  classify("legitimate (ECU 2):", vehicle.synthesize_message(legit, 2, env));

  // 3b. Hijack: ECU 3 transmits with ECU 0's source address.
  canbus::DataFrame hijack = legit;
  hijack.id.source_address =
      vehicle.config().ecus[0].messages[0].id.source_address;
  classify("hijack (ECU 3 as 0):", vehicle.synthesize_message(hijack, 3, env));

  // 3c. Foreign device imitating ECU 4.
  analog::EcuSignature foreign = vehicle.config().ecus[4].signature;
  // A real attacker can't match this exactly.
  foreign.dominant += units::Volts{0.03};
  canbus::DataFrame imitation = legit;
  imitation.id.source_address =
      vehicle.config().ecus[4].messages[0].id.source_address;
  classify("foreign (imitates 4):",
           vehicle.synthesize_foreign(imitation, foreign, env));
  return 0;
}
