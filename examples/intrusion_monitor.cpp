// Streaming intrusion monitor: the deployment shape the paper targets.
//
// Trains vProfile on clean traffic from a simulated vehicle, persists the
// model, reloads it (as an ECU-resident IDS would at ignition), then
// watches a live stream containing hijack and foreign-device attacks.
// Every alarm is printed with its verdict and, where possible, the
// attributed origin ECU; a summary confusion matrix closes the run.
#include <cstdio>
#include <sstream>

#include "core/detector.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "io/model_store.hpp"
#include "sim/attack.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "stats/confusion.hpp"

int main() {
  sim::Vehicle vehicle(sim::vehicle_a(), 2468);
  const auto extraction = sim::default_extraction(vehicle.config());
  const analog::Environment env = analog::Environment::reference();

  // --- Training (in the shop, trusted traffic) -------------------------
  std::vector<vprofile::EdgeSet> training;
  for (const auto& cap : vehicle.capture(3000, env)) {
    if (auto es = vprofile::extract_edge_set(cap.codes, extraction)) {
      training.push_back(std::move(*es));
    }
  }
  vprofile::TrainingConfig cfg;
  cfg.metric = vprofile::DistanceMetric::kMahalanobis;
  cfg.extraction = extraction;
  auto trained =
      vprofile::train_with_database(training, vehicle.database(), cfg);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.error.c_str());
    return 1;
  }

  // --- Persist and reload (ignition cycle) -----------------------------
  std::stringstream store;
  io::save_model(*trained.model, store);
  const auto model = io::load_model(store);
  if (!model) {
    std::fprintf(stderr, "model reload failed\n");
    return 1;
  }
  std::printf("model: %zu clusters, dimension %zu, Mahalanobis\n",
              model->clusters().size(), model->dimension());

  // --- Live monitoring --------------------------------------------------
  // Mixed stream: hijack attempts at 5%, plus a foreign device imitating
  // the most-similar ECU pair's target.
  const auto pair = sim::Experiment::most_similar_pair(*model);
  std::printf("watching the bus; foreign device imitates %s using %s's "
              "hardware profile\n\n",
              model->clusters()[pair.second].name.c_str(),
              model->clusters()[pair.first].name.c_str());

  auto stream = sim::make_hijack_stream(vehicle, 1500, 0.05, env);
  auto foreign = sim::make_foreign_stream(vehicle, pair.first, pair.second,
                                          500, env);
  stream.insert(stream.end(), foreign.begin(), foreign.end());

  const vprofile::DetectionConfig dc{4.0};
  stats::BinaryConfusion confusion;
  std::size_t alarms_printed = 0;
  for (const auto& lc : stream) {
    const auto es = vprofile::extract_edge_set(lc.capture.codes, extraction);
    if (!es) continue;
    const auto d = vprofile::detect(*model, *es, dc);
    confusion.add(lc.is_attack, d.is_anomaly());
    if (d.is_anomaly() && alarms_printed < 12) {
      std::printf("ALARM t=%8.3fs  sa=0x%02X  %-18s dist=%8.2f",
                  lc.capture.time_s, es->sa, to_string(d.verdict),
                  d.min_distance);
      if (d.predicted_cluster) {
        std::printf("  origin looks like %s",
                    model->clusters()[*d.predicted_cluster].name.c_str());
      }
      std::printf("%s\n", lc.is_attack ? "" : "  [FALSE ALARM]");
      ++alarms_printed;
    }
  }

  std::printf("\n%s", confusion.to_table("session summary").c_str());
  return 0;
}
