#include "core/batch_scorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/simd_kernels.hpp"

namespace vprofile {
namespace {

/// Ridge escalation start for the cached covariance factorizations —
/// matches the deployment posture: prefer the exact factor, regularize
/// only when sensor quantization collapsed the sample variance.
constexpr double kInitialRidge = 1e-8;

/// Relative tolerance for the inverse-consistency diagnostic.  The
/// trainer derives the stored inverse from the same Cholesky routine, so
/// honest checkpoints agree to rounding; a corrupted or mismatched file
/// misses by orders of magnitude.
constexpr double kInverseTol = 1e-6;

std::size_t pad4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

}  // namespace

ScoringPlan::ScoringPlan(const Model& model, linalg::simd::Backend requested)
    : model_(model), backend_(linalg::simd::resolve(requested)) {
  const std::size_t dim = model.dimension();
  const bool mahalanobis = model.metric() == DistanceMetric::kMahalanobis;

  // One feature grid for the whole model: features are quantized once per
  // batch, then compared against every cluster's mean on the same grid.
  double max_abs = 0.0;
  for (const ClusterModel& cm : model.clusters()) {
    for (double m : cm.mean) max_abs = std::max(max_abs, std::abs(m));
  }
  feature_step_ = linalg::fixed::choose_feature_step(max_abs);

  clusters_.reserve(model.clusters().size());
  for (const ClusterModel& cm : model.clusters()) {
    ClusterOps ops;
    ops.mean = cm.mean;
    if (mahalanobis) ops.inv_cov = cm.inv_covariance.data();

    if (!cm.covariance.empty()) {
      if (auto ridged = linalg::factorize_with_ridge(cm.covariance,
                                                     kInitialRidge)) {
        ops.ridge = ridged->ridge;
        ops.factor.emplace(std::move(ridged->factor));
        // Exact sentinel, not arithmetic: factorize_with_ridge returns
        // ridge = 0.0 verbatim when the unregularized attempt succeeded.
        // vprofile-lint: allow(float-eq)
        if (mahalanobis && ops.ridge == 0.0) {
          // The factor inverts the *unregularized* covariance, so it can
          // vouch for the stored inverse directly.
          const linalg::Matrix inv = ops.factor->inverse();
          double scale = 1.0;
          for (double v : inv.data()) scale = std::max(scale, std::abs(v));
          ops.inverse_consistent =
              inv.max_abs_diff(cm.inv_covariance) <= kInverseTol * scale;
        }
      }
    }

    ops.fixed = linalg::fixed::quantize_cluster(
        ops.mean.data(), mahalanobis ? ops.inv_cov.data() : nullptr, dim,
        feature_step_);
    clusters_.push_back(std::move(ops));
  }
}

// vprofile-lint: hot
void BatchScorer::detect(const EdgeSet* const* sets, std::size_t count,
                         const DetectionConfig& config, Detection* out) {
  // Stage 1: the per-edge quality gate + SA lookup, unchanged from the
  // one-frame path.  Edges it finalizes never reach the kernels.
  to_score_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (detect_prescore(plan_.model(), *sets[i], config, &out[i])) {
      to_score_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  const std::size_t n = to_score_.size();
  if (n == 0) return;

  // Stage 2: SoA transpose + per-cluster kernel over all survivors.
  const std::size_t stride = pad4(n);
  score_batch(sets, to_score_.data(), n, stride);

  // Stage 3: argmin (ascending scan, strict <, exactly like
  // Model::nearest_cluster) and the shared verdict logic.
  const std::size_t num_clusters = plan_.clusters_.size();
  for (std::size_t e = 0; e < n; ++e) {
    std::size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < num_clusters; ++c) {
      const double d = dist_[c * stride + e];
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    detect_postscore(plan_.model(), config, best, best_dist,
                     &out[to_score_[e]]);
  }
}

std::vector<Detection> BatchScorer::detect(const std::vector<EdgeSet>& sets,
                                           const DetectionConfig& config) {
  std::vector<const EdgeSet*> ptrs;
  ptrs.reserve(sets.size());
  for (const EdgeSet& s : sets) ptrs.push_back(&s);
  std::vector<Detection> out(sets.size());
  if (!sets.empty()) detect(ptrs.data(), ptrs.size(), config, out.data());
  return out;
}

// vprofile-lint: hot
void BatchScorer::score_batch(const EdgeSet* const* sets,
                              const std::uint32_t* indices, std::size_t n,
                              std::size_t stride) {
  using linalg::simd::Backend;
  const std::size_t dim = plan_.dimension();
  const Backend backend = plan_.backend_;
  const bool mahalanobis =
      plan_.model().metric() == DistanceMetric::kMahalanobis;

  dist_.resize(plan_.clusters_.size() * stride);

  if (backend == Backend::kFixed) {
    soa_fx_.resize(dim * stride);
    for (std::size_t e = 0; e < n; ++e) {
      const auto& xs = sets[indices[e]]->samples;  // size == dim (prescore)
      for (std::size_t i = 0; i < dim; ++i) {
        soa_fx_[i * stride + e] =
            linalg::fixed::quantize_feature(xs[i], plan_.feature_step_);
      }
    }
    const linalg::fixed::FixedBatchView view{soa_fx_.data(), stride, n, dim};
    for (std::size_t c = 0; c < plan_.clusters_.size(); ++c) {
      double* row = dist_.data() + c * stride;
      if (mahalanobis) {
        linalg::fixed::mahalanobis_fixed(view, plan_.clusters_[c].fixed, row,
                                         0, n);
      } else {
        linalg::fixed::euclidean_fixed(view, plan_.clusters_[c].fixed, row,
                                       0, n);
      }
    }
    return;
  }

  soa_.resize(dim * stride);
  for (std::size_t e = 0; e < n; ++e) {
    const auto& xs = sets[indices[e]]->samples;
    for (std::size_t i = 0; i < dim; ++i) soa_[i * stride + e] = xs[i];
  }
  // The pad columns [n, stride) are never read (the AVX2 body stops at the
  // last full quad inside n), but zero them so the buffer stays
  // deterministic for debugging.
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t e = n; e < stride; ++e) soa_[i * stride + e] = 0.0;
  }
  dscratch_.resize(dim * 16);

  const linalg::simd::BatchView view{soa_.data(), stride, n, dim};
  const std::size_t body =
      backend == Backend::kAvx2 ? (n & ~std::size_t{3}) : 0;
  for (std::size_t c = 0; c < plan_.clusters_.size(); ++c) {
    const ScoringPlan::ClusterOps& ops = plan_.clusters_[c];
    double* row = dist_.data() + c * stride;
    if (mahalanobis) {
      if (body > 0) {
        linalg::simd::mahalanobis_avx2(view, ops.mean.data(),
                                       ops.inv_cov.data(), dscratch_.data(),
                                       row, 0, body);
      }
      if (body < n) {
        linalg::simd::mahalanobis_scalar(view, ops.mean.data(),
                                         ops.inv_cov.data(), dscratch_.data(),
                                         row, body, n);
      }
    } else {
      if (body > 0) {
        linalg::simd::euclidean_avx2(view, ops.mean.data(), row, 0, body);
      }
      if (body < n) {
        linalg::simd::euclidean_scalar(view, ops.mean.data(), row, body, n);
      }
    }
  }
}

}  // namespace vprofile
