// Edge-set extraction (paper Algorithm 1).
//
// Walks the sampled voltage trace of one CAN message bit-by-bit: finds SOF,
// re-aligns at every transition to stay synchronized, skips stuff bits,
// decodes the source address from unstuffed bits 24-31, and extracts the
// sample windows around the first rising and falling edges after the
// arbitration field.
#pragma once

#include <optional>

#include "core/edge_set.hpp"
#include "dsp/trace.hpp"

namespace vprofile {

/// Why extraction failed.
enum class ExtractError {
  kNone,
  kNoSof,            // trace never crosses the bit threshold
  kTruncated,        // trace ends before the edge set is complete
  kStuffViolation,   // six consecutive equal bits (malformed frame)
};

const char* to_string(ExtractError err);

/// Extracts the SA and edge set(s) from a message-aligned trace of ADC
/// codes.  When `config.num_edge_sets` > 1 the returned samples are the
/// element-wise mean of the extracted sets (Section 5.2).  On failure
/// returns std::nullopt and, if `err` is non-null, stores the reason.
std::optional<EdgeSet> extract_edge_set(const dsp::Trace& trace,
                                        const ExtractionConfig& config,
                                        ExtractError* err = nullptr);

/// Per-cluster threshold estimation (Section 5.1): the midpoint of the
/// minimum and maximum of the first half of the message.  The second half
/// is excluded because the ACK bit's level can deviate significantly.
/// Throws std::invalid_argument on an empty trace.
double estimate_bit_threshold(const dsp::Trace& trace);

}  // namespace vprofile
