// vProfile detection (paper Algorithm 3).
//
// A message is anomalous when (a) its SA is unknown, (b) the cluster its
// waveform is nearest to differs from the cluster its SA claims, or (c) the
// nearest distance exceeds the cluster's maximum training distance plus a
// configurable margin.
#pragma once

#include <cstddef>
#include <optional>

#include "core/edge_set.hpp"
#include "core/model.hpp"

namespace vprofile {

/// Why a message was flagged (or not).
enum class Verdict {
  kOk,                 // message considered legitimate
  kUnknownSa,          // SA absent from the model's LUT
  kClusterMismatch,    // waveform nearest to a different ECU than claimed
  kDistanceExceeded,   // too far from every trained waveform
};

const char* to_string(Verdict verdict);

/// Detection options.
struct DetectionConfig {
  /// Extra distance allowed beyond each cluster's maximum training
  /// distance.  "A margin that is too small can result in more false
  /// positives and a margin that is too large can cause additional false
  /// negatives" (Section 3.2.3).
  double margin = 0.0;
};

/// Full detection result, including attribution.
struct Detection {
  Verdict verdict = Verdict::kOk;
  /// Cluster the SA claims; unset for unknown SAs.
  std::optional<std::size_t> expected_cluster;
  /// Cluster the waveform is nearest to — for anomalies from trained ECUs
  /// this identifies the attack's origin (Section 3.2.3).
  std::optional<std::size_t> predicted_cluster;
  double min_distance = 0.0;

  bool is_anomaly() const { return verdict != Verdict::kOk; }
};

/// Classifies one edge set against a trained model.
Detection detect(const Model& model, const EdgeSet& edge_set,
                 const DetectionConfig& config);

}  // namespace vprofile
