// vProfile detection (paper Algorithm 3).
//
// A message is anomalous when (a) its SA is unknown, (b) the cluster its
// waveform is nearest to differs from the cluster its SA claims, or (c) the
// nearest distance exceeds the cluster's maximum training distance plus a
// configurable margin.
//
// A fourth outcome, kDegraded, covers captures the analog front end
// visibly mangled (rail-saturated or dead samples, non-finite values,
// wrong dimensionality): classifying such an edge set would be a guess, so
// the detector reports reduced confidence instead of a confident verdict.
// Quality gating is disabled by default — clean-capture behavior is
// bit-identical to the pre-gating detector unless a config opts in.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>

#include "core/edge_set.hpp"
#include "core/model.hpp"

namespace vprofile {

/// Why a message was flagged (or not).
enum class Verdict {
  kOk,                 // message considered legitimate
  kUnknownSa,          // SA absent from the model's LUT
  kClusterMismatch,    // waveform nearest to a different ECU than claimed
  kDistanceExceeded,   // too far from every trained waveform
  kDegraded,           // capture quality too poor for a confident verdict
};

inline constexpr std::size_t kNumVerdicts = 5;

const char* to_string(Verdict verdict);

/// Detection options.
struct DetectionConfig {
  /// Extra distance allowed beyond each cluster's maximum training
  /// distance.  "A margin that is too small can result in more false
  /// positives and a margin that is too large can cause additional false
  /// negatives" (Section 3.2.3).
  double margin = 0.0;

  /// Input-quality gating (graceful degradation under analog faults).
  /// Samples >= saturation_code or <= dead_code count as unreliable (ADC
  /// rail hit / dropped sample); when more than `degraded_fraction` of an
  /// edge set is unreliable — or any sample is non-finite, or the
  /// dimensionality does not match the model — the verdict is kDegraded.
  /// The defaults disable the code-level checks entirely.
  double saturation_code = std::numeric_limits<double>::infinity();
  double dead_code = -std::numeric_limits<double>::infinity();
  double degraded_fraction = 0.25;
  /// Runs of >= this many consecutive identical samples also count as
  /// unreliable — a clipped rail or a dropout flat-lines the waveform at
  /// *some* level, while healthy captures always carry noise.  0 disables
  /// the check (the default).
  std::size_t flat_run_min = 0;
};

/// Full detection result, including attribution.
struct Detection {
  Verdict verdict = Verdict::kOk;
  /// Cluster the SA claims; unset for unknown SAs.
  std::optional<std::size_t> expected_cluster;
  /// Cluster the waveform is nearest to — for anomalies from trained ECUs
  /// this identifies the attack's origin (Section 3.2.3).
  std::optional<std::size_t> predicted_cluster;
  double min_distance = 0.0;
  /// Confidence in the verdict, in [0, 1].  Hard anomalies (unknown SA,
  /// cluster mismatch) are 1; distance verdicts scale with how far the
  /// message sits from the threshold; degraded verdicts report the
  /// fraction of samples that were still reliable.
  double confidence = 1.0;
  /// Samples outside the configured reliability window (quality gating).
  std::size_t unreliable_samples = 0;

  /// kDegraded counts as anomalous: a capture the detector cannot vouch
  /// for must never silently pass (fail-safe).  Use is_degraded() to
  /// separate "confidently flagged" from "could not classify".
  bool is_anomaly() const { return verdict != Verdict::kOk; }
  bool is_degraded() const { return verdict == Verdict::kDegraded; }
};

/// Classifies one edge set against a trained model.
Detection detect(const Model& model, const EdgeSet& edge_set,
                 const DetectionConfig& config);

/// First half of detect(): quality gate + SA lookup.  Returns true when
/// the edge set still needs distance scoring (dimensionality is then
/// guaranteed to match the model); returns false when `out` already holds
/// a final kDegraded / kUnknownSa verdict.  detect() and the batch scorer
/// (core/batch_scorer.hpp) are both composed from this split, which is
/// what makes batched scoring bit-identical to the one-frame oracle by
/// construction rather than by testing alone.
bool detect_prescore(const Model& model, const EdgeSet& edge_set,
                     const DetectionConfig& config, Detection* out);

/// Second half of detect(): folds a nearest-cluster result into the final
/// verdict and confidence.  `out` must come from a detect_prescore() call
/// that returned true.
void detect_postscore(const Model& model, const DetectionConfig& config,
                      std::size_t predicted, double min_distance,
                      Detection* out);

}  // namespace vprofile
