// Online model update (paper Algorithm 4 / Section 5.3).
//
// Folds new, trusted edge sets into an existing model so vProfile can track
// slow environmental drift (temperature, battery voltage) without a full
// retrain.  Mean and covariance follow Eq 5.1; the inverse covariance is
// maintained incrementally (Sherman-Morrison), and the per-cluster maximum
// distance grows when a new edge set lands beyond it.
//
// The paper cautions that updates lose impact as the edge-set count N_n
// grows, so each cluster carries a retrain bound M; updates past the bound
// are refused and the cluster is flagged for retraining.
#pragma once

#include <cstddef>
#include <vector>

#include "core/edge_set.hpp"
#include "core/model.hpp"

namespace vprofile {

/// Outcome of one update attempt.
enum class UpdateStatus {
  kUpdated,
  kUnknownSa,        // edge set's SA is not in the model
  kRetrainRequired,  // cluster reached the retrain bound M
  kDimensionMismatch,
  kNotMahalanobis,   // only Mahalanobis models carry covariance state
};

const char* to_string(UpdateStatus status);

/// Applies Algorithm 4 to a model in place.
class OnlineUpdater {
 public:
  /// `model` must outlive the updater and use the Mahalanobis metric.
  /// `retrain_bound` is the paper's M: once a cluster's edge-set count
  /// reaches it, further updates are refused.  Throws
  /// std::invalid_argument for a Euclidean model or a bound of 0.
  OnlineUpdater(Model* model, std::size_t retrain_bound);

  /// Folds one edge set into its cluster.
  UpdateStatus update(const EdgeSet& edge_set);

  /// Convenience: updates with a batch; returns the count actually folded.
  std::size_t update_all(const std::vector<EdgeSet>& edge_sets);

  /// Clusters whose edge-set count reached the retrain bound.
  std::vector<std::size_t> clusters_needing_retrain() const;

  std::size_t retrain_bound() const { return retrain_bound_; }

 private:
  Model* model_;
  std::size_t retrain_bound_;
};

}  // namespace vprofile
