// Online model update (paper Algorithm 4 / Section 5.3).
//
// Folds new, trusted edge sets into an existing model so vProfile can track
// slow environmental drift (temperature, battery voltage) without a full
// retrain.  Mean and covariance follow Eq 5.1; the inverse covariance is
// maintained incrementally (Sherman-Morrison), and the per-cluster maximum
// distance grows when a new edge set lands beyond it.
//
// The paper cautions that updates lose impact as the edge-set count N_n
// grows, so each cluster carries a retrain bound M; updates past the bound
// are refused and the cluster is flagged for retraining.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/detector.hpp"
#include "core/edge_set.hpp"
#include "core/model.hpp"

namespace vprofile {

/// Outcome of one update attempt.
enum class UpdateStatus {
  kUpdated,
  kUnknownSa,        // edge set's SA is not in the model
  kRetrainRequired,  // cluster reached the retrain bound M
  kDimensionMismatch,
  kNotMahalanobis,   // only Mahalanobis models carry covariance state
};

const char* to_string(UpdateStatus status);

/// Applies Algorithm 4 to a model in place.
class OnlineUpdater {
 public:
  /// `model` must outlive the updater and use the Mahalanobis metric.
  /// `retrain_bound` is the paper's M: once a cluster's edge-set count
  /// reaches it, further updates are refused.  Throws
  /// std::invalid_argument for a Euclidean model or a bound of 0.
  OnlineUpdater(Model* model, std::size_t retrain_bound);

  /// Folds one edge set into its cluster.
  UpdateStatus update(const EdgeSet& edge_set);

  /// Convenience: updates with a batch; returns the count actually folded.
  std::size_t update_all(const std::vector<EdgeSet>& edge_sets);

  /// Clusters whose edge-set count reached the retrain bound.
  std::vector<std::size_t> clusters_needing_retrain() const;

  std::size_t retrain_bound() const { return retrain_bound_; }

 private:
  Model* model_;
  std::size_t retrain_bound_;
};

/// Why the gate folded — or refused — a candidate edge set.
enum class GateDecision {
  kAccepted,          // folded into the model
  kRejectedVerdict,   // detector did not say kOk (anomaly or degraded)
  kRejectedMargin,    // kOk but too close to the cluster threshold
  kRefusedByUpdater,  // gate passed, OnlineUpdater refused (bound, SA, dim)
};

const char* to_string(GateDecision decision);

struct GatedUpdateConfig {
  /// The paper's retrain bound M, forwarded to OnlineUpdater.
  std::size_t retrain_bound = 100000;
  /// A frame is only trusted when its distance sits below this fraction of
  /// its cluster's max_distance — "high-margin benign".  Frames between
  /// here and the detection threshold still pass the detector but are
  /// exactly where a slow-poisoning adversary (Sagong et al.) operates, so
  /// the gate refuses them.
  double max_distance_fraction = 0.6;
};

/// Tallies for every consider() call; mirrors GateDecision.
struct GatedUpdateStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_verdict = 0;
  std::uint64_t rejected_margin = 0;
  std::uint64_t refused_by_updater = 0;

  std::uint64_t considered() const {
    return accepted + rejected_verdict + rejected_margin + refused_by_updater;
  }
};

/// Algorithm 4 with the verdict gate in front: only frames the detector
/// itself vouches for — a confident kOk verdict *and* a distance well
/// inside the trained threshold — are folded into the model.  This is
/// what keeps the online-update loop from being a poisoning vector: an
/// adversary ramping its signature toward a victim's never gets its
/// frames trusted, because the frames that pass detection are exactly the
/// ones that look like the existing profile.
class GatedUpdater {
 public:
  /// Same model requirements as OnlineUpdater (Mahalanobis, non-null);
  /// throws std::invalid_argument when they do not hold.
  GatedUpdater(Model* model, GatedUpdateConfig config);

  /// Folds `edge_set` iff `detection` (the detector's verdict for this
  /// same edge set) passes the gate.
  GateDecision consider(const EdgeSet& edge_set, const Detection& detection);

  const GatedUpdateStats& stats() const { return stats_; }
  void reset_stats() { stats_ = GatedUpdateStats{}; }
  const GatedUpdateConfig& config() const { return config_; }
  /// The wrapped ungated updater (for retrain bookkeeping).
  OnlineUpdater& updater() { return updater_; }

 private:
  Model* model_;
  GatedUpdateConfig config_;
  OnlineUpdater updater_;
  GatedUpdateStats stats_;
};

}  // namespace vprofile
