#include "core/detector.hpp"

namespace vprofile {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kUnknownSa: return "unknown SA";
    case Verdict::kClusterMismatch: return "cluster mismatch";
    case Verdict::kDistanceExceeded: return "distance exceeded";
  }
  return "unknown";
}

Detection detect(const Model& model, const EdgeSet& edge_set,
                 const DetectionConfig& config) {
  Detection result;

  const std::optional<std::size_t> expected = model.cluster_of(edge_set.sa);
  if (!expected) {
    result.verdict = Verdict::kUnknownSa;
    return result;
  }
  result.expected_cluster = expected;

  const auto [predicted, min_dist] = model.nearest_cluster(edge_set.samples);
  result.predicted_cluster = predicted;
  result.min_distance = min_dist;

  if (predicted != *expected) {
    result.verdict = Verdict::kClusterMismatch;
    return result;
  }
  const double threshold =
      model.clusters()[predicted].max_distance + config.margin;
  if (min_dist > threshold) {
    result.verdict = Verdict::kDistanceExceeded;
    return result;
  }
  result.verdict = Verdict::kOk;
  return result;
}

}  // namespace vprofile
