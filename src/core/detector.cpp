#include "core/detector.hpp"

#include <algorithm>
#include <cmath>

namespace vprofile {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kUnknownSa: return "unknown SA";
    case Verdict::kClusterMismatch: return "cluster mismatch";
    case Verdict::kDistanceExceeded: return "distance exceeded";
    case Verdict::kDegraded: return "degraded";
  }
  return "unknown";
}

namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

}  // namespace

bool detect_prescore(const Model& model, const EdgeSet& edge_set,
                     const DetectionConfig& config, Detection* out) {
  Detection& result = *out;
  result = Detection{};

  // Quality gate first: a mangled capture makes every downstream quantity
  // (including the decoded SA) untrustworthy, so no confident verdict can
  // be built on top of it.
  std::size_t unreliable = 0;
  bool non_finite = false;
  const bool rails_gate = std::isfinite(config.saturation_code) ||
                          config.dead_code >
                              -std::numeric_limits<double>::infinity();
  for (double s : edge_set.samples) {
    if (!std::isfinite(s)) {
      non_finite = true;
      ++unreliable;
    } else if (rails_gate &&
               (s >= config.saturation_code || s <= config.dead_code)) {
      ++unreliable;
    }
  }
  if (config.flat_run_min > 1) {
    // Count samples sitting in runs of identical values; overlap with the
    // rail check is deliberate (a sample is unreliable once, whichever
    // symptom exposed it first) so the run scan only counts samples the
    // rails did not already claim.
    const auto& xs = edge_set.samples;
    std::size_t i = 0;
    while (i < xs.size()) {
      std::size_t j = i + 1;
      while (j < xs.size() && xs[j] == xs[i]) ++j;
      const std::size_t run = j - i;
      if (run >= config.flat_run_min && std::isfinite(xs[i]) &&
          (!rails_gate || (xs[i] < config.saturation_code &&
                           xs[i] > config.dead_code))) {
        unreliable += run;
      }
      i = j;
    }
  }
  result.unreliable_samples = unreliable;
  result.expected_cluster = model.cluster_of(edge_set.sa);

  const std::size_t dim = edge_set.samples.size();
  const bool wrong_dim = dim != model.dimension();
  const bool too_many_bad =
      dim > 0 && static_cast<double>(unreliable) >
                     config.degraded_fraction * static_cast<double>(dim);
  if (non_finite || wrong_dim || dim == 0 || too_many_bad) {
    result.verdict = Verdict::kDegraded;
    result.confidence =
        (non_finite || wrong_dim || dim == 0)
            ? 0.0
            : clamp01(1.0 - static_cast<double>(unreliable) /
                                static_cast<double>(dim));
    return false;
  }

  if (!result.expected_cluster) {
    result.verdict = Verdict::kUnknownSa;
    return false;
  }
  return true;
}

void detect_postscore(const Model& model, const DetectionConfig& config,
                      std::size_t predicted, double min_distance,
                      Detection* out) {
  Detection& result = *out;
  result.predicted_cluster = predicted;
  result.min_distance = min_distance;

  if (predicted != *result.expected_cluster) {
    result.verdict = Verdict::kClusterMismatch;
    return;
  }
  const double threshold =
      model.clusters()[predicted].max_distance + config.margin;
  if (min_distance > threshold) {
    result.verdict = Verdict::kDistanceExceeded;
    // Far beyond the threshold -> confident anomaly; barely over -> weak.
    result.confidence = min_distance > 0.0
                            ? clamp01((min_distance - threshold) / min_distance)
                            : 0.0;
    return;
  }
  result.verdict = Verdict::kOk;
  // Deep inside the threshold -> confident pass; close to it -> weak.
  result.confidence =
      threshold > 0.0 ? clamp01((threshold - min_distance) / threshold) : 1.0;
}

Detection detect(const Model& model, const EdgeSet& edge_set,
                 const DetectionConfig& config) {
  Detection result;
  if (!detect_prescore(model, edge_set, config, &result)) return result;
  const auto [predicted, min_dist] = model.nearest_cluster(edge_set.samples);
  detect_postscore(model, config, predicted, min_dist, &result);
  return result;
}

}  // namespace vprofile
