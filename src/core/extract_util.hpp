// Internal helpers shared by the extended- and standard-frame edge-set
// extractors.  Not part of the public API.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/edge_set.hpp"
#include "core/units.hpp"
#include "dsp/trace.hpp"

namespace vprofile {
enum class ExtractError;
}

namespace vprofile::detail {

/// Result of walking a message trace bit-by-bit from SOF.
struct BitWalk {
  /// Unstuffed bit polarities; index 0 is SOF, true = dominant ('0').
  std::vector<bool> dominant;
  /// Sample-grid index at the centre of the last counted bit.  Typed as
  /// units::SampleIndex: the walk deals in both frame-bit positions and
  /// trace sample positions, and mixing the two is exactly the bug class
  /// the unit types exclude.
  units::SampleIndex pos{0};
};

/// Walks the trace from SOF through unstuffed bit `stop_bit` (inclusive),
/// re-aligning at transitions and skipping stuff bits (the loop of
/// Algorithm 1).  On failure returns std::nullopt and stores the reason in
/// `err` when non-null.
std::optional<BitWalk> walk_unstuffed_bits(const dsp::Trace& trace,
                                           const ExtractionConfig& cfg,
                                           units::BitIndex stop_bit,
                                           ExtractError* err);

/// Index of the first rising crossing at or after `pos`: the first sample
/// >= threshold whose predecessor is below.  Leaves a dominant region
/// first if `pos` starts inside one.
std::optional<std::size_t> next_rising_crossing(const dsp::Trace& t,
                                                std::size_t pos,
                                                double threshold);

/// Index of the first falling crossing after `pos`.
std::optional<std::size_t> next_falling_crossing(const dsp::Trace& t,
                                                 std::size_t pos,
                                                 double threshold);

/// Extracts one rising+falling window pair starting the search at `pos`;
/// std::nullopt when the trace ends first.
std::optional<linalg::Vector> extract_one_set(const dsp::Trace& trace,
                                              units::SampleIndex pos,
                                              const ExtractionConfig& cfg);

/// Extracts cfg.num_edge_sets window pairs starting at `pos` and averages
/// them; std::nullopt when any set is truncated.
std::optional<linalg::Vector> extract_edge_windows(const dsp::Trace& trace,
                                                   units::SampleIndex pos,
                                                   const ExtractionConfig& cfg);

/// Reads unstuffed bits [first, last] (inclusive, SOF = 0) as an MSB-first
/// unsigned value; dominant = '0'.
std::uint32_t read_walk_bits(const BitWalk& walk, units::BitIndex first,
                             units::BitIndex last);

}  // namespace vprofile::detail
