#include "core/online_update.hpp"

#include <stdexcept>

#include "linalg/covariance.hpp"
#include "linalg/mahalanobis.hpp"

namespace vprofile {

const char* to_string(UpdateStatus status) {
  switch (status) {
    case UpdateStatus::kUpdated: return "updated";
    case UpdateStatus::kUnknownSa: return "unknown SA";
    case UpdateStatus::kRetrainRequired: return "retrain required";
    case UpdateStatus::kDimensionMismatch: return "dimension mismatch";
    case UpdateStatus::kNotMahalanobis: return "model is not Mahalanobis";
  }
  return "unknown";
}

OnlineUpdater::OnlineUpdater(Model* model, std::size_t retrain_bound)
    : model_(model), retrain_bound_(retrain_bound) {
  if (model_ == nullptr) {
    throw std::invalid_argument("OnlineUpdater: null model");
  }
  if (model_->metric() != DistanceMetric::kMahalanobis) {
    throw std::invalid_argument(
        "OnlineUpdater: model must use the Mahalanobis metric");
  }
  if (retrain_bound_ == 0) {
    throw std::invalid_argument("OnlineUpdater: retrain bound must be > 0");
  }
}

UpdateStatus OnlineUpdater::update(const EdgeSet& edge_set) {
  if (model_->metric() != DistanceMetric::kMahalanobis) {
    return UpdateStatus::kNotMahalanobis;
  }
  const auto cluster = model_->cluster_of(edge_set.sa);
  if (!cluster) return UpdateStatus::kUnknownSa;
  ClusterModel& cl = model_->clusters()[*cluster];
  if (edge_set.samples.size() != cl.mean.size()) {
    return UpdateStatus::kDimensionMismatch;
  }
  if (cl.edge_set_count >= retrain_bound_) {
    return UpdateStatus::kRetrainRequired;
  }

  // Eq 5.1 via the incremental covariance state, then write back.
  linalg::IncrementalCovariance state(cl.mean, cl.covariance,
                                      cl.inv_covariance, cl.edge_set_count);
  state.update(edge_set.samples);
  cl.mean = state.mean();
  cl.covariance = state.covariance();
  cl.inv_covariance = state.inverse();
  cl.edge_set_count = state.count();

  const double dist = linalg::mahalanobis_distance_inv(
      edge_set.samples, cl.mean, cl.inv_covariance);
  if (dist > cl.max_distance) cl.max_distance = dist;
  return UpdateStatus::kUpdated;
}

std::size_t OnlineUpdater::update_all(const std::vector<EdgeSet>& edge_sets) {
  std::size_t updated = 0;
  for (const EdgeSet& e : edge_sets) {
    if (update(e) == UpdateStatus::kUpdated) ++updated;
  }
  return updated;
}

std::vector<std::size_t> OnlineUpdater::clusters_needing_retrain() const {
  std::vector<std::size_t> out;
  const auto& clusters = model_->clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].edge_set_count >= retrain_bound_) out.push_back(c);
  }
  return out;
}

const char* to_string(GateDecision decision) {
  switch (decision) {
    case GateDecision::kAccepted: return "accepted";
    case GateDecision::kRejectedVerdict: return "rejected-verdict";
    case GateDecision::kRejectedMargin: return "rejected-margin";
    case GateDecision::kRefusedByUpdater: return "refused-by-updater";
  }
  return "unknown";
}

GatedUpdater::GatedUpdater(Model* model, GatedUpdateConfig config)
    : model_(model), config_(config), updater_(model, config.retrain_bound) {
  if (config_.max_distance_fraction <= 0.0 ||
      config_.max_distance_fraction > 1.0) {
    throw std::invalid_argument(
        "GatedUpdater: max_distance_fraction must be in (0, 1]");
  }
}

GateDecision GatedUpdater::consider(const EdgeSet& edge_set,
                                    const Detection& detection) {
  if (detection.verdict != Verdict::kOk || !detection.expected_cluster) {
    ++stats_.rejected_verdict;
    return GateDecision::kRejectedVerdict;
  }
  const ClusterModel& cl = model_->clusters()[*detection.expected_cluster];
  if (detection.min_distance >
      config_.max_distance_fraction * cl.max_distance) {
    ++stats_.rejected_margin;
    return GateDecision::kRejectedMargin;
  }
  if (updater_.update(edge_set) != UpdateStatus::kUpdated) {
    ++stats_.refused_by_updater;
    return GateDecision::kRefusedByUpdater;
  }
  ++stats_.accepted;
  return GateDecision::kAccepted;
}

}  // namespace vprofile
