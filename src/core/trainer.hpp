// vProfile training (paper Algorithm 2).
//
// Two clustering paths, exactly as the paper describes:
//  * "fortunate": a database maps every valid SA to its owning ECU, so
//    clustering is a lookup; and
//  * "unfortunate": no database — edge sets are grouped by SA and SA groups
//    whose means are close are merged into one cluster.
//
// Training then stores each cluster's mean, covariance (Mahalanobis only),
// inverse covariance, and the maximum training distance that seeds the
// detection threshold.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_set.hpp"
#include "core/model.hpp"

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

namespace vprofile {

/// Maps an SA to the name of the ECU that owns it ("the database").
using SaDatabase = std::map<std::uint8_t, std::string>;

/// Training options.
struct TrainingConfig {
  DistanceMetric metric = DistanceMetric::kMahalanobis;
  ExtractionConfig extraction;
  /// Ridge added to covariance diagonals when the plain factorization is
  /// singular.  0 disables the fallback, reproducing the paper's hard
  /// failure at low ADC resolutions ("singular covariance matrices").
  double ridge = 0.0;
  /// Distance below which two SA-group means belong to the same ECU when
  /// clustering without a database.  <= 0 selects the automatic
  /// largest-gap heuristic.
  double merge_threshold = 0.0;
  /// Minimum edge sets a cluster needs for a usable covariance.
  std::size_t min_cluster_size = 8;
  /// Threads building per-cluster statistics (covariance accumulation,
  /// Cholesky, inverse, max training distance).  Clusters are independent,
  /// so the trained model is identical for any thread count; 0 or 1 keeps
  /// the single-threaded path.
  std::size_t num_threads = 1;
  /// Optional observability sinks (per-cluster fit latency / spans); null
  /// = zero overhead, and the trained model is bit-identical either way.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Outcome of training: a model, or a diagnosis of why training failed.
struct TrainOutcome {
  std::optional<Model> model;
  std::string error;         // empty on success
  double ridge_used = 0.0;   // ridge that made the covariance invertible

  bool ok() const { return model.has_value(); }
};

/// Trains with a known SA database (ClusterByLut).  Edge sets whose SA is
/// missing from the database are rejected with an error, since training
/// data is trusted by assumption.
TrainOutcome train_with_database(const std::vector<EdgeSet>& edge_sets,
                                 const SaDatabase& database,
                                 const TrainingConfig& config);

/// Trains without a database (GroupBySA + ClusterByDist): SA groups whose
/// means are within the merge threshold collapse into one cluster.
TrainOutcome train_by_distance(const std::vector<EdgeSet>& edge_sets,
                               const TrainingConfig& config);

/// The SA-group merge step exposed for tests and diagnostics: returns, for
/// each distinct SA (ascending), the cluster index it was assigned.
std::vector<std::size_t> cluster_sa_groups_by_distance(
    const std::vector<std::uint8_t>& sas,
    const std::vector<linalg::Vector>& sa_means, double merge_threshold);

}  // namespace vprofile
