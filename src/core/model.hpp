// The trained vProfile model (output of Algorithm 2, input of Algorithm 3):
// per-cluster mean / covariance / maximum training distance, plus the
// SA -> cluster lookup table.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_set.hpp"
#include "linalg/matrix.hpp"

namespace vprofile {

/// Distance metric used for clustering, thresholding and detection.
enum class DistanceMetric { kEuclidean, kMahalanobis };

const char* to_string(DistanceMetric metric);

/// Everything the model stores about one ECU (cluster).
struct ClusterModel {
  std::string name;                 // e.g. "ECU 0"
  std::vector<std::uint8_t> sas;    // source addresses this ECU transmits
  linalg::Vector mean;
  /// Covariance and its inverse; empty (0x0) for Euclidean models.
  linalg::Matrix covariance;
  linalg::Matrix inv_covariance;
  /// Largest distance from a training edge set to the mean — the detection
  /// threshold before margin.
  double max_distance = 0.0;
  /// Number of edge sets behind the statistics (N_n in Algorithm 4).
  std::size_t edge_set_count = 0;
  /// Per-cluster bit threshold (Section 5.1); NaN when the global
  /// extraction threshold applies.
  double extraction_threshold = std::numeric_limits<double>::quiet_NaN();
};

/// Trained model: clusters plus the SA lookup table.
class Model {
 public:
  Model(DistanceMetric metric, ExtractionConfig extraction,
        std::vector<ClusterModel> clusters);

  DistanceMetric metric() const { return metric_; }
  const ExtractionConfig& extraction() const { return extraction_; }
  const std::vector<ClusterModel>& clusters() const { return clusters_; }
  std::vector<ClusterModel>& clusters() { return clusters_; }
  std::size_t dimension() const;

  /// Cluster index for an SA, or std::nullopt for an unknown SA.
  std::optional<std::size_t> cluster_of(std::uint8_t sa) const;

  /// Distance from `x` to the given cluster's mean under the model metric.
  double distance(std::size_t cluster, const linalg::Vector& x) const;

  /// Index and distance of the nearest cluster.  Throws std::logic_error
  /// if the model has no clusters (constructor prevents that).
  std::pair<std::size_t, double> nearest_cluster(const linalg::Vector& x) const;

 private:
  DistanceMetric metric_;
  ExtractionConfig extraction_;
  std::vector<ClusterModel> clusters_;
  std::array<std::int16_t, 256> sa_lut_;  // -1 = unknown SA
};

}  // namespace vprofile
