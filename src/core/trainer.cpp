#include "core/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>
#include <thread>

#include "linalg/cholesky.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "linalg/covariance.hpp"
#include "linalg/mahalanobis.hpp"

namespace vprofile {
namespace {

/// Edge sets grouped into clusters, each with a name and its SA list.
struct ClusterGroup {
  std::string name;
  std::vector<std::uint8_t> sas;
  std::vector<const EdgeSet*> members;
};

/// Per-cluster outcome; built independently so clusters can be processed
/// on any thread.
struct ClusterBuild {
  std::optional<ClusterModel> cluster;
  std::string error;
  double ridge_used = 0.0;
};

/// Accumulates one cluster's statistics (covariance, factorization,
/// inverse, max training distance).  Consumes the group.
ClusterBuild build_cluster(ClusterGroup& g, const TrainingConfig& config) {
  ClusterBuild build;
  const std::size_t dim = config.extraction.dimension();
  if (g.members.size() < config.min_cluster_size) {
    std::ostringstream os;
    os << "cluster '" << g.name << "' has only " << g.members.size()
       << " edge sets (min " << config.min_cluster_size << ")";
    build.error = os.str();
    return build;
  }
  linalg::CovarianceAccumulator acc(dim);
  for (const EdgeSet* e : g.members) {
    if (e->samples.size() != dim) {
      build.error = "edge set dimension mismatch";
      return build;
    }
    acc.add(e->samples);
  }

  ClusterModel cm;
  cm.name = std::move(g.name);
  cm.sas = std::move(g.sas);
  cm.mean = acc.mean();
  cm.edge_set_count = acc.count();

  if (config.metric == DistanceMetric::kMahalanobis) {
    cm.covariance = acc.covariance();
    std::optional<linalg::Cholesky> factor =
        linalg::Cholesky::factorize(cm.covariance);
    if (!factor && config.ridge > 0.0) {
      auto ridged = linalg::factorize_with_ridge(cm.covariance, config.ridge);
      if (ridged) {
        build.ridge_used = ridged->ridge;
        cm.covariance.add_ridge(ridged->ridge);
        factor = std::move(ridged->factor);
      }
    }
    if (!factor) {
      build.error = "singular covariance matrix for cluster '" + cm.name + "'";
      return build;
    }
    cm.inv_covariance = factor->inverse();
  }

  // Detection threshold: the largest training distance to the mean.
  double max_dist = 0.0;
  for (const EdgeSet* e : g.members) {
    double d;
    if (config.metric == DistanceMetric::kEuclidean) {
      d = linalg::euclidean_distance(e->samples, cm.mean);
    } else {
      d = linalg::mahalanobis_distance_inv(e->samples, cm.mean,
                                           cm.inv_covariance);
    }
    max_dist = std::max(max_dist, d);
  }
  cm.max_distance = max_dist;
  build.cluster = std::move(cm);
  return build;
}

/// Builds the per-cluster statistics and assembles the model.  Clusters
/// are independent, so with config.num_threads > 1 they are processed by
/// a small worker pool; results land in per-cluster slots and are
/// aggregated in cluster order, making the outcome (model, first error,
/// accumulated ridge) identical to the single-threaded path.
TrainOutcome finalize(std::vector<ClusterGroup> groups,
                      const TrainingConfig& config) {
  TrainOutcome outcome;
  if (groups.empty()) {
    outcome.error = "no training data";
    return outcome;
  }

  const std::size_t n = groups.size();
  std::vector<ClusterBuild> builds(n);
  // Observability handles are resolved once, before the pool starts, so
  // the workers only ever touch lock-free instruments.
  obs::Histogram* fit_hist =
      config.metrics != nullptr
          ? config.metrics->histogram("train_cluster_fit_ns")
          : nullptr;
  obs::Counter* fit_total =
      config.metrics != nullptr
          ? config.metrics->counter("train_clusters_total")
          : nullptr;
  auto fit_one = [&](std::size_t i) {
    if (fit_hist == nullptr && config.tracer == nullptr) {
      builds[i] = build_cluster(groups[i], config);
      return;
    }
    const std::uint64_t trace_start =
        config.tracer != nullptr ? config.tracer->now_ns() : 0;
    const auto t0 = std::chrono::steady_clock::now();
    builds[i] = build_cluster(groups[i], config);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (fit_hist != nullptr) {
      fit_hist->observe(ns);
      fit_total->add();
    }
    if (config.tracer != nullptr) {
      config.tracer->record("train.cluster_fit", trace_start, ns);
    }
  };
  const std::size_t num_threads =
      std::min(std::max<std::size_t>(config.num_threads, 1), n);
  if (num_threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fit_one(i);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto work = [&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fit_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(num_threads - 1);
    for (std::size_t t = 0; t + 1 < num_threads; ++t) pool.emplace_back(work);
    work();
    for (std::thread& t : pool) t.join();
  }

  // Aggregate in cluster order: the first failing cluster's error is
  // reported, with the ridge accumulated over the clusters before it —
  // exactly what a sequential pass over `groups` produces.
  std::vector<ClusterModel> clusters;
  clusters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    outcome.ridge_used = std::max(outcome.ridge_used, builds[i].ridge_used);
    if (!builds[i].error.empty()) {
      outcome.error = builds[i].error;
      return outcome;
    }
    clusters.push_back(std::move(*builds[i].cluster));
  }

  outcome.model.emplace(config.metric, config.extraction, std::move(clusters));
  return outcome;
}

}  // namespace

TrainOutcome train_with_database(const std::vector<EdgeSet>& edge_sets,
                                 const SaDatabase& database,
                                 const TrainingConfig& config) {
  TrainOutcome outcome;
  if (edge_sets.empty()) {
    outcome.error = "no training data";
    return outcome;
  }

  // One group per distinct ECU name; SA lists from the database.
  std::map<std::string, ClusterGroup> by_name;
  for (const auto& [sa, name] : database) {
    ClusterGroup& g = by_name[name];
    g.name = name;
    g.sas.push_back(sa);
  }
  for (const EdgeSet& e : edge_sets) {
    auto it = database.find(e.sa);
    if (it == database.end()) {
      std::ostringstream os;
      os << "training edge set with SA " << static_cast<int>(e.sa)
         << " not present in the database";
      outcome.error = os.str();
      return outcome;
    }
    by_name[it->second].members.push_back(&e);
  }

  std::vector<ClusterGroup> groups;
  groups.reserve(by_name.size());
  for (auto& [name, g] : by_name) {
    if (g.members.empty()) continue;  // DB entry that never transmitted
    groups.push_back(std::move(g));
  }
  return finalize(std::move(groups), config);
}

std::vector<std::size_t> cluster_sa_groups_by_distance(
    const std::vector<std::uint8_t>& sas,
    const std::vector<linalg::Vector>& sa_means, double merge_threshold) {
  const std::size_t n = sas.size();
  if (n != sa_means.size()) {
    throw std::invalid_argument(
        "cluster_sa_groups_by_distance: size mismatch");
  }
  if (n == 0) return {};

  // Pairwise distances between SA-group means.
  struct Pair {
    double dist;
    std::size_t a, b;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pairs.push_back(
          {linalg::euclidean_distance(sa_means[i], sa_means[j]), i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& x, const Pair& y) { return x.dist < y.dist; });

  // Automatic threshold: the largest relative gap in the sorted distance
  // list separates same-ECU pairs from different-ECU pairs.  Only gaps in
  // the lower half of the list are considered — merge candidates are by
  // definition the small distances, and gaps between two genuinely
  // different ECUs (e.g. a near-twin pair vs the rest) must not move the
  // threshold above them.
  double threshold = merge_threshold;
  if (threshold <= 0.0 && pairs.size() >= 2) {
    double best_ratio = 0.0;
    const std::size_t last_gap = std::max<std::size_t>(1, pairs.size() / 2);
    for (std::size_t k = 0; k < last_gap && k + 1 < pairs.size(); ++k) {
      const double lo = std::max(pairs[k].dist, 1e-12);
      const double ratio = pairs[k + 1].dist / lo;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        threshold = (pairs[k].dist + pairs[k + 1].dist) / 2.0;
      }
    }
    // Without a pronounced gap (same-ECU pairs are typically orders of
    // magnitude closer than cross-ECU pairs), treat every SA as its own
    // ECU rather than merging on incidental spacing differences.
    if (best_ratio < 3.0) threshold = -1.0;
  }

  // Union-find over SA groups, merging pairs under the threshold.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Pair& p : pairs) {
    if (p.dist >= threshold) break;
    parent[find(p.a)] = find(p.b);
  }

  // Compact root ids into dense cluster indices in first-seen order.
  std::map<std::size_t, std::size_t> root_to_cluster;
  std::vector<std::size_t> assignment(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    auto [it, inserted] =
        root_to_cluster.try_emplace(root, root_to_cluster.size());
    assignment[i] = it->second;
  }
  return assignment;
}

TrainOutcome train_by_distance(const std::vector<EdgeSet>& edge_sets,
                               const TrainingConfig& config) {
  TrainOutcome outcome;
  if (edge_sets.empty()) {
    outcome.error = "no training data";
    return outcome;
  }

  // GroupBySA.
  std::map<std::uint8_t, std::vector<const EdgeSet*>> by_sa;
  for (const EdgeSet& e : edge_sets) by_sa[e.sa].push_back(&e);

  std::vector<std::uint8_t> sas;
  std::vector<linalg::Vector> means;
  sas.reserve(by_sa.size());
  means.reserve(by_sa.size());
  const std::size_t dim = config.extraction.dimension();
  for (const auto& [sa, members] : by_sa) {
    linalg::CovarianceAccumulator acc(dim);
    for (const EdgeSet* e : members) {
      if (e->samples.size() != dim) {
        outcome.error = "edge set dimension mismatch";
        return outcome;
      }
      acc.add(e->samples);
    }
    sas.push_back(sa);
    means.push_back(acc.mean());
  }

  const std::vector<std::size_t> assignment =
      cluster_sa_groups_by_distance(sas, means, config.merge_threshold);
  const std::size_t num_clusters =
      assignment.empty()
          ? 0
          : 1 + *std::max_element(assignment.begin(), assignment.end());

  std::vector<ClusterGroup> groups(num_clusters);
  for (std::size_t i = 0; i < sas.size(); ++i) {
    ClusterGroup& g = groups[assignment[i]];
    if (g.name.empty()) {
      g.name = "ECU " + std::to_string(assignment[i]);
    }
    g.sas.push_back(sas[i]);
    for (const EdgeSet* e : by_sa[sas[i]]) g.members.push_back(e);
  }
  return finalize(std::move(groups), config);
}

}  // namespace vprofile
