// Batched detection: structure-of-arrays scoring of many edge sets per
// call, behind the runtime SIMD dispatch boundary.
//
// The one-frame path (vprofile::detect) walks clusters with three heap
// allocations per distance; at 250 kb/s bus rates the allocator and the
// strided loads, not the arithmetic, dominate the scoring stage.  This
// layer splits the work the embedded way:
//
//   ScoringPlan   immutable, built once at model load: per-cluster mean /
//                 inverse-covariance copies in contiguous storage, the
//                 Cholesky factor of each covariance (factorized once and
//                 cached — also used to cross-check that the stored
//                 inverse actually inverts the stored covariance, which
//                 catches corrupted checkpoints at load time instead of
//                 as NaN verdicts later), the int16 fixed-point operands,
//                 and the resolved backend.
//   BatchScorer   per-worker scratch (SoA transpose buffers, distance
//                 matrix) over one shared plan; scoring a batch does zero
//                 allocations after warm-up.
//
// Equivalence contract: for the float backends (kScalar, kAvx2) the
// Detection stream is bit-identical to calling vprofile::detect() per
// edge set — same verdicts, same distances, same confidences.  The fixed
// backend diverges within ScoringPlan::distance_error_bound().  Both
// properties are enforced by tests/test_simd_differential.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/detector.hpp"
#include "core/model.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/fixed_point.hpp"
#include "linalg/simd_dispatch.hpp"

namespace vprofile {

/// Immutable per-model scoring operands; share one plan across workers.
/// The model must outlive the plan and must not be mutated while any
/// scorer uses it (the plan holds copies, so a mutated model would score
/// against stale statistics — build a fresh plan after online updates).
class ScoringPlan {
 public:
  /// Builds the plan, resolving `requested` against the CPU and the
  /// VPROFILE_FORCE_SCALAR escape hatch (see linalg/simd_dispatch.hpp).
  explicit ScoringPlan(
      const Model& model,
      linalg::simd::Backend requested = linalg::simd::Backend::kAuto);

  const Model& model() const { return model_; }
  /// The backend score() will actually run — never kAuto.
  linalg::simd::Backend backend() const { return backend_; }
  /// Shared power-of-two feature grid of the fixed-point operands.
  double feature_step() const { return feature_step_; }

  std::size_t num_clusters() const { return clusters_.size(); }
  std::size_t dimension() const { return model_.dimension(); }

  /// Cached Cholesky factor of cluster `c`'s covariance (factorized once
  /// at plan build), or nullopt for Euclidean clusters and covariances
  /// that stayed singular through ridge escalation.
  const std::optional<linalg::Cholesky>& factor(std::size_t c) const {
    return clusters_[c].factor;
  }
  /// Ridge the factorization needed (0 when it succeeded unregularized).
  double factor_ridge(std::size_t c) const { return clusters_[c].ridge; }
  /// False when the model's stored inverse covariance disagrees with its
  /// stored covariance (checked against the cached factor at load) — the
  /// signature of a corrupted or stale checkpoint.
  bool inverse_consistent(std::size_t c) const {
    return clusters_[c].inverse_consistent;
  }

  /// Worst-case fixed-point distance error for cluster `c` over queries
  /// within `radius` of its mean per component (original feature units).
  double distance_error_bound(std::size_t c, double radius) const {
    return clusters_[c].fixed.distance_error_bound(radius);
  }

 private:
  friend class BatchScorer;

  struct ClusterOps {
    std::vector<double> mean;     // contiguous copy
    std::vector<double> inv_cov;  // row-major copy; empty for Euclidean
    std::optional<linalg::Cholesky> factor;
    double ridge = 0.0;
    bool inverse_consistent = true;
    linalg::fixed::ClusterQuant fixed;
  };

  const Model& model_;
  linalg::simd::Backend backend_;
  double feature_step_ = 1.0;
  std::vector<ClusterOps> clusters_;
};

/// Scores batches of edge sets against one plan.  Owns mutable scratch:
/// use one scorer per thread.
class BatchScorer {
 public:
  explicit BatchScorer(const ScoringPlan& plan) : plan_(plan) {}

  const ScoringPlan& plan() const { return plan_; }

  /// Classifies `count` edge sets; out[i] corresponds to sets[i].  For
  /// float backends the results are bit-identical to vprofile::detect()
  /// per set, in any batch size or order.
  void detect(const EdgeSet* const* sets, std::size_t count,
              const DetectionConfig& config, Detection* out);

  /// Convenience overload.
  std::vector<Detection> detect(const std::vector<EdgeSet>& sets,
                                const DetectionConfig& config);

 private:
  void score_batch(const EdgeSet* const* sets, const std::uint32_t* indices,
                   std::size_t n, std::size_t stride);

  const ScoringPlan& plan_;
  // Workspace, reused across calls (sized on first use per batch shape).
  std::vector<std::uint32_t> to_score_;
  std::vector<double> soa_;       // dim x stride feature transpose
  std::vector<double> dscratch_;  // dim (scalar) or dim*4 (avx2) doubles
  std::vector<double> dist_;      // clusters x stride distances
  std::vector<std::int16_t> soa_fx_;  // int16 transpose (fixed backend)
};

}  // namespace vprofile
