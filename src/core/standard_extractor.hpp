// Edge-set extraction for CAN 2.0A standard frames — the paper's future
// work ("we want to investigate adapting vProfile for standard frames,
// though we do not anticipate many required changes", Section 6.1).
//
// Two adaptations relative to the extended extractor:
//  * the sender key is the full 11-bit identifier (standard CAN has no
//    source-address field — each ID maps to exactly one sender);
//  * the arbitration field ends at bit 12 (RTR), so the edge-set search
//    starts at bit 13 (IDE) instead of bit 33.
//
// To reuse the trained-model machinery (whose lookup table is keyed by a
// byte-sized source address), a StandardIdMap assigns each distinct
// 11-bit identifier a stable 8-bit alias.  Real vehicles carry well under
// 256 distinct IDs; the map reports exhaustion explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/edge_set.hpp"
#include "core/extractor.hpp"
#include "dsp/trace.hpp"

namespace vprofile {

/// Edge set keyed by the full standard identifier.
struct StandardEdgeSet {
  std::uint16_t can_id = 0;  // 11 bits
  linalg::Vector samples;
};

/// Extracts the identifier and edge set(s) from a standard-frame trace.
/// Same configuration and failure semantics as `extract_edge_set`.
std::optional<StandardEdgeSet> extract_standard_edge_set(
    const dsp::Trace& trace, const ExtractionConfig& config,
    ExtractError* err = nullptr);

/// Stable 11-bit-ID -> 8-bit alias assignment.
class StandardIdMap {
 public:
  /// Alias for `can_id`, allocating one on first sight.  Returns
  /// std::nullopt once 256 distinct IDs have been seen (the alias space
  /// is exhausted).  Throws std::invalid_argument for IDs over 11 bits.
  std::optional<std::uint8_t> alias_of(std::uint16_t can_id);

  /// Alias lookup without allocation (for detection-time use where an
  /// unseen ID should be treated as an unknown sender).
  std::optional<std::uint8_t> find(std::uint16_t can_id) const;

  std::size_t size() const { return forward_.size(); }

  /// Converts a standard edge set into the byte-keyed form the trainer
  /// and detector consume, allocating an alias if needed.
  std::optional<EdgeSet> to_edge_set(StandardEdgeSet edge_set);

 private:
  std::map<std::uint16_t, std::uint8_t> forward_;
};

}  // namespace vprofile
