#include "core/standard_extractor.hpp"

#include <stdexcept>

#include "canbus/standard_frame.hpp"
#include "core/extract_util.hpp"

namespace vprofile {

std::optional<StandardEdgeSet> extract_standard_edge_set(
    const dsp::Trace& trace, const ExtractionConfig& cfg, ExtractError* err) {
  if (err != nullptr) *err = ExtractError::kNone;
  if (cfg.bit_width_samples < 2) {
    throw std::invalid_argument(
        "extract_standard_edge_set: bit width too small");
  }

  namespace fb = canbus::standard_frame_bits;
  const auto walk =
      detail::walk_unstuffed_bits(trace, cfg, fb::kFirstPostArbitration, err);
  if (!walk) return std::nullopt;

  auto samples = detail::extract_edge_windows(trace, walk->pos, cfg);
  if (!samples) {
    if (err != nullptr) *err = ExtractError::kTruncated;
    return std::nullopt;
  }

  StandardEdgeSet result;
  result.can_id = static_cast<std::uint16_t>(
      detail::read_walk_bits(*walk, fb::kIdFirst, fb::kIdLast));
  result.samples = std::move(*samples);
  return result;
}

std::optional<std::uint8_t> StandardIdMap::alias_of(std::uint16_t can_id) {
  if (can_id > 0x7FF) {
    throw std::invalid_argument("StandardIdMap: id exceeds 11 bits");
  }
  const auto it = forward_.find(can_id);
  if (it != forward_.end()) return it->second;
  if (forward_.size() >= 256) return std::nullopt;
  const auto alias = static_cast<std::uint8_t>(forward_.size());
  forward_.emplace(can_id, alias);
  return alias;
}

std::optional<std::uint8_t> StandardIdMap::find(std::uint16_t can_id) const {
  const auto it = forward_.find(can_id);
  if (it == forward_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeSet> StandardIdMap::to_edge_set(StandardEdgeSet edge_set) {
  const auto alias = alias_of(edge_set.can_id);
  if (!alias) return std::nullopt;
  EdgeSet out;
  out.sa = *alias;
  out.samples = std::move(edge_set.samples);
  return out;
}

}  // namespace vprofile
