// Zero-overhead dimensional safety for the quantities vProfile's detection
// signal lives in.
//
// Every stage of the system mixes physical quantities — transceiver
// voltages, seconds, sample rates, sample indices at a given rate, bit
// positions in a stuffed CAN frame, frame counts, RNG seeds — and the
// paper's results depend on never confusing them (a sample index used as a
// bit index silently reads the wrong edge window).  Each quantity below is
// a distinct strong type over its raw representation: same-unit arithmetic
// and scalar scaling compile, cross-unit arithmetic does not, and the only
// bridges between dimensions are the explicit conversions defined at the
// bottom of this header (`SampleIndex = Seconds * SampleRateHz` compiles;
// `Volts + Seconds` does not).
//
// The types are guaranteed zero-overhead: same size, alignment and
// trivial-copyability as their representation (static_asserts below), so
// they can sit in hot structs and serialized PODs without cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace units {

/// Strong typedef over an arithmetic representation.  `Tag` makes each
/// instantiation a distinct type; operators are hidden friends so they are
/// only found for matching tags (no accidental cross-unit arithmetic).
template <class Tag, class Rep>
class Quantity {
  static_assert(std::is_arithmetic_v<Rep>,
                "Quantity requires an arithmetic representation");

 public:
  using rep = Rep;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_(value) {}

  /// The raw representation.  This is the sanctioned exit point to
  /// dimensionless arithmetic; re-entry is the explicit constructor.
  constexpr Rep value() const { return value_; }

  // Same-unit arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(static_cast<Rep>(a.value_ + b.value_));
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(static_cast<Rep>(a.value_ - b.value_));
  }
  constexpr Quantity operator-() const
    requires std::is_signed_v<Rep>
  {
    return Quantity(-value_);
  }
  constexpr Quantity& operator+=(Quantity o) {
    value_ = static_cast<Rep>(value_ + o.value_);
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ = static_cast<Rep>(value_ - o.value_);
    return *this;
  }

  // Scaling by a dimensionless factor keeps the unit.
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity(static_cast<Rep>(a.value_ * s));
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity(static_cast<Rep>(s * a.value_));
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity(static_cast<Rep>(a.value_ / s));
  }
  constexpr Quantity& operator*=(Rep s) {
    value_ = static_cast<Rep>(value_ * s);
    return *this;
  }
  constexpr Quantity& operator/=(Rep s) {
    value_ = static_cast<Rep>(value_ / s);
    return *this;
  }

  /// Ratio of two like quantities is dimensionless.
  friend constexpr Rep ratio(Quantity a, Quantity b) {
    return static_cast<Rep>(a.value_ / b.value_);
  }

  // Index-like units (integral rep) advance and retreat by raw counts;
  // floating-point units must stay fully dimensioned.
  friend constexpr Quantity operator+(Quantity a, Rep n)
    requires std::is_integral_v<Rep>
  {
    return Quantity(static_cast<Rep>(a.value_ + n));
  }
  friend constexpr Quantity operator-(Quantity a, Rep n)
    requires std::is_integral_v<Rep>
  {
    return Quantity(static_cast<Rep>(a.value_ - n));
  }
  constexpr Quantity& operator++()
    requires std::is_integral_v<Rep>
  {
    ++value_;
    return *this;
  }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  Rep value_{};
};

/// Differential bus voltage / voltage level (volts).
using Volts = Quantity<struct VoltsTag, double>;
/// Wall-clock / signal time (seconds).
using Seconds = Quantity<struct SecondsTag, double>;
/// Temperature (degrees Celsius).
using Celsius = Quantity<struct CelsiusTag, double>;
/// Digitizer sampling rate (samples per second).
using SampleRateHz = Quantity<struct SampleRateHzTag, double>;
/// CAN bus bitrate (bits per second).  Distinct from SampleRateHz: mixing
/// the two is the classic sample-vs-bit index bug this header exists for.
using BitRateBps = Quantity<struct BitRateBpsTag, double>;
/// Zero-based position on the digitizer's sample grid.
using SampleIndex = Quantity<struct SampleIndexTag, std::size_t>;
/// Zero-based position in a CAN frame's bitstream (SOF = bit 0).
using BitIndex = Quantity<struct BitIndexTag, std::size_t>;
/// Count of CAN frames (captures, pipeline telemetry).
using FrameCount = Quantity<struct FrameCountTag, std::uint64_t>;
/// Deterministic RNG seed.  A distinct type so a seed is never silently
/// interchanged with a count or an index.
using Seed64 = Quantity<struct Seed64Tag, std::uint64_t>;

// ---------------------------------------------------------------------------
// Dimension-checked conversions: the only bridges between units.

/// Sample period of a digitizer.
constexpr Seconds period(SampleRateHz rate) {
  return Seconds(1.0 / rate.value());
}
/// Nominal bit time on the bus.
constexpr Seconds period(BitRateBps rate) {
  return Seconds(1.0 / rate.value());
}

/// Samples the digitizer takes per bus bit (40 for 10 MS/s at 250 kb/s).
constexpr double samples_per_bit(SampleRateHz sample_rate, BitRateBps bitrate) {
  return sample_rate.value() / bitrate.value();
}

/// Time * rate = position on the sample grid (truncated toward zero; the
/// instant `t` falls within sample `t * rate`).  Negative times are a
/// caller bug; they wrap to a huge index and fail fast downstream.
constexpr SampleIndex operator*(Seconds t, SampleRateHz rate) {
  return SampleIndex(static_cast<std::size_t>(t.value() * rate.value()));
}
constexpr SampleIndex operator*(SampleRateHz rate, Seconds t) {
  return t * rate;
}

/// Position on the sample grid back to the time of that sample.
constexpr Seconds operator/(SampleIndex i, SampleRateHz rate) {
  return Seconds(static_cast<double>(i.value()) / rate.value());
}

/// Time * rate = position in the bitstream (truncated toward zero).
constexpr BitIndex operator*(Seconds t, BitRateBps rate) {
  return BitIndex(static_cast<std::size_t>(t.value() * rate.value()));
}
constexpr BitIndex operator*(BitRateBps rate, Seconds t) { return t * rate; }

/// Bit position back to its nominal start time on the wire.
constexpr Seconds operator/(BitIndex i, BitRateBps rate) {
  return Seconds(static_cast<double>(i.value()) / rate.value());
}

namespace literals {
constexpr Volts operator""_V(long double v) {
  return Volts(static_cast<double>(v));
}
constexpr Seconds operator""_sec(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Celsius operator""_degC(long double v) {
  return Celsius(static_cast<double>(v));
}
}  // namespace literals

// ---------------------------------------------------------------------------
// Compile-time traits: detectors for which mixed-unit expressions are
// well-formed.  Used by the static_assert matrices here and in
// tests/test_units.cpp to prove that illegal mixes fail to compile.

namespace traits {

template <class A, class B, class = void>
struct is_addable : std::false_type {};
template <class A, class B>
struct is_addable<A, B,
                  std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct is_subtractable : std::false_type {};
template <class A, class B>
struct is_subtractable<
    A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct is_multipliable : std::false_type {};
template <class A, class B>
struct is_multipliable<
    A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct is_dividable : std::false_type {};
template <class A, class B>
struct is_dividable<
    A, B, std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct is_comparable : std::false_type {};
template <class A, class B>
struct is_comparable<
    A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

template <class A, class B>
inline constexpr bool is_addable_v = is_addable<A, B>::value;
template <class A, class B>
inline constexpr bool is_subtractable_v = is_subtractable<A, B>::value;
template <class A, class B>
inline constexpr bool is_multipliable_v = is_multipliable<A, B>::value;
template <class A, class B>
inline constexpr bool is_dividable_v = is_dividable<A, B>::value;
template <class A, class B>
inline constexpr bool is_comparable_v = is_comparable<A, B>::value;

}  // namespace traits

// Zero-overhead guarantees.
static_assert(sizeof(Volts) == sizeof(double));
static_assert(sizeof(SampleIndex) == sizeof(std::size_t));
static_assert(sizeof(Seed64) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Volts>);
static_assert(std::is_trivially_copyable_v<SampleIndex>);
static_assert(std::is_trivially_copyable_v<Seed64>);
static_assert(alignof(Volts) == alignof(double));

// The legal-mix spine: dimensioned arithmetic that must keep compiling.
static_assert(traits::is_addable_v<Volts, Volts>);
static_assert(traits::is_subtractable_v<Seconds, Seconds>);
static_assert(traits::is_multipliable_v<Seconds, SampleRateHz>);
static_assert(traits::is_multipliable_v<SampleRateHz, Seconds>);
static_assert(traits::is_dividable_v<SampleIndex, SampleRateHz>);
static_assert(traits::is_multipliable_v<Seconds, BitRateBps>);
static_assert(traits::is_multipliable_v<Volts, double>);
static_assert(traits::is_comparable_v<BitIndex, BitIndex>);

// The illegal-mix spine: dimension errors that must never compile again.
static_assert(!traits::is_addable_v<Volts, Seconds>);
static_assert(!traits::is_addable_v<Volts, double>);
static_assert(!traits::is_addable_v<SampleIndex, BitIndex>);
static_assert(!traits::is_subtractable_v<SampleRateHz, BitRateBps>);
static_assert(!traits::is_multipliable_v<Volts, Seconds>);
static_assert(!traits::is_multipliable_v<Seconds, Seconds>);
static_assert(!traits::is_comparable_v<SampleIndex, BitIndex>);
static_assert(!traits::is_comparable_v<Seconds, double>);
static_assert(!traits::is_addable_v<Seed64, FrameCount>);

}  // namespace units
