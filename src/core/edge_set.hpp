// Edge sets: the single feature vProfile classifies on.
//
// An edge set is the concatenated sample window around the first rising
// edge after the arbitration field and the following falling edge
// (Section 3.2.1).  Together with the source address decoded from the same
// trace it is everything the detector ever sees.
#pragma once

#include <cstdint>
#include <cstddef>

#include "core/units.hpp"
#include "linalg/vector_ops.hpp"

namespace vprofile {

/// One extracted edge set paired with the SA decoded from the trace.
struct EdgeSet {
  std::uint8_t sa = 0;
  linalg::Vector samples;  // ADC codes
};

/// Extraction parameters (the constants of Algorithm 1).
struct ExtractionConfig {
  /// Samples per bit; 40 for 10 MS/s on a 250 kb/s bus.
  std::size_t bit_width_samples = 40;
  /// ADC-code value that horizontally bisects a rising edge.
  double bit_threshold = 38000.0;
  /// Samples kept before a threshold crossing.
  std::size_t prefix_len = 2;
  /// Samples kept after a threshold crossing.
  std::size_t suffix_len = 14;
  /// Number of edge sets averaged per message (Section 5.2 enhancement).
  std::size_t num_edge_sets = 1;
  /// Sample spacing between successive edge-set search starts when
  /// num_edge_sets > 1.
  std::size_t edge_set_spacing = 250;

  /// Dimensionality of the produced edge sets: prefix + crossing sample +
  /// suffix for each of the rising and falling edges.
  std::size_t dimension() const { return 2 * (prefix_len + suffix_len + 1); }
};

/// Scales the paper's 10 MS/s reference constants (bit width 40, prefix 2,
/// suffix 14) to another sampling rate / bitrate, keeping the same time
/// window.  The rates are unit-typed so a sampling rate can never land in
/// the bitrate slot (they differ by two orders of magnitude; swapped they
/// produce a silently wrong bit width).  Throws std::invalid_argument on
/// non-positive rates.
ExtractionConfig make_extraction_config(units::SampleRateHz sample_rate,
                                        units::BitRateBps bitrate,
                                        double bit_threshold);

}  // namespace vprofile
