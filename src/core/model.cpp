#include "core/model.hpp"

#include <limits>
#include <stdexcept>

#include "linalg/mahalanobis.hpp"

namespace vprofile {

const char* to_string(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kEuclidean: return "euclidean";
    case DistanceMetric::kMahalanobis: return "mahalanobis";
  }
  return "unknown";
}

Model::Model(DistanceMetric metric, ExtractionConfig extraction,
             std::vector<ClusterModel> clusters)
    : metric_(metric),
      extraction_(std::move(extraction)),
      clusters_(std::move(clusters)) {
  if (clusters_.empty()) {
    throw std::invalid_argument("Model: need at least one cluster");
  }
  const std::size_t dim = clusters_.front().mean.size();
  sa_lut_.fill(-1);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterModel& cl = clusters_[c];
    if (cl.mean.size() != dim) {
      throw std::invalid_argument("Model: inconsistent cluster dimensions");
    }
    if (metric_ == DistanceMetric::kMahalanobis &&
        (cl.inv_covariance.rows() != dim || cl.inv_covariance.cols() != dim)) {
      throw std::invalid_argument(
          "Model: Mahalanobis cluster lacks an inverse covariance");
    }
    for (std::uint8_t sa : cl.sas) {
      if (sa_lut_[sa] != -1) {
        throw std::invalid_argument(
            "Model: SA mapped to more than one cluster");
      }
      sa_lut_[sa] = static_cast<std::int16_t>(c);
    }
  }
}

std::size_t Model::dimension() const { return clusters_.front().mean.size(); }

std::optional<std::size_t> Model::cluster_of(std::uint8_t sa) const {
  const std::int16_t c = sa_lut_[sa];
  if (c < 0) return std::nullopt;
  return static_cast<std::size_t>(c);
}

double Model::distance(std::size_t cluster, const linalg::Vector& x) const {
  const ClusterModel& cl = clusters_.at(cluster);
  if (metric_ == DistanceMetric::kEuclidean) {
    return linalg::euclidean_distance(x, cl.mean);
  }
  return linalg::mahalanobis_distance_inv(x, cl.mean, cl.inv_covariance);
}

std::pair<std::size_t, double> Model::nearest_cluster(
    const linalg::Vector& x) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const double d = distance(c, x);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return {best, best_dist};
}

}  // namespace vprofile
