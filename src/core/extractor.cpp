#include "core/extractor.hpp"

#include <algorithm>
#include <stdexcept>

#include "canbus/frame.hpp"
#include "core/extract_util.hpp"
#include "dsp/trace.hpp"

namespace vprofile {

namespace detail {

std::optional<std::size_t> next_rising_crossing(const dsp::Trace& t,
                                                std::size_t pos,
                                                double threshold) {
  // If we start inside a dominant region, leave it first.
  while (pos < t.size() && t[pos] >= threshold) ++pos;
  while (pos < t.size() && t[pos] < threshold) ++pos;
  if (pos >= t.size()) return std::nullopt;
  return pos;
}

std::optional<std::size_t> next_falling_crossing(const dsp::Trace& t,
                                                 std::size_t pos,
                                                 double threshold) {
  while (pos < t.size() && t[pos] < threshold) ++pos;
  while (pos < t.size() && t[pos] >= threshold) ++pos;
  if (pos >= t.size()) return std::nullopt;
  return pos;
}

namespace {

/// Copies [crossing - prefix, crossing + suffix] into `out`.  Returns false
/// when the window does not fit in the trace.
bool append_window(const dsp::Trace& t, std::size_t crossing,
                   const ExtractionConfig& cfg, linalg::Vector& out) {
  if (crossing < cfg.prefix_len) return false;
  const std::size_t first = crossing - cfg.prefix_len;
  const std::size_t last = crossing + cfg.suffix_len;
  if (last >= t.size()) return false;
  for (std::size_t i = first; i <= last; ++i) out.push_back(t[i]);
  return true;
}

}  // namespace

std::optional<linalg::Vector> extract_one_set(const dsp::Trace& trace,
                                              units::SampleIndex pos,
                                              const ExtractionConfig& cfg) {
  linalg::Vector samples;
  samples.reserve(cfg.dimension());
  const auto rising =
      next_rising_crossing(trace, pos.value(), cfg.bit_threshold);
  if (!rising) return std::nullopt;
  if (!append_window(trace, *rising, cfg, samples)) return std::nullopt;
  const auto falling =
      next_falling_crossing(trace, *rising, cfg.bit_threshold);
  if (!falling) return std::nullopt;
  if (!append_window(trace, *falling, cfg, samples)) return std::nullopt;
  return samples;
}

std::optional<linalg::Vector> extract_edge_windows(
    const dsp::Trace& trace, units::SampleIndex pos,
    const ExtractionConfig& cfg) {
  std::vector<linalg::Vector> sets;
  sets.reserve(cfg.num_edge_sets);
  for (std::size_t k = 0; k < cfg.num_edge_sets; ++k) {
    auto one = extract_one_set(trace, pos + k * cfg.edge_set_spacing, cfg);
    if (!one) return std::nullopt;
    sets.push_back(std::move(*one));
  }
  return (sets.size() == 1) ? std::move(sets.front()) : linalg::mean_of(sets);
}

namespace {

bool set_walk_error(ExtractError* err, ExtractError value) {
  if (err != nullptr) *err = value;
  return false;
}

}  // namespace

std::optional<BitWalk> walk_unstuffed_bits(const dsp::Trace& trace,
                                           const ExtractionConfig& cfg,
                                           units::BitIndex stop_bit,
                                           ExtractError* err) {
  const double threshold = cfg.bit_threshold;
  const auto sof = dsp::find_sof(trace, threshold);
  if (!sof) {
    set_walk_error(err, ExtractError::kNoSof);
    return std::nullopt;
  }

  BitWalk walk;
  walk.dominant.reserve(stop_bit.value() + 1);
  walk.dominant.push_back(true);  // SOF is dominant
  std::size_t pos = *sof + cfg.bit_width_samples / 2;
  if (pos >= trace.size()) {
    set_walk_error(err, ExtractError::kTruncated);
    return std::nullopt;
  }

  bool prev_bit_dominant = true;
  std::size_t same_bit_run = 1;  // consecutive equal *wire* bits
  bool next_is_stuff = false;

  while (pos + cfg.bit_width_samples < trace.size() &&
         walk.dominant.size() <= stop_bit.value()) {
    pos += cfg.bit_width_samples;
    const bool dominant = trace[pos] >= threshold;

    if (dominant != prev_bit_dominant) {
      // Re-align to the transition centre to stay synchronized.
      const std::size_t edge = dsp::align_to_edge_start(trace, pos, threshold);
      pos = edge + cfg.bit_width_samples / 2;
      prev_bit_dominant = dominant;
      if (next_is_stuff) {
        // The opposite-polarity bit after a run of five is the stuff bit:
        // consume it without counting.
        next_is_stuff = false;
        same_bit_run = 1;
        continue;
      }
      same_bit_run = 1;
    } else {
      if (next_is_stuff) {
        // A sixth consecutive equal bit is a form error on a real bus.
        set_walk_error(err, ExtractError::kStuffViolation);
        return std::nullopt;
      }
      ++same_bit_run;
    }
    if (same_bit_run == 5) next_is_stuff = true;
    walk.dominant.push_back(dominant);
  }

  if (walk.dominant.size() <= stop_bit.value()) {
    set_walk_error(err, ExtractError::kTruncated);
    return std::nullopt;
  }
  walk.pos = units::SampleIndex{pos};
  return walk;
}

std::uint32_t read_walk_bits(const BitWalk& walk, units::BitIndex first,
                             units::BitIndex last) {
  std::uint32_t v = 0;
  for (units::BitIndex i = first; i <= last; ++i) {
    // Logical '1' is recessive, i.e. not dominant.
    v = (v << 1) | (walk.dominant.at(i.value()) ? 0u : 1u);
  }
  return v;
}

}  // namespace detail

namespace {

bool set_error(ExtractError* err, ExtractError value) {
  if (err != nullptr) *err = value;
  return false;
}

}  // namespace

const char* to_string(ExtractError err) {
  switch (err) {
    case ExtractError::kNone: return "none";
    case ExtractError::kNoSof: return "no SOF found";
    case ExtractError::kTruncated: return "trace truncated";
    case ExtractError::kStuffViolation: return "stuff bit violation";
  }
  return "unknown";
}

std::optional<EdgeSet> extract_edge_set(const dsp::Trace& trace,
                                        const ExtractionConfig& cfg,
                                        ExtractError* err) {
  if (err != nullptr) *err = ExtractError::kNone;
  if (cfg.bit_width_samples < 2) {
    throw std::invalid_argument("extract_edge_set: bit width too small");
  }

  // Walk the message bit-by-bit from SOF through the first bit after the
  // arbitration field (Algorithm 1), then read the SA from unstuffed bits
  // 24..31 and extract the edge windows.
  const auto walk = detail::walk_unstuffed_bits(
      trace, cfg, canbus::frame_bits::kFirstPostArbitration, err);
  if (!walk) return std::nullopt;

  // Extract num_edge_sets windows and average them (Section 5.2).
  auto samples = detail::extract_edge_windows(trace, walk->pos, cfg);
  if (!samples) {
    set_error(err, ExtractError::kTruncated);
    return std::nullopt;
  }

  EdgeSet result;
  result.sa = static_cast<std::uint8_t>(detail::read_walk_bits(
      *walk, canbus::frame_bits::kSourceAddrFirst,
      canbus::frame_bits::kSourceAddrLast));
  result.samples = std::move(*samples);
  return result;
}

double estimate_bit_threshold(const dsp::Trace& trace) {
  if (trace.empty()) {
    throw std::invalid_argument("estimate_bit_threshold: empty trace");
  }
  const std::size_t half = std::max<std::size_t>(1, trace.size() / 2);
  const auto [lo, hi] =
      std::minmax_element(trace.begin(), trace.begin() + half);
  return (*lo + *hi) / 2.0;
}

ExtractionConfig make_extraction_config(units::SampleRateHz sample_rate,
                                        units::BitRateBps bitrate,
                                        double bit_threshold) {
  if (sample_rate <= units::SampleRateHz{0.0} ||
      bitrate <= units::BitRateBps{0.0}) {
    throw std::invalid_argument("make_extraction_config: rates must be > 0");
  }
  // Reference constants from the paper: 10 MS/s on a 250 kb/s bus gives a
  // 40-sample bit, 2-sample prefix, 14-sample suffix.
  const double samples_per_bit = units::samples_per_bit(sample_rate, bitrate);
  const double ratio = samples_per_bit / 40.0;
  ExtractionConfig cfg;
  cfg.bit_width_samples =
      std::max<std::size_t>(2, static_cast<std::size_t>(samples_per_bit + 0.5));
  cfg.bit_threshold = bit_threshold;
  cfg.prefix_len =
      std::max<std::size_t>(1, static_cast<std::size_t>(2.0 * ratio + 0.5));
  cfg.suffix_len =
      std::max<std::size_t>(2, static_cast<std::size_t>(14.0 * ratio + 0.5));
  return cfg;
}

}  // namespace vprofile
