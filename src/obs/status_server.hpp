// Minimal blocking HTTP/1.0 introspection endpoint.
//
// One accept-loop thread on a loopback socket, one request per
// connection, Connection: close — the smallest server that a `curl` or a
// Prometheus scrape can talk to.  Deliberately not a web framework: no
// keep-alive, no chunking, no TLS, GET only.  Routes are plain callbacks
// registered by the embedding tool (obs/ stays below runtime/ — the
// server knows nothing about pipelines or supervisors).
//
// Threading contract: register every route before start(); handlers run
// on the server thread and must be internally thread-safe against the
// producer (the monitor's handlers read atomics, registry snapshots and
// the flight recorder's retained list, all safe by construction).
// stop() is idempotent and joins the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace obs {

class Counter;
class MetricsRegistry;

struct StatusResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class StatusServer {
 public:
  /// `path` is the request target with the query string stripped.
  using Handler = std::function<StatusResponse(const std::string& path)>;

  StatusServer() = default;
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Exact-path route.  Register before start().
  void route(std::string path, Handler handler);
  /// Longest-matching-prefix route (e.g. "/incident/").
  void route_prefix(std::string prefix, Handler handler);

  /// Counts served requests as status_requests_total.  Call before
  /// start().
  void bind_metrics(MetricsRegistry* registry);

  /// Per-connection read/write deadline (slow-client guard), applied to
  /// both SO_RCVTIMEO and SO_SNDTIMEO.  Call before start(); values
  /// below 100 ms are clamped up so a scheduling hiccup cannot starve
  /// legitimate scrapes.  Default 2000 ms.
  void set_io_timeout_ms(std::uint32_t timeout_ms) {
    io_timeout_ms_ = timeout_ms < 100 ? 100 : timeout_ms;
  }
  std::uint32_t io_timeout_ms() const { return io_timeout_ms_; }

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept loop.  Returns false with a diagnostic on failure.
  bool start(std::uint16_t port, std::string* error = nullptr);

  /// The bound port; 0 until start() succeeds.
  std::uint16_t port() const { return port_; }
  bool running() const { return fd_.load(std::memory_order_relaxed) >= 0; }

  /// Stops accepting, closes the socket, joins the thread.  Idempotent.
  void stop();

  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  StatusResponse dispatch(const std::string& path) const;
  void serve_one(int client_fd);

  std::vector<std::pair<std::string, Handler>> exact_;
  std::vector<std::pair<std::string, Handler>> prefixes_;
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::uint32_t io_timeout_ms_ = 2000;
  Counter* requests_counter_ = nullptr;
  std::thread thread_;
};

}  // namespace obs
