// Flight recorder: a pre-allocated, single-writer ring of recent evidence
// records with freeze-on-trigger incident bundles.
//
// The recorder answers the question the live metrics cannot: *what was on
// the bus when it happened*.  A serialized result path (the supervisor's
// ordered sink) stores one EvidenceRecord per handled frame into a
// fixed-capacity ring — a struct copy plus a relaxed index bump, nothing
// else on the hot path.  Any thread may request a trigger (anomalous
// verdict, drift alarm, watchdog restart, retrain rollback, overload
// shed, operator signal); the request is a lock-free arm of a one-slot
// pending cell.  The *writer* consumes it at its next record() call:
// the pre-trigger window is frozen out of the ring, a bounded
// post-trigger window is captured as the next records arrive, and the
// completed incident is emitted as a byte-stable JSON bundle (schema
// `vprofile-incident-v1`) via io::atomic_write_file — so a bundle on disk
// is always complete, never a torn prefix.
//
// Threading contract:
//  * record() / flush(): one writer at a time (the pipeline's serialized
//    result order).  Lock-free; freezing and the pre/post window copies
//    touch only pre-allocated storage.
//  * request_trigger(): any thread, any time.  Lock-free (one CAS).
//    Triggers that land while an incident is already open or armed are
//    coalesced (counted, not lost as a fact — the open bundle reports the
//    count).
//  * incidents() / bundle_json() / counters: any thread (mutex-guarded
//    retained list, atomics).
//
// Determinism: bundles contain no timestamps beyond the caller-supplied
// RunManifest and the caller-supplied per-record tick.  Under the
// supervisor's lockstep mode the whole bundle — evidence, context,
// incident metadata — is a pure function of (model, config, input
// stream), which is what makes every incident a reproducible test case
// for tools/vprofile_replay.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/manifest.hpp"

namespace obs {

class Counter;
class MetricsRegistry;
class Tracer;

/// Feature-vector slots per evidence record.  Records are fixed-size so
/// the ring is one flat allocation; the vehicle presets extract dim 66
/// (2 * (prefix 2 + suffix 14 + 1) scaled to the ADC rate), so 128
/// leaves headroom for wider windows without a resize.  Records wider
/// than this are truncated — replay skips them rather than mis-verify.
inline constexpr std::size_t kMaxEvidenceDim = 128;

/// EvidenceRecord::verdict value meaning "no verdict was produced".
inline constexpr std::uint8_t kNoVerdict = 0xFF;

/// Why an incident was opened.
enum class IncidentCause : std::uint8_t {
  kAnomalyVerdict = 0,   ///< confident anomaly (mismatch / distance / SA)
  kDegradedVerdict = 1,  ///< capture quality refused a confident verdict
  kDriftAlarm = 2,       ///< Page–Hinkley sentinel latched
  kWatchdogRestart = 3,  ///< stalled pipeline was restarted
  kRetrainRollback = 4,  ///< candidate model failed validation
  kOverloadShed = 5,     ///< governor began decimating intake
  kOperator = 6,         ///< external request (signal, status endpoint)
};

inline constexpr std::size_t kNumIncidentCauses = 7;

const char* to_string(IncidentCause cause);

/// One handled frame, as the recorder keeps it.  Codes (verdict,
/// extract_error) are the producer's enum values; the recorder renders
/// them through the caller-supplied name tables so obs/ never depends on
/// the detection layer.  Features are stored as exact doubles (ADC-code
/// domain — already quantized to the capture grid) so a replay scores
/// bit-identical inputs.
struct EvidenceRecord {
  std::uint64_t seq = 0;      ///< producer's global frame index
  std::uint64_t tick_ns = 0;  ///< caller's clock (virtual under lockstep)
  double min_distance = 0.0;
  double confidence = 0.0;
  std::int32_t expected_cluster = -1;  ///< -1 = none
  std::int32_t predicted_cluster = -1;
  std::uint32_t model_generation = 0;  ///< promotions before this frame
  std::uint16_t dim = 0;               ///< 0 = no feature vector retained
  std::uint8_t sa = 0;
  std::uint8_t verdict = kNoVerdict;
  std::uint8_t extract_error = 0;  ///< producer's code; 0 = none
  bool dropped = false;
  bool worker_error = false;
  std::array<double, kMaxEvidenceDim> features{};
};

/// What the retained-incident list exposes (statusz, tests).
struct IncidentSummary {
  std::uint64_t id = 0;  ///< 1-based emission sequence
  IncidentCause cause = IncidentCause::kOperator;
  std::uint64_t trigger_seq = 0;
  std::string detail;
  std::uint64_t coalesced = 0;  ///< triggers merged into this incident
  std::size_t pre_records = 0;
  std::size_t post_records = 0;
  std::string path;  ///< written bundle, "" when in-memory only
};

struct FlightRecorderConfig {
  /// Bus label stamped into bundles and the incidents_total series.
  std::string bus = "bus0";
  /// Evidence records the ring retains (pre-allocated, power of anything).
  std::size_t ring_capacity = 256;
  /// Records frozen from before (and including) the trigger frame.
  /// Clamped to ring_capacity.
  std::size_t pre_trigger = 64;
  /// Records captured after the trigger before the bundle is emitted.
  std::size_t post_trigger = 16;
  /// Bundles emitted before further triggers are suppressed (counted).
  std::size_t max_incidents = 32;
  /// Completed bundle JSONs kept in memory for bundle_json() / statusz.
  std::size_t retain_bundles = 8;
  /// Bundle files (`INCIDENT_<id>.json`) land here; "" = in-memory only.
  std::string incident_dir;
  /// Provenance stamp for every bundle.  Supply a fixed manifest for
  /// byte-stable output (RunManifest::create() reads the wall clock).
  RunManifest manifest;
  /// Verdict / extract-error code -> name tables (index = code).  Codes
  /// outside the table render as numbers.
  const char* const* verdict_names = nullptr;
  std::size_t num_verdicts = 0;
  const char* const* extract_error_names = nullptr;
  std::size_t num_extract_errors = 0;
  /// Called at bundle-emission time (writer thread, no recorder lock
  /// held); must return one JSON object with producer context (counters,
  /// detection config, supervisor state).  Null renders "context":null.
  std::function<std::string()> context_json;
  /// Non-null: per-bus incidents_total{cause=...} counters (registered
  /// eagerly so every cause exports from frame zero).
  MetricsRegistry* metrics = nullptr;
  /// Non-null: recent trace spans are folded into each bundle.
  Tracer* tracer = nullptr;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stores one record (single writer).  Consumes a pending trigger:
  /// freezes the pre-window *before* storing, so the new record is the
  /// first post-trigger record and the windows are disjoint.
  void record(const EvidenceRecord& rec);

  /// Arms an incident (any thread).  `detail` must be a string with
  /// static storage duration (a literal).  Returns false when the request
  /// was coalesced into an already-armed/open incident (or suppressed
  /// past max_incidents — the bundle cap is enforced at freeze time).
  bool request_trigger(IncidentCause cause, std::uint64_t seq,
                       const char* detail);

  /// Emits any armed/open incident with whatever post-window exists.
  /// Call at quiescence (after the producer drained); writer thread only.
  void flush();

  /// Records ever stored (including overwritten ones).
  std::uint64_t records_seen() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t incidents_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Triggers merged into an armed/open incident instead of opening one.
  std::uint64_t triggers_coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Incidents dropped entirely by the max_incidents cap.
  std::uint64_t incidents_suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  /// True while a post-trigger window is being captured.
  bool incident_open() const { return open_.load(std::memory_order_relaxed); }

  /// Every emitted incident, oldest first (bounded by max_incidents).
  std::vector<IncidentSummary> incidents() const;
  /// Retained bundle JSON by incident id; "" when unknown or evicted.
  std::string bundle_json(std::uint64_t id) const;

  const FlightRecorderConfig& config() const { return config_; }

 private:
  void begin_incident();
  void finalize_incident();
  std::string build_bundle_json(const IncidentSummary& summary) const;
  void append_record_json(std::string* out, const EvidenceRecord& rec) const;

  FlightRecorderConfig config_;
  std::vector<EvidenceRecord> ring_;
  std::atomic<std::uint64_t> head_{0};

  /// One-slot pending trigger: kIdle -> kArming (fields being written)
  /// -> kArmed (writer may consume).
  static constexpr int kIdle = 0;
  static constexpr int kArming = 1;
  static constexpr int kArmed = 2;
  std::atomic<int> trigger_state_{kIdle};
  IncidentCause pending_cause_ = IncidentCause::kOperator;
  std::uint64_t pending_seq_ = 0;
  const char* pending_detail_ = "";

  /// Open-incident state: written by the writer thread only; open_ is
  /// atomic so request_trigger can coalesce against it from any thread.
  std::atomic<bool> open_{false};
  IncidentCause open_cause_ = IncidentCause::kOperator;
  std::uint64_t open_trigger_seq_ = 0;
  const char* open_detail_ = "";
  std::uint64_t open_coalesced_before_ = 0;
  std::vector<EvidenceRecord> pre_buf_;
  std::vector<EvidenceRecord> post_buf_;
  std::size_t pre_n_ = 0;
  std::size_t post_n_ = 0;

  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  std::array<Counter*, kNumIncidentCauses> incident_counters_{};

  mutable std::mutex retained_mu_;
  std::vector<IncidentSummary> summaries_;
  std::deque<std::pair<std::uint64_t, std::string>> retained_;
};

}  // namespace obs
