#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace obs {

namespace {

/// Canonical series key: `name{k1=v1,k2=v2}` with labels sorted by key.
/// Values are length-prefixed to keep the key injective even if a label
/// value contains '=' or ','.
std::string series_key(const std::string& name, const Labels& sorted) {
  std::string key = name;
  key += '{';
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '=';
    key += std::to_string(v.size());
    key += ':';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

Labels sorted_labels(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      std::fprintf(stderr,
                   "obs::Histogram: bucket bounds must be strictly "
                   "ascending (bound[%zu]=%llu <= bound[%zu]=%llu)\n",
                   i, static_cast<unsigned long long>(bounds_[i]), i - 1,
                   static_cast<unsigned long long>(bounds_[i - 1]));
      std::abort();
    }
  }
}

void Histogram::observe(std::uint64_t value) {
  // First bucket whose inclusive upper bound covers the value; past the
  // last bound it is the overflow bucket (Prometheus `le="+Inf"`).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile observation, 1-based, at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Overflow bucket has no finite bound; the observed max is the
      // tightest statement we can make.
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

std::vector<std::uint64_t> default_latency_bounds_ns() {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(24);
  for (std::uint64_t b = 128; bounds.size() < 24; b *= 2) {
    bounds.push_back(b);  // 128 ns, 256 ns, ... ~1.07 s
  }
  return bounds;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   const Labels& labels,
                                                   MetricSample::Kind kind) {
  Labels sorted = sorted_labels(labels);
  std::string key = series_key(name, sorted);
  auto [it, inserted] = series_.try_emplace(std::move(key));
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.name = name;
    e.labels = std::move(sorted);
  } else if (e.kind != kind) {
    std::fprintf(stderr,
                 "obs::MetricsRegistry: series '%s' re-registered with a "
                 "different instrument kind\n",
                 name.c_str());
    std::abort();
  }
  return e;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, labels, MetricSample::Kind::kCounter);
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, labels, MetricSample::Kind::kGauge);
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_for(name, labels, MetricSample::Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(series_.size());
  for (const auto& [key, e] : series_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSample::Kind::kCounter:
        s.counter_value = e.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        s.gauge_value = e.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        s.histogram = e.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace obs
