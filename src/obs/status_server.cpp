#include "obs/status_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

namespace obs {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

/// Largest request head we accept; a GET line plus a few headers is
/// hundreds of bytes, so 8 KiB is generous and bounds a hostile peer.
constexpr std::size_t kMaxRequestBytes = 8192;

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a client that disconnects mid-write must surface as
    // EPIPE from send(), not as a process-wide SIGPIPE that kills the
    // server thread (and the embedding monitor with it).
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

StatusServer::~StatusServer() { stop(); }

void StatusServer::route(std::string path, Handler handler) {
  exact_.emplace_back(std::move(path), std::move(handler));
}

void StatusServer::route_prefix(std::string prefix, Handler handler) {
  prefixes_.emplace_back(std::move(prefix), std::move(handler));
}

void StatusServer::bind_metrics(MetricsRegistry* registry) {
  if (registry != nullptr) {
    requests_counter_ = registry->counter("status_requests_total");
  }
}

bool StatusServer::start(std::uint16_t port, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "status server already running";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("listen: ") + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  stop_.store(false, std::memory_order_relaxed);
  fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void StatusServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Unblocks a poll()/accept() parked on the listening socket.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
  port_ = 0;
}

void StatusServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void StatusServer::serve_one(int client_fd) {
  // A peer that trickles, stalls, or stops reading must not wedge the
  // serve loop — both directions get the same deadline.
  const std::uint32_t timeout_ms = io_timeout_ms_;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  StatusResponse resp;
  const std::size_t line_end = request.find('\n');
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "bad request\n";
  } else if (line.substr(0, sp1) != "GET") {
    resp.status = 405;
    resp.body = "method not allowed\n";
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    resp = dispatch(path);
  }

  served_.fetch_add(1, std::memory_order_relaxed);
  if (requests_counter_ != nullptr) requests_counter_->add();

  std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                     reason_phrase(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  if (send_all(client_fd, head.data(), head.size())) {
    send_all(client_fd, resp.body.data(), resp.body.size());
  }
}

StatusResponse StatusServer::dispatch(const std::string& path) const {
  for (const auto& [route_path, handler] : exact_) {
    if (path == route_path) return handler(path);
  }
  const Handler* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, handler] : prefixes_) {
    if (path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) return (*best)(path);
  StatusResponse resp;
  resp.status = 404;
  resp.body = "not found\n";
  return resp;
}

}  // namespace obs
