#include "obs/flight_recorder.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "io/atomic_file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace obs {

namespace {

/// Exact-double JSON scalar: %.17g round-trips every finite double bit-
/// for-bit through strtod (the replay contract).  Non-finite values are
/// not valid JSON numbers, so they render as quoted strings; readers use
/// io::json::flexible_number.
std::string json_double(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return std::signbit(v) ? "\"-inf\"" : "\"inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

std::string json_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return std::string(buf);
}

/// Spans folded into one bundle; a cap, not a window choice — the tracer
/// ring already keeps only recent spans.
constexpr std::size_t kMaxBundleSpans = 64;

}  // namespace

const char* to_string(IncidentCause cause) {
  switch (cause) {
    case IncidentCause::kAnomalyVerdict:
      return "anomaly-verdict";
    case IncidentCause::kDegradedVerdict:
      return "degraded-verdict";
    case IncidentCause::kDriftAlarm:
      return "drift-alarm";
    case IncidentCause::kWatchdogRestart:
      return "watchdog-restart";
    case IncidentCause::kRetrainRollback:
      return "retrain-rollback";
    case IncidentCause::kOverloadShed:
      return "overload-shed";
    case IncidentCause::kOperator:
      return "operator";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  if (config_.pre_trigger > config_.ring_capacity) {
    config_.pre_trigger = config_.ring_capacity;
  }
  if (config_.post_trigger == 0) config_.post_trigger = 1;
  ring_.resize(config_.ring_capacity);
  pre_buf_.resize(config_.pre_trigger);
  post_buf_.resize(config_.post_trigger);
  if (!config_.incident_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.incident_dir, ec);
  }
  if (config_.metrics != nullptr) {
    // Eager registration: every cause exports (as 0) from the first
    // scrape, so dashboards never see series appear mid-run.
    for (std::size_t i = 0; i < kNumIncidentCauses; ++i) {
      incident_counters_[i] = config_.metrics->counter(
          "incidents_total",
          {{"bus", config_.bus},
           {"cause", to_string(static_cast<IncidentCause>(i))}});
    }
  }
}

// The evidence hot path: one struct copy into pre-allocated storage plus
// a relaxed index bump.  Freezing (begin_incident) copies between
// pre-allocated buffers; only emission (finalize_incident) allocates,
// locks and does IO, behind the cold boundary below.
// vprofile-lint: hot
void FlightRecorder::record(const EvidenceRecord& rec) {
  if (!open_.load(std::memory_order_relaxed) &&
      trigger_state_.load(std::memory_order_acquire) == kArmed) {
    // Freeze before storing: the trigger frame (already in the ring) ends
    // the pre-window; this record starts the post-window.
    begin_incident();
  }
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  ring_[static_cast<std::size_t>(head % ring_.size())] = rec;
  head_.store(head + 1, std::memory_order_relaxed);
  if (open_.load(std::memory_order_relaxed)) {
    post_buf_[post_n_] = rec;
    ++post_n_;
    if (post_n_ >= post_buf_.size()) finalize_incident();
  }
}

bool FlightRecorder::request_trigger(IncidentCause cause, std::uint64_t seq,
                                     const char* detail) {
  int expected = kIdle;
  if (open_.load(std::memory_order_relaxed) ||
      !trigger_state_.compare_exchange_strong(expected, kArming,
                                              std::memory_order_acq_rel)) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  pending_cause_ = cause;
  pending_seq_ = seq;
  pending_detail_ = detail != nullptr ? detail : "";
  trigger_state_.store(kArmed, std::memory_order_release);
  return true;
}

void FlightRecorder::begin_incident() {
  open_cause_ = pending_cause_;
  open_trigger_seq_ = pending_seq_;
  open_detail_ = pending_detail_;
  open_coalesced_before_ = coalesced_.load(std::memory_order_relaxed);
  trigger_state_.store(kIdle, std::memory_order_release);
  if (emitted_.load(std::memory_order_relaxed) >= config_.max_incidents) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t cap = ring_.size();
  std::uint64_t n = pre_buf_.size();
  if (head < n) n = head;
  for (std::uint64_t i = 0; i < n; ++i) {
    pre_buf_[static_cast<std::size_t>(i)] =
        ring_[static_cast<std::size_t>((head - n + i) % cap)];
  }
  pre_n_ = static_cast<std::size_t>(n);
  post_n_ = 0;
  open_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::flush() {
  if (!open_.load(std::memory_order_relaxed) &&
      trigger_state_.load(std::memory_order_acquire) == kArmed) {
    begin_incident();
  }
  if (open_.load(std::memory_order_relaxed)) finalize_incident();
}

// Sanctioned hot-path boundary: bundle emission happens at most once per
// incident (bounded by max_incidents) and buys the whole diagnosis — the
// JSON build, the atomic file write and the retained-list lock are the
// agreed price of capturing the evidence.
// vprofile-lint: cold
void FlightRecorder::finalize_incident() {
  IncidentSummary summary;
  summary.id = emitted_.load(std::memory_order_relaxed) + 1;
  summary.cause = open_cause_;
  summary.trigger_seq = open_trigger_seq_;
  summary.detail = open_detail_;
  summary.coalesced =
      coalesced_.load(std::memory_order_relaxed) - open_coalesced_before_;
  summary.pre_records = pre_n_;
  summary.post_records = post_n_;

  std::string json = build_bundle_json(summary);
  if (!config_.incident_dir.empty()) {
    char name[40];
    std::snprintf(name, sizeof(name), "INCIDENT_%06" PRIu64 ".json",
                  summary.id);
    const std::string path = config_.incident_dir + "/" + name;
    if (io::atomic_write_file(path, json)) summary.path = path;
  }

  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (incident_counters_[static_cast<std::size_t>(summary.cause)] != nullptr) {
    incident_counters_[static_cast<std::size_t>(summary.cause)]->add();
  }
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    summaries_.push_back(summary);
    retained_.emplace_back(summary.id, std::move(json));
    while (retained_.size() > config_.retain_bundles) retained_.pop_front();
  }
  pre_n_ = 0;
  post_n_ = 0;
  open_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::append_record_json(std::string* out,
                                        const EvidenceRecord& rec) const {
  std::string& s = *out;
  s += "{\"seq\":" + json_u64(rec.seq);
  s += ",\"tick_ns\":" + json_u64(rec.tick_ns);
  s += ",\"sa\":" + std::to_string(static_cast<unsigned>(rec.sa));
  s += ",\"dropped\":";
  s += rec.dropped ? "true" : "false";
  s += ",\"worker_error\":";
  s += rec.worker_error ? "true" : "false";
  s += ",\"extract_error\":";
  if (rec.extract_error == 0) {
    s += "null";
  } else if (rec.extract_error < config_.num_extract_errors &&
             config_.extract_error_names != nullptr) {
    s += json_quote(config_.extract_error_names[rec.extract_error]);
  } else {
    s += json_quote(std::to_string(static_cast<unsigned>(rec.extract_error)));
  }
  s += ",\"extract_error_code\":" +
       std::to_string(static_cast<unsigned>(rec.extract_error));
  s += ",\"verdict\":";
  if (rec.verdict == kNoVerdict) {
    s += "null";
  } else if (rec.verdict < config_.num_verdicts &&
             config_.verdict_names != nullptr) {
    s += json_quote(config_.verdict_names[rec.verdict]);
  } else {
    s += json_quote(std::to_string(static_cast<unsigned>(rec.verdict)));
  }
  s += ",\"verdict_code\":" +
       (rec.verdict == kNoVerdict
            ? std::string("null")
            : std::to_string(static_cast<unsigned>(rec.verdict)));
  s += ",\"expected_cluster\":" + std::to_string(rec.expected_cluster);
  s += ",\"predicted_cluster\":" + std::to_string(rec.predicted_cluster);
  s += ",\"min_distance\":" + json_double(rec.min_distance);
  s += ",\"confidence\":" + json_double(rec.confidence);
  s += ",\"model_generation\":" + std::to_string(rec.model_generation);
  s += ",\"features\":[";
  const std::size_t dim =
      rec.dim <= kMaxEvidenceDim ? rec.dim : kMaxEvidenceDim;
  for (std::size_t i = 0; i < dim; ++i) {
    if (i != 0) s += ',';
    s += json_double(rec.features[i]);
  }
  s += "]}";
}

std::string FlightRecorder::build_bundle_json(
    const IncidentSummary& summary) const {
  std::string s = "{\"schema\":\"vprofile-incident-v1\"";
  s += ",\"manifest\":" + config_.manifest.to_json();
  s += ",\"bus\":" + json_quote(config_.bus);
  s += ",\"incident\":{\"id\":" + json_u64(summary.id);
  s += ",\"cause\":" + json_quote(to_string(summary.cause));
  s += ",\"detail\":" + json_quote(summary.detail);
  s += ",\"trigger_seq\":" + json_u64(summary.trigger_seq);
  s += ",\"coalesced\":" + json_u64(summary.coalesced);
  s += ",\"suppressed\":" +
       json_u64(suppressed_.load(std::memory_order_relaxed));
  s += ",\"ring_capacity\":" + std::to_string(ring_.size());
  s += ",\"records_seen\":" +
       json_u64(head_.load(std::memory_order_relaxed));
  s += ",\"pre_records\":" + std::to_string(summary.pre_records);
  s += ",\"post_records\":" + std::to_string(summary.post_records);
  s += "}";
  s += ",\"context\":";
  s += config_.context_json ? config_.context_json() : std::string("null");
  s += ",\"evidence\":{\"pre\":[";
  for (std::size_t i = 0; i < pre_n_; ++i) {
    if (i != 0) s += ',';
    append_record_json(&s, pre_buf_[i]);
  }
  s += "],\"post\":[";
  for (std::size_t i = 0; i < post_n_; ++i) {
    if (i != 0) s += ',';
    append_record_json(&s, post_buf_[i]);
  }
  s += "]}";
  if (config_.tracer != nullptr) {
    // Live collect is data-race-free (the rings are atomic slots) but
    // best-effort: a span mid-overwrite may read torn.  Fine for
    // diagnostics; the byte-stable soak scenario runs without a tracer.
    const std::vector<TraceEvent> events = config_.tracer->collect();
    const std::size_t start =
        events.size() > kMaxBundleSpans ? events.size() - kMaxBundleSpans : 0;
    s += ",\"trace_spans\":[";
    for (std::size_t i = start; i < events.size(); ++i) {
      if (i != start) s += ',';
      const TraceEvent& ev = events[i];
      s += "{\"name\":" +
           json_quote(ev.name != nullptr ? ev.name : "?");
      s += ",\"start_ns\":" + json_u64(ev.start_ns);
      s += ",\"dur_ns\":" + json_u64(ev.dur_ns);
      s += ",\"tid\":" + std::to_string(ev.tid);
      s += "}";
    }
    s += "]";
  }
  s += "}\n";
  return s;
}

std::vector<IncidentSummary> FlightRecorder::incidents() const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  return summaries_;
}

std::string FlightRecorder::bundle_json(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  for (const auto& [bundle_id, json] : retained_) {
    if (bundle_id == id) return json;
  }
  return "";
}

}  // namespace obs
