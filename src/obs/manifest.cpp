#include "obs/manifest.hpp"

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <ctime>

#ifndef VPROFILE_GIT_DESCRIBE
#define VPROFILE_GIT_DESCRIBE "unknown"
#endif

namespace obs {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  out += '"';
  return out;
}

RunManifest RunManifest::create(std::string tool_name) {
  RunManifest m;
  m.tool = std::move(tool_name);
  m.git_describe = VPROFILE_GIT_DESCRIBE;
  // Wall-clock provenance, not part of any deterministic result — the
  // detection math never sees it.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  m.unix_time_s = static_cast<std::uint64_t>(secs);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  m.iso8601 = buf;
  return m;
}

std::string RunManifest::to_json() const {
  std::string out = "{";
  out += "\"tool\":" + json_quote(tool);
  out += ",\"git_describe\":" + json_quote(git_describe);
  out += ",\"unix_time_s\":" + std::to_string(unix_time_s);
  out += ",\"iso8601\":" + json_quote(iso8601);
  out += ",\"seeds\":{";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += json_quote(seeds[i].first) + ":" + std::to_string(seeds[i].second);
  }
  out += "},\"config\":{";
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += json_quote(config[i].first) + ":" + json_quote(config[i].second);
  }
  out += "}}";
  return out;
}

}  // namespace obs
