// Machine-readable exporters for the metrics registry.
//
// Two formats, same samples: Prometheus text exposition (scrape-able,
// diff-able in review) and a JSONL event stream (one JSON object per
// series, manifest first — trivially parsed by any log pipeline).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace obs {

struct RunManifest;

/// Prometheus text exposition format 0.0.4: `# TYPE` per family,
/// histograms expanded to `_bucket{le=...}` / `_sum` / `_count`, label
/// values escaped (backslash, double quote, newline).  The manifest, if
/// given, rides along as leading `# ` comment lines.
std::string to_prometheus(const std::vector<MetricSample>& samples,
                          const RunManifest* manifest = nullptr);

/// One JSON object per line.  If a manifest is given, the first line is
/// {"manifest": {...}}; each following line is a series with its kind,
/// labels and value(s) (histograms carry count/sum/max/p50/p90/p99).
std::string to_jsonl(const std::vector<MetricSample>& samples,
                     const RunManifest* manifest = nullptr);

/// Write `content` to `path` atomically: routed through io::atomic_write_file
/// (write sibling temp + fsync + rename), so a crash mid-export can never
/// leave a truncated metrics/JSONL artifact shadowing a good one.
/// Returns false and fills `*error` on failure.
bool write_text_file(const std::string& path, const std::string& content,
                     std::string* error);

}  // namespace obs
