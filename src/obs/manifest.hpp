// RunManifest: the provenance stamp every telemetry artifact carries.
//
// A metrics file or a bench JSON is only evidence if it says *what ran*:
// which binary, which commit, when, and under which seeds and config.
// RunManifest gathers exactly that and serializes it as one JSON object
// that exporters embed verbatim, so any artifact can be traced back to a
// reproducible invocation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace obs {

/// Quote and escape a string as a JSON string literal (including the
/// surrounding double quotes).  Shared by manifest, exporters and the
/// bench reporter so everybody escapes the same way.
std::string json_quote(const std::string& s);

struct RunManifest {
  std::string tool;          ///< binary / logical run name
  std::string git_describe;  ///< from `git describe` at configure time
  std::uint64_t unix_time_s = 0;
  std::string iso8601;  ///< UTC, e.g. "2026-08-05T12:34:56Z"
  /// Named deterministic seeds the run used (bench_seed catalog entries,
  /// scenario seeds, ...).
  std::vector<std::pair<std::string, std::uint64_t>> seeds;
  /// Free-form config key/values worth reproducing the run from
  /// (paths, worker counts, thresholds as strings).
  std::vector<std::pair<std::string, std::string>> config;

  /// Manifest for this process: git describe baked in at build time plus
  /// the current wall clock.  Callers append seeds/config afterwards.
  static RunManifest create(std::string tool_name);

  /// One JSON object: {"tool":...,"git_describe":...,"unix_time_s":...,
  /// "iso8601":...,"seeds":{...},"config":{...}}.
  std::string to_json() const;
};

}  // namespace obs
