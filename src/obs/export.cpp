#include "obs/export.hpp"

#include <cstddef>

#include "io/atomic_file.hpp"
#include "obs/manifest.hpp"

namespace obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` or "" when empty; `extra` appends one more pair
/// (used for the histogram `le` label).
std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra_key + "=\"" + prom_escape(extra_value) + "\"";
  }
  out += '}';
  return out;
}

const char* prom_type(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string to_prometheus(const std::vector<MetricSample>& samples,
                          const RunManifest* manifest) {
  std::string out;
  if (manifest != nullptr) {
    out += "# vprofile manifest: " + manifest->to_json() + "\n";
  }
  std::string last_family;
  for (const MetricSample& s : samples) {
    if (s.name != last_family) {
      out += "# TYPE " + s.name + " " + prom_type(s.kind) + "\n";
      last_family = s.name;
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += s.name + prom_labels(s.labels) + " " +
               std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += s.name + prom_labels(s.labels) + " " +
               std::to_string(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          cumulative += h.counts[i];
          const std::string le = i < h.bounds.size()
                                     ? std::to_string(h.bounds[i])
                                     : std::string("+Inf");
          out += s.name + "_bucket" + prom_labels(s.labels, "le", le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += s.name + "_sum" + prom_labels(s.labels) + " " +
               std::to_string(h.sum) + "\n";
        out += s.name + "_count" + prom_labels(s.labels) + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const std::vector<MetricSample>& samples,
                     const RunManifest* manifest) {
  std::string out;
  if (manifest != nullptr) {
    out += "{\"manifest\":" + manifest->to_json() + "}\n";
  }
  for (const MetricSample& s : samples) {
    std::string line = "{\"metric\":" + json_quote(s.name);
    line += ",\"kind\":\"";
    line += prom_type(s.kind);
    line += "\",\"labels\":{";
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
      if (i != 0) {
        line += ',';
      }
      line += json_quote(s.labels[i].first) + ":" +
              json_quote(s.labels[i].second);
    }
    line += "}";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        line += ",\"value\":" + std::to_string(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        line += ",\"value\":" + std::to_string(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram: {
        const HistogramSnapshot& h = s.histogram;
        line += ",\"count\":" + std::to_string(h.count);
        line += ",\"sum\":" + std::to_string(h.sum);
        line += ",\"max\":" + std::to_string(h.max);
        line += ",\"p50\":" + std::to_string(h.p50());
        line += ",\"p90\":" + std::to_string(h.p90());
        line += ",\"p99\":" + std::to_string(h.p99());
        break;
      }
    }
    line += "}\n";
    out += line;
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content,
                     std::string* error) {
  // Same crash-safety contract as model checkpoints: a reader (or a crash
  // recovery) sees the previous complete artifact or the new complete
  // one, never a prefix.
  return io::atomic_write_file(path, content, error);
}

}  // namespace obs
