#include "obs/trace_span.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_ns() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

// Sanctioned hot-path boundary: the registry mutex and the ring
// allocation are paid once per (thread, tracer); every later record()
// hits the thread-local cache.
// vprofile-lint: cold
Tracer::ThreadRing* Tracer::ring_for_this_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = rings_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<ThreadRing>(
        ring_capacity_, static_cast<std::uint32_t>(rings_.size()));
  }
  return slot.get();
}

void Tracer::bind_metrics(MetricsRegistry* registry) {
  if (registry != nullptr) {
    dropped_counter_.store(registry->counter("trace_ring_dropped_total"),
                           std::memory_order_relaxed);
  }
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  // Per-thread cache keyed by the tracer's process-unique id: tracer ids
  // are never reused, so a stale entry from a destroyed tracer can never
  // match a live one.  Only the owning thread ever writes its ring; the
  // relaxed atomic stores exist for concurrent collect() readers, not
  // for writer/writer ordering.
  struct Cache {
    std::uint64_t tracer_id = 0;
    ThreadRing* ring = nullptr;
  };
  static thread_local Cache cache;
  if (cache.tracer_id != id_) {
    cache.ring = ring_for_this_thread();
    cache.tracer_id = id_;
  }
  ThreadRing* ring = cache.ring;
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  AtomicTraceEvent& slot = ring->events[head % ring_capacity_];
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.tid.store(ring->tid, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (head >= ring_capacity_) {
    // The store above overwrote the oldest surviving event.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    Counter* dropped_counter =
        dropped_counter_.load(std::memory_order_relaxed);
    if (dropped_counter != nullptr) dropped_counter->add();
  }
}

std::vector<TraceEvent> Tracer::collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& [thread_id, ring] : rings_) {
    (void)thread_id;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(head, ring_capacity_);
    // Oldest surviving event first: once wrapped, that is events[head %
    // cap], before wrapping it is events[0].
    const std::uint64_t start =
        head > ring_capacity_ ? head % ring_capacity_ : 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const AtomicTraceEvent& slot =
          ring->events[(start + i) % ring_capacity_];
      TraceEvent ev;
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.start_ns = slot.start_ns.load(std::memory_order_relaxed);
      ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      ev.tid = slot.tid.load(std::memory_order_relaxed);
      out.push_back(ev);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string Tracer::chrome_trace_json(const RunManifest* manifest) const {
  const std::vector<TraceEvent> events = collect();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    // Complete ("X") events; ts/dur are microseconds in the trace_event
    // format, carried as fractional values to keep ns resolution.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%.3f,\"dur\":%.3f}",
                  json_quote(ev.name != nullptr ? ev.name : "?").c_str(),
                  ev.tid, static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0);
    out += buf;
  }
  out += "]";
  if (manifest != nullptr) {
    out += ",\"otherData\":" + manifest->to_json();
  }
  out += "}\n";
  return out;
}

}  // namespace obs
