// Lightweight tracing: RAII spans into per-thread ring buffers, flushed
// to Chrome `trace_event` JSON (chrome://tracing, Perfetto) on demand.
//
// The recording path is built for the pipeline's hot loop: each thread
// owns a fixed-capacity ring it alone writes, so record() is an index
// increment and a handful of relaxed stores — no locks, no allocation,
// no contention.  The ring wraps, keeping the most recent events (each
// overwrite counts toward trace_ring_dropped_total via bind_metrics);
// tracing is a window, not a log.  The slots are atomics, so flushing
// (collect / chrome_trace_json) is data-race-free even while threads are
// still recording — a live collect (the flight recorder folding recent
// spans into an incident bundle) is best-effort (a span mid-overwrite
// may read mixed), while a quiescent collect — after pipeline finish(),
// at tool exit — is exact.
//
// Span names must be string literals (or otherwise outlive the Tracer):
// the ring stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace obs {

class Counter;
class MetricsRegistry;
struct RunManifest;

/// One completed span, times in nanoseconds since the tracer's epoch.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< small per-tracer thread index, not an OS id
};

class Tracer {
 public:
  /// `ring_capacity` is per thread, in events.
  explicit Tracer(std::size_t ring_capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer() = default;

  /// Nanoseconds since this tracer was constructed (steady clock).
  std::uint64_t now_ns() const;

  /// Record a completed span.  Lock-free after a thread's first call.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  /// Total spans ever recorded (including ones the rings overwrote).
  std::uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Spans the rings overwrote (ring overflow).  Also exported as the
  /// trace_ring_dropped_total counter once bind_metrics is called.
  std::uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Registers trace_ring_dropped_total on `registry` (null = no-op).
  /// Call before recording threads start.
  void bind_metrics(MetricsRegistry* registry);

  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Surviving events, oldest first per thread, merged in start order.
  /// Data-race-free at any time; exact at quiescence, best-effort while
  /// threads are still recording (see the header comment).
  std::vector<TraceEvent> collect() const;

  /// Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds); the manifest, if given, rides in otherData.
  std::string chrome_trace_json(const RunManifest* manifest = nullptr) const;

 private:
  /// One ring slot.  Atomic fields make concurrent collect() data-race-
  /// free; all accesses are relaxed — the slot is diagnostics, not
  /// synchronization, and a live reader accepts best-effort content.
  struct AtomicTraceEvent {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint32_t> tid{0};
  };

  struct ThreadRing {
    explicit ThreadRing(std::size_t capacity, std::uint32_t tid_index)
        : events(capacity), tid(tid_index) {}
    std::vector<AtomicTraceEvent> events;
    /// Total events this thread recorded.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid;
  };

  ThreadRing* ring_for_this_thread();

  const std::size_t ring_capacity_;
  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> dropped_{0};
  /// Written once by bind_metrics before recording starts, read relaxed
  /// by every record().
  std::atomic<Counter*> dropped_counter_{nullptr};

  mutable std::mutex mu_;
  std::map<std::thread::id, std::unique_ptr<ThreadRing>> rings_;
};

/// RAII span: times its scope and records it on destruction.  A null
/// tracer makes the whole thing a no-op, so call sites need no branches.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name)
      : tracer_(tracer),
        name_(name),
        start_ns_(tracer != nullptr ? tracer->now_ns() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_ns_, tracer_->now_ns() - start_ns_);
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t start_ns_;
};

}  // namespace obs
