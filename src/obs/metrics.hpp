// Zero-hot-path-overhead metrics for the always-on monitor.
//
// A deployed vProfile IDS has to answer "how fast are we detecting, where
// is the time going, and which source addresses are hot" without slowing
// the detection path that answers it.  Every instrument here is therefore
// a handle to pre-registered relaxed-atomic storage: recording is one or
// two fetch_adds, never a lock, never an allocation.  The registry pays
// its mutex only at registration (once per series) and at export time.
//
// Series are identified by metric name + sorted label pairs, e.g.
// `detect_latency_ns{sa="0x12"}`.  Names follow the project convention
// enforced by vprofile_lint's `metric-name` rule: snake_case with a unit
// suffix (`_ns`, `_bytes`, `_total`).  Export formats (Prometheus text
// exposition, JSONL) live in obs/export.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace obs {

/// Label pairs identifying one series of a metric family.  Order given by
/// the caller is irrelevant; the registry canonicalizes by sorting.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, cluster count).  Signed so deltas
/// can go both ways.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Plain-value view of a histogram at one instant.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  /// Ascending inclusive upper bounds; counts has one extra slot for the
  /// overflow (+Inf) bucket.
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;

  /// Upper bound of the bucket holding the q-quantile (q in [0,1]); the
  /// overflow bucket reports the exact observed max.  0 when empty.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
  double mean() const {
    return count != 0
               ? static_cast<double>(sum) / static_cast<double>(count)
               : 0.0;
  }
};

/// Fixed-bucket histogram.  Bucket bounds are immutable after
/// construction, so observe() is a binary search plus relaxed fetch_adds —
/// safe and cheap from any number of threads.
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds (an observation lands
  /// in the first bucket whose bound is >= the value); one overflow bucket
  /// is appended implicitly.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);
  HistogramSnapshot snapshot() const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Power-of-two latency grid: 128 ns .. ~1.07 s in 24 buckets — fine
/// enough for p50/p90/p99 on a path that costs microseconds, wide enough
/// to catch a stalled stage.
std::vector<std::uint64_t> default_latency_bounds_ns();

/// One exported sample, used by the exporters and tests.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;  // sorted
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  HistogramSnapshot histogram;
};

/// Owns every instrument; get-or-create by (name, labels) with stable
/// pointers for the lifetime of the registry.  Thread-safe; the returned
/// handles are the lock-free hot-path API.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  /// Repeated calls with the same (name, labels) return the first
  /// histogram regardless of `bounds` — bounds belong to the series.
  Histogram* histogram(const std::string& name, const Labels& labels = {},
                       std::vector<std::uint64_t> bounds =
                           default_latency_bounds_ns());

  /// Every series, sorted by (name, labels) — a deterministic export
  /// order no matter the registration interleaving.
  std::vector<MetricSample> samples() const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, const Labels& labels,
                   MetricSample::Kind kind);

  mutable std::mutex mu_;
  /// Keyed by name + canonical label serialization; std::map keeps
  /// iteration (and thus export) deterministic.
  std::map<std::string, Entry> series_;
};

}  // namespace obs
