#include "sim/attack.hpp"

#include <stdexcept>

namespace sim {

std::vector<LabeledCapture> make_normal_stream(
    Vehicle& vehicle, std::size_t count, const analog::Environment& env) {
  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (Capture& cap : vehicle.capture(count, env)) {
    out.push_back(LabeledCapture{std::move(cap), false});
  }
  return out;
}

std::vector<LabeledCapture> make_hijack_stream(
    Vehicle& vehicle, std::size_t count, double attack_prob,
    const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (ecus.size() < 2) {
    throw std::invalid_argument("make_hijack_stream: need >= 2 ECUs");
  }

  // SAs grouped by owner, for picking a victim from another cluster.
  std::vector<std::vector<std::uint8_t>> sas_by_ecu;
  sas_by_ecu.reserve(ecus.size());
  for (const auto& ecu : ecus) sas_by_ecu.push_back(ecu.source_addresses());

  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (const canbus::Transmission& tx : vehicle.schedule(count)) {
    const std::size_t attacker = tx.node;
    canbus::DataFrame frame = tx.frame;
    bool is_attack = false;
    if (vehicle.rng().bernoulli(attack_prob)) {
      // Pick a victim ECU other than the attacker, then one of its SAs.
      std::size_t victim = vehicle.rng().below(ecus.size() - 1);
      if (victim >= attacker) ++victim;
      const auto& victim_sas = sas_by_ecu[victim];
      frame.id.source_address =
          victim_sas[vehicle.rng().below(victim_sas.size())];
      is_attack = true;
    }
    Capture cap = vehicle.synthesize_message(frame, attacker, env, tx.start_s);
    out.push_back(LabeledCapture{std::move(cap), is_attack});
  }
  return out;
}

std::vector<LabeledCapture> make_foreign_stream(
    Vehicle& vehicle, std::size_t imitator, std::size_t target,
    std::size_t count, const analog::Environment& env) {
  const auto& ecus = vehicle.config().ecus;
  if (imitator >= ecus.size() || target >= ecus.size()) {
    throw std::invalid_argument("make_foreign_stream: ECU index out of range");
  }
  if (imitator == target) {
    throw std::invalid_argument(
        "make_foreign_stream: imitator must differ from target");
  }
  const auto target_sas = ecus[target].source_addresses();

  std::vector<LabeledCapture> out;
  out.reserve(count);
  for (const canbus::Transmission& tx : vehicle.schedule(count)) {
    canbus::DataFrame frame = tx.frame;
    bool is_attack = false;
    if (tx.node == imitator) {
      // The foreign device reuses the imitator's transmission slots but
      // crafts frames that claim to come from the target.
      frame.id.source_address =
          target_sas[vehicle.rng().below(target_sas.size())];
      is_attack = true;
    }
    Capture cap = vehicle.synthesize_message(frame, tx.node, env, tx.start_s);
    out.push_back(LabeledCapture{std::move(cap), is_attack});
  }
  return out;
}

}  // namespace sim
